/// \file
/// Shared scaffolding for the per-figure bench binaries: canonical scaled
/// datasets (flag-overridable) and evaluation shorthand.
///
/// Every binary prints the paper's corresponding table/figure rows with
/// our measured values next to the paper's. Scaled-down defaults keep
/// `for b in build/bench/*; do $b; done` quick; flags (--pairs, --gens,
/// --runs, ...) and GEVO_* env vars reach full-size runs.

#ifndef GEVO_BENCH_BENCH_UTIL_H
#define GEVO_BENCH_BENCH_UTIL_H

#include <cstdio>

#include "apps/adept/driver.h"
#include "apps/adept/fitness.h"
#include "apps/adept/golden_edits.h"
#include "apps/simcov/driver.h"
#include "apps/simcov/fitness.h"
#include "apps/simcov/golden_edits.h"
#include "core/engine.h"
#include "core/fitness.h"
#include "core/workload.h"
#include "support/flags.h"
#include "support/strings.h"
#include "support/table.h"

namespace gevo::bench {

/// Canonical ADEPT dataset: related pairs plus the warp-boundary probes.
inline std::vector<adept::SequencePair>
adeptPairs(const Flags& flags, std::size_t numPairs = 8)
{
    adept::SequenceSetConfig cfg;
    cfg.numPairs = static_cast<std::size_t>(
        flags.getInt("pairs", static_cast<std::int64_t>(numPairs)));
    cfg.minLen = 40;
    cfg.maxLen = 64;
    cfg.seed = static_cast<std::uint64_t>(flags.getInt("data-seed", 7));
    auto pairs = adept::generatePairs(cfg);
    adept::appendBoundaryProbePairs(&pairs, cfg.maxLen, cfg.seed);
    return pairs;
}

/// Canonical (scaled) SIMCoV fitness configuration.
inline simcov::SimcovConfig
simcovConfig(const Flags& flags)
{
    simcov::SimcovConfig cfg;
    cfg.gridW = static_cast<std::int32_t>(flags.getInt("grid", 32));
    cfg.steps = static_cast<std::int32_t>(flags.getInt("steps", 30));
    cfg.seed = static_cast<std::uint64_t>(flags.getInt("sim-seed", 1337));
    return cfg;
}

/// Parse and validate a `--workloads=a,b,c` list against the registry
/// (fatal — with the registered set listed — on unknown names, empty
/// entries, or an empty list). \p def is the bench's default set; when
/// empty, the default is every registered workload.
inline std::vector<std::string>
workloadList(const Flags& flags, const core::WorkloadRegistry& registry,
             const std::string& def = {})
{
    std::string fallback = def;
    if (fallback.empty()) {
        for (const auto& name : registry.names())
            fallback += (fallback.empty() ? "" : ",") + name;
    }
    return registry.resolveList(flags.getString("workloads", fallback));
}

/// Evaluate an edit set; fatal when unexpectedly invalid.
inline double
msOf(const ir::Module& base, const std::vector<mut::Edit>& edits,
     const core::FitnessFunction& fitness, const char* what)
{
    const auto r = core::evaluateVariant(base, edits, fitness);
    if (!r.valid)
        GEVO_FATAL("%s unexpectedly invalid: %s", what,
                   r.failReason.c_str());
    return r.ms();
}

/// Print a bench banner.
inline void
banner(const char* title, const char* paperRef)
{
    std::printf("==================================================\n");
    std::printf("%s\n", title);
    std::printf("(reproduces %s)\n", paperRef);
    std::printf("==================================================\n");
}

} // namespace gevo::bench

#endif // GEVO_BENCH_BENCH_UTIL_H
