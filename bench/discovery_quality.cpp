/// Discovery quality: guided vs uniform edit-site sampling.
///
/// The diagnosis-driven recipe (profile the elite, bias mutation toward
/// its hot source locations) only earns its keep if it finds better
/// variants — or the same variants sooner — than the paper's uniform
/// operator at an identical evaluation budget. This bench runs the two
/// samplers head-to-head: for every workload and every seed it runs one
/// search with `--sampler=uniform` and one with `--sampler=guided`,
/// everything else identical, and scores the pair on
///
///   best fitness at budget  — lower best-ms wins outright, and
///   generations-to-best     — on a fitness tie, discovering the shared
///                             best in fewer generations wins (the
///                             Figure 8 discovery-sequence view).
///
/// A workload's verdict is the majority over its seeds; the bench's
/// headline is how many workloads the guided sampler wins. CI runs this
/// with `--json=BENCH_discovery.json` and gates on `guided_wins >= 2`.
///
/// Flags: --workloads=a,b,c  --runs=<n seeds>  --gens  --pop
///        --explore-floor    --json=<path>

#include <cstdio>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "bench_util.h"
#include "core/fitness.h"
#include "core/workload.h"
#include "support/table.h"

namespace {

using namespace gevo;

/// One (workload, seed, sampler) search outcome.
struct SearchOutcome {
    double bestMs = 0.0;
    double speedup = 0.0;
    bool valid = false;
    /// First generation whose running best equals the final best (the
    /// discovery moment). generations+1 when nothing valid was found.
    std::uint32_t gensToBest = 0;
};

SearchOutcome
runOne(const core::WorkloadInstance& instance,
       core::EvolutionParams params, core::SamplerKind kind)
{
    params.samplerKind = kind;
    core::EvolutionEngine engine(instance.module(), instance.fitness(),
                                 params);
    const auto result = engine.run();

    SearchOutcome out;
    out.valid = result.best.fitness.valid;
    out.bestMs = result.best.fitness.ms();
    out.speedup = result.speedup();
    out.gensToBest = params.generations + 1;
    for (const auto& log : result.history) {
        if (log.bestMs == out.bestMs) {
            out.gensToBest = log.generation;
            break;
        }
    }
    return out;
}

/// +1 when guided wins the pair, -1 when uniform does, 0 on a dead tie.
int
judge(const SearchOutcome& guided, const SearchOutcome& uniform)
{
    if (guided.valid != uniform.valid)
        return guided.valid ? 1 : -1;
    if (guided.bestMs != uniform.bestMs)
        return guided.bestMs < uniform.bestMs ? 1 : -1;
    if (guided.gensToBest != uniform.gensToBest)
        return guided.gensToBest < uniform.gensToBest ? 1 : -1;
    return 0;
}

struct SeedRow {
    std::uint64_t seed = 0;
    SearchOutcome guided;
    SearchOutcome uniform;
    int verdict = 0;
};

struct WorkloadReport {
    std::string name;
    std::vector<SeedRow> seeds;
    int guidedSeedWins = 0;
    int uniformSeedWins = 0;

    /// Majority verdict over the seeds.
    int
    verdict() const
    {
        if (guidedSeedWins != uniformSeedWins)
            return guidedSeedWins > uniformSeedWins ? 1 : -1;
        return 0;
    }
};

WorkloadReport
benchWorkload(const core::Workload& workload, const Flags& flags)
{
    core::WorkloadConfig config;
    config.flags = &flags;
    config.defaults = workload.benchKnobs;
    const auto instance = workload.make(config);

    // Variability scale (multiple independent runs) rather than the
    // throughput perf-anchor scale: the comparison needs search room,
    // not peak evaluation rate.
    core::EvolutionParams params = workload.benchDefaults;
    params.generations = static_cast<std::uint32_t>(
        flags.getInt("gens", workload.variabilityGens));
    params.populationSize = static_cast<std::uint32_t>(
        flags.getInt("pop", workload.variabilityPop));
    params.sampler.exploreFloor = flags.getDouble(
        "explore-floor", params.sampler.exploreFloor);
    const auto runs =
        static_cast<std::uint64_t>(flags.getInt("runs", 3));

    WorkloadReport report;
    report.name = workload.name;
    for (std::uint64_t r = 0; r < runs; ++r) {
        SeedRow row;
        row.seed = 1 + r;
        params.seed = row.seed;
        row.guided = runOne(*instance, params, core::SamplerKind::Guided);
        row.uniform =
            runOne(*instance, params, core::SamplerKind::Uniform);
        row.verdict = judge(row.guided, row.uniform);
        if (row.verdict > 0)
            ++report.guidedSeedWins;
        else if (row.verdict < 0)
            ++report.uniformSeedWins;
        report.seeds.push_back(row);
    }
    return report;
}

const char*
verdictName(int v)
{
    return v > 0 ? "guided" : v < 0 ? "uniform" : "tie";
}

bool
writeJson(const std::string& path,
          const std::vector<WorkloadReport>& reports, int guidedWins,
          int uniformWins)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write JSON artifact %s\n",
                     path.c_str());
        return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"discovery_quality\",\n");
    std::fprintf(f, "  \"guided_wins\": %d,\n  \"uniform_wins\": %d,\n",
                 guidedWins, uniformWins);
    std::fprintf(f, "  \"workloads\": [\n");
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const WorkloadReport& r = reports[i];
        std::fprintf(f, "    {\n      \"name\": \"%s\",\n",
                     r.name.c_str());
        std::fprintf(f, "      \"verdict\": \"%s\",\n",
                     verdictName(r.verdict()));
        std::fprintf(f,
                     "      \"guided_seed_wins\": %d, "
                     "\"uniform_seed_wins\": %d,\n",
                     r.guidedSeedWins, r.uniformSeedWins);
        std::fprintf(f, "      \"seeds\": [\n");
        for (std::size_t s = 0; s < r.seeds.size(); ++s) {
            const SeedRow& row = r.seeds[s];
            std::fprintf(
                f,
                "        {\"seed\": %llu, \"verdict\": \"%s\", "
                "\"guided\": {\"speedup\": %.4f, \"gens_to_best\": %u}, "
                "\"uniform\": {\"speedup\": %.4f, \"gens_to_best\": "
                "%u}}%s\n",
                static_cast<unsigned long long>(row.seed),
                verdictName(row.verdict), row.guided.speedup,
                row.guided.gensToBest, row.uniform.speedup,
                row.uniform.gensToBest,
                s + 1 < r.seeds.size() ? "," : "");
        }
        std::fprintf(f, "      ]\n    }%s\n",
                     i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote JSON artifact: %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    apps::registerBuiltinWorkloads();
    auto& registry = core::WorkloadRegistry::instance();
    const Flags flags(argc, argv);

    bench::banner("Discovery quality: guided vs uniform edit sampling",
                  "the diagnosis-driven search recipe, cf. GEVO Sec "
                  "III-D operator study");

    const auto names = bench::workloadList(flags, registry);

    int guidedWins = 0;
    int uniformWins = 0;
    std::vector<WorkloadReport> reports;
    Table t({"workload", "seed", "guided x", "gens", "uniform x", "gens",
             "verdict"});
    for (const auto& name : names) {
        reports.push_back(benchWorkload(registry.get(name), flags));
        const WorkloadReport& report = reports.back();
        for (const SeedRow& row : report.seeds) {
            t.row().cell(name).cell(static_cast<long long>(row.seed))
                .cell(row.guided.speedup, 3)
                .cell(static_cast<long long>(row.guided.gensToBest))
                .cell(row.uniform.speedup, 3)
                .cell(static_cast<long long>(row.uniform.gensToBest))
                .cell(verdictName(row.verdict));
        }
        const int v = report.verdict();
        if (v > 0)
            ++guidedWins;
        else if (v < 0)
            ++uniformWins;
        t.row().cell(name).cell("-").cell("").cell("").cell("").cell("")
            .cell(std::string("=> ") + verdictName(v));
    }
    t.print();

    std::printf("\nworkload verdicts: guided %d, uniform %d, ties %zu\n",
                guidedWins, uniformWins,
                names.size() -
                    static_cast<std::size_t>(guidedWins + uniformWins));

    const std::string jsonPath = flags.getString("json", "");
    bool jsonOk = true;
    if (!jsonPath.empty())
        jsonOk = writeJson(jsonPath, reports, guidedWins, uniformWins);
    return jsonOk ? 0 : 1;
}
