/// Regenerates paper Figure 4: ADEPT performance on the three GPUs —
/// V0, V0-GEVO, V1, V1-GEVO, normalized to V0 within each device.
/// The GEVO configurations apply the golden edit sets (Sec V/VI); pass
/// --evolve=1 to rediscover improvements with a live search instead.

#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace gevo;
    using namespace gevo::adept;
    const Flags flags(argc, argv);
    bench::banner("Figure 4: ADEPT speedups (normalized to V0 per GPU)",
                  "paper Fig. 4");

    const ScoringParams sc;
    const auto pairs = bench::adeptPairs(flags);
    const auto v0 = buildAdeptV0(sc, 64);
    const auto v1 = buildAdeptV1(sc, 64);
    const AdeptDriver d0(pairs, sc, 0, 64);
    const AdeptDriver d1(pairs, sc, 1, 64);

    // Paper-reported speedups for side-by-side comparison.
    const double paperV0Gevo[3] = {32.8, 32.0, 18.36};
    const double paperV1Gevo[3] = {1.28, 1.31, 1.17};
    const double paperV0Ms[3] = {2362, 1442, 918};

    Table t({"GPU", "config", "ms", "speedup vs V0", "paper"});
    int d = 0;
    for (const auto& dev : sim::allDevices()) {
        AdeptFitness fit0(d0, dev);
        AdeptFitness fit1(d1, dev);
        const double v0ms = bench::msOf(v0.module, {}, fit0, "V0");
        const double v0gevoMs = bench::msOf(
            v0.module, editsOf(v0GoldenEdits(v0)), fit0, "V0-GEVO");
        const double v1ms = bench::msOf(v1.module, {}, fit1, "V1");
        const double v1gevoMs = bench::msOf(
            v1.module, editsOf(v1AllGoldenEdits(v1)), fit1, "V1-GEVO");

        t.row().cell(dev.name).cell("ADEPT-V0").cell(v0ms, 3).cell(1.0, 2)
            .cell(strformat("baseline (%.0f ms)", paperV0Ms[d]));
        t.row().cell(dev.name).cell("ADEPT-V0-GEVO").cell(v0gevoMs, 3)
            .cell(v0ms / v0gevoMs, 1)
            .cell(strformat("%.1fx", paperV0Gevo[d]));
        t.row().cell(dev.name).cell("ADEPT-V1").cell(v1ms, 3)
            .cell(v0ms / v1ms, 1).cell("20-30x");
        t.row().cell(dev.name).cell("ADEPT-V1-GEVO").cell(v1gevoMs, 3)
            .cell(v0ms / v1gevoMs, 1)
            .cell(strformat("%.2fx over V1 (ours %.2fx)",
                            paperV1Gevo[d], v1ms / v1gevoMs));
        ++d;
    }
    t.print();
    std::printf("\nNote: 'speedup vs V0' is within-device, as in the "
                "paper's figure;\nthe V1-GEVO row also reports the "
                "V1-relative improvement next to the paper's.\n");
    return 0;
}
