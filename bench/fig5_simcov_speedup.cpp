/// Regenerates paper Figure 5: SIMCoV performance on the three GPUs,
/// baseline vs GEVO-optimized (golden edit set), normalized per device.

#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace gevo;
    using namespace gevo::simcov;
    const Flags flags(argc, argv);
    bench::banner("Figure 5: SIMCoV speedups (normalized per GPU)",
                  "paper Fig. 5");

    const auto cfg = bench::simcovConfig(flags);
    const auto built = buildSimcov(cfg);
    const SimcovDriver driver(cfg);

    const double paperSpeedup[3] = {1.29, 1.43, 1.17};
    const double paperBaseMs[3] = {716, 512, 344};

    Table t({"GPU", "config", "ms", "speedup", "paper"});
    int d = 0;
    for (const auto& dev : sim::allDevices()) {
        SimcovFitness fit(driver, dev);
        const double base =
            bench::msOf(built.module, {}, fit, "SIMCoV baseline");
        const double gevo = bench::msOf(
            built.module, editsOf(allGoldenEdits(built)), fit,
            "SIMCoV-GEVO");
        t.row().cell(dev.name).cell("SIMCoV").cell(base, 3).cell(1.0, 2)
            .cell(strformat("baseline (%.0f ms)", paperBaseMs[d]));
        t.row().cell(dev.name).cell("SIMCoV-GEVO").cell(gevo, 3)
            .cell(base / gevo, 2)
            .cell(strformat("%.2fx", paperSpeedup[d]));
        ++d;
    }
    t.print();
    return 0;
}
