/// Regenerates paper Figure 6: distribution of speedups across
/// independent GEVO runs for ADEPT-V1 and SIMCoV on the P100.
///
/// The paper runs 10 searches of 300/130 generations over days of GPU
/// time; the scaled default here is --runs=3 x --gens=12 with small
/// populations (see EXPERIMENTS.md for the scaling notes). Expect the
/// discovered speedups to sit below the golden-edit ceiling at this
/// budget — the figure's point is the run-to-run spread.

#include "bench_util.h"
#include "support/stats.h"

int
main(int argc, char** argv)
{
    using namespace gevo;
    const Flags flags(argc, argv);
    bench::banner(
        "Figure 6: speedup distribution across independent GEVO runs",
        "paper Fig. 6");

    const auto runs = static_cast<std::uint32_t>(flags.getInt("runs", 3));
    const auto gens = static_cast<std::uint32_t>(flags.getInt("gens", 12));
    const auto pop = static_cast<std::uint32_t>(flags.getInt("pop", 16));
    const auto dev = sim::deviceByName(flags.getString("device", "P100"));

    // ---- (a) ADEPT-V1 ----
    {
        const adept::ScoringParams sc;
        auto pairs = bench::adeptPairs(flags, 4);
        const auto v1 = adept::buildAdeptV1(sc, 64);
        const adept::AdeptDriver driver(pairs, sc, 1, 64);
        adept::AdeptFitness fitness(driver, dev);

        std::printf("\n(a) ADEPT-V1 on %s: %u runs x %u generations, "
                    "population %u\n",
                    dev.name.c_str(), runs, gens, pop);
        std::printf("paper: best 1.33x, mean 1.20x, worst 1.10x over 303 "
                    "generations\n\n");
        Table t({"run", "seed", "final speedup", "best-gen trajectory"});
        RunningStat stat;
        for (std::uint32_t r = 0; r < runs; ++r) {
            core::EvolutionParams params;
            params.populationSize = pop;
            params.generations = gens;
            params.elitism = 2;
            params.seed = 100 + r;
            core::EvolutionEngine engine(v1.module, fitness, params);
            const auto result = engine.run();
            stat.push(result.speedup());
            std::string traj;
            for (std::size_t g = 0; g < result.history.size();
                 g += std::max<std::size_t>(1, gens / 6)) {
                traj += strformat(
                    "%.3f ", result.baselineMs / result.history[g].bestMs);
            }
            t.row().cell(static_cast<long long>(r))
                .cell(static_cast<long long>(params.seed))
                .cell(result.speedup(), 3).cell(traj);
        }
        t.print();
        std::printf("distribution: min %.3fx mean %.3fx max %.3fx\n",
                    stat.min(), stat.mean(), stat.max());
    }

    // ---- (b) SIMCoV ----
    {
        auto cfg = bench::simcovConfig(flags);
        cfg.steps = static_cast<std::int32_t>(flags.getInt("steps", 16));
        const auto built = simcov::buildSimcov(cfg);
        const simcov::SimcovDriver driver(cfg);
        simcov::SimcovFitness fitness(driver, dev);

        const auto simRuns =
            static_cast<std::uint32_t>(flags.getInt("sim-runs", 2));
        const auto simGens =
            static_cast<std::uint32_t>(flags.getInt("sim-gens", 6));
        std::printf("\n(b) SIMCoV on %s: %u runs x %u generations\n",
                    dev.name.c_str(), simRuns, simGens);
        std::printf("paper: best 1.35x, mean 1.28x, worst 1.18x over 130 "
                    "generations\n\n");
        Table t({"run", "seed", "final speedup"});
        RunningStat stat;
        for (std::uint32_t r = 0; r < simRuns; ++r) {
            core::EvolutionParams params;
            params.populationSize =
                static_cast<std::uint32_t>(flags.getInt("sim-pop", 10));
            params.generations = simGens;
            params.elitism = 2;
            params.seed = 500 + r;
            core::EvolutionEngine engine(built.module, fitness, params);
            const auto result = engine.run();
            stat.push(result.speedup());
            t.row().cell(static_cast<long long>(r))
                .cell(static_cast<long long>(params.seed))
                .cell(result.speedup(), 3);
        }
        t.print();
        std::printf("distribution: min %.3fx mean %.3fx max %.3fx\n",
                    stat.min(), stat.mean(), stat.max());
    }
    return 0;
}
