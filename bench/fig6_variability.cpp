/// Regenerates paper Figure 6: distribution of speedups across
/// independent GEVO runs, for every requested registry workload.
///
/// The paper runs 10 searches of 300/130 generations over days of GPU
/// time; each workload carries scaled per-run defaults (runs x gens x
/// pop, flag-overridable — see EXPERIMENTS.md for the scaling notes).
/// Expect the discovered speedups to sit below the golden-edit ceiling
/// at this budget — the figure's point is the run-to-run spread.
/// --islands exercises the island orchestrator across the same seeds.
/// --json=<path> additionally writes the per-run speedups and the
/// per-workload distribution as a machine-readable artifact.

#include "apps/registry.h"
#include "bench_util.h"
#include "core/workload.h"
#include "support/stats.h"

namespace {

using namespace gevo;

struct RunPoint {
    std::uint64_t seed = 0;
    double speedup = 0.0;
};

struct WorkloadPanel {
    std::string name;
    std::vector<RunPoint> runs;
    double min = 0.0, mean = 0.0, max = 0.0;
};

bool
writeJson(const std::string& path,
          const std::vector<WorkloadPanel>& panels)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write JSON artifact %s\n",
                     path.c_str());
        return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig6_variability\",\n");
    std::fprintf(f, "  \"workloads\": [\n");
    for (std::size_t i = 0; i < panels.size(); ++i) {
        const WorkloadPanel& p = panels[i];
        std::fprintf(f, "    {\n      \"name\": \"%s\",\n",
                     p.name.c_str());
        std::fprintf(f,
                     "      \"min\": %.4f, \"mean\": %.4f, "
                     "\"max\": %.4f,\n",
                     p.min, p.mean, p.max);
        std::fprintf(f, "      \"runs\": [\n");
        for (std::size_t r = 0; r < p.runs.size(); ++r)
            std::fprintf(f,
                         "        {\"seed\": %llu, \"speedup\": "
                         "%.4f}%s\n",
                         static_cast<unsigned long long>(p.runs[r].seed),
                         p.runs[r].speedup,
                         r + 1 < p.runs.size() ? "," : "");
        std::fprintf(f, "      ]\n    }%s\n",
                     i + 1 < panels.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote JSON artifact: %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    apps::registerBuiltinWorkloads();
    auto& registry = core::WorkloadRegistry::instance();
    const Flags flags(argc, argv);
    bench::banner(
        "Figure 6: speedup distribution across independent GEVO runs",
        "paper Fig. 6");

    const auto dev = sim::deviceByName(flags.getString("device", "P100"));
    // Default: every registered workload at its own variability scale
    // (the paper's figure shows adept-v1 + simcov; new workloads add
    // their own panels automatically).
    const auto names = bench::workloadList(flags, registry);

    std::vector<WorkloadPanel> panels;
    std::uint64_t seedBase = 100;
    char label = 'a';
    for (const auto& name : names) {
        const auto& workload = registry.get(name);
        core::WorkloadConfig config;
        config.device = dev;
        config.flags = &flags;
        // The figure's historical scale (4 ADEPT pairs; SIMCoV at its
        // full 32x32 fitness grid) — not the throughput bench's knobs.
        config.defaults = workload.variabilityKnobs;
        const auto instance = workload.make(config);

        const auto runs = static_cast<std::uint32_t>(
            flags.getInt("runs", workload.variabilityRuns));
        const auto gens = static_cast<std::uint32_t>(
            flags.getInt("gens", workload.variabilityGens));
        const auto pop = static_cast<std::uint32_t>(
            flags.getInt("pop", workload.variabilityPop));
        const auto islands = static_cast<std::uint32_t>(
            flags.getInt("islands", 1));

        std::printf("\n(%c) %s on %s: %u runs x %u generations, "
                    "population %u%s\n",
                    label++, workload.name.c_str(), dev.name.c_str(), runs,
                    gens, pop,
                    islands > 1 ? strformat(", %u islands", islands).c_str()
                                : "");
        WorkloadPanel panel;
        panel.name = name;
        Table t({"run", "seed", "final speedup", "best-gen trajectory"});
        RunningStat stat;
        for (std::uint32_t r = 0; r < runs; ++r) {
            core::EvolutionParams params = workload.searchDefaults;
            params.populationSize = pop;
            params.generations = gens;
            params.elitism = 2;
            params.seed = seedBase + r;
            params.islands = islands;
            core::EvolutionEngine engine(instance->module(),
                                         instance->fitness(), params);
            const auto result = engine.run();
            stat.push(result.speedup());
            panel.runs.push_back({params.seed, result.speedup()});
            std::string traj;
            for (std::size_t g = 0; g < result.history.size();
                 g += std::max<std::size_t>(1, gens / 6)) {
                traj += strformat(
                    "%.3f ", result.baselineMs / result.history[g].bestMs);
            }
            t.row().cell(static_cast<long long>(r))
                .cell(static_cast<long long>(params.seed))
                .cell(result.speedup(), 3).cell(traj);
        }
        t.print();
        std::printf("distribution: min %.3fx mean %.3fx max %.3fx\n",
                    stat.min(), stat.mean(), stat.max());
        panel.min = stat.min();
        panel.mean = stat.mean();
        panel.max = stat.max();
        panels.push_back(std::move(panel));
        seedBase += 400; // Distinct seed block per workload.
    }

    const std::string jsonPath = flags.getString("json", "");
    if (!jsonPath.empty())
        return writeJson(jsonPath, panels) ? 0 : 1;
    return 0;
}
