/// Regenerates paper Figure 7: the epistatic-edit relation graph for
/// GEVO-optimized ADEPT-V1 on the P100, via exhaustive subset evaluation
/// of the {e5, e6, e8, e10} cluster (plus the reverse-kernel cluster).

#include "analysis/edit_analysis.h"
#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace gevo;
    using namespace gevo::adept;
    const Flags flags(argc, argv);
    bench::banner(
        "Figure 7: epistatic subset analysis for ADEPT-V1 (P100)",
        "paper Fig. 7 / Sec V-C");

    const ScoringParams sc;
    const auto pairs = bench::adeptPairs(flags);
    const auto v1 = buildAdeptV1(sc, 64);
    const AdeptDriver driver(pairs, sc, 1, 64);
    const auto dev = sim::deviceByName(flags.getString("device", "P100"));
    AdeptFitness fitness(driver, dev);
    const auto fit = analysis::makeEditSetFitness(v1.module, fitness);

    const auto cluster = v1EpistaticCluster(v1);
    std::vector<mut::Edit> edits;
    std::vector<std::string> names;
    for (const auto& n : cluster) {
        edits.push_back(n.edit);
        names.push_back(n.name);
    }

    const auto subsets = analysis::searchSubsets(edits, fit);
    std::printf("evaluated %zu subsets of {%s, %s, %s, %s}\n\n",
                subsets.size(), names[0].c_str(), names[1].c_str(),
                names[2].c_str(), names[3].c_str());

    Table t({"subset", "status", "improvement", "paper"});
    auto subsetName = [&](std::uint32_t mask) {
        std::string s = "{";
        for (std::size_t i = 0; i < edits.size(); ++i) {
            if (mask & (1u << i)) {
                if (s.size() > 1)
                    s += ",";
                s += names[i];
            }
        }
        return s + "}";
    };
    const std::map<std::uint32_t, std::string> paperNotes = {
        {0b0001, "<1%"},        // {e6}
        {0b0010, "exec failed"}, // {e8}
        {0b0100, "exec failed"}, // {e10}
        {0b1000, "exec failed"}, // {e5}
        {0b0011, "2-6%"},       // {e6,e8}
        {0b0101, "2-6%"},       // {e6,e10}
        {0b0111, "10%"},        // {e6,e8,e10}
        {0b1111, "15%"},        // {e5,e6,e8,e10}
    };
    for (const auto& s : subsets) {
        if (s.mask == 0)
            continue;
        const auto note = paperNotes.find(s.mask);
        t.row().cell(subsetName(s.mask))
            .cell(s.valid ? "ok" : "exec failed")
            .cell(s.valid ? strformat("%.1f%%", s.improvement * 100) : "-")
            .cell(note != paperNotes.end() ? note->second : "");
    }
    t.print();

    const auto edges = analysis::dependencyGraph(edits.size(), subsets);
    std::printf("\ndependency edges (edit -> requires):\n");
    for (const auto& e : edges)
        std::printf("  %s -> %s\n", names[e.from].c_str(),
                    names[e.to].c_str());

    std::printf("\nGraphviz (Figure 7):\n%s\n",
                analysis::toDot(edits.size(), subsets, edges, names)
                    .c_str());

    // The second, smaller cluster (paper: (e0, e11) ~ 2%).
    const auto rev = v1ReverseCluster(v1);
    const auto base = fit({});
    const auto both = fit({rev[0].edit, rev[1].edit});
    std::printf("reverse-kernel cluster {e11,e0}: %.1f%% (paper ~2%%)\n",
                both.valid ? 100 * (base.ms() - both.ms()) / base.ms() : -1.0);
    return 0;
}
