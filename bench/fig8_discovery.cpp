/// Regenerates paper Figure 8: the discovery sequence of the epistatic
/// edits across generations, by recapitulating a (seeded, scaled) GEVO
/// run on ADEPT-V1 and tracing when each golden edit first appears in the
/// generation-best individual.
///
/// Paper: e6 first, e8 at generation 47, e10 at 213, e5 at 221 over 303
/// generations. The scaled default (--gens=15, --pop=20) rarely assembles
/// the full cluster — the trace reports exactly what was and wasn't
/// discovered, alongside the fitness trajectory.

#include "analysis/edit_analysis.h"
#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace gevo;
    using namespace gevo::adept;
    const Flags flags(argc, argv);
    bench::banner("Figure 8: edit discovery sequence (ADEPT-V1, P100)",
                  "paper Fig. 8");

    const ScoringParams sc;
    const auto pairs = bench::adeptPairs(flags, 4);
    const auto v1 = buildAdeptV1(sc, 64);
    const AdeptDriver driver(pairs, sc, 1, 64);
    AdeptFitness fitness(driver, sim::p100());

    core::EvolutionParams params;
    params.populationSize =
        static_cast<std::uint32_t>(flags.getInt("pop", 28));
    params.generations =
        static_cast<std::uint32_t>(flags.getInt("gens", 50));
    params.elitism = 2;
    params.seed = static_cast<std::uint64_t>(flags.getInt("seed", 2022));

    std::printf("running GEVO: pop %u, %u generations, seed %llu\n\n",
                params.populationSize, params.generations,
                static_cast<unsigned long long>(params.seed));
    core::EvolutionEngine engine(v1.module, fitness, params);
    const auto result = engine.run();

    std::printf("fitness trajectory (speedup over baseline):\n");
    for (const auto& log : result.history) {
        std::printf("  gen %3u: best %.3fx (valid %zu, evals %zu, "
                    "best has %zu edits)\n",
                    log.generation, result.baselineMs / log.bestMs,
                    log.validCount, log.evaluations,
                    log.bestEdits.size());
    }

    const auto cluster = v1EpistaticCluster(v1);
    std::vector<mut::Edit> targets;
    std::vector<std::string> names;
    for (const auto& n : cluster) {
        targets.push_back(n.edit);
        names.push_back(n.name);
    }
    for (const auto& n : v1IndependentEdits(v1)) {
        targets.push_back(n.edit);
        names.push_back(n.name);
    }
    const auto gens =
        analysis::discoveryGenerations(result.history, targets);

    std::printf("\ndiscovery of golden edits in the generation-best:\n");
    const std::map<std::string, std::string> paperGens = {
        {"e6", "first"}, {"e8", "gen 47"}, {"e10", "gen 213"},
        {"e5", "gen 221"}};
    Table t({"edit", "discovered at", "paper"});
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const auto note = paperGens.find(names[i]);
        t.row().cell(names[i])
            .cell(gens[i] ? strformat("gen %u", *gens[i])
                          : "not discovered at this budget")
            .cell(note != paperGens.end() ? note->second : "");
    }
    t.print();
    std::printf(
        "\nfinal best: %.3fx with %zu edits (golden ceiling: the full\n"
        "edit set reaches ~1.28x; see bench/fig4_adept_speedup)\n",
        result.speedup(), result.best.edits.size());
    return 0;
}
