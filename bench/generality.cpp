/// Regenerates paper Sec IV "Generality": optimizations evolved on one
/// GPU mostly transfer to the others (~99% of the gain), except for a
/// small architecture-dependent subset of ADEPT-V1 edits that cannot run
/// on the V100 at all.

#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace gevo;
    using namespace gevo::adept;
    const Flags flags(argc, argv);
    bench::banner("Sec IV Generality: cross-GPU portability of the "
                  "discovered optimizations",
                  "paper Sec IV");

    const ScoringParams sc;
    const auto pairs = bench::adeptPairs(flags);
    const auto v0 = buildAdeptV0(sc, 64);
    const auto v1 = buildAdeptV1(sc, 64);
    const AdeptDriver d0(pairs, sc, 0, 64);
    const AdeptDriver d1(pairs, sc, 1, 64);

    // "P100-evolved" edit sets applied on every device.
    std::printf("ADEPT-V0 optimization evolved on the P100, run "
                "everywhere:\n");
    Table t0({"GPU", "baseline ms", "optimized ms", "speedup",
              "gain retained"});
    const auto v0Edits = editsOf(v0GoldenEdits(v0));
    double p100Gain = 0;
    for (const auto& dev : sim::allDevices()) {
        AdeptFitness fit(d0, dev);
        const double base = bench::msOf(v0.module, {}, fit, "v0");
        const double opt = bench::msOf(v0.module, v0Edits, fit, "v0opt");
        const double gain = base / opt;
        if (dev.name == "P100")
            p100Gain = gain;
        t0.row().cell(dev.name).cell(base, 3).cell(opt, 3).cell(gain, 1)
            .cell(strformat("%.0f%% (paper: ~99%%)",
                            100.0 * gain / p100Gain));
    }
    t0.print();

    std::printf("\nADEPT-V1: the architecture-dependent edit (shuffle "
                "moved into the divergent path):\n");
    const std::vector<mut::Edit> trap = {v1PortabilityTrapEdit(v1).edit};
    Table t1({"GPU", "status", "effect"});
    for (const auto& dev : sim::allDevices()) {
        AdeptFitness fit(d1, dev);
        const auto base = core::evaluateVariant(v1.module, {}, fit);
        const auto r = core::evaluateVariant(v1.module, trap, fit);
        t1.row().cell(dev.name)
            .cell(r.valid ? "runs" : "FAILS to run")
            .cell(r.valid ? strformat("%+.2f%% runtime",
                                      100 * (r.ms() - base.ms()) / base.ms())
                          : r.failReason.substr(0, 60));
    }
    t1.print();
    std::printf("\n-> \"a small subset of the optimized code from the "
                "P100 GPU cannot run directly\n   on the V100\" (paper "
                "Sec IV): Volta's independent thread scheduling rejects\n"
                "   the stale shuffle mask that Pascal's lock-step model "
                "tolerates.\n");
    return 0;
}
