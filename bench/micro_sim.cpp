/// google-benchmark microbenchmarks for the substrates themselves:
/// simulator interpreter throughput, patch application, the optimizer
/// pipeline and the CPU alignment oracle. These guard against regressions
/// in the machinery that every experiment above depends on.

#include <benchmark/benchmark.h>

#include "apps/adept/cpu_reference.h"
#include "apps/adept/golden_edits.h"
#include "ir/parser.h"
#include "mutation/patch.h"
#include "opt/passes.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"

namespace {

using namespace gevo;

constexpr const char* kLoopKernel = R"(
kernel @loop params 1 regs 24 shared 256 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    r3 = mov 0
    br header
header:
    r4 = mul.i32 r2, 3
    r5 = add.i32 r4, r1
    r3 = add.i32 r3, r5
    r6 = mul.i32 r2, 4
    r7 = cvt.i32.i64 r6
    st.i32.shared r7, r3
    r2 = add.i32 r2, 1
    r8 = cmp.lt.i32 r2, 64
    brc r8, header, exit
exit:
    r9 = cvt.i32.i64 r1
    r10 = mul.i64 r9, 4
    r11 = add.i64 r0, r10
    st.i32.global r11, r3
    ret
}
)";

void
BM_SimulatorLaneThroughput(benchmark::State& state)
{
    auto parsed = ir::parseModule(kLoopKernel);
    const auto prog = sim::Program::decode(parsed.module.function(0));
    std::uint64_t lanes = 0;
    for (auto _ : state) {
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(256 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, prog, {4, 64},
            {static_cast<std::uint64_t>(out)});
        benchmark::DoNotOptimize(res.stats.cycles);
        lanes += res.stats.laneInstrs;
    }
    state.counters["lane_instrs_per_s"] = benchmark::Counter(
        static_cast<double>(lanes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorLaneThroughput);

// Per-lane divergent accumulation: the trace interpreter's span machinery
// helps, scalarization mostly cannot (lane-dependent operands).
constexpr const char* kDivergentKernel = R"(
kernel @divg params 1 regs 24 shared 0 local 0 {
entry:
    r1 = tid
    r2 = rem.i32 r1, 7
    r3 = mov 0
    r4 = mov 0
    br header
header:
    r4 = add.i32 r4, r1
    r5 = mul.i32 r4, 3
    r3 = add.i32 r3, 1
    r6 = cmp.le.i32 r3, r2
    brc r6, header, exit
exit:
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r5
    ret
}
)";

/// Shared body of the trace-vs-reference comparisons (arg 0 = trace,
/// 1 = reference); saves and restores the ambient interpreter mode so a
/// GEVO_SIM_REFPATH run keeps its selection for later benchmarks.
void
runInterpComparison(benchmark::State& state, const char* kernelText)
{
    const sim::InterpMode previous = sim::interpreterMode();
    sim::setInterpreterMode(state.range(0) != 0
                                ? sim::InterpMode::Reference
                                : sim::InterpMode::Trace);
    auto parsed = ir::parseModule(kernelText);
    const auto prog = sim::Program::decode(parsed.module.function(0));
    std::uint64_t lanes = 0;
    for (auto _ : state) {
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(256 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, prog, {4, 64},
            {static_cast<std::uint64_t>(out)});
        benchmark::DoNotOptimize(res.stats.cycles);
        lanes += res.stats.laneInstrs;
    }
    sim::setInterpreterMode(previous);
    state.counters["lane_instrs_per_s"] = benchmark::Counter(
        static_cast<double>(lanes), benchmark::Counter::kIsRate);
}

/// The headline number for the span + warp-uniform-scalarization rework.
void
BM_SimulatorInterpUniformLoop(benchmark::State& state)
{
    runInterpComparison(state, kLoopKernel);
}
BENCHMARK(BM_SimulatorInterpUniformLoop)->Arg(0)->Arg(1);

/// The fast path's worst case (partial masks defeat most scalarization).
void
BM_SimulatorInterpDivergent(benchmark::State& state)
{
    runInterpComparison(state, kDivergentKernel);
}
BENCHMARK(BM_SimulatorInterpDivergent)->Arg(0)->Arg(1);

/// Sparse-mask divergence: only the first N lanes of each warp run a
/// long per-lane loop (lane-dependent operands defeat scalarization), so
/// the span mask stays at popcount N for the whole hot region. Sweeping
/// N = 1/3/8/32 against dense packing on/off (args {N, dense}) shows
/// exactly what the active-lane gather buys at each sparsity, with the
/// full-mask N=32 row as the no-regression control.
void
BM_SimulatorInterpSparseMask(benchmark::State& state)
{
    const sim::InterpMode prevMode = sim::interpreterMode();
    const bool prevDense = sim::denseLaneMode();
    sim::setInterpreterMode(sim::InterpMode::Trace);
    sim::setDenseLaneMode(state.range(1) != 0);

    char text[640];
    std::snprintf(text, sizeof(text), R"(
kernel @sparse params 1 regs 24 shared 0 local 0 {
entry:
    r1 = tid
    r2 = rem.i32 r1, 32
    r3 = cmp.lt.i32 r2, %lld
    r4 = mov 0
    r5 = mov 0
    brc r3, header, exit
header:
    r5 = add.i32 r5, r1
    r6 = mul.i32 r5, 3
    r7 = add.i32 r6, r2
    r4 = add.i32 r4, 1
    r8 = cmp.lt.i32 r4, 64
    brc r8, header, exit
exit:
    r9 = cvt.i32.i64 r1
    r10 = mul.i64 r9, 4
    r11 = add.i64 r0, r10
    st.i32.global r11, r7
    ret
}
)",
                  static_cast<long long>(state.range(0)));

    auto parsed = ir::parseModule(text);
    const auto prog = sim::Program::decode(parsed.module.function(0));
    std::uint64_t lanes = 0;
    for (auto _ : state) {
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(256 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, prog, {4, 64},
            {static_cast<std::uint64_t>(out)});
        benchmark::DoNotOptimize(res.stats.cycles);
        lanes += res.stats.laneInstrs;
    }
    sim::setDenseLaneMode(prevDense);
    sim::setInterpreterMode(prevMode);
    state.counters["lane_instrs_per_s"] = benchmark::Counter(
        static_cast<double>(lanes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorInterpSparseMask)
    ->ArgNames({"active", "dense"})
    ->Args({1, 1})->Args({1, 0})
    ->Args({3, 1})->Args({3, 0})
    ->Args({8, 1})->Args({8, 0})
    ->Args({32, 1})->Args({32, 0});

void
BM_PatchApplication(benchmark::State& state)
{
    const auto built = adept::buildAdeptV1(adept::ScoringParams{}, 64);
    const auto edits = adept::editsOf(adept::v1AllGoldenEdits(built));
    for (auto _ : state) {
        auto variant = mut::applyPatch(built.module, edits);
        benchmark::DoNotOptimize(variant.instrCount());
    }
}
BENCHMARK(BM_PatchApplication);

void
BM_CleanupPipeline(benchmark::State& state)
{
    const auto built = adept::buildAdeptV1(adept::ScoringParams{}, 64);
    const auto edits = adept::editsOf(adept::v1AllGoldenEdits(built));
    for (auto _ : state) {
        auto variant = mut::applyPatch(built.module, edits);
        opt::runCleanupPipeline(variant);
        benchmark::DoNotOptimize(variant.instrCount());
    }
}
BENCHMARK(BM_CleanupPipeline);

void
BM_CpuAlignmentOracle(benchmark::State& state)
{
    adept::SequenceSetConfig cfg;
    cfg.numPairs = 8;
    cfg.seed = 5;
    const auto pairs = adept::generatePairs(cfg);
    for (auto _ : state) {
        const auto results =
            adept::alignAllCpu(pairs, adept::ScoringParams{}, true);
        benchmark::DoNotOptimize(results.size());
    }
}
BENCHMARK(BM_CpuAlignmentOracle);

} // namespace

BENCHMARK_MAIN();
