/// Regenerates the paper's Sec V-A/V-B edit-set analysis: Algorithm 1
/// (weak-edit minimization: 1394 -> 17 on ADEPT-V1 with 28.9% -> 28%)
/// and Algorithm 2 (17 -> 5 independent + 12 epistatic, 7% + 17%).
///
/// The evolved individual is emulated as the golden edit set diluted with
/// neutral noise edits (as GEVO's patch lists accumulate in reality).

#include "analysis/edit_analysis.h"
#include "bench_util.h"
#include "mutation/patch.h"
#include "mutation/sampler.h"

int
main(int argc, char** argv)
{
    using namespace gevo;
    using namespace gevo::adept;
    const Flags flags(argc, argv);
    bench::banner("Algorithms 1 & 2: edit minimization and epistasis "
                  "separation (ADEPT-V1, P100)",
                  "paper Sec V-A/V-B");

    const ScoringParams sc;
    const auto pairs = bench::adeptPairs(flags);
    const auto v1 = buildAdeptV1(sc, 64);
    const AdeptDriver driver(pairs, sc, 1, 64);
    AdeptFitness fitness(driver, sim::p100());
    const auto fit = analysis::makeEditSetFitness(v1.module, fitness);

    // Build the "evolved individual": golden edits + neutral noise.
    auto golden = v1AllGoldenEdits(v1);
    std::vector<mut::Edit> individual = editsOf(golden);
    const auto noiseCount = flags.getInt("noise", 60);
    Rng rng(static_cast<std::uint64_t>(flags.getInt("seed", 99)));
    const auto baseline = fit({});
    int added = 0;
    int attempts = 0;
    while (added < noiseCount && attempts < noiseCount * 40) {
        ++attempts;
        const ir::Module patched = mut::applyPatch(v1.module, individual);
        const auto edit = mut::sampleEdit(patched, rng);
        if (!edit)
            continue;
        auto trial = individual;
        trial.push_back(*edit);
        const auto r = fit(trial);
        // Keep only neutral-ish survivors, like drift would.
        if (r.valid && r.ms() <= fit(individual).ms() * 1.01) {
            individual = std::move(trial);
            ++added;
        }
    }
    std::printf("evolved individual: %zu edits (%zu golden + %d noise); "
                "paper's best ADEPT-V1 variant carried 1394 edits\n",
                individual.size(), golden.size(), added);
    const auto full = fit(individual);
    std::printf("full-set improvement: %.1f%% (paper: 28.9%%)\n\n",
                100 * (baseline.ms() - full.ms()) / baseline.ms());

    // ---- Algorithm 1 ----
    const auto minimized = analysis::minimizeEdits(individual, fit, 0.01);
    std::printf("Algorithm 1 (1%% threshold): %zu -> %zu edits "
                "(paper: 1394 -> 17)\n",
                individual.size(), minimized.kept.size());
    std::printf("kept-set improvement: %.1f%% (paper: 28%% after "
                "minimization)\n\n",
                100 * (baseline.ms() - minimized.keptMs) / baseline.ms());

    // ---- Algorithm 2 ----
    const auto split = analysis::separateEpistasis(minimized.kept, fit);
    std::printf("Algorithm 2: %zu independent + %zu epistatic "
                "(paper: 5 + 12)\n",
                split.independent.size(), split.epistatic.size());
    std::printf("independent set contributes %.1f%% (paper: 7%%)\n",
                100 * (split.baselineMs - split.independentMs) /
                    split.baselineMs);
    std::printf("epistatic set contributes %.1f%% (paper: 17%%)\n",
                100 * (split.baselineMs - split.epistaticMs) /
                    split.baselineMs);

    // Name the survivors for the record.
    std::printf("\nkept golden edits:\n");
    for (const auto& named : golden) {
        for (const auto& kept : minimized.kept) {
            if (kept == named.edit)
                std::printf("  %-16s %s\n", named.name.c_str(),
                            named.edit.toString().c_str());
        }
    }
    return 0;
}
