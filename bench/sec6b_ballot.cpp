/// Regenerates paper Sec VI-B: removing the redundant warp-level
/// synchronization (ballot_sync) buys ~4% on the V100 but nothing on the
/// P100, because only Volta's independent thread scheduling makes
/// ballot_sync a real resynchronization.

#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace gevo;
    using namespace gevo::adept;
    const Flags flags(argc, argv);
    bench::banner("Sec VI-B: warp-level synchronization removal",
                  "paper Sec VI-B");

    const ScoringParams sc;
    const auto pairs = bench::adeptPairs(flags);
    const auto v1 = buildAdeptV1(sc, 64);
    const AdeptDriver driver(pairs, sc, 1, 64);
    const auto indep = v1IndependentEdits(v1);
    GEVO_ASSERT(indep[0].name == "ballot", "edit table changed");
    const std::vector<mut::Edit> ballotOnly = {indep[0].edit};

    Table t({"GPU", "baseline ms", "ballot removed ms", "gain", "paper"});
    for (const auto& dev : sim::allDevices()) {
        AdeptFitness fitness(driver, dev);
        const double base =
            bench::msOf(v1.module, {}, fitness, "baseline");
        const double removed =
            bench::msOf(v1.module, ballotOnly, fitness, "ballot");
        const char* paper = dev.family == sim::ArchFamily::Volta
                                ? "~4%"
                                : "~0% (no effect)";
        t.row().cell(dev.name).cell(base, 3).cell(removed, 3)
            .cell(strformat("%.1f%%", 100 * (base - removed) / base))
            .cell(paper);
    }
    t.print();
    std::printf("\nThe edit reroutes the first shuffle's mask to the "
                "activemask result,\nmaking the ballot_sync dead "
                "(removed by codegen). It violates the CUDA\nprogramming "
                "guide yet passes all tests — exactly the paper's "
                "observation.\n");
    return 0;
}
