/// Regenerates paper Sec VI-C: the ADEPT-V0 shared-memory
/// re-initialization bottleneck — every thread re-zeroes the same region
/// on every diagonal, with a companion barrier. Removing the region is
/// worth >30x.

#include "bench_util.h"
#include "mutation/patch.h"
#include "opt/passes.h"

int
main(int argc, char** argv)
{
    using namespace gevo;
    using namespace gevo::adept;
    const Flags flags(argc, argv);
    bench::banner("Sec VI-C: redundant shared-memory initialization "
                  "(ADEPT-V0)",
                  "paper Sec VI-C");

    const ScoringParams sc;
    const auto pairs = bench::adeptPairs(flags);
    const auto v0 = buildAdeptV0(sc, 64);
    const AdeptDriver driver(pairs, sc, 0, 64);

    // Profile the baseline: how much of the kernel sits in the memset?
    {
        const auto out = driver.run(v0.module, sim::p100(), true);
        GEVO_ASSERT(out.ok(), "baseline must run");
        std::uint64_t memset = 0;
        std::uint64_t total = 0;
        // Slot 0 is no-loc code; the share is over located instructions.
        for (std::uint32_t loc = 1; loc < out.fwdStats.locIssues.size();
             ++loc) {
            const auto n = out.fwdStats.locIssues[loc];
            total += n;
            const auto& name = v0.module.locString(loc);
            if (name.find("memset") != std::string::npos)
                memset += n;
        }
        std::printf("dynamic warp instructions in the re-init loop: "
                    "%.1f%% of the kernel\n\n",
                    100.0 * static_cast<double>(memset) /
                        static_cast<double>(total));
    }

    Table t({"GPU", "V0 ms", "re-init removed ms", "speedup", "paper"});
    for (const auto& dev : sim::allDevices()) {
        AdeptFitness fitness(driver, dev);
        const double base = bench::msOf(v0.module, {}, fitness, "V0");
        // Just the two Sec VI-C edits (loop kill + barrier delete).
        const auto golden = v0GoldenEdits(v0);
        const std::vector<mut::Edit> memsetOnly = {golden[0].edit,
                                                   golden[1].edit};
        const double removed =
            bench::msOf(v0.module, memsetOnly, fitness, "memset removal");
        t.row().cell(dev.name).cell(base, 3).cell(removed, 3)
            .cell(base / removed, 1).cell(">30x");
    }
    t.print();
    std::printf("\nRemoval is safe: the buffers are fully rewritten "
                "before every read\n(the expert removed the same region "
                "in ADEPT-V1 — paper Sec VI-C).\n");
    return 0;
}
