/// Regenerates paper Sec VI-D / Figure 10: SIMCoV grid-boundary checks.
///  (1) dynamic instruction share of the boundary logic (paper: 31%),
///  (2) ~20% improvement from removing the checks,
///  (3) the removal passes the small fitness grid but faults on the
///      held-out large grid (Fig 10(b)),
///  (4) zero-padding the grid keeps the win safely (+14%, Fig 10(c)).

#include "bench_util.h"
#include "mutation/patch.h"
#include "opt/passes.h"

int
main(int argc, char** argv)
{
    using namespace gevo;
    using namespace gevo::simcov;
    const Flags flags(argc, argv);
    bench::banner("Sec VI-D: boundary-check removal and grid padding",
                  "paper Sec VI-D / Fig 10");

    const auto cfg = bench::simcovConfig(flags);
    const auto built = buildSimcov(cfg);
    const SimcovDriver driver(cfg);
    const auto dev = sim::deviceByName(flags.getString("device", "P100"));

    // (1) instruction share of boundary logic.
    {
        const auto out = driver.run(built.module, dev, true);
        GEVO_ASSERT(out.ok(), "baseline must run");
        std::uint64_t boundary = 0;
        std::uint64_t diffusion = 0;
        std::uint64_t total = 0;
        // Slot 0 is no-loc code; the share is over located instructions.
        for (std::uint32_t loc = 1; loc < out.aggregate.locIssues.size();
             ++loc) {
            const auto n = out.aggregate.locIssues[loc];
            const auto& name = built.module.locString(loc);
            total += n;
            if (name.find("boundary") != std::string::npos)
                boundary += n;
            if (name.find("vdiff") != std::string::npos ||
                name.find("cdiff") != std::string::npos ||
                name.find("boundary") != std::string::npos)
                diffusion += n;
        }
        std::printf("boundary-comparison logic: %.1f%% of all kernel "
                    "instructions, %.1f%% of the diffusion kernels "
                    "(paper: 31%% of the modified kernel)\n\n",
                    100.0 * static_cast<double>(boundary) /
                        static_cast<double>(total),
                    100.0 * static_cast<double>(boundary) /
                        static_cast<double>(diffusion));
    }

    // (2) removal speedup + (4) padding, across devices.
    const auto paddedBuilt = buildSimcov(cfg, true);
    const SimcovDriver paddedDriver(cfg, true);
    Table t({"GPU", "baseline ms", "checks removed", "padded grid",
             "paper"});
    for (const auto& d : sim::allDevices()) {
        SimcovFitness fitness(driver, d);
        const double base =
            bench::msOf(built.module, {}, fitness, "baseline");
        const double removed =
            bench::msOf(built.module, editsOf(boundaryCheckEdits(built)),
                        fitness, "boundary removal");
        const auto paddedOut = paddedDriver.run(paddedBuilt.module, d);
        GEVO_ASSERT(paddedOut.ok(), "padded run failed");
        t.row().cell(d.name).cell(base, 3)
            .cell(strformat("%.1f%% faster", 100 * (base - removed) / base))
            .cell(strformat("%.1f%% faster",
                            100 * (base - paddedOut.totalMs) / base))
            .cell("removal ~20%, padding ~14%");
    }
    t.print();

    // (3) the held-out large grid (paper's 2500x2500, scaled; the arena
    // is sized to the problem as a production-scale grid would be).
    SimcovConfig big = cfg;
    big.gridW = static_cast<std::int32_t>(flags.getInt("big-grid", 96));
    big.steps = 2;
    const auto bigBuilt = buildSimcov(big);
    const SimcovDriver bigDriver(big, false, /*tightArena=*/true);
    const auto baseBig = bigDriver.run(bigBuilt.module, dev);
    auto variant = mut::applyPatch(bigBuilt.module,
                                   editsOf(boundaryCheckEdits(bigBuilt)));
    opt::runCleanupPipeline(variant);
    const auto removedBig = bigDriver.run(variant, dev);

    std::printf("\nheld-out validation, %dx%d grid (paper: 2500x2500):\n",
                big.gridW, big.gridW);
    std::printf("  baseline:        %s\n",
                baseBig.ok() ? "passes" : baseBig.fault.detail.c_str());
    std::printf("  checks removed:  %s  <- Fig 10(b)\n",
                removedBig.ok() ? "passes (unexpected!)"
                                : removedBig.fault.detail.c_str());
    const auto bigPadded = buildSimcov(big, true);
    const SimcovDriver bigPaddedDriver(big, true, true);
    const auto paddedBig = bigPaddedDriver.run(bigPadded.module, dev);
    std::printf("  padded grid:     %s  <- Fig 10(c)\n",
                paddedBig.ok() ? "passes" : paddedBig.fault.detail.c_str());
    return 0;
}
