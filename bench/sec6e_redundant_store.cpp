/// Regenerates paper Sec VI-E: the "mysterious" edit — a duplicated store
/// to memory no one reads that nonetheless improves runtime by ~1%.
///
/// Our simulator gives the mechanistic account the paper suspected:
/// at low occupancy the extra independent instruction fills a load-use
/// scoreboard stall, hiding latency that dependent code would otherwise
/// eat. The demo kernel reads a value from global memory and uses it
/// immediately; inserting a redundant store between load and use makes
/// the kernel FASTER in the latency-bound (single resident block) regime.

#include "bench_util.h"
#include "ir/parser.h"
#include "sim/device_memory.h"
#include "sim/program.h"

int
main(int argc, char** argv)
{
    using namespace gevo;
    (void)argc;
    (void)argv;
    bench::banner("Sec VI-E: the redundant store that helps",
                  "paper Sec VI-E");

    constexpr const char* kTight = R"(
kernel @tight params 2 regs 24 shared 0 local 0 {
entry:
    r2 = tid
    r3 = cvt.i32.i64 r2
    r4 = mul.i64 r3, 4
    r5 = add.i64 r0, r4
    r8 = mov 0
    br loop
loop:
    r6 = ld.i32.global r5
    r7 = add.i32 r6, 1
    st.i32.global r5, r7
    r8 = add.i32 r8, 1
    r9 = cmp.lt.i32 r8, 200
    brc r9, loop, done
done:
    ret
}
)";
    constexpr const char* kWithRedundantStore = R"(
kernel @redundant params 2 regs 24 shared 0 local 0 {
entry:
    r2 = tid
    r3 = cvt.i32.i64 r2
    r4 = mul.i64 r3, 4
    r5 = add.i64 r0, r4
    r10 = add.i64 r1, r4
    r8 = mov 0
    br loop
loop:
    r6 = ld.i32.global r5
    st.i32.global r10, r8     ; the duplicated write: region never read
    r7 = add.i32 r6, 1
    st.i32.global r5, r7
    r8 = add.i32 r8, 1
    r9 = cmp.lt.i32 r8, 200
    brc r9, loop, done
done:
    ret
}
)";
    auto run = [&](const char* text) {
        auto parsed = ir::parseModule(text);
        GEVO_ASSERT(parsed.ok, "parse failed: %s", parsed.error.c_str());
        sim::DeviceMemory mem(1 << 20);
        const auto data = mem.alloc(64 * 4);
        const auto unused = mem.alloc(64 * 4);
        const auto prog = sim::Program::decode(parsed.module.function(0));
        // Low occupancy: one block, no oversubscription -> latency-bound.
        const auto res = sim::launchKernel(
            sim::p100(), mem, prog, {1, 32},
            {static_cast<std::uint64_t>(data),
             static_cast<std::uint64_t>(unused)});
        GEVO_ASSERT(res.ok(), "%s", res.fault.detail.c_str());
        return res.stats;
    };

    const auto tight = run(kTight);
    const auto redundant = run(kWithRedundantStore);
    Table t({"kernel", "warp instrs", "cycles", "ms"});
    t.row().cell("load-use (tight)")
        .cell(static_cast<long long>(tight.warpInstrs))
        .cell(static_cast<long long>(tight.cycles)).cell(tight.ms, 6);
    t.row().cell("with redundant store")
        .cell(static_cast<long long>(redundant.warpInstrs))
        .cell(static_cast<long long>(redundant.cycles))
        .cell(redundant.ms, 6);
    t.print();
    std::printf(
        "\nredundant-store kernel executes %lld MORE instructions at "
        "%+.2f%% runtime cost:\nthe load-use stall absorbs the store "
        "entirely. This is the mechanistic half of the\npaper's Sec VI-E "
        "mystery — the extra write is free under latency hiding; the\n"
        "further +1%% the paper measured sits below our model's "
        "abstraction (DRAM\nscheduling), see EXPERIMENTS.md.\n",
        static_cast<long long>(redundant.warpInstrs - tight.warpInstrs),
        100.0 * (redundant.ms - tight.ms) / tight.ms);
    return 0;
}
