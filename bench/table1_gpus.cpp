/// Regenerates paper Table I: architectural characteristics of the GPUs.

#include "bench_util.h"
#include "sim/device_config.h"

int
main(int argc, char** argv)
{
    (void)argc;
    (void)argv;
    using namespace gevo;
    bench::banner("Table I: GPU architectural characteristics",
                  "paper Table I");
    Table t({"GPU", "Architecture Family", "CUDA cores", "Core Frequency",
             "Memory Size"});
    for (const auto& dev : sim::allDevices()) {
        t.row()
            .cell(dev.name)
            .cell(dev.family == sim::ArchFamily::Pascal ? "Pascal"
                                                        : "Volta")
            .cell(static_cast<long long>(dev.cudaCores()))
            .cell(std::to_string(dev.clockMhz) + " Mhz")
            .cell(std::to_string(dev.memoryGb) + "GB " + dev.memoryKind);
    }
    t.print();
    return 0;
}
