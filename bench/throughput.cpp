/// Evaluation-pipeline throughput: the perf-trajectory anchor.
///
/// The search loop's cost is fitness evaluation — population 256 x 300
/// generations is ~77k variant evaluations per full-scale run — so
/// variants/sec is the metric every future optimization PR moves. This
/// bench iterates the workload registry (default: the gate set adept-v0 +
/// simcov; --workloads widens it) and runs each workload's bench-scale
/// seeded mini-search twice:
///
///   uncached — the literal compile-per-call reference path: every
///              individual is patched, cleaned, verified, decoded and
///              simulated every generation, with no memo of any kind
///              (strictly less caching than even the seed engine's
///              per-individual evaluated flag), and
///   cached   — the two-stage pipeline with the per-individual memo and
///              the two-level content-addressed variant cache
///              (within-generation dedup + cross-generation reuse).
///
/// It reports variants/sec for both modes, the cache hit rate, and
/// verifies that both modes discover the identical best edit list (the
/// cache must be trajectory-neutral).

#include <chrono>
#include <cstdio>

#include "apps/registry.h"
#include "bench_util.h"
#include "core/workload.h"
#include "mutation/edit.h"

namespace {

using namespace gevo;

/// One mode's measurements.
struct RunStats {
    double seconds = 0.0;
    std::size_t requests = 0;    ///< Individuals scored (pop x gens).
    std::size_t simulations = 0; ///< Requests that cost pipeline work.
    double speedup = 0.0;        ///< Search result (baseline / best).
    std::string bestEdits;       ///< Serialized best edit list.

    double
    variantsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(requests) / seconds
                             : 0.0;
    }
};

RunStats
runSearch(const core::WorkloadInstance& instance,
          core::EvolutionParams params, bool useCache)
{
    params.useCache = useCache;
    core::EvolutionEngine engine(instance.module(), instance.fitness(),
                                 params);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = engine.run();
    const auto t1 = std::chrono::steady_clock::now();

    RunStats s;
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    // Every individual needs a fitness every generation; the pipeline
    // either simulates it or serves it from a memo/cache level.
    s.requests = static_cast<std::size_t>(params.populationSize) *
                 params.generations * params.islands;
    for (const auto& log : result.history)
        s.simulations += log.cacheMisses;
    s.speedup = result.speedup();
    s.bestEdits = mut::serializeEdits(result.best.edits);
    return s;
}

/// Run both modes on one workload and emit a table section. Returns the
/// cached-over-uncached variants/sec ratio (0 when the best edit lists
/// disagree, which would invalidate the comparison).
double
benchWorkload(const core::Workload& workload, const Flags& flags)
{
    core::WorkloadConfig config;
    config.flags = &flags;
    config.defaults = workload.benchKnobs;
    const auto instance = workload.make(config);

    core::EvolutionParams params = workload.benchDefaults;
    params.populationSize = static_cast<std::uint32_t>(
        flags.getInt("pop", params.populationSize));
    params.generations = static_cast<std::uint32_t>(
        flags.getInt("gens", params.generations));
    params.seed = static_cast<std::uint64_t>(
        flags.getInt("seed", static_cast<std::int64_t>(params.seed)));
    params.threads =
        static_cast<std::uint32_t>(flags.getInt("threads", params.threads));
    params.islands =
        static_cast<std::uint32_t>(flags.getInt("islands", params.islands));

    const RunStats uncached = runSearch(*instance, params, false);
    const RunStats cached = runSearch(*instance, params, true);

    const double hitRate =
        cached.requests
            ? static_cast<double>(cached.requests - cached.simulations) /
                  static_cast<double>(cached.requests)
            : 0.0;
    const double ratio = cached.seconds > 0.0
                             ? cached.variantsPerSec() /
                                   uncached.variantsPerSec()
                             : 0.0;

    Table t({"workload", "mode", "variants", "evaluated", "wall s",
             "variants/s", "hit rate", "ratio"});
    t.row().cell(workload.name).cell("compile-per-call")
        .cell(static_cast<long long>(uncached.requests))
        .cell(static_cast<long long>(uncached.simulations))
        .cell(uncached.seconds, 2).cell(uncached.variantsPerSec(), 1)
        .cell("-").cell(1.0, 2);
    t.row().cell(workload.name).cell("two-stage+cache")
        .cell(static_cast<long long>(cached.requests))
        .cell(static_cast<long long>(cached.simulations))
        .cell(cached.seconds, 2).cell(cached.variantsPerSec(), 1)
        .cell(hitRate, 2).cell(ratio, 2);
    t.print();

    const bool sameBest = uncached.bestEdits == cached.bestEdits;
    std::printf("best edit list identical across modes: %s "
                "(search speedup %.2fx vs %.2fx)\n\n",
                sameBest ? "yes" : "NO — CACHE CHANGED THE TRAJECTORY",
                uncached.speedup, cached.speedup);
    return sameBest ? ratio : 0.0;
}

} // namespace

int
main(int argc, char** argv)
{
    apps::registerBuiltinWorkloads();
    auto& registry = core::WorkloadRegistry::instance();
    const Flags flags(argc, argv);
    bench::banner("Evaluation-pipeline throughput (variants/sec, cache "
                  "hit rate)",
                  "the GEVO fitness-caching recipe, Liou et al. TACO 2020");

    // Default set pins the ROADMAP perf-anchor configurations; the gate
    // is keyed on adept-v0.
    const auto names = bench::workloadList(
        flags, registry, "adept-v0,simcov");

    bool gateRan = false;
    double adeptRatio = 0.0;
    double otherMin = -1.0;
    for (const auto& name : names) {
        const double ratio = benchWorkload(registry.get(name), flags);
        if (name == "adept-v0") {
            gateRan = true;
            adeptRatio = ratio;
        } else if (otherMin < 0.0 || ratio < otherMin) {
            otherMin = ratio;
        }
    }

    if (!gateRan) {
        // A narrowed --workloads list without adept-v0 is a valid probe
        // run; only the gate configuration can pass/fail the gate.
        std::printf("acceptance gate (adept-v0 >= 3x): not run (adept-v0 "
                    "not in --workloads; min measured ratio %.2fx)\n",
                    otherMin < 0.0 ? 0.0 : otherMin);
        return 0;
    }
    std::printf("acceptance gate (adept-v0 >= 3x): %s (%.2fx; others min "
                "%.2fx)\n",
                adeptRatio >= 3.0 ? "PASS" : "FAIL", adeptRatio,
                otherMin < 0.0 ? 0.0 : otherMin);
    return adeptRatio >= 3.0 ? 0 : 1;
}
