/// Evaluation-pipeline throughput: the perf-trajectory anchor.
///
/// The search loop's cost is fitness evaluation — population 256 x 300
/// generations is ~77k variant evaluations per full-scale run — so
/// variants/sec is the metric every future optimization PR moves. This
/// bench runs the same seeded mini-search twice on each app:
///
///   uncached — the literal compile-per-call reference path: every
///              individual is patched, cleaned, verified, decoded and
///              simulated every generation, with no memo of any kind
///              (strictly less caching than even the seed engine's
///              per-individual evaluated flag), and
///   cached   — the two-stage pipeline with the per-individual memo and
///              the two-level content-addressed variant cache
///              (within-generation dedup + cross-generation reuse).
///
/// It reports variants/sec for both modes, the cache hit rate, and
/// verifies that both modes discover the identical best edit list (the
/// cache must be trajectory-neutral).

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "mutation/edit.h"

namespace {

using namespace gevo;

/// One mode's measurements.
struct RunStats {
    double seconds = 0.0;
    std::size_t requests = 0;    ///< Individuals scored (pop x gens).
    std::size_t simulations = 0; ///< Requests that cost pipeline work.
    double speedup = 0.0;        ///< Search result (baseline / best).
    std::string bestEdits;       ///< Serialized best edit list.

    double
    variantsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(requests) / seconds
                             : 0.0;
    }
};

RunStats
runSearch(const ir::Module& base, const core::FitnessFunction& fitness,
          core::EvolutionParams params, bool useCache)
{
    params.useCache = useCache;
    core::EvolutionEngine engine(base, fitness, params);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = engine.run();
    const auto t1 = std::chrono::steady_clock::now();

    RunStats s;
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    // Every individual needs a fitness every generation; the pipeline
    // either simulates it or serves it from a memo/cache level.
    s.requests = static_cast<std::size_t>(params.populationSize) *
                 params.generations;
    for (const auto& log : result.history)
        s.simulations += log.cacheMisses;
    s.speedup = result.speedup();
    s.bestEdits = mut::serializeEdits(result.best.edits);
    return s;
}

/// Run both modes on one app and emit a table section. Returns the
/// cached-over-uncached variants/sec ratio (0 when the best edit lists
/// disagree, which would invalidate the comparison).
double
benchApp(const char* app, const ir::Module& base,
         const core::FitnessFunction& fitness,
         const core::EvolutionParams& params)
{
    const RunStats uncached = runSearch(base, fitness, params, false);
    const RunStats cached = runSearch(base, fitness, params, true);

    const double hitRate =
        cached.requests
            ? static_cast<double>(cached.requests - cached.simulations) /
                  static_cast<double>(cached.requests)
            : 0.0;
    const double ratio = cached.seconds > 0.0
                             ? cached.variantsPerSec() /
                                   uncached.variantsPerSec()
                             : 0.0;

    Table t({"app", "mode", "variants", "evaluated", "wall s",
             "variants/s", "hit rate", "ratio"});
    t.row().cell(app).cell("compile-per-call")
        .cell(static_cast<long long>(uncached.requests))
        .cell(static_cast<long long>(uncached.simulations))
        .cell(uncached.seconds, 2).cell(uncached.variantsPerSec(), 1)
        .cell("-").cell(1.0, 2);
    t.row().cell(app).cell("two-stage+cache")
        .cell(static_cast<long long>(cached.requests))
        .cell(static_cast<long long>(cached.simulations))
        .cell(cached.seconds, 2).cell(cached.variantsPerSec(), 1)
        .cell(hitRate, 2).cell(ratio, 2);
    t.print();

    const bool sameBest = uncached.bestEdits == cached.bestEdits;
    std::printf("best edit list identical across modes: %s "
                "(search speedup %.2fx vs %.2fx)\n\n",
                sameBest ? "yes" : "NO — CACHE CHANGED THE TRAJECTORY",
                uncached.speedup, cached.speedup);
    return sameBest ? ratio : 0.0;
}

} // namespace

int
main(int argc, char** argv)
{
    const Flags flags(argc, argv);
    bench::banner("Evaluation-pipeline throughput (variants/sec, cache "
                  "hit rate)",
                  "the GEVO fitness-caching recipe, Liou et al. TACO 2020");

    // ---- ADEPT-V0 mini-search (the acceptance-gate configuration) ----
    const adept::ScoringParams scoring;
    const auto adeptPairs = bench::adeptPairs(flags, 4);
    const auto v0 = adept::buildAdeptV0(scoring, 64);
    const adept::AdeptDriver adeptDriver(adeptPairs, scoring, 0, 64);
    const adept::AdeptFitness adeptFitness(adeptDriver, sim::p100());

    core::EvolutionParams params;
    params.populationSize =
        static_cast<std::uint32_t>(flags.getInt("pop", 12));
    params.generations =
        static_cast<std::uint32_t>(flags.getInt("gens", 20));
    params.elitism = 2;
    params.seed = static_cast<std::uint64_t>(flags.getInt("seed", 3));
    params.threads =
        static_cast<std::uint32_t>(flags.getInt("threads", 0));

    const double adeptRatio =
        benchApp("adept-v0", v0.module, adeptFitness, params);

    // ---- SIMCoV mini-search ----
    simcov::SimcovConfig cfg;
    cfg.gridW = static_cast<std::int32_t>(flags.getInt("grid", 16));
    cfg.steps = static_cast<std::int32_t>(flags.getInt("steps", 6));
    const auto sc = simcov::buildSimcov(cfg);
    const simcov::SimcovDriver simcovDriver(cfg);
    const simcov::SimcovFitness simcovFitness(simcovDriver, sim::p100());

    core::EvolutionParams scParams = params;
    scParams.populationSize =
        static_cast<std::uint32_t>(flags.getInt("sc-pop", 12));
    scParams.generations =
        static_cast<std::uint32_t>(flags.getInt("sc-gens", 8));

    const double simcovRatio =
        benchApp("simcov", sc.module, simcovFitness, scParams);

    std::printf("acceptance gate (adept >= 3x): %s (%.2fx; simcov %.2fx)\n",
                adeptRatio >= 3.0 ? "PASS" : "FAIL", adeptRatio,
                simcovRatio);
    return adeptRatio >= 3.0 ? 0 : 1;
}
