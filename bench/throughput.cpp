/// Evaluation-pipeline throughput: the perf-trajectory anchor.
///
/// The search loop's cost is fitness evaluation — population 256 x 300
/// generations is ~77k variant evaluations per full-scale run — so
/// variants/sec is the metric every future optimization PR moves. This
/// bench iterates the workload registry (default: every registered
/// workload; --workloads narrows it) and runs each workload's bench-scale
/// seeded mini-search twice:
///
///   uncached — the literal compile-per-call reference path: every
///              individual is patched, cleaned, verified, decoded and
///              simulated every generation, with no memo of any kind
///              (strictly less caching than even the seed engine's
///              per-individual evaluated flag), and
///   cached   — the two-stage pipeline with the per-individual memo and
///              the two-level content-addressed variant cache
///              (within-generation dedup + cross-generation reuse).
///
/// It reports variants/sec for both modes, the cache hit rate, and
/// verifies that both modes discover the identical best edit list (the
/// cache must be trajectory-neutral).
///
/// With `--json=<path>` the same measurements are additionally written as
/// a machine-readable JSON artifact (per-workload uncached/cached and,
/// with --cache-path, cold/warm variants/sec, hit rates, trajectory
/// checks, and the gate verdict) so CI tracks the perf trajectory as a
/// build artifact instead of prose.
///
/// With `--cache-path=<dir>` the bench also measures warm starts
/// (core/cache_store.h): a third run persists its caches to
/// <dir>/<workload>.gevocache from a cold start, and a fourth loads them
/// back, reporting cold vs warm variants/sec and hit rate. The warm run
/// must preload entries, beat the cold hit rate, and land on the
/// identical best edit list — persistence has to be trajectory-neutral
/// too.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "apps/registry.h"
#include "bench_util.h"
#include "core/fitness.h"
#include "core/portfolio.h"
#include "core/workload.h"
#include "farm/server.h"
#include "mutation/edit.h"
#include "support/logging.h"
#include "support/strings.h"

namespace {

using namespace gevo;

/// One mode's measurements.
struct RunStats {
    double seconds = 0.0;
    std::size_t requests = 0;    ///< Individuals scored (pop x gens).
    std::size_t simulations = 0; ///< Requests that cost pipeline work.
    std::size_t preloaded = 0;   ///< Entries loaded from a cache file.
    /// Evaluations that killed/wedged their worker (isolated backend;
    /// always 0 in-process unless a fault is injected).
    std::size_t evalFailures = 0;
    std::size_t quarantined = 0; ///< Quarantined genotypes at run end.
    double speedup = 0.0;        ///< Search result (baseline / best).
    std::string bestEdits;       ///< Serialized best edit list.
    /// Per-stage attribution (core::stageTimes()): wall clock summed
    /// across evaluator threads, so the two tentpole wins — incremental
    /// compile and dense-lane simulate — are separately visible per mode.
    double compileMs = 0.0;
    double simulateMs = 0.0;

    double
    variantsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(requests) / seconds
                             : 0.0;
    }

    double
    hitRate() const
    {
        return requests ? static_cast<double>(requests - simulations) /
                              static_cast<double>(requests)
                        : 0.0;
    }
};

RunStats
runSearch(const ir::Module& module, const core::FitnessFunction& fitness,
          core::EvolutionParams params, bool useCache)
{
    params.useCache = useCache;
    core::EvolutionEngine engine(module, fitness, params);
    core::resetStageTimes();
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = engine.run();
    const auto t1 = std::chrono::steady_clock::now();
    const core::StageTimes stages = core::stageTimes();

    RunStats s;
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    s.compileMs = stages.compileMs;
    s.simulateMs = stages.simulateMs;
    // Every individual needs a fitness every generation; the pipeline
    // either simulates it or serves it from a memo/cache level.
    s.requests = static_cast<std::size_t>(params.populationSize) *
                 params.generations * params.islands;
    for (const auto& log : result.history)
        s.simulations += log.cacheMisses;
    s.preloaded = result.cacheSummary.preloaded;
    s.evalFailures = result.evalFailures;
    s.quarantined = result.quarantined;
    s.speedup = result.speedup();
    s.bestEdits = mut::serializeEdits(result.best.edits);
    return s;
}

/// One loopback farm worker daemon (Unix-domain socket) serving this
/// bench process's workload instance for the --remote-workers rows.
class LoopbackWorker {
  public:
    LoopbackWorker(const core::WorkloadInstance& instance,
                   const std::string& banner)
    {
        static int counter = 0;
        const std::string tag = strformat("/tmp/gevo_bench_farm_%d_%d",
                                          ::getpid(), counter++);
        socketPath_ = tag + ".sock";
        readyPath_ = tag + ".ready";
        pid_ = ::fork();
        if (pid_ == -1)
            GEVO_FATAL("fork for loopback farm worker failed");
        if (pid_ == 0) {
            ::setpgid(0, 0); // Sessions die with the daemon.
            farm::ServerOptions opts;
            opts.listenSpec = "unix:" + socketPath_;
            opts.readyFile = readyPath_;
            opts.banner = banner;
            ::_Exit(farm::runWorkerServer(instance.module(),
                                          instance.fitness(), opts));
        }
        ::setpgid(pid_, pid_);
        for (int i = 0; i < 750 && ::access(readyPath_.c_str(), F_OK) != 0;
             ++i)
            ::usleep(20 * 1000);
        if (::access(readyPath_.c_str(), F_OK) != 0)
            GEVO_FATAL("loopback farm worker never came up on %s",
                       socketPath_.c_str());
    }

    ~LoopbackWorker()
    {
        ::kill(-pid_, SIGKILL);
        ::waitpid(pid_, nullptr, 0);
        for (int i = 0; i < 750 && ::kill(-pid_, 0) == 0; ++i)
            ::usleep(2 * 1000);
        ::unlink(socketPath_.c_str());
        ::unlink(readyPath_.c_str());
    }

    std::string spec() const { return "unix:" + socketPath_; }

  private:
    pid_t pid_ = -1;
    std::string socketPath_;
    std::string readyPath_;
};

/// Everything measured for one workload, for both the table and the JSON
/// artifact.
struct WorkloadReport {
    std::string name;
    RunStats uncached;
    RunStats cached;
    RunStats remote;
    RunStats portfolio;
    RunStats cold;
    RunStats warm;
    bool haveWarm = false;      ///< --cache-path rows were run.
    bool haveRemote = false;    ///< --remote-workers rows were run.
    bool havePortfolio = false; ///< --portfolio-devices row was run.
    bool trajectoryIdentical = false;
    bool warmOk = true;         ///< Warm-start invariants held.
    bool remoteOk = true;       ///< Remote row kept the trajectory.
    bool portfolioOk = true;    ///< Portfolio row completed cleanly.

    /// Cached-over-uncached variants/sec ratio; 0 when the best edit
    /// lists disagree, which would invalidate the comparison.
    double
    gateRatio() const
    {
        if (!trajectoryIdentical || cached.seconds <= 0.0)
            return 0.0;
        return cached.variantsPerSec() / uncached.variantsPerSec();
    }
};

/// Run both modes on one workload and emit a table section. With
/// --cache-path also runs the cold-persist + warm-start pair.
WorkloadReport
benchWorkload(const core::Workload& workload, const Flags& flags)
{
    core::WorkloadConfig config;
    config.flags = &flags;
    config.defaults = workload.benchKnobs;
    const auto instance = workload.make(config);

    core::EvolutionParams params = workload.benchDefaults;
    params.populationSize = static_cast<std::uint32_t>(
        flags.getInt("pop", params.populationSize));
    params.generations = static_cast<std::uint32_t>(
        flags.getInt("gens", params.generations));
    params.seed = static_cast<std::uint64_t>(
        flags.getInt("seed", static_cast<std::int64_t>(params.seed)));
    params.threads =
        static_cast<std::uint32_t>(flags.getInt("threads", params.threads));
    params.islands =
        static_cast<std::uint32_t>(flags.getInt("islands", params.islands));

    WorkloadReport report;
    report.name = workload.name;
    report.uncached = runSearch(instance->module(), instance->fitness(), params, false);
    report.cached = runSearch(instance->module(), instance->fitness(), params, true);
    const RunStats& uncached = report.uncached;
    const RunStats& cached = report.cached;

    const double ratio = cached.seconds > 0.0
                             ? cached.variantsPerSec() /
                                   uncached.variantsPerSec()
                             : 0.0;

    Table t({"workload", "mode", "variants", "evaluated", "wall s",
             "variants/s", "hit rate", "ratio"});
    t.row().cell(workload.name).cell("compile-per-call")
        .cell(static_cast<long long>(uncached.requests))
        .cell(static_cast<long long>(uncached.simulations))
        .cell(uncached.seconds, 2).cell(uncached.variantsPerSec(), 1)
        .cell("-").cell(1.0, 2);
    t.row().cell(workload.name).cell("two-stage+cache")
        .cell(static_cast<long long>(cached.requests))
        .cell(static_cast<long long>(cached.simulations))
        .cell(cached.seconds, 2).cell(cached.variantsPerSec(), 1)
        .cell(cached.hitRate(), 2).cell(ratio, 2);

    // Remote farm row: the same cached search sharded over N loopback
    // worker daemons through the socket protocol — what the framing,
    // round-trips and result commit cost relative to in-process.
    const int remoteWorkers =
        static_cast<int>(flags.getInt("remote-workers", 0));
    if (remoteWorkers > 0) {
        report.haveRemote = true;
        std::vector<std::unique_ptr<LoopbackWorker>> workers;
        std::string list;
        for (int i = 0; i < remoteWorkers; ++i) {
            workers.push_back(std::make_unique<LoopbackWorker>(
                *instance, workload.name + " bench worker"));
            if (!list.empty())
                list += ',';
            list += workers.back()->spec();
        }
        auto remoteParams = params;
        remoteParams.backend = core::EvalBackendKind::Remote;
        remoteParams.workers = list;
        if (remoteParams.evalTimeoutMs == 0)
            remoteParams.evalTimeoutMs = 30000;
        report.remote = runSearch(instance->module(), instance->fitness(), remoteParams, true);
        const RunStats& remote = report.remote;
        t.row().cell(workload.name)
            .cell(strformat("remote x%d", remoteWorkers))
            .cell(static_cast<long long>(remote.requests))
            .cell(static_cast<long long>(remote.simulations))
            .cell(remote.seconds, 2).cell(remote.variantsPerSec(), 1)
            .cell(remote.hitRate(), 2)
            .cell(remote.variantsPerSec() / uncached.variantsPerSec(), 2);
    }

    // Portfolio row: the cached search scored across a device set
    // (every evaluation is N simulations instead of one), so the
    // per-variant cost of cross-device generality is visible next to
    // the single-device rows.
    const std::string portfolioCsv =
        flags.getString("portfolio-devices", "");
    if (!portfolioCsv.empty()) {
        report.havePortfolio = true;
        const auto devices = sim::resolveDeviceList(portfolioCsv);
        const core::PortfolioFitness portfolioFitness(instance->fitness(),
                                                      devices);
        report.portfolio = runSearch(instance->module(), portfolioFitness,
                                     params, true);
        const RunStats& portfolio = report.portfolio;
        t.row().cell(workload.name)
            .cell(strformat("portfolio x%zu", devices.size()))
            .cell(static_cast<long long>(portfolio.requests))
            .cell(static_cast<long long>(portfolio.simulations))
            .cell(portfolio.seconds, 2)
            .cell(portfolio.variantsPerSec(), 1)
            .cell(portfolio.hitRate(), 2)
            .cell(portfolio.variantsPerSec() / uncached.variantsPerSec(),
                  2);
    }

    // Warm-start pair: cold run persists its caches, warm run reuses
    // them. Both are full searches — only the file differs.
    const std::string cacheDir = flags.getString("cache-path", "");
    RunStats& cold = report.cold;
    RunStats& warm = report.warm;
    if (!cacheDir.empty()) {
        report.haveWarm = true;
        const std::string path =
            cacheDir + "/" + workload.name + ".gevocache";
        std::remove(path.c_str()); // A genuine cold start.
        params.cachePath = path;
        cold = runSearch(instance->module(), instance->fitness(), params, true);
        warm = runSearch(instance->module(), instance->fitness(), params, true);
        t.row().cell(workload.name).cell("cold+persist")
            .cell(static_cast<long long>(cold.requests))
            .cell(static_cast<long long>(cold.simulations))
            .cell(cold.seconds, 2).cell(cold.variantsPerSec(), 1)
            .cell(cold.hitRate(), 2)
            .cell(cold.variantsPerSec() / uncached.variantsPerSec(), 2);
        t.row().cell(workload.name).cell("warm-start")
            .cell(static_cast<long long>(warm.requests))
            .cell(static_cast<long long>(warm.simulations))
            .cell(warm.seconds, 2).cell(warm.variantsPerSec(), 1)
            .cell(warm.hitRate(), 2)
            .cell(warm.variantsPerSec() / uncached.variantsPerSec(), 2);
    }
    t.print();

    const double stageTotal = uncached.compileMs + uncached.simulateMs;
    std::printf("uncached stage split: compile %.0f ms, simulate %.0f ms "
                "(%.0f%% compile)\n",
                uncached.compileMs, uncached.simulateMs,
                stageTotal > 0.0 ? 100.0 * uncached.compileMs / stageTotal
                                 : 0.0);

    const bool sameBest = uncached.bestEdits == cached.bestEdits;
    report.trajectoryIdentical = sameBest;
    std::printf("best edit list identical across modes: %s "
                "(search speedup %.2fx vs %.2fx)\n",
                sameBest ? "yes" : "NO — CACHE CHANGED THE TRAJECTORY",
                uncached.speedup, cached.speedup);
    if (report.haveRemote) {
        const bool remoteSame =
            report.remote.bestEdits == uncached.bestEdits &&
            report.remote.evalFailures == 0;
        report.remoteOk = remoteSame;
        std::printf("remote farm row: %s (%.1f variants/s over the "
                    "socket, %zu eval failures, trajectory %s)\n",
                    remoteSame ? "PASS" : "FAIL",
                    report.remote.variantsPerSec(),
                    report.remote.evalFailures,
                    report.remote.bestEdits == uncached.bestEdits
                        ? "identical"
                        : "DIVERGED");
    }
    if (report.havePortfolio) {
        // The portfolio scores a different (multi-device) fitness, so
        // its best edit list may legitimately differ from the
        // single-device rows; the invariants are a clean, productive
        // run.
        const bool ok = report.portfolio.evalFailures == 0 &&
                        report.portfolio.speedup > 0.0;
        report.portfolioOk = ok;
        std::printf("portfolio row: %s (%.1f variants/s across %s, "
                    "search speedup %.2fx)\n",
                    ok ? "PASS" : "FAIL",
                    report.portfolio.variantsPerSec(),
                    portfolioCsv.c_str(), report.portfolio.speedup);
    }
    if (!cacheDir.empty()) {
        const bool warmSame = cold.bestEdits == uncached.bestEdits &&
                              warm.bestEdits == uncached.bestEdits;
        const bool ok = warmSame && warm.preloaded > 0 &&
                        warm.hitRate() > cold.hitRate();
        report.warmOk = ok;
        std::printf("warm start: %s (preloaded %zu entries, hit rate "
                    "%.2f cold -> %.2f warm, trajectory %s)\n",
                    ok ? "PASS" : "FAIL", warm.preloaded, cold.hitRate(),
                    warm.hitRate(),
                    warmSame ? "identical" : "DIVERGED");
    }
    std::printf("\n");
    return report;
}

// ---- JSON artifact ----

void
jsonMode(std::FILE* f, const char* name, const RunStats& s, bool last)
{
    std::fprintf(f,
                 "        \"%s\": {\"variants_per_s\": %.2f, "
                 "\"hit_rate\": %.4f, \"requests\": %zu, "
                 "\"evaluated\": %zu, \"preloaded\": %zu, "
                 "\"evalFailures\": %zu, \"quarantined\": %zu, "
                 "\"wall_s\": %.4f, \"compile_ms\": %.2f, "
                 "\"simulate_ms\": %.2f}%s\n",
                 name, s.variantsPerSec(), s.hitRate(), s.requests,
                 s.simulations, s.preloaded, s.evalFailures,
                 s.quarantined, s.seconds, s.compileMs, s.simulateMs,
                 last ? "" : ",");
}

/// Write the machine-readable artifact. Workload names come from the
/// registry (no exotic characters), so plain printf emission is safe.
bool
writeJson(const std::string& path,
          const std::vector<WorkloadReport>& reports, bool gateRan,
          double adeptRatio, double otherMin, bool warmStartOk,
          bool gatePass)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write JSON artifact %s\n",
                     path.c_str());
        return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"throughput\",\n");
    std::fprintf(f, "  \"gate\": {\"name\": \"adept-v0 cached/uncached "
                    ">= 3x\", \"ran\": %s, \"pass\": %s, "
                    "\"ratio\": %.3f, \"others_min_ratio\": %.3f},\n",
                 gateRan ? "true" : "false", gatePass ? "true" : "false",
                 adeptRatio, otherMin < 0.0 ? 0.0 : otherMin);
    std::fprintf(f, "  \"warm_start_ok\": %s,\n",
                 warmStartOk ? "true" : "false");
    std::fprintf(f, "  \"workloads\": [\n");
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const WorkloadReport& r = reports[i];
        std::fprintf(f, "    {\n      \"name\": \"%s\",\n",
                     r.name.c_str());
        std::fprintf(f, "      \"trajectory_identical\": %s,\n",
                     r.trajectoryIdentical ? "true" : "false");
        std::fprintf(f, "      \"ratio_cached_over_uncached\": %.3f,\n",
                     r.gateRatio());
        std::fprintf(f, "      \"warm_ok\": %s,\n",
                     r.warmOk ? "true" : "false");
        std::fprintf(f, "      \"remote_ok\": %s,\n",
                     r.remoteOk ? "true" : "false");
        std::fprintf(f, "      \"portfolio_ok\": %s,\n",
                     r.portfolioOk ? "true" : "false");
        std::fprintf(f, "      \"modes\": {\n");
        jsonMode(f, "uncached", r.uncached, false);
        jsonMode(f, "cached", r.cached,
                 !r.haveWarm && !r.haveRemote && !r.havePortfolio);
        if (r.haveRemote)
            jsonMode(f, "remote", r.remote,
                     !r.haveWarm && !r.havePortfolio);
        if (r.havePortfolio)
            jsonMode(f, "portfolio", r.portfolio, !r.haveWarm);
        if (r.haveWarm) {
            jsonMode(f, "cold_persist", r.cold, false);
            jsonMode(f, "warm_start", r.warm, true);
        }
        std::fprintf(f, "      }\n    }%s\n",
                     i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote JSON artifact: %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    // The --remote-workers rows write to farm sockets; a worker going
    // away must surface as a write error, not kill the bench.
    std::signal(SIGPIPE, SIG_IGN);
    apps::registerBuiltinWorkloads();
    auto& registry = core::WorkloadRegistry::instance();
    const Flags flags(argc, argv);
    bench::banner("Evaluation-pipeline throughput (variants/sec, cache "
                  "hit rate)",
                  "the GEVO fitness-caching recipe, Liou et al. TACO 2020");

    // Default set: every registered workload at its bench-scale
    // perf-anchor configuration; the gate is keyed on adept-v0.
    const auto names = bench::workloadList(flags, registry);

    bool gateRan = false;
    bool warmStartOk = true;
    bool remoteOk = true;
    bool portfolioOk = true;
    double adeptRatio = 0.0;
    double otherMin = -1.0;
    std::vector<WorkloadReport> reports;
    for (const auto& name : names) {
        reports.push_back(benchWorkload(registry.get(name), flags));
        const WorkloadReport& report = reports.back();
        if (!report.warmOk)
            warmStartOk = false;
        if (!report.remoteOk)
            remoteOk = false;
        if (!report.portfolioOk)
            portfolioOk = false;
        const double ratio = report.gateRatio();
        if (name == "adept-v0") {
            gateRan = true;
            adeptRatio = ratio;
        } else if (otherMin < 0.0 || ratio < otherMin) {
            otherMin = ratio;
        }
    }

    if (!warmStartOk)
        std::printf("warm-start check: FAIL (see per-workload lines "
                    "above)\n");
    if (!remoteOk)
        std::printf("remote farm check: FAIL (see per-workload lines "
                    "above)\n");
    if (!portfolioOk)
        std::printf("portfolio check: FAIL (see per-workload lines "
                    "above)\n");
    const bool gatePass = gateRan && adeptRatio >= 3.0;
    const std::string jsonPath = flags.getString("json", "");
    bool jsonOk = true;
    if (!jsonPath.empty())
        jsonOk = writeJson(jsonPath, reports, gateRan, adeptRatio,
                           otherMin, warmStartOk, gatePass);
    if (!gateRan) {
        // A narrowed --workloads list without adept-v0 is a valid probe
        // run; only the gate configuration can pass/fail the gate.
        std::printf("acceptance gate (adept-v0 >= 3x): not run (adept-v0 "
                    "not in --workloads; min measured ratio %.2fx)\n",
                    otherMin < 0.0 ? 0.0 : otherMin);
        return warmStartOk && remoteOk && portfolioOk && jsonOk ? 0 : 1;
    }
    std::printf("acceptance gate (adept-v0 >= 3x): %s (%.2fx; others min "
                "%.2fx)\n",
                gatePass ? "PASS" : "FAIL", adeptRatio,
                otherMin < 0.0 ? 0.0 : otherMin);
    return gatePass && warmStartOk && remoteOk && portfolioOk && jsonOk
               ? 0
               : 1;
}
