/// The paper's Section V analysis pipeline, end to end, on the golden
/// ADEPT-V1 variant: Algorithm 1 minimization, Algorithm 2 separation,
/// exhaustive subset search and the dependency graph as Graphviz DOT.

#include <cstdio>

#include "analysis/edit_analysis.h"
#include "apps/adept/driver.h"
#include "apps/adept/fitness.h"
#include "apps/adept/golden_edits.h"

using namespace gevo;
using namespace gevo::adept;

int
main()
{
    SequenceSetConfig cfg;
    cfg.numPairs = 5;
    cfg.seed = 7;
    auto pairs = generatePairs(cfg);
    appendBoundaryProbePairs(&pairs, cfg.maxLen, cfg.seed);

    const ScoringParams scoring;
    const auto built = buildAdeptV1(scoring, 64);
    const AdeptDriver driver(pairs, scoring, 1, 64);
    AdeptFitness fitness(driver, sim::p100());
    const auto fit = analysis::makeEditSetFitness(built.module, fitness);

    const auto golden = v1AllGoldenEdits(built);
    std::printf("analyzing the %zu-edit GEVO-optimized ADEPT-V1 variant\n",
                golden.size());

    // Algorithm 1.
    const auto minimized = analysis::minimizeEdits(editsOf(golden), fit);
    std::printf("Algorithm 1: %zu -> %zu edits (dropped %zu weak)\n",
                golden.size(), minimized.kept.size(),
                minimized.dropped.size());

    // Algorithm 2.
    const auto split = analysis::separateEpistasis(minimized.kept, fit);
    std::printf("Algorithm 2: %zu independent, %zu epistatic\n",
                split.independent.size(), split.epistatic.size());
    std::printf("  independent set: %.1f%% improvement\n",
                100 * (split.baselineMs - split.independentMs) /
                    split.baselineMs);
    std::printf("  epistatic set:   %.1f%% improvement\n\n",
                100 * (split.baselineMs - split.epistaticMs) /
                    split.baselineMs);

    // Exhaustive subset search over the forward cluster.
    const auto cluster = v1EpistaticCluster(built);
    std::vector<mut::Edit> edits;
    std::vector<std::string> names;
    for (const auto& n : cluster) {
        edits.push_back(n.edit);
        names.push_back(n.name);
    }
    const auto subsets = analysis::searchSubsets(edits, fit);
    const auto edges = analysis::dependencyGraph(edits.size(), subsets);
    std::printf("subset search over {e5,e6,e8,e10}: %zu subsets, %zu "
                "dependency edges\n\n",
                subsets.size(), edges.size());
    std::printf("%s", analysis::toDot(edits.size(), subsets, edges, names)
                          .c_str());
    return 0;
}
