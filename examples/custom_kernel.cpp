/// Bring-your-own-kernel: write any CUDA-like kernel in the textual IR,
/// point GEVO at it with your own test oracle, and inspect what the
/// simulator's profiler says about it. Here: a matrix transpose whose
/// shared-memory staging has a bank-conflict bug GEVO can discover.

#include <cstdio>

#include "core/engine.h"
#include "ir/parser.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"

using namespace gevo;

// 32x32 tile transpose, one block. The shared tile is laid out WITHOUT
// padding, so column reads conflict across all 32 banks — the classic
// optimization-guide example. GEVO can reduce the conflicts by rerouting
// the staging addresses.
constexpr const char* kTranspose = R"(
kernel @transpose params 2 regs 32 shared 4096 local 0 {
entry:
    r2 = tid
    r3 = rem.i32 r2, 32
    r4 = div.i32 r2, 32
    ; stage in[row=r4][col=r3] into tile[r3][r4]  (transposed write)
    r5 = mul.i32 r4, 32
    r6 = add.i32 r5, r3
    r7 = cvt.i32.i64 r6
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    r10 = ld.i32.global r9
    r11 = mul.i32 r3, 32
    r12 = add.i32 r11, r4
    r13 = cvt.i32.i64 r12
    r14 = mul.i64 r13, 4
    st.i32.shared r14, r10
    bar.sync
    ; write tile[r4][r3] out linearly
    r15 = mul.i32 r4, 32
    r16 = add.i32 r15, r3
    r17 = cvt.i32.i64 r16
    r18 = mul.i64 r17, 4
    r19 = ld.i32.shared r18
    r20 = add.i64 r1, r18
    st.i32.global r20, r19
    ret
}
)";

int
main()
{
    auto parsed = ir::parseModule(kTranspose);
    if (!parsed.ok) {
        std::fprintf(stderr, "parse: %s\n", parsed.error.c_str());
        return 1;
    }
    const auto prog = sim::Program::decode(parsed.module.function(0));

    sim::DeviceMemory mem(1 << 20);
    const auto in = mem.alloc(1024 * 4);
    const auto out = mem.alloc(1024 * 4);
    for (int i = 0; i < 1024; ++i)
        mem.write<std::int32_t>(in + 4 * i, i);

    const auto res = sim::launchKernel(
        sim::p100(), mem, prog, {1, 1024},
        {static_cast<std::uint64_t>(in), static_cast<std::uint64_t>(out)},
        /*profileLocs=*/true);
    if (!res.ok()) {
        std::fprintf(stderr, "fault: %s\n", res.fault.detail.c_str());
        return 1;
    }

    // Verify the transpose.
    int wrong = 0;
    for (int r = 0; r < 32; ++r)
        for (int c = 0; c < 32; ++c)
            wrong += mem.read<std::int32_t>(out + 4 * (r * 32 + c)) !=
                             c * 32 + r
                         ? 1
                         : 0;

    std::printf("transpose: %s\n", wrong == 0 ? "correct" : "WRONG");
    std::printf("simulated: %.4f ms, %llu warp instrs, %llu extra "
                "bank-conflict ways, %llu global sectors\n",
                res.stats.ms,
                static_cast<unsigned long long>(res.stats.warpInstrs),
                static_cast<unsigned long long>(
                    res.stats.sharedConflictWays),
                static_cast<unsigned long long>(res.stats.globalSectors));
    std::printf("\nThe %llu conflict ways come from the unpadded tile — "
                "exactly what a\nGEVO run over this kernel (see "
                "examples/quickstart.cpp for the recipe)\ndiscovers and "
                "what the paper's Sec VII calls counter-intuitive "
                "optimization\nspace that EC explores mechanically.\n",
                static_cast<unsigned long long>(
                    res.stats.sharedConflictWays));
    return 0;
}
