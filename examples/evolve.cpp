/// Registry-driven evolution driver: one binary for every workload.
///
/// Replaces the per-app evolve_adept/evolve_simcov drivers. Pick a
/// workload with --workload (see --help for the registered set and each
/// workload's scale knobs), a search topology with --islands /
/// --migration-interval / --migration-count, and the usual GA knobs. The
/// flow is the paper's (Sec III-E, Fig. 1): build the app's kernels in
/// IR, validate against the CPU oracle, evolve edit lists, then map the
/// best edits back to source locations (Sec VI methodology) and compare
/// against the golden-edit ceiling.

#include <csignal>
#include <cstdio>
#include <memory>

#include "apps/registry.h"
#include "core/engine.h"
#include "core/objectives.h"
#include "core/portfolio.h"
#include "core/workload.h"
#include "mutation/edit.h"
#include "support/flags.h"
#include "support/logging.h"

using namespace gevo;

namespace {

/// Engine behind the SIGINT/SIGTERM handlers. A signal asks the engine
/// to finish the in-flight generation, write the final checkpoint and
/// cache saves, and return normally — no state is torn down from inside
/// the handler (requestStop is one lock-free atomic store, the only
/// thing that is async-signal-safe to do here).
core::EvolutionEngine* g_engine = nullptr;

void
onStopSignal(int)
{
    if (g_engine != nullptr)
        g_engine->requestStop();
}

void
printHelp(const core::WorkloadRegistry& registry)
{
    FlagUsage usage("evolve", "evolutionary search over any registered "
                              "workload");
    usage.section("search")
        .flag("workload", "<name>", "workload to evolve (default adept-v1)")
        .flag("list-workloads", "",
              "print registered workload names, one per line, and exit "
              "(machine-readable; drives the CI smoke matrix)")
        .flag("device", "<gpu>", "device model, e.g. P100/V100 (default "
                                 "P100)")
        .flag("pop", "<n>", "population size per island")
        .flag("gens", "<n>", "generations")
        .flag("elitism", "<n>", "elites preserved per generation")
        .flag("seed", "<n>", "search seed")
        .flag("threads", "<n>", "evaluation threads (0 = hardware)")
        .flag("cache", "<bool>", "two-level variant cache (default on)")
        .flag("cache-max", "<n>", "cache entry bound, 0 = unbounded")
        .flag("cache-path", "<file>",
              "persist the caches across runs: load before gen 1, save on "
              "completion (default off)")
        .flag("cache-save-interval", "<n>",
              "also save every n generations, 0 = only on completion");
    usage.section("islands")
        .flag("islands", "<n>", "island count (1 = panmictic, the paper's "
                                "configuration)")
        .flag("migration-interval", "<n>",
              "generations between ring migrations (0 = isolated)")
        .flag("migration-count", "<n>", "individuals migrated per edge")
        .flag("topology", "<kind>",
              "island connectivity: auto (panmictic for 1 island, ring "
              "otherwise; default), panmictic, ring, torus or star")
        .flag("fitness-aware-migrants", "",
              "incoming migrants replace an island's worst residents "
              "only when strictly fitter (default: unconditional)");
    usage.section("multi-objective & device portfolio")
        .flag("devices", "<list>",
              "score each variant on this comma-separated device set "
              "(e.g. p100,v100; 'all' = the full Table I set) instead of "
              "the single --device model; per-objective values are "
              "aggregated across devices")
        .flag("device-agg", "<kind>",
              "portfolio aggregation: worst (per-objective max, default) "
              "or mean")
        .flag("objectives", "<list>",
              "objectives driving Pareto selection, comma-separated from "
              "cycles, sectors, divergence ('all' = every objective; "
              "default cycles)")
        .flag("select", "<kind>",
              "survivor selection: scalar (rank by cycles, the paper's "
              "rule, default) or pareto (NSGA-II non-dominated sort + "
              "crowding distance over --objectives)");
    usage.section("diagnosis-driven search")
        .flag("sampler", "<kind>",
              "edit-site sampling: uniform (the paper's operator, "
              "default) or guided (biases edit sites toward the hot "
              "source locations of each island's profiled elite)")
        .flag("explore-floor", "<f>",
              "guided sampler's minimum site weight in [0,1]: 0 = pure "
              "exploitation, 1 = uniform (default 0.25)")
        .flag("adapt-rates", "",
              "self-adapt the per-island operator rates (1+1-ES rule: "
              "perturb, keep on improvement, revert otherwise; rates "
              "are logged per generation)");
    usage.section("robustness")
        .flag("backend", "<kind>",
              "evaluation backend: inprocess (default, fastest), "
              "isolated (fork-per-batch workers; a crashing/hanging "
              "variant is penalized and quarantined instead of killing "
              "the search), or remote (shard batches across gevo-workerd "
              "daemons; fault-free runs are trajectory-identical to "
              "inprocess)")
        .flag("workers", "<list>",
              "remote-backend worker endpoints, comma-separated "
              "host:port or unix:/path (required with --backend=remote)")
        .flag("eval-timeout-ms", "<n>",
              "per-evaluation watchdog budget for the isolated and "
              "remote backends (default 30000)")
        .flag("checkpoint-path", "<file>",
              "durable search-state snapshots: save every "
              "checkpoint-interval generations and on completion or "
              "SIGINT/SIGTERM (default off)")
        .flag("checkpoint-interval", "<n>",
              "generations between periodic checkpoints (default 10, 0 = "
              "only on completion/interruption)")
        .flag("resume", "",
              "restore search state from --checkpoint-path and continue; "
              "the resumed trajectory is bit-identical to an "
              "uninterrupted run")
        .flag("dump-history", "<file>",
              "write the per-generation history (deterministic fields "
              "only, exact float bits) to a file — resumed and "
              "uninterrupted runs produce byte-identical dumps");
    usage.section("registered workloads");
    for (const auto& name : registry.names()) {
        const auto& w = registry.get(name);
        usage.item(name, w.summary);
        for (const auto& knob : w.knobs)
            usage.item("  --" + knob.name,
                       knob.help + " (default " +
                           std::to_string(knob.defaultValue) + ")");
    }
    usage.print();
}

/// Map an edit's anchor back to a source location (paper Sec VI: "we
/// trace each relevant code edit in the LLVM-IR level back to its
/// corresponding CUDA source code").
std::string
locateEdit(const ir::Module& module, const mut::Edit& e)
{
    for (std::size_t f = 0; f < module.numFunctions(); ++f) {
        const auto pos = module.function(f).findUid(e.srcUid);
        if (pos.valid()) {
            const auto& in = module.function(f).at(pos);
            auto locName = module.locString(in.loc);
            return locName.empty() ? module.function(f).name : locName;
        }
    }
    return "(location unknown)";
}

/// Write the per-generation history restricted to its deterministic
/// fields — %a renders exact float bits; cacheHits/cacheMisses are
/// deliberately excluded (they wobble under threads > 1 and across a
/// resume's cold cache, the trajectory does not). A resumed run and an
/// uninterrupted run of the same search produce byte-identical dumps,
/// which is exactly what the CI crash-resilience smoke diffs.
void
dumpHistory(const std::string& path, const core::SearchResult& result)
{
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        GEVO_FATAL("cannot open '%s' for writing", path.c_str());
    for (const auto& log : result.history) {
        std::string edits = mut::serializeEdits(log.bestEdits);
        for (auto& c : edits) {
            if (c == '\n')
                c = '|';
        }
        std::fprintf(f,
                     "gen %u best %a mean %a valid %zu evals %zu qhits "
                     "%zu crash %zu timeout %zu protocol %zu islands",
                     log.generation, log.bestMs, log.meanMs,
                     log.validCount, log.evaluations, log.quarantineHits,
                     log.workerCrashes, log.workerTimeouts,
                     log.protocolErrors);
        for (const double ms : log.islandBestMs)
            std::fprintf(f, " %a", ms);
        // Only present under --adapt-rates; the default dump stays
        // byte-identical to pre-adaptation builds.
        for (const auto& rt : log.islandRates)
            std::fprintf(f, " rates %a %a %a %a %a %a", rt.wDelete,
                         rt.wCopy, rt.wMove, rt.wReplace, rt.wSwap,
                         rt.wOperand);
        // Only present under --select=pareto; the default dump stays
        // byte-identical to scalar-selection builds.
        if (log.paretoFrontSize != 0)
            std::fprintf(f, " front %zu", log.paretoFrontSize);
        std::fprintf(f, " edits %s\n", edits.c_str());
    }
    std::fclose(f);
}

} // namespace

int
main(int argc, char** argv)
{
    // Process-wide: a remote worker (or an isolated worker's pipe)
    // vanishing mid-write must surface as a write error the backend
    // handles, never as a SIGPIPE death of the whole search.
    std::signal(SIGPIPE, SIG_IGN);
    apps::registerBuiltinWorkloads();
    auto& registry = core::WorkloadRegistry::instance();
    const Flags flags(argc, argv);
    if (flags.helpRequested() || flags.getBool("list", false)) {
        printHelp(registry);
        return 0;
    }
    if (flags.getBool("list-workloads", false)) {
        // Machine-readable registry dump: exactly one name per line,
        // nothing else — CI enumerates the smoke matrix from this.
        for (const auto& name : registry.names())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    const auto name =
        flags.getChoice("workload", registry.names(), "adept-v1");
    const auto& workload = registry.get(name);

    core::WorkloadConfig config;
    config.device = sim::deviceByName(flags.getString("device", "P100"));
    config.flags = &flags;
    const auto instance = workload.make(config);

    core::EvolutionParams params = workload.searchDefaults;
    params.populationSize = static_cast<std::uint32_t>(
        flags.getInt("pop", params.populationSize));
    params.generations = static_cast<std::uint32_t>(
        flags.getInt("gens", params.generations));
    params.elitism =
        static_cast<std::uint32_t>(flags.getInt("elitism", params.elitism));
    params.seed = static_cast<std::uint64_t>(
        flags.getInt("seed", static_cast<std::int64_t>(params.seed)));
    params.threads =
        static_cast<std::uint32_t>(flags.getInt("threads", params.threads));
    params.useCache = flags.getBool("cache", params.useCache);
    params.cacheMaxEntries = static_cast<std::size_t>(
        flags.getInt("cache-max", 0));
    params.cachePath = flags.getString("cache-path", params.cachePath);
    params.cacheSaveInterval = static_cast<std::uint32_t>(flags.getInt(
        "cache-save-interval", params.cacheSaveInterval));
    params.islands =
        static_cast<std::uint32_t>(flags.getInt("islands", params.islands));
    params.migrationInterval = static_cast<std::uint32_t>(
        flags.getInt("migration-interval", params.migrationInterval));
    params.migrationCount = static_cast<std::uint32_t>(
        flags.getInt("migration-count", params.migrationCount));
    const auto topologyName = flags.getChoice(
        "topology", {"auto", "panmictic", "ring", "torus", "star"}, "auto");
    params.topology = topologyName == "panmictic"
                          ? core::TopologyKind::Panmictic
                      : topologyName == "ring"  ? core::TopologyKind::Ring
                      : topologyName == "torus" ? core::TopologyKind::Torus
                      : topologyName == "star"  ? core::TopologyKind::Star
                                                : core::TopologyKind::Auto;
    params.fitnessAwareMigrants = flags.getBool(
        "fitness-aware-migrants", params.fitnessAwareMigrants);
    const auto samplerName =
        flags.getChoice("sampler", {"uniform", "guided"}, "uniform");
    params.samplerKind = samplerName == "guided"
                             ? core::SamplerKind::Guided
                             : core::SamplerKind::Uniform;
    params.sampler.exploreFloor =
        flags.getDouble("explore-floor", params.sampler.exploreFloor);
    params.adaptRates = flags.getBool("adapt-rates", params.adaptRates);
    const auto backendName = flags.getChoice(
        "backend", {"inprocess", "isolated", "remote"},
        params.backend == core::EvalBackendKind::Isolated ? "isolated"
                                                          : "inprocess");
    params.backend = backendName == "isolated"
                         ? core::EvalBackendKind::Isolated
                     : backendName == "remote"
                         ? core::EvalBackendKind::Remote
                         : core::EvalBackendKind::InProcess;
    params.workers = flags.getString("workers", params.workers);
    params.evalTimeoutMs = static_cast<std::uint32_t>(
        flags.getInt("eval-timeout-ms", params.evalTimeoutMs));
    params.checkpointPath =
        flags.getString("checkpoint-path", params.checkpointPath);
    params.checkpointInterval = static_cast<std::uint32_t>(
        flags.getInt("checkpoint-interval", params.checkpointInterval));
    params.resume = flags.getBool("resume", params.resume);
    params.objectives = core::resolveObjectiveList(
        flags.getString("objectives", "cycles"));
    const auto selectName =
        flags.getChoice("select", {"scalar", "pareto"}, "scalar");
    params.selection = selectName == "pareto"
                           ? core::SelectionKind::Pareto
                           : core::SelectionKind::Scalar;
    const auto dumpPath = flags.getString("dump-history", "");

    // A device portfolio wraps the workload's fitness; everything
    // downstream (engine, backends, caches, farm) sees one
    // FitnessFunction whose name() encodes the device set.
    const auto devicesCsv = flags.getString("devices", "");
    std::unique_ptr<core::PortfolioFitness> portfolio;
    const core::FitnessFunction* fitness = &instance->fitness();
    if (!devicesCsv.empty()) {
        portfolio = std::make_unique<core::PortfolioFitness>(
            instance->fitness(), sim::resolveDeviceList(devicesCsv),
            core::deviceAggByName(flags.getString("device-agg", "worst")));
        fitness = portfolio.get();
    }

    const auto topology = core::makeTopology(params);
    std::printf("%s: %s\n", workload.name.c_str(),
                instance->banner().c_str());
    std::printf("search: %s, population %u x %u generations, seed %llu, "
                "fitness %s\n",
                topology->describe().c_str(), params.populationSize,
                params.generations,
                static_cast<unsigned long long>(params.seed),
                fitness->name().c_str());
    if (params.selection == core::SelectionKind::Pareto)
        std::printf("selection: pareto over %s\n",
                    core::objectiveListName(params.objectives).c_str());
    std::printf("sampler: %s", samplerName.c_str());
    if (params.samplerKind == core::SamplerKind::Guided)
        std::printf(", explore floor %.2f", params.sampler.exploreFloor);
    if (params.adaptRates)
        std::printf(", self-adaptive operator rates");
    std::printf("\n\n");

    core::EvolutionEngine engine(instance->module(), *fitness, params);
    // A Ctrl-C (or a scheduler's SIGTERM) ends the run gracefully: the
    // in-flight generation completes, the final checkpoint and cache
    // saves are written, and the summary below still prints — so a
    // multi-hour campaign never loses work to an interactive stop.
    g_engine = &engine;
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    const std::uint32_t stride = params.generations <= 12 ? 1 : 5;
    const auto result = engine.run(
        [&](const core::GenerationLog& log, const core::SearchResult& r) {
            if (log.generation % stride != 0 && log.generation != 1)
                return;
            std::printf("gen %3u: %.3fx (%zu valid", log.generation,
                        r.baselineMs / log.bestMs, log.validCount);
            if (log.islandBestMs.size() > 1) {
                std::printf("; islands");
                for (const double ms : log.islandBestMs)
                    std::printf(" %.3fx", r.baselineMs / ms);
            }
            std::printf(")\n");
            // Self-adaptation audit trail: the rates breeding the NEXT
            // generation, one tuple per island.
            for (std::size_t i = 0; i < log.islandRates.size(); ++i) {
                const auto& rt = log.islandRates[i];
                std::printf("  rates[%zu]: del %.3f copy %.3f move %.3f "
                            "repl %.3f swap %.3f opnd %.3f\n",
                            i, rt.wDelete, rt.wCopy, rt.wMove, rt.wReplace,
                            rt.wSwap, rt.wOperand);
            }
        });

    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_engine = nullptr;
    if (!dumpPath.empty())
        dumpHistory(dumpPath, result);

    if (result.interrupted)
        std::printf("\ninterrupted: stopped after generation %zu of %u; "
                    "state saved%s — re-run with --resume to continue\n",
                    result.history.size() ? result.history.back().generation
                                          : std::size_t{0},
                    params.generations,
                    params.checkpointPath.empty()
                        ? " (no --checkpoint-path: progress is in the "
                          "cache only)"
                        : "");

    std::printf("\nbest: %.3fx with %zu edits\n", result.speedup(),
                result.best.edits.size());
    if (!result.paretoFront.empty()) {
        std::printf("pareto front: %zu non-dominated edit lists\n",
                    result.paretoFront.size());
        for (const auto& ind : result.paretoFront) {
            std::printf("  [");
            for (std::size_t i = 0; i < params.objectives.size(); ++i)
                std::printf(
                    "%s%s %.6g", i ? ", " : "",
                    std::string(core::objectiveName(params.objectives[i]))
                        .c_str(),
                    ind.fitness.objective(
                        static_cast<std::size_t>(params.objectives[i])));
            std::printf("] %zu edits\n", ind.edits.size());
        }
    }
    std::printf("cache: %zu served, %zu evaluated, %zu entries (%zu "
                "preloaded), %zu evicted\n",
                result.cacheSummary.served, result.cacheSummary.evaluated,
                result.cacheSummary.entries,
                result.cacheSummary.preloaded,
                result.cacheSummary.evictions);
    std::printf("robustness: %zu eval failures, %zu quarantined\n",
                result.evalFailures, result.quarantined);
    if (result.interrupted)
        return 0; // Partial run: skip validation/ceiling of a mid-search
                  // best (the summary above is the deliverable).

    std::printf("\nedit -> source mapping:\n");
    for (const auto& e : result.best.edits)
        std::printf("  %-40s @ %s\n", e.toString().c_str(),
                    locateEdit(instance->module(), e).c_str());

    const auto heldOut = instance->validateBest(result.best.edits);
    std::printf("\nheld-out validation: %s\n",
                heldOut.empty() ? "passes" : heldOut.c_str());

    const auto golden = instance->goldenEdits();
    if (!golden.empty()) {
        // Score the golden edits through the same (possibly portfolio)
        // fitness the search used, so the ratio is like-for-like.
        const auto ceiling =
            core::evaluateVariant(instance->module(), golden, *fitness);
        if (ceiling.valid && ceiling.ms() > 0.0) {
            std::printf("golden-edit ceiling: %.3fx",
                        result.baselineMs / ceiling.ms());
            if (instance->paperCeiling() > 0.0)
                std::printf(" (paper: %.2fx)", instance->paperCeiling());
            std::printf("\n");
        } else {
            std::printf("golden-edit ceiling: INVALID (%s)\n",
                        ceiling.failReason.c_str());
        }
    }
    return 0;
}
