/// Evolving ADEPT: the paper's headline experiment at example scale.
///
/// Builds the hand-tuned ADEPT-V1 Smith-Waterman kernels, validates them
/// against the CPU oracle, runs a short GEVO search on the P100 model,
/// and maps any discovered edits back to source locations (the paper's
/// Sec VI methodology).

#include <cstdio>

#include "apps/adept/driver.h"
#include "apps/adept/fitness.h"
#include "apps/adept/golden_edits.h"
#include "core/engine.h"
#include "support/flags.h"

using namespace gevo;
using namespace gevo::adept;

int
main(int argc, char** argv)
{
    const Flags flags(argc, argv);

    // Dataset: related DNA pairs + warp-boundary probes (the held-out
    // discipline of paper Sec III-C at example scale).
    SequenceSetConfig cfg;
    cfg.numPairs = 5;
    cfg.seed = 11;
    auto pairs = generatePairs(cfg);
    appendBoundaryProbePairs(&pairs, cfg.maxLen, cfg.seed);

    const ScoringParams scoring;
    const auto built = buildAdeptV1(scoring, 64);
    const AdeptDriver driver(pairs, scoring, 1, 64);
    AdeptFitness fitness(driver, sim::p100());

    std::printf("ADEPT-V1: %zu IR instructions across %zu kernels\n",
                built.module.instrCount(), built.module.numFunctions());

    core::EvolutionParams params;
    params.populationSize =
        static_cast<std::uint32_t>(flags.getInt("pop", 24));
    params.generations =
        static_cast<std::uint32_t>(flags.getInt("gens", 25));
    params.elitism = 2;
    params.seed = static_cast<std::uint64_t>(flags.getInt("seed", 7));

    core::EvolutionEngine engine(built.module, fitness, params);
    const auto result = engine.run(
        [](const core::GenerationLog& log, const core::SearchResult& r) {
            if (log.generation % 5 == 0 || log.generation == 1)
                std::printf("gen %3u: %.3fx\n", log.generation,
                            r.baselineMs / log.bestMs);
        });

    std::printf("\nbest: %.3fx with %zu edits\n", result.speedup(),
                result.best.edits.size());

    // Map edits back to source locations (paper Sec VI: "we trace each
    // relevant code edit in the LLVM-IR level back to its corresponding
    // CUDA source code").
    std::printf("\nedit -> source mapping:\n");
    for (const auto& e : result.best.edits) {
        std::string locName = "(location unknown)";
        for (std::size_t f = 0; f < built.module.numFunctions(); ++f) {
            const auto pos = built.module.function(f).findUid(e.srcUid);
            if (pos.valid()) {
                const auto& in = built.module.function(f).at(pos);
                locName = built.module.locString(in.loc);
                if (locName.empty())
                    locName = built.module.function(f).name;
            }
        }
        std::printf("  %-40s @ %s\n", e.toString().c_str(),
                    locName.c_str());
    }

    // Compare against the golden ceiling.
    AdeptFitness p100(driver, sim::p100());
    const auto golden = core::evaluateVariant(
        built.module, editsOf(v1AllGoldenEdits(built)), p100);
    std::printf("\ngolden-edit ceiling: %.3fx (paper: 1.28x on P100)\n",
                result.baselineMs / golden.ms);
    return 0;
}
