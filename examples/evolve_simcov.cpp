/// Evolving SIMCoV: stochastic-simulation fitness with tolerance-based
/// validation (paper Sec II-C2/III-C), plus the held-out large-grid check
/// that catches overfitted variants (Sec VI-D).

#include <cstdio>

#include "apps/simcov/driver.h"
#include "apps/simcov/fitness.h"
#include "apps/simcov/golden_edits.h"
#include "core/engine.h"
#include "support/flags.h"
#include "mutation/patch.h"
#include "opt/passes.h"

using namespace gevo;
using namespace gevo::simcov;

int
main(int argc, char** argv)
{
    const Flags flags(argc, argv);

    SimcovConfig cfg;
    cfg.gridW = static_cast<std::int32_t>(flags.getInt("grid", 32));
    cfg.steps = static_cast<std::int32_t>(flags.getInt("steps", 16));
    const auto built = buildSimcov(cfg);
    const SimcovDriver driver(cfg);
    SimcovFitness fitness(driver, sim::p100());

    std::printf("SIMCoV: %dx%d grid, %d steps, %zu kernels, %zu IR "
                "instructions\n",
                cfg.gridW, cfg.gridW, cfg.steps,
                built.module.numFunctions(), built.module.instrCount());
    const auto& truth = driver.expected();
    std::printf("ground truth at final step: %.1f virions, %d T cells, "
                "%d dead cells\n\n",
                truth.back().totalVirions, truth.back().tcells,
                truth.back().dead);

    core::EvolutionParams params;
    params.populationSize =
        static_cast<std::uint32_t>(flags.getInt("pop", 12));
    params.generations =
        static_cast<std::uint32_t>(flags.getInt("gens", 8));
    params.elitism = 2;
    params.seed = static_cast<std::uint64_t>(flags.getInt("seed", 3));

    core::EvolutionEngine engine(built.module, fitness, params);
    const auto result = engine.run(
        [](const core::GenerationLog& log, const core::SearchResult& r) {
            std::printf("gen %2u: %.3fx (%zu valid of population)\n",
                        log.generation, r.baselineMs / log.bestMs,
                        log.validCount);
        });
    std::printf("\nbest: %.3fx with %zu edits\n", result.speedup(),
                result.best.edits.size());

    // Held-out validation on a larger, memory-tight grid — the paper's
    // defence against variants that only look correct at fitness scale.
    SimcovConfig big = cfg;
    big.gridW = 96;
    big.steps = 2;
    const auto bigBuilt = buildSimcov(big);
    const SimcovDriver bigDriver(big, false, /*tightArena=*/true);
    auto variant =
        mut::applyPatch(bigBuilt.module, result.best.edits);
    opt::runCleanupPipeline(variant);
    const auto heldOut = bigDriver.run(variant, sim::p100());
    std::printf("held-out 96x96 check: %s\n",
                heldOut.ok() ? "passes" : heldOut.fault.detail.c_str());

    const auto golden = core::evaluateVariant(
        built.module, editsOf(allGoldenEdits(built)), fitness);
    std::printf("golden-edit ceiling: %.3fx (paper: 1.29x on P100)\n",
                result.baselineMs / golden.ms);
    return 0;
}
