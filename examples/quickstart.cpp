/// Quickstart: the whole pipeline on a ten-line kernel.
///
/// 1. Write a GPU kernel in the textual IR.
/// 2. Run it on the simulated P100 and read the results back.
/// 3. Define a fitness function (runtime, validated against expected
///    output).
/// 4. Let GEVO evolve the kernel and report what it found.

#include <cstdio>

#include "core/engine.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "mutation/patch.h"
#include "opt/passes.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"

using namespace gevo;

// A deliberately naive kernel: computes out[i] = i*i + 3 but re-zeroes a
// scratch buffer on every iteration of an outer loop (a miniature of the
// ADEPT-V0 bottleneck this library reproduces from the paper).
constexpr const char* kKernel = R"(
kernel @square params 1 regs 32 shared 512 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    br outer
outer:
    r3 = mov 0
    br scratch
scratch:
    r4 = mul.i32 r3, 4
    r5 = cvt.i32.i64 r4
    st.i32.shared r5, 0
    r3 = add.i32 r3, 1
    r6 = cmp.lt.i32 r3, 64
    brc r6, scratch, work
work:
    r7 = mul.i32 r1, r1
    r8 = add.i32 r7, 3
    r2 = add.i32 r2, 1
    r9 = cmp.lt.i32 r2, 4
    brc r9, outer, done
done:
    r10 = cvt.i32.i64 r1
    r11 = mul.i64 r10, 4
    r12 = add.i64 r0, r11
    st.i32.global r12, r8
    ret
}
)";

/// Fitness: simulated runtime, valid only when every output is right.
class SquareFitness : public core::FitnessFunction {
  public:
    core::FitnessResult
    evaluate(const core::CompiledVariant& variant) const override
    {
        const auto* prog = variant.programs.find("square");
        if (prog == nullptr)
            return core::FitnessResult::fail("kernel missing");
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(64 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, *prog, {1, 64},
            {static_cast<std::uint64_t>(out)});
        if (!res.ok())
            return core::FitnessResult::fail(res.fault.detail);
        for (int t = 0; t < 64; ++t) {
            if (mem.read<std::int32_t>(out + 4 * t) != t * t + 3)
                return core::FitnessResult::fail("wrong output");
        }
        return core::FitnessResult::pass(res.stats.ms);
    }
    std::string name() const override { return "square"; }
};

int
main()
{
    // (1) parse
    auto parsed = ir::parseModule(kKernel);
    if (!parsed.ok) {
        std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
        return 1;
    }

    // (2) baseline run
    SquareFitness fitness;
    const auto baseline = core::evaluateVariant(parsed.module, {}, fitness);
    std::printf("baseline: %.4f simulated ms (valid=%d)\n", baseline.ms(),
                baseline.valid);

    // (3+4) evolve
    core::EvolutionParams params;
    params.populationSize = 24;
    params.generations = 20;
    params.elitism = 2;
    params.seed = 42;
    core::EvolutionEngine engine(parsed.module, fitness, params);
    const auto result = engine.run(
        [](const core::GenerationLog& log, const core::SearchResult& r) {
            std::printf("  gen %2u: best %.4f ms (%.2fx), %zu valid\n",
                        log.generation, log.bestMs,
                        r.baselineMs / log.bestMs, log.validCount);
        });

    std::printf("\nGEVO found %.2fx using %zu edits:\n", result.speedup(),
                result.best.edits.size());
    for (const auto& e : result.best.edits)
        std::printf("  %s\n", e.toString().c_str());

    // Show the optimized kernel after codegen cleanup.
    auto optimized = mut::applyPatch(parsed.module, result.best.edits);
    opt::runCleanupPipeline(optimized);
    std::printf("\noptimized kernel:\n%s", ir::printModule(optimized).c_str());
    return 0;
}
