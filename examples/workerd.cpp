/// gevo-workerd: the farm's evaluation worker daemon.
///
/// Serves fitness evaluations for exactly one workload configuration
/// over a TCP or Unix-domain socket (src/farm/). Start one per core (or
/// per machine) and point `evolve --backend=remote --workers=...` at
/// them; the client's handshake carries a trajectory-scope fingerprint,
/// so a daemon built for a different workload/device/dataset rejects
/// the connection instead of silently serving wrong fitness values.
/// Each accepted connection is served by a forked child — a hostile
/// variant kills only its session, and the daemon survives to accept
/// the client's redispatch.
///
///   build/examples/workerd --workload=adept-v0 --listen=127.0.0.1:7701
///   build/examples/workerd --workload=stencil --listen=unix:/tmp/w0.sock
///
/// SIGTERM/SIGINT stop the daemon cleanly (sessions are killed, the
/// socket file is unlinked).

#include <csignal>
#include <cstdio>
#include <memory>

#include "apps/registry.h"
#include "core/portfolio.h"
#include "core/workload.h"
#include "farm/server.h"
#include "support/flags.h"
#include "support/logging.h"

using namespace gevo;

namespace {

void
printHelp(const core::WorkloadRegistry& registry)
{
    FlagUsage usage("workerd", "farm evaluation worker daemon: serves "
                               "one workload's fitness evaluations to "
                               "evolve --backend=remote clients");
    usage.section("daemon")
        .flag("listen", "<endpoint>",
              "listen address: host:port (TCP) or unix:/path "
              "(Unix-domain socket); required")
        .flag("ready-file", "<file>",
              "create this file once the socket is accepting (scripts "
              "poll it instead of racing the bind)")
        .flag("workload", "<name>",
              "workload to serve (default adept-v1); must match the "
              "client's workload, device and scale knobs exactly — the "
              "handshake enforces this via the trajectory-scope "
              "fingerprint")
        .flag("device", "<gpu>",
              "device model, e.g. P100/V100 (default P100)")
        .flag("devices", "<list>",
              "serve a device-portfolio fitness over this "
              "comma-separated device set ('all' = the full Table I "
              "set); must match the client's --devices exactly")
        .flag("device-agg", "<kind>",
              "portfolio aggregation: worst (default) or mean");
    usage.section("registered workloads");
    for (const auto& name : registry.names()) {
        const auto& w = registry.get(name);
        usage.item(name, w.summary);
        for (const auto& knob : w.knobs)
            usage.item("  --" + knob.name,
                       knob.help + " (default " +
                           std::to_string(knob.defaultValue) + ")");
    }
    usage.print();
}

} // namespace

int
main(int argc, char** argv)
{
    // Process-wide: a client hanging up mid-frame must surface as a
    // write error the session loop handles, never a SIGPIPE death.
    std::signal(SIGPIPE, SIG_IGN);
    // The serving/stopped lines are a daemon's only signs of life.
    support::setLogThreshold(LogLevel::Info);
    apps::registerBuiltinWorkloads();
    auto& registry = core::WorkloadRegistry::instance();
    const Flags flags(argc, argv);
    if (flags.helpRequested()) {
        printHelp(registry);
        return 0;
    }

    const auto listenSpec = flags.getString("listen", "");
    if (listenSpec.empty())
        GEVO_FATAL("--listen is required (host:port or unix:/path); see "
                   "--help");

    const auto name =
        flags.getChoice("workload", registry.names(), "adept-v1");
    const auto& workload = registry.get(name);
    core::WorkloadConfig config;
    config.device = sim::deviceByName(flags.getString("device", "P100"));
    config.flags = &flags;
    const auto instance = workload.make(config);

    // Mirror evolve's portfolio wiring: the wrapped fitness's name()
    // feeds the trajectory-scope fingerprint, so a daemon serving a
    // different device set rejects the handshake.
    const auto devicesCsv = flags.getString("devices", "");
    std::unique_ptr<core::PortfolioFitness> portfolio;
    const core::FitnessFunction* fitness = &instance->fitness();
    if (!devicesCsv.empty()) {
        portfolio = std::make_unique<core::PortfolioFitness>(
            instance->fitness(), sim::resolveDeviceList(devicesCsv),
            core::deviceAggByName(flags.getString("device-agg", "worst")));
        fitness = portfolio.get();
    }

    farm::ServerOptions opts;
    opts.listenSpec = listenSpec;
    opts.readyFile = flags.getString("ready-file", "");
    opts.banner = workload.name + ": " + instance->banner();

    return farm::runWorkerServer(instance->module(), *fitness, opts);
}
