#include "analysis/edit_analysis.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"
#include "support/strings.h"

namespace gevo::analysis {

using mut::Edit;

EditSetFitness
makeEditSetFitness(const ir::Module& base,
                   const core::FitnessFunction& fitness)
{
    return [&base, &fitness](const std::vector<Edit>& edits) {
        return core::evaluateVariant(base, edits, fitness);
    };
}

namespace {

/// Set difference by index list.
std::vector<Edit>
without(const std::vector<Edit>& edits, const std::vector<bool>& removed)
{
    std::vector<Edit> out;
    for (std::size_t i = 0; i < edits.size(); ++i) {
        if (!removed[i])
            out.push_back(edits[i]);
    }
    return out;
}

} // namespace

MinimizationResult
minimizeEdits(const std::vector<Edit>& edits, const EditSetFitness& fitness,
              double threshold)
{
    MinimizationResult result;
    const auto full = fitness(edits);
    GEVO_ASSERT(full.valid, "minimization needs a valid starting set");
    result.fullMs = full.ms();

    // Algorithm 1: walk each edit; measure f(S - weaks) against
    // f(S - weaks - ei); drop ei when the relative gain is below the
    // threshold. "weaks" accumulates, so redundant stepping-stones are
    // caught (paper Sec V-A).
    std::vector<bool> weak(edits.size(), false);
    auto current = fitness(edits);
    for (std::size_t i = 0; i < edits.size(); ++i) {
        weak[i] = true;
        const auto withoutI = fitness(without(edits, weak));
        if (!withoutI.valid) {
            weak[i] = false; // removal breaks the program: edit matters
            continue;
        }
        const double gain = (withoutI.ms() - current.ms()) / withoutI.ms();
        if (gain < threshold) {
            current = withoutI; // confirmed weak; keep it dropped
        } else {
            weak[i] = false;
        }
    }
    for (std::size_t i = 0; i < edits.size(); ++i) {
        if (weak[i]) {
            result.dropped.push_back(edits[i]);
        } else {
            result.kept.push_back(edits[i]);
        }
    }
    result.keptMs = fitness(result.kept).ms();
    return result;
}

EpistasisResult
separateEpistasis(const std::vector<Edit>& edits,
                  const EditSetFitness& fitness, double agreement)
{
    EpistasisResult result;
    const auto baseline = fitness({});
    GEVO_ASSERT(baseline.valid, "baseline must be valid");
    result.baselineMs = baseline.ms();

    // Algorithm 2.
    std::vector<bool> indep(edits.size(), false);
    for (std::size_t i = 0; i < edits.size(); ++i) {
        const auto solo = fitness({edits[i]});
        if (!solo.valid)
            continue; // not individually applicable -> epistatic

        // Context = S minus already-identified independents minus ei.
        std::vector<Edit> context;
        for (std::size_t j = 0; j < edits.size(); ++j) {
            if (j != i && !indep[j])
                context.push_back(edits[j]);
        }
        const auto ctxWithout = fitness(context);
        std::vector<Edit> ctxPlus = context;
        ctxPlus.push_back(edits[i]);
        const auto ctxWith = fitness(ctxPlus);
        if (!ctxWithout.valid || !ctxWith.valid)
            continue;

        const double perfIncr = (baseline.ms() - solo.ms()) / baseline.ms();
        const double perfDecr = (ctxWithout.ms() - ctxWith.ms()) / ctxWithout.ms();
        const double denom =
            std::max(std::abs(perfIncr), std::abs(perfDecr));
        const bool agrees =
            denom < 1e-4 ||
            std::abs(perfIncr - perfDecr) <= agreement * denom;
        if (agrees)
            indep[i] = true;
    }
    for (std::size_t i = 0; i < edits.size(); ++i) {
        if (indep[i]) {
            result.independent.push_back(edits[i]);
        } else {
            result.epistatic.push_back(edits[i]);
        }
    }
    result.independentMs = fitness(result.independent).ms();
    result.epistaticMs = fitness(result.epistatic).ms();
    return result;
}

std::vector<SubsetResult>
searchSubsets(const std::vector<Edit>& epistatic,
              const EditSetFitness& fitness)
{
    GEVO_ASSERT(epistatic.size() <= 20,
                "exhaustive subset search capped at 20 edits (paper "
                "Sec VII notes the same scaling limit)");
    const auto baseline = fitness({});
    const double baseMs = baseline.ms();

    std::vector<SubsetResult> results;
    const std::uint32_t total = 1u << epistatic.size();
    results.reserve(total);
    for (std::uint32_t mask = 0; mask < total; ++mask) {
        SubsetResult r;
        r.mask = mask;
        std::vector<Edit> subset;
        for (std::size_t i = 0; i < epistatic.size(); ++i) {
            if (mask & (1u << i))
                subset.push_back(epistatic[i]);
        }
        const auto fit = fitness(subset);
        r.valid = fit.valid;
        if (fit.valid) {
            r.ms = fit.ms();
            r.improvement = (baseMs - fit.ms()) / baseMs;
        }
        results.push_back(r);
    }
    return results;
}

std::vector<DependencyEdge>
dependencyGraph(std::size_t numEdits,
                const std::vector<SubsetResult>& subsets)
{
    std::vector<DependencyEdge> edges;
    for (std::size_t i = 0; i < numEdits; ++i) {
        // Is edit i valid on its own?
        bool soloValid = false;
        for (const auto& s : subsets) {
            if (s.mask == (1u << i))
                soloValid = s.valid;
        }
        if (soloValid)
            continue;
        for (std::size_t j = 0; j < numEdits; ++j) {
            if (j == i)
                continue;
            bool dependency = true;
            bool sawValidWithI = false;
            for (const auto& s : subsets) {
                if (!(s.mask & (1u << i)) || !s.valid)
                    continue;
                sawValidWithI = true;
                if (!(s.mask & (1u << j))) {
                    dependency = false;
                    break;
                }
            }
            if (dependency && sawValidWithI)
                edges.push_back({i, j});
        }
    }
    return edges;
}

std::string
toDot(std::size_t numEdits, const std::vector<SubsetResult>& subsets,
      const std::vector<DependencyEdge>& edges,
      const std::vector<std::string>& names)
{
    std::string out = "digraph epistasis {\n";
    for (std::size_t i = 0; i < numEdits; ++i) {
        double solo = 0.0;
        bool soloValid = false;
        for (const auto& s : subsets) {
            if (s.mask == (1u << i)) {
                soloValid = s.valid;
                solo = s.improvement;
            }
        }
        const std::string label =
            i < names.size() ? names[i] : strformat("e%zu", i);
        out += strformat(
            "  n%zu [label=\"%s\\n%s\"];\n", i, label.c_str(),
            soloValid ? strformat("%.1f%%", solo * 100).c_str()
                      : "exec failed");
    }
    for (const auto& e : edges)
        out += strformat("  n%zu -> n%zu;\n", e.from, e.to);
    out += "}\n";
    return out;
}

std::vector<std::optional<std::uint32_t>>
discoveryGenerations(const std::vector<core::GenerationLog>& history,
                     const std::vector<Edit>& targets)
{
    std::vector<std::optional<std::uint32_t>> out(targets.size());
    for (const auto& log : history) {
        for (std::size_t t = 0; t < targets.size(); ++t) {
            if (out[t].has_value())
                continue;
            for (const auto& e : log.bestEdits) {
                if (e == targets[t]) {
                    out[t] = log.generation;
                    break;
                }
            }
        }
    }
    return out;
}

} // namespace gevo::analysis
