/// \file
/// The paper's Section V analysis pipeline over evolved edit sets:
///
/// * Algorithm 1 — weak-edit minimization: iteratively drop edits whose
///   in-context contribution is below 1% (1394 -> 17 on ADEPT-V1).
/// * Algorithm 2 — independent/epistatic separation: an edit is
///   independent when its solo gain matches its in-context marginal gain;
///   the remainder is the epistatic set (17 -> 5 + 12).
/// * Exhaustive subset search over the (small) epistatic set, yielding the
///   Figure 7 dependency structure.
/// * Discovery-sequence tracing from a search history (Figure 8).

#ifndef GEVO_ANALYSIS_EDIT_ANALYSIS_H
#define GEVO_ANALYSIS_EDIT_ANALYSIS_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/fitness.h"
#include "mutation/edit.h"

namespace gevo::analysis {

/// Fitness of an edit set: valid + milliseconds, or invalid.
using EditSetFitness =
    std::function<core::FitnessResult(const std::vector<mut::Edit>&)>;

/// Convenience: bind (base module, fitness function) into an EditSetFitness
/// going through core::evaluateVariant (patch + cleanup + verify + run).
EditSetFitness makeEditSetFitness(const ir::Module& base,
                                  const core::FitnessFunction& fitness);

/// Result of Algorithm 1.
struct MinimizationResult {
    std::vector<mut::Edit> kept;    ///< Edits that matter (>= threshold).
    std::vector<mut::Edit> dropped; ///< Weak edits.
    double fullMs = 0.0;            ///< Fitness with every edit applied.
    double keptMs = 0.0;            ///< Fitness with only the kept edits.
};

/// Algorithm 1: identify weak edits at the given relative threshold
/// (paper: 1%). \pre the full edit set evaluates as valid.
MinimizationResult minimizeEdits(const std::vector<mut::Edit>& edits,
                                 const EditSetFitness& fitness,
                                 double threshold = 0.01);

/// Result of Algorithm 2.
struct EpistasisResult {
    std::vector<mut::Edit> independent;
    std::vector<mut::Edit> epistatic;
    double baselineMs = 0.0;       ///< Unmodified program.
    double independentMs = 0.0;    ///< Baseline + independent set.
    double epistaticMs = 0.0;      ///< Baseline + epistatic set.
};

/// Algorithm 2: separate independent from epistatic edits. An edit is
/// independent when it is individually applicable and removable, and its
/// solo improvement matches its in-context marginal improvement within
/// \p agreement (relative).
EpistasisResult separateEpistasis(const std::vector<mut::Edit>& edits,
                                  const EditSetFitness& fitness,
                                  double agreement = 0.3);

/// One subset evaluation from the exhaustive epistatic search.
struct SubsetResult {
    std::uint32_t mask = 0;     ///< Bit i = edit i of the epistatic set.
    bool valid = false;
    double ms = 0.0;
    double improvement = 0.0;   ///< (baseline - ms) / baseline; 0 if invalid.
};

/// Exhaustively evaluate every subset of \p epistatic (paper Sec V-C;
/// feasible because the set is small — capped at 20 edits).
std::vector<SubsetResult>
searchSubsets(const std::vector<mut::Edit>& epistatic,
              const EditSetFitness& fitness);

/// Dependency edge: edit `from` only functions when `to` is present.
struct DependencyEdge {
    std::size_t from = 0;
    std::size_t to = 0;
};

/// Derive the Figure 7 dependency graph from subset results: edit j is a
/// dependency of edit i when every valid subset containing i also
/// contains j (and i alone is invalid).
std::vector<DependencyEdge>
dependencyGraph(std::size_t numEdits,
                const std::vector<SubsetResult>& subsets);

/// Render subset results + dependencies as Graphviz DOT (Figure 7).
std::string toDot(std::size_t numEdits,
                  const std::vector<SubsetResult>& subsets,
                  const std::vector<DependencyEdge>& edges,
                  const std::vector<std::string>& names);

/// First generation at which each target edit appears in the
/// generation-best individual (Figure 8); nullopt when never discovered.
std::vector<std::optional<std::uint32_t>>
discoveryGenerations(const std::vector<core::GenerationLog>& history,
                     const std::vector<mut::Edit>& targets);

} // namespace gevo::analysis

#endif // GEVO_ANALYSIS_EDIT_ANALYSIS_H
