#include "apps/adept/cpu_reference.h"

#include <algorithm>
#include <limits>

namespace gevo::adept {

namespace {

constexpr std::int32_t kNegInf = -(1 << 28);

/// Column-major Gotoh scan; returns (score, endA=i, endB=j), positions
/// 0-based, -1/-1 for the empty alignment. Ties keep the smallest j, then
/// the smallest i — exactly the GPU kernel's per-thread (ascending i,
/// strict >) update followed by the ascending-j (strict >) reduction.
AlignmentResult
forwardScan(const std::string& a, const std::string& b,
            const ScoringParams& sc)
{
    const auto n = static_cast<std::int32_t>(a.size());
    const auto m = static_cast<std::int32_t>(b.size());
    AlignmentResult best;

    // Column-major: process columns j (positions of b); each column needs
    // the previous column's H and E plus a running F per row.
    std::vector<std::int32_t> prevColH(static_cast<std::size_t>(n) + 1, 0);
    std::vector<std::int32_t> prevColE(static_cast<std::size_t>(n) + 1,
                                       kNegInf);
    std::vector<std::int32_t> curColH(prevColH);
    std::vector<std::int32_t> curColE(prevColE);

    for (std::int32_t j = 0; j < m; ++j) {
        curColH[0] = 0;
        curColE[0] = kNegInf;
        std::int32_t f = kNegInf;
        for (std::int32_t i = 0; i < n; ++i) {
            const std::int32_t s =
                a[static_cast<std::size_t>(i)] ==
                        b[static_cast<std::size_t>(j)]
                    ? sc.match
                    : sc.mismatch;
            const std::int32_t e = std::max(prevColH[i + 1] - sc.gapOpen,
                                            prevColE[i + 1] - sc.gapExtend);
            f = std::max(curColH[i] - sc.gapOpen, f - sc.gapExtend);
            std::int32_t h = std::max(0, prevColH[i] + s);
            h = std::max(h, e);
            h = std::max(h, f);
            curColH[i + 1] = h;
            curColE[i + 1] = e;
            if (h > best.score) {
                best.score = h;
                best.endA = i;
                best.endB = j;
            }
        }
        std::swap(prevColH, curColH);
        std::swap(prevColE, curColE);
    }
    return best;
}

} // namespace

AlignmentResult
alignForwardCpu(const std::string& a, const std::string& b,
                const ScoringParams& scoring)
{
    return forwardScan(a, b, scoring);
}

AlignmentResult
alignFullCpu(const std::string& a, const std::string& b,
             const ScoringParams& scoring)
{
    AlignmentResult result = forwardScan(a, b, scoring);
    if (result.score <= 0)
        return result;
    // Reverse pass (the ADEPT second kernel): align the reversed prefixes
    // ending at (endA, endB); the best cell maps back to the start.
    std::string ra(a.begin(),
                   a.begin() + static_cast<std::size_t>(result.endA) + 1);
    std::string rb(b.begin(),
                   b.begin() + static_cast<std::size_t>(result.endB) + 1);
    std::reverse(ra.begin(), ra.end());
    std::reverse(rb.begin(), rb.end());
    const AlignmentResult rev = forwardScan(ra, rb, scoring);
    result.startA = result.endA - rev.endA;
    result.startB = result.endB - rev.endB;
    return result;
}

std::vector<AlignmentResult>
alignAllCpu(const std::vector<SequencePair>& pairs,
            const ScoringParams& scoring, bool withStarts)
{
    std::vector<AlignmentResult> out;
    out.reserve(pairs.size());
    for (const auto& p : pairs) {
        out.push_back(withStarts ? alignFullCpu(p.a, p.b, scoring)
                                 : alignForwardCpu(p.a, p.b, scoring));
    }
    return out;
}

} // namespace gevo::adept
