/// \file
/// CPU reference Smith-Waterman with affine gaps (Gotoh).
///
/// This is the validation oracle for the GPU kernels (paper Sec III-C:
/// "gene sequence alignment often requires strict accuracy so we require
/// 100% accuracy"). The tie-breaking convention matches the GPU
/// reduction: scan column-major (j outer, i inner), keep strictly better
/// scores, so ties resolve to the smallest endB, then smallest endA.

#ifndef GEVO_APPS_ADEPT_CPU_REFERENCE_H
#define GEVO_APPS_ADEPT_CPU_REFERENCE_H

#include <vector>

#include "apps/adept/scoring.h"
#include "apps/adept/sequences.h"

namespace gevo::adept {

/// Forward pass only: best score and end positions.
AlignmentResult alignForwardCpu(const std::string& a, const std::string& b,
                                const ScoringParams& scoring);

/// Full alignment: forward pass plus the ADEPT-style reverse pass that
/// recovers start positions by aligning the reversed prefixes.
AlignmentResult alignFullCpu(const std::string& a, const std::string& b,
                             const ScoringParams& scoring);

/// Convenience: align every pair (forward only when \p withStarts false).
std::vector<AlignmentResult>
alignAllCpu(const std::vector<SequencePair>& pairs,
            const ScoringParams& scoring, bool withStarts);

} // namespace gevo::adept

#endif // GEVO_APPS_ADEPT_CPU_REFERENCE_H
