#include "apps/adept/driver.h"

#include <algorithm>

#include "apps/adept/cpu_reference.h"
#include "sim/device_memory.h"
#include "sim/program.h"
#include "support/logging.h"

namespace gevo::adept {

AdeptDriver::AdeptDriver(std::vector<SequencePair> pairs,
                         ScoringParams scoring, int version,
                         std::uint32_t maxThreads)
    : pairs_(std::move(pairs)), scoring_(scoring), version_(version),
      maxThreads_(maxThreads)
{
    GEVO_ASSERT(!pairs_.empty(), "empty dataset");
    std::size_t maxLen = 0;
    for (const auto& p : pairs_)
        maxLen = std::max({maxLen, p.a.size(), p.b.size()});
    maxLen_ = static_cast<std::uint32_t>(maxLen);
    GEVO_ASSERT(maxLen_ <= maxThreads_,
                "sequences longer than the kernel's thread block");
    expected_ = alignAllCpu(pairs_, scoring_, version_ == 1);
}

AdeptRunOutput
AdeptDriver::run(const ir::Module& module, const sim::DeviceConfig& dev,
                 bool profile) const
{
    return run(sim::ProgramSet::decodeModule(module), dev, profile);
}

AdeptRunOutput
AdeptDriver::run(const sim::ProgramSet& programs,
                 const sim::DeviceConfig& dev, bool profile) const
{
    AdeptRunOutput out;
    const auto n = static_cast<std::uint32_t>(pairs_.size());
    const std::int64_t stride = maxThreads_;

    // Size the arena to the actual allocation plan (sequences, lengths,
    // outputs, plus page-rounding slack): the arena is zeroed on
    // construction once per evaluation, so an oversized fixed floor is
    // pure memset overhead on the hot path. Capacity has no fault
    // semantics — OOB detection keys on the page-rounded allocated
    // extent, not the arena size.
    sim::DeviceMemory mem(std::max<std::int64_t>(
        1 << 20, 16ll * stride * n + (1 << 17)));
    const auto seqA = mem.alloc(stride * n);
    const auto seqB = mem.alloc(stride * n);
    const auto lenA = mem.alloc(4ll * n);
    const auto lenB = mem.alloc(4ll * n);
    const auto outScore = mem.alloc(4ll * n);
    const auto outEndA = mem.alloc(4ll * n);
    const auto outEndB = mem.alloc(4ll * n);
    sim::DevPtr outStartA = 0;
    sim::DevPtr outStartB = 0;
    if (version_ == 1) {
        outStartA = mem.alloc(4ll * n);
        outStartB = mem.alloc(4ll * n);
    }

    for (std::uint32_t p = 0; p < n; ++p) {
        const auto& pair = pairs_[p];
        mem.copyIn(seqA + stride * p, pair.a.data(),
                   static_cast<std::int64_t>(pair.a.size()));
        mem.copyIn(seqB + stride * p, pair.b.data(),
                   static_cast<std::int64_t>(pair.b.size()));
        mem.write<std::int32_t>(lenA + 4ll * p,
                                static_cast<std::int32_t>(pair.a.size()));
        mem.write<std::int32_t>(lenB + 4ll * p,
                                static_cast<std::int32_t>(pair.b.size()));
    }

    const auto* fwdProg =
        programs.find(version_ == 0 ? "sw_fwd_v0" : "sw_fwd_v1");
    if (fwdProg == nullptr) {
        out.fault.kind = sim::FaultKind::InvalidProgram;
        out.fault.detail = "forward kernel missing from module";
        return out;
    }
    const sim::LaunchDims dims{n, maxThreads_, oversubscribe_,
                               blockThreads_};
    const std::vector<std::uint64_t> fwdArgs = {
        static_cast<std::uint64_t>(seqA),
        static_cast<std::uint64_t>(seqB),
        static_cast<std::uint64_t>(lenA),
        static_cast<std::uint64_t>(lenB),
        static_cast<std::uint64_t>(outScore),
        static_cast<std::uint64_t>(outEndA),
        static_cast<std::uint64_t>(outEndB),
        static_cast<std::uint64_t>(stride),
    };
    const auto fwdRes =
        sim::launchKernel(dev, mem, *fwdProg, dims, fwdArgs, profile);
    out.fwdStats = fwdRes.stats;
    out.totalMs += fwdRes.stats.ms;
    if (!fwdRes.ok()) {
        out.fault = fwdRes.fault;
        return out;
    }

    if (version_ == 1) {
        const auto* revProg = programs.find("sw_rev_v1");
        if (revProg == nullptr) {
            out.fault.kind = sim::FaultKind::InvalidProgram;
            out.fault.detail = "reverse kernel missing from module";
            return out;
        }
        const std::vector<std::uint64_t> revArgs = {
            static_cast<std::uint64_t>(seqA),
            static_cast<std::uint64_t>(seqB),
            static_cast<std::uint64_t>(outEndA),
            static_cast<std::uint64_t>(outEndB),
            static_cast<std::uint64_t>(outStartA),
            static_cast<std::uint64_t>(outStartB),
            static_cast<std::uint64_t>(stride),
        };
        const auto revRes =
            sim::launchKernel(dev, mem, *revProg, dims, revArgs, profile);
        out.revStats = revRes.stats;
        out.totalMs += revRes.stats.ms;
        if (!revRes.ok()) {
            out.fault = revRes.fault;
            return out;
        }
    }

    out.results.resize(n);
    for (std::uint32_t p = 0; p < n; ++p) {
        auto& r = out.results[p];
        r.score = mem.read<std::int32_t>(outScore + 4ll * p);
        r.endA = mem.read<std::int32_t>(outEndA + 4ll * p);
        r.endB = mem.read<std::int32_t>(outEndB + 4ll * p);
        if (version_ == 1) {
            r.startA = mem.read<std::int32_t>(outStartA + 4ll * p);
            r.startB = mem.read<std::int32_t>(outStartB + 4ll * p);
        }
    }
    return out;
}

} // namespace gevo::adept
