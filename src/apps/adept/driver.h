/// \file
/// Host-side driver: packs sequence pairs into device memory, launches the
/// ADEPT kernels (from any module variant — this is the "load the mutated
/// PTX" step of paper Fig. 1), and reads back alignment results.

#ifndef GEVO_APPS_ADEPT_DRIVER_H
#define GEVO_APPS_ADEPT_DRIVER_H

#include <vector>

#include "apps/adept/kernels.h"
#include "apps/adept/scoring.h"
#include "apps/adept/sequences.h"
#include "sim/device_config.h"
#include "sim/executor.h"

namespace gevo::adept {

/// Output of one full run over a pair set.
struct AdeptRunOutput {
    sim::Fault fault;                      ///< First fault, if any.
    std::vector<AlignmentResult> results;  ///< Per pair (empty on fault).
    double totalMs = 0.0;                  ///< Sum of kernel times.
    sim::LaunchStats fwdStats;
    sim::LaunchStats revStats;             ///< V1 only.

    bool ok() const { return fault.ok(); }
};

/// Immutable dataset + launch configuration; safe to share across threads
/// (each run() builds its own device memory).
class AdeptDriver {
  public:
    /// \p version selects result decoding (V0: no start positions).
    AdeptDriver(std::vector<SequencePair> pairs, ScoringParams scoring,
                int version, std::uint32_t maxThreads);

    /// Execute the pre-decoded kernels over the dataset on \p dev. This is
    /// the scoring stage of the two-stage pipeline: no IR access, no
    /// decoding — just launches against an already-compiled variant.
    AdeptRunOutput run(const sim::ProgramSet& programs,
                       const sim::DeviceConfig& dev,
                       bool profile = false) const;

    /// Convenience: decode \p module's kernels and run them (one-off
    /// callers; the hot path compiles once and uses the overload above).
    AdeptRunOutput run(const ir::Module& module,
                       const sim::DeviceConfig& dev,
                       bool profile = false) const;

    /// CPU-oracle results for the dataset (start positions iff version 1).
    const std::vector<AlignmentResult>& expected() const
    {
        return expected_;
    }

    /// The dataset.
    const std::vector<SequencePair>& pairs() const { return pairs_; }
    std::uint32_t maxThreads() const { return maxThreads_; }

    /// Timing-grid multiplier (see sim::LaunchDims::oversubscribe): the
    /// fitness pair set stands in for the paper's 30,000-pair batches, so
    /// kernels are priced in the saturated-device regime by default.
    void setOversubscribe(std::uint32_t factor) { oversubscribe_ = factor; }
    std::uint32_t oversubscribe() const { return oversubscribe_; }

    /// Host threads to partition blocks across per launch (see
    /// sim::LaunchDims::blockThreads; 0/1 = serial). Safe for the ADEPT
    /// kernels: each block aligns one pair and writes only its own output
    /// slots — blocks never communicate. Meant for single large
    /// evaluations (held-out checks, profiling) where the evolution
    /// engine's population-level thread pool sits idle.
    void setBlockThreads(std::uint32_t threads) { blockThreads_ = threads; }
    std::uint32_t blockThreads() const { return blockThreads_; }

  private:
    std::vector<SequencePair> pairs_;
    ScoringParams scoring_;
    int version_;
    std::uint32_t maxThreads_;
    std::uint32_t maxLen_;
    std::uint32_t oversubscribe_ = 512;
    std::uint32_t blockThreads_ = 1;
    std::vector<AlignmentResult> expected_;
};

} // namespace gevo::adept

#endif // GEVO_APPS_ADEPT_DRIVER_H
