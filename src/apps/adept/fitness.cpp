#include "apps/adept/fitness.h"

#include "support/strings.h"

namespace gevo::adept {

core::FitnessResult
AdeptFitness::evaluate(const core::CompiledVariant& variant) const
{
    return evaluateOn(variant, dev_);
}

core::FitnessResult
AdeptFitness::evaluateOn(const core::CompiledVariant& variant,
                         const sim::DeviceConfig& dev) const
{
    const auto out = driver_.run(variant.programs, dev);
    if (!out.ok())
        return core::FitnessResult::fail(out.fault.detail);
    const auto& expected = driver_.expected();
    for (std::size_t p = 0; p < expected.size(); ++p) {
        if (!(out.results[p] == expected[p])) {
            return core::FitnessResult::fail(strformat(
                "pair %zu: got score %d end (%d,%d) start (%d,%d), want "
                "score %d end (%d,%d) start (%d,%d)",
                p, out.results[p].score, out.results[p].endA,
                out.results[p].endB, out.results[p].startA,
                out.results[p].startB, expected[p].score, expected[p].endA,
                expected[p].endB, expected[p].startA, expected[p].startB));
        }
    }
    return core::FitnessResult::pass(
        out.totalMs,
        static_cast<double>(out.fwdStats.globalSectors +
                            out.revStats.globalSectors),
        static_cast<double>(out.fwdStats.divergences +
                            out.revStats.divergences));
}

bool
AdeptFitness::profileVariant(const core::CompiledVariant& variant,
                             core::ProfileSummary* out) const
{
    const auto run = driver_.run(variant.programs, dev_, /*profile=*/true);
    if (!run.ok())
        return false;
    *out = core::ProfileSummary{};
    out->accumulateLaunch(run.fwdStats);
    out->accumulateLaunch(run.revStats);
    return true;
}

std::string
AdeptFitness::name() const
{
    return strformat("adept(%zu pairs, %s)", driver_.pairs().size(),
                     dev_.name.c_str());
}

} // namespace gevo::adept
