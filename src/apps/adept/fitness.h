/// \file
/// ADEPT fitness: simulated kernel time with strict-accuracy validation
/// (paper Sec III-C: 100% accuracy required; no error tolerance for
/// sequence alignment).

#ifndef GEVO_APPS_ADEPT_FITNESS_H
#define GEVO_APPS_ADEPT_FITNESS_H

#include "apps/adept/driver.h"
#include "core/fitness.h"

namespace gevo::adept {

/// Scores a module variant by total simulated kernel time over the
/// driver's pair set; any fault or any result mismatch invalidates it.
class AdeptFitness : public core::FitnessFunction {
  public:
    AdeptFitness(const AdeptDriver& driver, sim::DeviceConfig dev)
        : driver_(driver), dev_(std::move(dev))
    {
    }

    core::FitnessResult
    evaluate(const core::CompiledVariant& variant) const override;

    core::FitnessResult
    evaluateOn(const core::CompiledVariant& variant,
               const sim::DeviceConfig& dev) const override;

    bool profileVariant(const core::CompiledVariant& variant,
                        core::ProfileSummary* out) const override;

    std::string name() const override;

  private:
    const AdeptDriver& driver_;
    sim::DeviceConfig dev_;
};

} // namespace gevo::adept

#endif // GEVO_APPS_ADEPT_FITNESS_H
