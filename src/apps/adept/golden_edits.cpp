#include "apps/adept/golden_edits.h"

#include "support/logging.h"

namespace gevo::adept {

namespace {

using mut::Edit;
using mut::EditKind;

Edit
condReplace(std::uint64_t brcUid, ir::Operand newCond)
{
    Edit e;
    e.kind = EditKind::OperandReplace;
    e.srcUid = brcUid;
    e.opIndex = 0;
    e.newOperand = newCond;
    return e;
}

Edit
del(std::uint64_t uid)
{
    Edit e;
    e.kind = EditKind::InstrDelete;
    e.srcUid = uid;
    return e;
}

Edit
opReplace(std::uint64_t uid, int slot, ir::Operand op)
{
    Edit e;
    e.kind = EditKind::OperandReplace;
    e.srcUid = uid;
    e.opIndex = static_cast<std::int8_t>(slot);
    e.newOperand = op;
    return e;
}

/// The per-kernel independent plants, shared by both V1 kernels and V0.
void
appendCommonIndependents(const AdeptModule& m, const std::string& p,
                         std::vector<NamedEdit>* out)
{
    out->push_back({p + "dup-rowptr",
                    opReplace(m.uidOf(p + "achar.load"), 0,
                              ir::Operand::reg(m.regOf(p + "reg.rowptr1")))});
    out->push_back({p + "bounds-check",
                    condReplace(m.uidOf(p + "bounds.brc"),
                                ir::Operand::imm(1))});
    out->push_back(
        {p + "redundant-finit", del(m.uidOf(p + "redundant.finit"))});
}

} // namespace

std::vector<NamedEdit>
v0GoldenEdits(const AdeptModule& built)
{
    GEVO_ASSERT(built.version == 0, "v0 edits need a V0 module");
    std::vector<NamedEdit> out;
    // Sec VI-C: kill the per-diagonal re-initialization loop...
    out.push_back({"v0-memset-loop",
                   condReplace(built.uidOf("v0.memset.brc"),
                               ir::Operand::imm(0))});
    // ...and its companion barrier.
    out.push_back({"v0-memset-bar", del(built.uidOf("v0.memset.bar"))});
    appendCommonIndependents(built, "v0.", &out);
    return out;
}

std::vector<NamedEdit>
v1EpistaticCluster(const AdeptModule& built)
{
    GEVO_ASSERT(built.version == 1, "v1 edits need a V1 module");
    std::vector<NamedEdit> out;
    // Edit 6 (Fig 9 line 8): local publish on every diagonal (rewrites
    // the predicated guard's condition).
    out.push_back({"e6",
                   condReplace(built.uidOf("v1f.localwrite.sel"),
                               ir::Operand::reg(
                                   built.regOf("v1f.reg.tidltmin")))});
    // Edit 8 (Fig 9 line 17): E/H reads always from the local arrays.
    out.push_back({"e8",
                   condReplace(built.uidOf("v1f.read_eh.brc"),
                               ir::Operand::reg(
                                   built.regOf("v1f.reg.isvalid")))});
    // Edit 10 (Fig 9 line 26): same for the diagonal H.
    out.push_back({"e10",
                   condReplace(built.uidOf("v1f.read_hh.brc"),
                               ir::Operand::reg(
                                   built.regOf("v1f.reg.isvalid")))});
    // Edit 5 (Fig 9 line 3): lane 31 -> lane 0 publish.
    out.push_back({"e5",
                   opReplace(built.uidOf("v1f.lane31.cmp"), 1,
                             ir::Operand::imm(0))});
    return out;
}

std::vector<NamedEdit>
v1ReverseCluster(const AdeptModule& built)
{
    GEVO_ASSERT(built.version == 1, "v1 edits need a V1 module");
    std::vector<NamedEdit> out;
    // Edit 11: the reverse kernel's local-publish guard.
    out.push_back({"e11",
                   condReplace(built.uidOf("v1r.localwrite.sel"),
                               ir::Operand::reg(
                                   built.regOf("v1r.reg.tidltmin")))});
    // Edit 0: the reverse kernel's E/H read guard.
    out.push_back({"e0",
                   condReplace(built.uidOf("v1r.read_eh.brc"),
                               ir::Operand::reg(
                                   built.regOf("v1r.reg.isvalid")))});
    return out;
}

std::vector<NamedEdit>
v1ReverseClusterFull(const AdeptModule& built)
{
    auto out = v1ReverseCluster(built);
    // The reverse-kernel analogues of edits 10 and 5 (the paper's
    // 12-edit epistatic set spans both kernels).
    out.push_back({"e0b",
                   condReplace(built.uidOf("v1r.read_hh.brc"),
                               ir::Operand::reg(
                                   built.regOf("v1r.reg.isvalid")))});
    out.push_back({"e11b",
                   opReplace(built.uidOf("v1r.lane31.cmp"), 1,
                             ir::Operand::imm(0))});
    return out;
}

std::vector<NamedEdit>
v1IndependentEdits(const AdeptModule& built)
{
    GEVO_ASSERT(built.version == 1, "v1 edits need a V1 module");
    std::vector<NamedEdit> out;
    // Sec VI-B: reroute the first shuffle's mask to the activemask; the
    // ballot_sync becomes dead and codegen removes it.
    out.push_back({"ballot",
                   opReplace(built.uidOf("v1f.shfl.e"), 0,
                             ir::Operand::reg(built.regOf("v1f.reg.am")))});
    out.push_back({"extra-barrier", del(built.uidOf("v1f.extrabar"))});
    appendCommonIndependents(built, "v1f.", &out);
    appendCommonIndependents(built, "v1r.", &out);
    return out;
}

std::vector<NamedEdit>
v1AllGoldenEdits(const AdeptModule& built)
{
    auto out = v1EpistaticCluster(built);
    for (auto& e : v1ReverseClusterFull(built))
        out.push_back(std::move(e));
    for (auto& e : v1IndependentEdits(built))
        out.push_back(std::move(e));
    return out;
}

NamedEdit
v1PortabilityTrapEdit(const AdeptModule& built)
{
    // Move the E shuffle from the uniform top-of-loop position into the
    // divergent shuffle-read path. On Pascal's lock-step model this is a
    // small win (the shuffle stops executing on diagonals that take the
    // local-array path) and still reads the right register values; on
    // Volta the pre-divergence mask now names inactive lanes and the
    // shfl_sync faults — the paper's Sec IV observation that "a small
    // subset of the optimized code from the P100 GPU cannot run directly
    // on the V100".
    Edit e;
    e.kind = EditKind::InstrMove;
    e.srcUid = built.uidOf("v1f.shfl.e");
    e.dstUid = built.uidOf("v1f.eh_shfl.movE");
    return {"volta-trap", e};
}

} // namespace gevo::adept
