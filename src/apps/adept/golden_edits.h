/// \file
/// Canonical ("golden") edit sets: the optimizations the paper's Section
/// V/VI analysis names, expressed against a built AdeptModule's anchors.
///
/// The benches use these to regenerate Figures 4/7 and the Sec VI studies
/// without re-running multi-day searches; the live-search benches verify
/// the engine can rediscover them (Figures 6/8).

#ifndef GEVO_APPS_ADEPT_GOLDEN_EDITS_H
#define GEVO_APPS_ADEPT_GOLDEN_EDITS_H

#include <vector>

#include "apps/adept/kernels.h"
#include "apps/golden_edit.h"
#include "mutation/edit.h"

namespace gevo::adept {

/// An edit with the paper's name for it (e.g. "e6", "v0-memset",
/// "ballot"); shared shape, see apps/golden_edit.h.
using NamedEdit = apps::NamedEdit;
using apps::editsOf;

/// ADEPT-V0 golden set: the Sec VI-C memset-loop kill (branch condition ->
/// false), the redundant barrier delete, and the small independents.
std::vector<NamedEdit> v0GoldenEdits(const AdeptModule& built);

/// The Figure 7 epistatic cluster on the forward kernel: e5, e6, e8, e10.
std::vector<NamedEdit> v1EpistaticCluster(const AdeptModule& built);

/// The second, smaller cluster on the reverse kernel: e0, e11.
std::vector<NamedEdit> v1ReverseCluster(const AdeptModule& built);

/// The full reverse-kernel cluster (e0, e11 plus the analogues of edits
/// 10 and 5) — together with the forward cluster this is our counterpart
/// of the paper's 12-edit epistatic set.
std::vector<NamedEdit> v1ReverseClusterFull(const AdeptModule& built);

/// The independent edits of Sec V-B / VI-B (ballot reroute, extra-barrier
/// delete, duplicate row pointer reroute, dominated bounds check, redundant
/// F re-init) on both V1 kernels.
std::vector<NamedEdit> v1IndependentEdits(const AdeptModule& built);

/// Everything for V1 (epistatic + reverse cluster + independents) — the
/// "GEVO-optimized ADEPT-V1" configuration of Figure 4.
std::vector<NamedEdit> v1AllGoldenEdits(const AdeptModule& built);

/// The Volta portability trap (paper Sec IV "Generality"): replaces the
/// shuffle mask with the full-warp constant. Runs on Pascal, faults on
/// V100.
NamedEdit v1PortabilityTrapEdit(const AdeptModule& built);

} // namespace gevo::adept

#endif // GEVO_APPS_ADEPT_GOLDEN_EDITS_H
