#include "apps/adept/kernels.h"

#include "ir/builder.h"
#include "support/logging.h"

namespace gevo::adept {

using ir::IRBuilder;
using ir::MemSpace;
using ir::MemWidth;
using ir::Operand;

std::uint64_t
AdeptModule::uidOf(const std::string& name) const
{
    const auto it = anchors.find(name);
    if (it == anchors.end())
        GEVO_FATAL("unknown ADEPT anchor '%s'", name.c_str());
    return it->second;
}

std::int64_t
AdeptModule::regOf(const std::string& name) const
{
    const auto it = regs.find(name);
    if (it == regs.end())
        GEVO_FATAL("unknown ADEPT register anchor '%s'", name.c_str());
    return it->second;
}

namespace {

/// Shared-memory byte offsets. V1 reserves 16 warp slots for the
/// warp-boundary publish arrays; both versions keep per-thread reduction
/// arrays at the tail.
struct SharedLayout {
    std::int64_t wbE = 0;    ///< V1: sh_prev_E[16 warps].
    std::int64_t wbH = 64;   ///< V1: sh_prev_H.
    std::int64_t wbHH = 128; ///< V1: sh_prev_prev_H.
    std::int64_t locE = 0;   ///< exchange array E (V0: the only mechanism).
    std::int64_t locH = 0;
    std::int64_t locHH = 0;
    std::int64_t best = 0;
    std::int64_t bestI = 0;
    std::int64_t bestJ = 0;
    std::uint32_t totalBytes = 0;

    /// V1 only: byte distance from the local arrays to a same-shape spill
    /// region used by the predicated publish (see emitExchangePublish).
    std::int64_t spillDelta = 0;

    static SharedLayout
    forVersion(int version, std::uint32_t T)
    {
        SharedLayout l;
        const std::int64_t base = version == 0 ? 0 : 192;
        l.locE = base;
        l.locH = base + 4ll * T;
        l.locHH = base + 8ll * T;
        if (version == 1) {
            // Spill region shadows locE/locH/locHH at +12T.
            l.spillDelta = 12ll * T;
            l.best = base + 24ll * T;
        } else {
            l.best = base + 12ll * T;
        }
        l.bestI = l.best + 4ll * T;
        l.bestJ = l.best + 8ll * T;
        l.totalBytes = static_cast<std::uint32_t>(l.bestJ + 4ll * T);
        return l;
    }
};

/// Emits one ADEPT kernel. The three kernels (V0 fwd, V1 fwd, V1 rev)
/// share the wavefront skeleton; flags select the exchange mechanism and
/// the sequence addressing.
class KernelEmitter {
  public:
    KernelEmitter(IRBuilder& b, AdeptModule& out, int version, bool reverse,
                  std::uint32_t T)
        : b_(b), out_(out), version_(version), reverse_(reverse), T_(T),
          layout_(SharedLayout::forVersion(version, T)),
          prefix_(version == 0 ? "v0." : (reverse ? "v1r." : "v1f."))
    {
    }

    void emit();

  private:
    /// Register the last-emitted instruction under an anchor name.
    void
    anchor(const std::string& name)
    {
        auto& fn = b_.kernel();
        out_.anchors[prefix_ + name] =
            fn.blocks[b_.insertBlock()].instrs.back().uid;
    }
    /// Register a value register under an anchor name.
    void
    regAnchor(const std::string& name, Operand r)
    {
        GEVO_ASSERT(r.isReg(), "reg anchor on non-register");
        out_.regs[prefix_ + name] = r.value;
    }

    Operand imm(std::int64_t v) const { return Operand::imm(v); }

    /// Byte address within shared memory: base + index*4 (i64 register).
    Operand
    sharedAddr(std::int64_t base, Operand index32)
    {
        const auto idx = b_.sext64(index32);
        const auto off = b_.lmul(idx, imm(4));
        return b_.ladd(off, imm(base));
    }

    void emitPrologue();
    void emitDiagLoopHeader();
    void emitV0MemsetPlant();
    void emitExchangePublish();
    void emitShuffles();
    void emitValidity();
    void emitNeighborRead();
    void emitCellCompute();
    void emitRotateAndLatch();
    void emitReduction();

    IRBuilder& b_;
    AdeptModule& out_;
    int version_;
    bool reverse_;
    std::uint32_t T_;
    SharedLayout layout_;
    std::string prefix_;

    // ---- blocks ----
    std::int32_t bbDiag_ = -1;
    std::int32_t bbReduce_ = -1;
    std::int32_t bbAfterCompute_ = -1;
    std::int32_t bbCell_ = -1;

    // ---- registers ----
    Operand tid_, ntid_, bid_, lane_, warp_;
    Operand lenA_, lenB_;   ///< Effective problem sizes (n, m).
    Operand endA_, endB_;   ///< Reverse kernel inputs.
    Operand aBase_, bBase_;
    Operand myChar_;
    Operand prevH_, prevE_, prevF_, prevHH_;
    Operand curH_, curE_, curF_;
    Operand best_, bestI_, bestJ_;
    Operand d_, nDiags_, iRow_;
    Operand isValid_;
    Operand nH_, nE_, nHH_;
    Operand pg_, tm_;
    Operand shE_, shH_, shHH_;
    Operand locWAddrE_, locWAddrH_, locWAddrHH_;
    Operand locNbE_, locNbH_, locNbHH_;
    Operand wbWAddrE_, wbWAddrH_, wbWAddrHH_;
    Operand wbNbE_, wbNbH_, wbNbHH_;
    Operand bestAddr_, bestIAddr_, bestJAddr_;
};

void
KernelEmitter::emitPrologue()
{
    b_.setLoc(version_ == 0 ? "adept_v0.cu:prologue"
                            : "adept_v1.cu:prologue");
    tid_ = b_.tid();
    ntid_ = b_.ntid();
    bid_ = b_.bid();
    lane_ = b_.lane();
    warp_ = b_.warpid();

    const auto bid64 = b_.sext64(bid_);
    const auto bidOff4 = b_.lmul(bid64, imm(4));

    if (!reverse_) {
        // p2/p3 = length arrays.
        lenA_ = b_.ld(MemSpace::Global, MemWidth::I32,
                      b_.ladd(b_.param(2), bidOff4));
        lenB_ = b_.ld(MemSpace::Global, MemWidth::I32,
                      b_.ladd(b_.param(3), bidOff4));
    } else {
        // p2/p3 = forward end positions; problem sizes are endA+1, endB+1.
        endA_ = b_.ld(MemSpace::Global, MemWidth::I32,
                      b_.ladd(b_.param(2), bidOff4));
        endB_ = b_.ld(MemSpace::Global, MemWidth::I32,
                      b_.ladd(b_.param(3), bidOff4));
        lenA_ = b_.iadd(endA_, imm(1));
        lenB_ = b_.iadd(endB_, imm(1));
    }

    // Sequence bases: blob + pair * maxLen (maxLen is the last param).
    const auto maxLenParam =
        b_.param(reverse_ ? 6u : 7u);
    const auto pairOff = b_.lmul(bid64, maxLenParam);
    aBase_ = b_.ladd(b_.param(0), pairOff);
    bBase_ = b_.ladd(b_.param(1), pairOff);

    if (reverse_) {
        // Empty forward alignment: emit -1/-1 and quit before any barrier.
        const auto bbEmpty = b_.block("empty");
        const auto bbEmptyW = b_.block("empty_write");
        const auto bbEmptyR = b_.block("empty_ret");
        const auto bbMain = b_.block("main");
        b_.setInsert(0);
        const auto isEmpty = b_.ilt(endA_, imm(0));
        b_.brc(isEmpty, bbEmpty, bbMain);
        b_.setInsert(bbEmpty);
        const auto t0 = b_.ieq(tid_, imm(0));
        b_.brc(t0, bbEmptyW, bbEmptyR);
        b_.setInsert(bbEmptyW);
        const auto bidOff4b = b_.lmul(b_.sext64(bid_), imm(4));
        b_.st(MemSpace::Global, MemWidth::I32,
              b_.ladd(b_.param(4), bidOff4b), imm(-1));
        b_.st(MemSpace::Global, MemWidth::I32,
              b_.ladd(b_.param(5), bidOff4b), imm(-1));
        b_.br(bbEmptyR);
        b_.setInsert(bbEmptyR);
        b_.ret();
        b_.setInsert(bbMain);
    }

    // My query character b[j]: forward j = tid, reverse j = endB - tid
    // (clamped so inactive threads stay in bounds).
    if (!reverse_) {
        myChar_ = b_.ld(MemSpace::Global, MemWidth::U8,
                        b_.ladd(bBase_, b_.sext64(tid_)));
    } else {
        const auto off = b_.imax(b_.isub(endB_, tid_), imm(0));
        myChar_ = b_.ld(MemSpace::Global, MemWidth::U8,
                        b_.ladd(bBase_, b_.sext64(off)));
    }

    // Wavefront state.
    prevH_ = b_.mov(imm(0));
    prevE_ = b_.mov(imm(kNegInfScore));
    prevF_ = b_.mov(imm(kNegInfScore));
    prevHH_ = b_.mov(imm(0));
    curH_ = b_.mov(imm(0));
    curE_ = b_.mov(imm(kNegInfScore));
    curF_ = b_.mov(imm(kNegInfScore));
    best_ = b_.mov(imm(0));
    bestI_ = b_.mov(imm(-1));
    bestJ_ = b_.mov(imm(-1));
    d_ = b_.mov(imm(0));
    nDiags_ = b_.isub(b_.iadd(lenA_, lenB_), imm(1));

    // Precomputed shared addresses. Neighbour indices are clamped to 0 so
    // thread 0 can issue the reads unconditionally; its values are then
    // overridden with the matrix-boundary constants via selects (keeps the
    // warp free of a boundary branch).
    const auto tidM1 = b_.imax(b_.isub(tid_, imm(1)), imm(0));
    locWAddrE_ = sharedAddr(layout_.locE, tid_);
    locWAddrH_ = sharedAddr(layout_.locH, tid_);
    locWAddrHH_ = sharedAddr(layout_.locHH, tid_);
    locNbE_ = sharedAddr(layout_.locE, tidM1);
    locNbH_ = sharedAddr(layout_.locH, tidM1);
    locNbHH_ = sharedAddr(layout_.locHH, tidM1);
    bestAddr_ = sharedAddr(layout_.best, tid_);
    bestIAddr_ = sharedAddr(layout_.bestI, tid_);
    bestJAddr_ = sharedAddr(layout_.bestJ, tid_);
    if (version_ == 1) {
        const auto warpM1 = b_.imax(b_.isub(warp_, imm(1)), imm(0));
        wbWAddrE_ = sharedAddr(layout_.wbE, warp_);
        wbWAddrH_ = sharedAddr(layout_.wbH, warp_);
        wbWAddrHH_ = sharedAddr(layout_.wbHH, warp_);
        wbNbE_ = sharedAddr(layout_.wbE, warpM1);
        wbNbH_ = sharedAddr(layout_.wbH, warpM1);
        wbNbHH_ = sharedAddr(layout_.wbHH, warpM1);
    }
}

void
KernelEmitter::emitV0MemsetPlant()
{
    // Sec VI-C: on EVERY diagonal, EVERY thread defensively re-zeroes the
    // whole shared region, followed by a barrier. All 32 lanes of each
    // warp hammer the same address each iteration (32-way write
    // serialization), which is exactly why the paper measures a >30x win
    // when this region is removed. Removal is safe: the exchange arrays
    // are fully rewritten before every read and the reduction buffers are
    // rewritten before the final scan.
    b_.setLoc("adept_v0.cu:memset");
    const auto bbLoop = b_.block("memset_loop");
    const auto bbDone = b_.block("memset_done");
    b_.setInsert(bbDiag_);
    const auto kaddr = b_.mov(imm(0));
    b_.br(bbLoop);
    b_.setInsert(bbLoop);
    const auto zaddr = b_.ladd(kaddr, imm(layout_.best));
    b_.st(MemSpace::Shared, MemWidth::I32, zaddr, imm(0));
    b_.emitTo(kaddr, ir::Opcode::AddI64, {kaddr, imm(4)});
    const auto kc = b_.emitOp(
        ir::Opcode::CmpLtI64,
        {kaddr, imm(4ll * T_)}); // the T-word score result buffer
    b_.brc(kc, bbLoop, bbDone);
    anchor("memset.brc");
    b_.setInsert(bbDone);
    b_.setLoc("adept_v0.cu:memset_sync");
    b_.barrier();
    anchor("memset.bar");
    b_.setLoc("");
}

void
KernelEmitter::emitExchangePublish()
{
    if (version_ == 0) {
        // V0: every thread publishes through the shared arrays.
        b_.setLoc("adept_v0.cu:exchange");
        b_.st(MemSpace::Shared, MemWidth::I32, locWAddrE_, prevE_);
        b_.st(MemSpace::Shared, MemWidth::I32, locWAddrH_, prevH_);
        b_.st(MemSpace::Shared, MemWidth::I32, locWAddrHH_, prevHH_);
        b_.barrier();
        b_.setLoc("");
        return;
    }

    // V1, Fig 9 lines 2-5: lane 31 publishes for the next warp's lane 0.
    b_.setLoc("adept_v1.cu:3");
    const auto bbWb = b_.block("wb_store");
    const auto bbWbDone = b_.block("wb_done");
    b_.setInsert(bbDiag_);
    const auto l31 = b_.ieq(lane_, imm(31));
    anchor("lane31.cmp"); // paper edit 5 rewrites the 31 to 0
    b_.brc(l31, bbWb, bbWbDone);
    b_.setInsert(bbWb);
    b_.st(MemSpace::Shared, MemWidth::I32, wbWAddrE_, prevE_);
    b_.st(MemSpace::Shared, MemWidth::I32, wbWAddrH_, prevH_);
    b_.st(MemSpace::Shared, MemWidth::I32, wbWAddrHH_, prevHH_);
    b_.br(bbWbDone);
    b_.setInsert(bbWbDone);

    // Fig 9 lines 7-10: local publish during the shrinking phase. The
    // guard compiles to predication: when it is false the stores land in
    // a dead spill shadow of the local arrays (same shape, +spillDelta),
    // so the publish is branch-free and the guard is one select — whose
    // condition operand is exactly what paper edit 6 rewrites.
    b_.setLoc("adept_v1.cu:8");
    b_.setInsert(bbWbDone);
    // "maxSize": the diagonal from which the developer routes the
    // exchange through the local shared arrays (the wavefront tail, where
    // the shuffle neighbourhood breaks down).
    const auto halfB = b_.idiv(lenB_, imm(2));
    const auto maxSize = b_.iadd(lenA_, halfB);
    pg_ = b_.ige(d_, maxSize); // "diag >= maxSize"
    regAnchor("reg.phase", pg_);
    tm_ = b_.ilt(tid_, lenB_); // "tID < minSize"
    regAnchor("reg.tidltmin", tm_);
    const auto pw = b_.band(pg_, tm_);
    const auto off = b_.sel(pw, imm(0), imm(layout_.spillDelta));
    anchor("localwrite.sel"); // paper edit 6 rewrites cond -> tm_
    b_.st(MemSpace::Shared, MemWidth::I32, b_.ladd(locWAddrE_, off),
          prevE_);
    b_.st(MemSpace::Shared, MemWidth::I32, b_.ladd(locWAddrH_, off),
          prevH_);
    b_.st(MemSpace::Shared, MemWidth::I32, b_.ladd(locWAddrHH_, off),
          prevHH_);

    b_.setLoc("adept_v1.cu:12");
    b_.barrier();
    b_.barrier(); // planted: redundant double sync
    anchor("extrabar");
    b_.setLoc("");
}

void
KernelEmitter::emitShuffles()
{
    if (version_ == 0)
        return;
    // Uniform full-warp exchange: legal on Volta because the mask is taken
    // where every lane participates. The developer defensively guards with
    // BOTH activemask and ballot_sync (Sec VI-B); only the first shuffle
    // consumes the ballot, so rerouting it to the activemask makes the
    // ballot dead.
    b_.setLoc("adept_v1.cu:ballot");
    const auto am = b_.activemask();
    regAnchor("reg.am", am);
    const auto blt = b_.ballot(am, imm(1));
    anchor("ballot");
    shE_ = b_.shflUp(blt, prevE_, imm(1));
    anchor("shfl.e"); // the Sec VI-B edit: mask operand -> am
    shH_ = b_.shflUp(am, prevH_, imm(1));
    shHH_ = b_.shflUp(am, prevHH_, imm(1));
    b_.setLoc("");
}

void
KernelEmitter::emitValidity()
{
    iRow_ = b_.isub(d_, tid_);
    const auto c1 = b_.ige(iRow_, imm(0));
    const auto c2 = b_.ilt(iRow_, lenA_);
    const auto c3 = b_.ilt(tid_, lenB_);
    const auto c12 = b_.band(c1, c2);
    isValid_ = b_.band(c12, c3);
    regAnchor("reg.isvalid", isValid_);
}

void
KernelEmitter::emitNeighborRead()
{
    // Entered only for valid threads. Every thread (including thread 0,
    // whose neighbour address is clamped) reads neighbour j-1's published
    // state; thread 0's values are overridden with boundary constants by
    // selects at the head of the cell block.
    const auto bbExch = b_.insertBlock();
    bbCell_ = b_.block("cell");

    nH_ = b_.newReg();
    nE_ = b_.newReg();
    nHH_ = b_.newReg();

    b_.setInsert(bbExch);
    if (version_ == 0) {
        b_.setLoc("adept_v0.cu:read");
        b_.ldTo(nE_, MemSpace::Shared, MemWidth::I32, locNbE_);
        b_.ldTo(nH_, MemSpace::Shared, MemWidth::I32, locNbH_);
        b_.ldTo(nHH_, MemSpace::Shared, MemWidth::I32, locNbHH_);
        b_.br(bbCell_);
        b_.setLoc("");
        return;
    }

    // V1, Fig 9 lines 16-23: E/H exchange.
    b_.setLoc("adept_v1.cu:17");
    const auto bbLocEH = b_.block("eh_local");
    const auto bbWarpEH = b_.block("eh_warpsel");
    const auto bbShEH = b_.block("eh_shared");
    const auto bbShflEH = b_.block("eh_shfl");
    const auto bbHH = b_.block("hh_read");
    b_.setInsert(bbExch);
    b_.brc(pg_, bbLocEH, bbWarpEH);
    anchor("read_eh.brc"); // paper edit 8: cond -> isValid_
    b_.setInsert(bbLocEH);
    b_.ldTo(nE_, MemSpace::Shared, MemWidth::I32, locNbE_);
    b_.ldTo(nH_, MemSpace::Shared, MemWidth::I32, locNbH_);
    b_.br(bbHH);
    b_.setInsert(bbWarpEH);
    const auto w0 = b_.ine(warp_, imm(0));
    const auto l0 = b_.ieq(lane_, imm(0));
    const auto wl = b_.band(w0, l0);
    b_.brc(wl, bbShEH, bbShflEH);
    b_.setInsert(bbShEH);
    b_.setLoc("adept_v1.cu:21");
    b_.ldTo(nE_, MemSpace::Shared, MemWidth::I32, wbNbE_);
    b_.ldTo(nH_, MemSpace::Shared, MemWidth::I32, wbNbH_);
    b_.br(bbHH);
    b_.setInsert(bbShflEH);
    b_.setLoc("adept_v1.cu:23");
    b_.movTo(nE_, shE_);
    anchor("eh_shfl.movE"); // portability-trap move target (Sec IV)
    b_.movTo(nH_, shH_);
    b_.br(bbHH);

    // Fig 9 lines 25-32: H-from-two-diagonals exchange.
    b_.setLoc("adept_v1.cu:26");
    const auto bbLocHH = b_.block("hh_local");
    const auto bbWarpHH = b_.block("hh_warpsel");
    const auto bbShHH = b_.block("hh_shared");
    const auto bbShflHH = b_.block("hh_shfl");
    b_.setInsert(bbHH);
    b_.brc(pg_, bbLocHH, bbWarpHH);
    anchor("read_hh.brc"); // paper edit 10: cond -> isValid_
    b_.setInsert(bbLocHH);
    b_.ldTo(nHH_, MemSpace::Shared, MemWidth::I32, locNbHH_);
    b_.br(bbCell_);
    b_.setInsert(bbWarpHH);
    // Fig 9 evaluates the warp-boundary condition afresh in each region
    // (lines 20 and 29), so this tree stays self-contained even when an
    // edit makes the E/H region unreachable.
    const auto w0h = b_.ine(warp_, imm(0));
    const auto l0h = b_.ieq(lane_, imm(0));
    const auto wlh = b_.band(w0h, l0h);
    b_.brc(wlh, bbShHH, bbShflHH);
    b_.setInsert(bbShHH);
    b_.setLoc("adept_v1.cu:30");
    b_.ldTo(nHH_, MemSpace::Shared, MemWidth::I32, wbNbHH_);
    b_.br(bbCell_);
    b_.setInsert(bbShflHH);
    b_.setLoc("adept_v1.cu:32");
    b_.movTo(nHH_, shHH_);
    b_.br(bbCell_);
    b_.setLoc("");
}

void
KernelEmitter::emitCellCompute()
{
    b_.setInsert(bbCell_);
    b_.setLoc(version_ == 0 ? "adept_v0.cu:cell" : "adept_v1.cu:cell");

    // Matrix-boundary override for thread 0 (j == 0 has no neighbour).
    const auto isT0 = b_.ieq(tid_, imm(0));
    b_.selTo(nH_, isT0, imm(0), nH_);
    b_.selTo(nE_, isT0, imm(kNegInfScore), nE_);
    b_.selTo(nHH_, isT0, imm(0), nHH_);

    // Reference character a[i] (reverse kernel walks backwards), with a
    // planted duplicate row-pointer computation: the load consumes the
    // second copy, so rerouting it to the first makes the duplicate dead.
    Operand aOff;
    if (!reverse_) {
        aOff = b_.sext64(iRow_);
    } else {
        aOff = b_.sext64(b_.isub(endA_, iRow_));
    }
    const auto rowPtr1 = b_.ladd(aBase_, aOff);
    regAnchor("reg.rowptr1", rowPtr1);
    const auto rowPtr2 = b_.ladd(aBase_, aOff);
    anchor("dup.rowptr2");
    const auto aChar = b_.ld(MemSpace::Global, MemWidth::U8, rowPtr2);
    anchor("achar.load"); // independent edit: operand 0 -> rowPtr1

    const auto isMatch = b_.ieq(aChar, myChar_);
    const auto s = b_.sel(isMatch, imm(out_.scoring.match),
                          imm(out_.scoring.mismatch));

    // E: gap in A, from the neighbour's H/E.
    const auto e1 = b_.isub(nH_, imm(out_.scoring.gapOpen));
    const auto e2 = b_.isub(nE_, imm(out_.scoring.gapExtend));
    b_.emitTo(curE_, ir::Opcode::MaxI32, {e1, e2});
    // F: gap in B, from own previous row.
    const auto f1 = b_.isub(prevH_, imm(out_.scoring.gapOpen));
    const auto f2 = b_.isub(prevF_, imm(out_.scoring.gapExtend));
    b_.emitTo(curF_, ir::Opcode::MaxI32, {f1, f2});
    // H: max(0, diag + s, E, F).
    const auto dg = b_.iadd(nHH_, s);
    const auto h1 = b_.imax(imm(0), dg);
    const auto h2 = b_.imax(h1, curE_);
    b_.emitTo(curH_, ir::Opcode::MaxI32, {h2, curF_});

    // Planted dominated bounds check around the best-update (always true:
    // tid < 4096 for any launchable block).
    const auto bbUpd = b_.block("best_update");
    const auto bbUpdDone = b_.block("best_done");
    b_.setInsert(bbCell_);
    const auto bc = b_.ilt(tid_, imm(4096));
    b_.brc(bc, bbUpd, bbUpdDone);
    anchor("bounds.brc"); // independent edit: cond -> imm 1
    b_.setInsert(bbUpd);
    const auto better = b_.igt(curH_, best_);
    b_.selTo(best_, better, curH_, best_);
    b_.selTo(bestI_, better, iRow_, bestI_);
    b_.selTo(bestJ_, better, tid_, bestJ_);
    b_.br(bbUpdDone);
    b_.setInsert(bbUpdDone);
    b_.br(bbAfterCompute_);
    b_.setLoc("");
}

void
KernelEmitter::emitRotateAndLatch()
{
    b_.setInsert(bbAfterCompute_);
    // Rotate the wavefront registers (order matters: HH takes the old H).
    b_.movTo(prevHH_, prevH_);
    b_.movTo(prevH_, curH_);
    b_.movTo(prevE_, curE_);
    // Planted redundant register re-init: curF is recomputed from scratch
    // before any use next iteration, so this mov is deletable (a typical
    // "weak edit" under the paper's 1% threshold).
    b_.movTo(prevF_, curF_);
    b_.movTo(curF_, imm(kNegInfScore));
    anchor("redundant.finit");
    b_.barrier();
    b_.iaddTo(d_, d_, imm(1));
    const auto more = b_.ilt(d_, nDiags_);
    b_.brc(more, bbDiag_, bbReduce_);
}

void
KernelEmitter::emitReduction()
{
    b_.setInsert(bbReduce_);
    b_.setLoc(version_ == 0 ? "adept_v0.cu:reduce" : "adept_v1.cu:reduce");
    b_.st(MemSpace::Shared, MemWidth::I32, bestAddr_, best_);
    b_.st(MemSpace::Shared, MemWidth::I32, bestIAddr_, bestI_);
    b_.st(MemSpace::Shared, MemWidth::I32, bestJAddr_, bestJ_);
    b_.barrier();

    const auto bbScan = b_.block("scan");
    const auto bbScanLoop = b_.block("scan_loop");
    const auto bbOut = b_.block("scan_out");
    const auto bbDone = b_.block("done");
    b_.setInsert(bbReduce_);
    const auto t0 = b_.ieq(tid_, imm(0));
    b_.brc(t0, bbScan, bbDone);

    b_.setInsert(bbScan);
    const auto rBest = b_.mov(imm(0));
    const auto rI = b_.mov(imm(-1));
    const auto rJ = b_.mov(imm(-1));
    const auto k = b_.mov(imm(0));
    b_.br(bbScanLoop);

    b_.setInsert(bbScanLoop);
    const auto sK = b_.ld(MemSpace::Shared, MemWidth::I32,
                          sharedAddr(layout_.best, k));
    const auto iK = b_.ld(MemSpace::Shared, MemWidth::I32,
                          sharedAddr(layout_.bestI, k));
    const auto jK = b_.ld(MemSpace::Shared, MemWidth::I32,
                          sharedAddr(layout_.bestJ, k));
    const auto better = b_.igt(sK, rBest);
    b_.selTo(rBest, better, sK, rBest);
    b_.selTo(rI, better, iK, rI);
    b_.selTo(rJ, better, jK, rJ);
    b_.iaddTo(k, k, imm(1));
    const auto more = b_.ilt(k, ntid_);
    b_.brc(more, bbScanLoop, bbOut);

    b_.setInsert(bbOut);
    const auto bidOff4 = b_.lmul(b_.sext64(bid_), imm(4));
    if (!reverse_) {
        b_.st(MemSpace::Global, MemWidth::I32,
              b_.ladd(b_.param(4), bidOff4), rBest);
        b_.st(MemSpace::Global, MemWidth::I32,
              b_.ladd(b_.param(5), bidOff4), rI);
        b_.st(MemSpace::Global, MemWidth::I32,
              b_.ladd(b_.param(6), bidOff4), rJ);
    } else {
        // Map the reversed-best cell back to start positions.
        const auto startA = b_.isub(endA_, rI);
        const auto startB = b_.isub(endB_, rJ);
        b_.st(MemSpace::Global, MemWidth::I32,
              b_.ladd(b_.param(4), bidOff4), startA);
        b_.st(MemSpace::Global, MemWidth::I32,
              b_.ladd(b_.param(5), bidOff4), startB);
    }
    b_.br(bbDone);
    b_.setInsert(bbDone);
    b_.ret();
    b_.setLoc("");
}

void
KernelEmitter::emit()
{
    const std::string name =
        version_ == 0 ? "sw_fwd_v0" : (reverse_ ? "sw_rev_v1" : "sw_fwd_v1");
    const std::uint32_t numParams = reverse_ ? 7 : 8;
    b_.startKernel(name, numParams, layout_.totalBytes, 0);
    b_.block("entry");

    emitPrologue();
    // The prologue leaves the insertion point in its last block ("entry"
    // for forward kernels, "main" for the reverse kernel).
    const auto prologueEnd = b_.insertBlock();

    bbDiag_ = b_.block("diag_loop");
    b_.setInsert(prologueEnd);
    b_.br(bbDiag_);
    b_.setInsert(bbDiag_);

    if (version_ == 0)
        emitV0MemsetPlant();
    emitExchangePublish();
    emitShuffles();
    emitValidity();
    const auto validityEnd = b_.insertBlock();

    // Guard the compute region by validity.
    const auto bbCompute = b_.block("compute");
    bbAfterCompute_ = b_.block("after_compute");
    bbReduce_ = b_.block("reduce");
    b_.setInsert(validityEnd);
    b_.brc(isValid_, bbCompute, bbAfterCompute_);
    b_.setInsert(bbCompute);
    emitNeighborRead();
    emitCellCompute();
    emitRotateAndLatch();
    emitReduction();
}

} // namespace

AdeptModule
buildAdeptV0(const ScoringParams& scoring, std::uint32_t maxThreads)
{
    GEVO_ASSERT(maxThreads % 32 == 0 && maxThreads >= 32 &&
                    maxThreads <= 512,
                "maxThreads must be a warp multiple <= 512");
    AdeptModule out;
    out.version = 0;
    out.scoring = scoring;
    out.maxThreads = maxThreads;
    IRBuilder b(out.module);
    KernelEmitter(b, out, 0, false, maxThreads).emit();
    return out;
}

AdeptModule
buildAdeptV1(const ScoringParams& scoring, std::uint32_t maxThreads)
{
    GEVO_ASSERT(maxThreads % 32 == 0 && maxThreads >= 64 &&
                    maxThreads <= 512,
                "V1 needs at least two warps, at most 512 threads");
    AdeptModule out;
    out.version = 1;
    out.scoring = scoring;
    out.maxThreads = maxThreads;
    IRBuilder b(out.module);
    KernelEmitter(b, out, 1, false, maxThreads).emit();
    KernelEmitter(b, out, 1, true, maxThreads).emit();
    return out;
}

AdeptModule
buildAdept(int version, const ScoringParams& scoring,
           std::uint32_t maxThreads)
{
    if (version == 0)
        return buildAdeptV0(scoring, maxThreads);
    if (version == 1)
        return buildAdeptV1(scoring, maxThreads);
    GEVO_FATAL("unknown ADEPT version %d", version);
}

} // namespace gevo::adept
