/// \file
/// The ADEPT GPU kernels, built in IR.
///
/// Two development stages, exactly as the paper studies them (Sec III-B):
///
/// * **ADEPT-V0** — the naive port: one forward kernel, all neighbour
///   exchange through shared memory, plus the pathological per-diagonal
///   re-initialization of the reduction buffer by every thread with an
///   extra barrier (the Sec VI-C ">30x" bottleneck).
/// * **ADEPT-V1** — the hand-tuned version: forward + reverse kernels,
///   warp-shuffle exchange inside warps, lane-31 shared-memory publish at
///   warp boundaries, and `local_prev_*` shared arrays for the shrinking
///   phase — the exact structure of the paper's Figure 9, including the
///   activemask/ballot guard pair of Sec VI-B.
///
/// Every instruction the paper's edits touch is registered as a named
/// anchor (uid) so that golden edit sets, discovery-trace matching and the
/// epistasis analysis can refer to "edit 5/6/8/10" precisely. Key spots
/// carry source locations named after Figure 9's line numbers.

#ifndef GEVO_APPS_ADEPT_KERNELS_H
#define GEVO_APPS_ADEPT_KERNELS_H

#include <cstdint>
#include <map>
#include <string>

#include "apps/adept/scoring.h"
#include "ir/function.h"

namespace gevo::adept {

/// A built ADEPT module plus the anchor maps golden edits are built from.
struct AdeptModule {
    ir::Module module;
    int version = 0;                ///< 0 or 1.
    ScoringParams scoring;
    std::uint32_t maxThreads = 64;  ///< blockDim the kernels were built for.
    /// Anchor-name -> instruction uid (edit targets).
    std::map<std::string, std::uint64_t> anchors;
    /// Anchor-name -> register index (edit replacement payloads).
    std::map<std::string, std::int64_t> regs;

    /// Anchor lookup; fatal when missing (a build/test mismatch).
    std::uint64_t uidOf(const std::string& name) const;
    /// Register lookup; fatal when missing.
    std::int64_t regOf(const std::string& name) const;
};

/// Build ADEPT-V0 (one kernel: `sw_fwd_v0`).
AdeptModule buildAdeptV0(const ScoringParams& scoring,
                         std::uint32_t maxThreads);

/// Build ADEPT-V1 (two kernels: `sw_fwd_v1`, `sw_rev_v1`).
AdeptModule buildAdeptV1(const ScoringParams& scoring,
                         std::uint32_t maxThreads);

/// Build either version.
AdeptModule buildAdept(int version, const ScoringParams& scoring,
                       std::uint32_t maxThreads);

/// Score sentinel used for -infinity in the kernels and the CPU oracle.
constexpr std::int32_t kNegInfScore = -(1 << 28);

} // namespace gevo::adept

#endif // GEVO_APPS_ADEPT_KERNELS_H
