/// \file
/// Alignment scoring parameters (ADEPT's DNA defaults: affine gaps).

#ifndef GEVO_APPS_ADEPT_SCORING_H
#define GEVO_APPS_ADEPT_SCORING_H

#include <cstdint>

namespace gevo::adept {

/// Affine-gap scoring. Penalties are stored positive and subtracted.
struct ScoringParams {
    std::int32_t match = 3;      ///< Score for a matching pair.
    std::int32_t mismatch = -3;  ///< Score for a mismatching pair.
    std::int32_t gapOpen = 6;    ///< Penalty to open a gap.
    std::int32_t gapExtend = 1;  ///< Penalty to extend a gap.
};

/// The simple linear scheme from the paper's Figure 2 walkthrough
/// (match +2, mismatch -2, gap -1 expressed as open==extend).
inline ScoringParams
figure2Scoring()
{
    ScoringParams p;
    p.match = 2;
    p.mismatch = -2;
    p.gapOpen = 1;
    p.gapExtend = 1;
    return p;
}

/// Alignment result for one pair. Positions are 0-based; -1 when the best
/// local alignment is empty.
struct AlignmentResult {
    std::int32_t score = 0;
    std::int32_t endA = -1;
    std::int32_t endB = -1;
    std::int32_t startA = -1; ///< Filled by the reverse pass (V1/CPU only).
    std::int32_t startB = -1;

    friend bool
    operator==(const AlignmentResult& x, const AlignmentResult& y)
    {
        return x.score == y.score && x.endA == y.endA && x.endB == y.endB &&
               x.startA == y.startA && x.startB == y.startB;
    }
};

} // namespace gevo::adept

#endif // GEVO_APPS_ADEPT_SCORING_H
