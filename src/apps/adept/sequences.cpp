#include "apps/adept/sequences.h"

#include "support/logging.h"
#include "support/rng.h"

namespace gevo::adept {

namespace {

constexpr char kBases[] = {'A', 'C', 'G', 'T'};

std::string
randomSequence(Rng& rng, std::size_t len)
{
    std::string s(len, 'A');
    for (auto& c : s)
        c = kBases[rng.below(4)];
    return s;
}

/// Derive a mutated copy: substitutions plus short indels, clamped to
/// [minLen, maxLen].
std::string
mutate(Rng& rng, const std::string& src, const SequenceSetConfig& cfg)
{
    std::string out;
    out.reserve(src.size() + 8);
    for (const char c : src) {
        if (rng.chance(cfg.indelRate)) {
            if (rng.chance(0.5)) {
                continue; // deletion
            }
            out.push_back(kBases[rng.below(4)]); // insertion
        }
        if (rng.chance(cfg.mutationRate)) {
            out.push_back(kBases[rng.below(4)]);
        } else {
            out.push_back(c);
        }
    }
    while (out.size() < cfg.minLen)
        out.push_back(kBases[rng.below(4)]);
    if (out.size() > cfg.maxLen)
        out.resize(cfg.maxLen);
    return out;
}

} // namespace

void
appendBoundaryProbePairs(std::vector<SequencePair>* pairs,
                         std::size_t maxLen, std::uint64_t seed)
{
    GEVO_ASSERT(maxLen >= 48, "probe pairs need maxLen >= 48");
    Rng rng(seed ^ 0xb0a7ULL);
    for (const std::size_t insert : {10u, 14u}) {
        SequencePair p;
        p.a = randomSequence(rng, maxLen);
        // Query = random front insertion + a prefix of the reference, so
        // the best path sits `insert` rows below the diagonal and crosses
        // lane boundaries during the growing phase of the wavefront.
        p.b = randomSequence(rng, insert) +
              p.a.substr(0, maxLen - insert);
        pairs->push_back(std::move(p));
    }
}

std::vector<SequencePair>
generatePairs(const SequenceSetConfig& cfg)
{
    GEVO_ASSERT(cfg.minLen >= 4 && cfg.minLen <= cfg.maxLen,
                "bad sequence length bounds");
    Rng rng(cfg.seed);
    std::vector<SequencePair> pairs;
    pairs.reserve(cfg.numPairs);
    for (std::size_t i = 0; i < cfg.numPairs; ++i) {
        const std::size_t len =
            cfg.minLen + rng.below(cfg.maxLen - cfg.minLen + 1);
        SequencePair p;
        p.a = randomSequence(rng, len);
        p.b = mutate(rng, p.a, cfg);
        pairs.push_back(std::move(p));
    }
    return pairs;
}

} // namespace gevo::adept
