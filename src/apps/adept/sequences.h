/// \file
/// Synthetic DNA sequence-pair generation.
///
/// Stands in for the ADEPT repository's 30,000-pair fitness set and
/// 4.6M-pair held-out set (DESIGN.md §2): pairs are derived from a common
/// ancestor by point mutations and indels so that meaningful local
/// alignments exist, all deterministically from a seed.

#ifndef GEVO_APPS_ADEPT_SEQUENCES_H
#define GEVO_APPS_ADEPT_SEQUENCES_H

#include <cstdint>
#include <string>
#include <vector>

namespace gevo::adept {

/// One read pair to align.
struct SequencePair {
    std::string a; ///< Reference fragment.
    std::string b; ///< Query fragment.
};

/// Configuration for the generator.
struct SequenceSetConfig {
    std::size_t numPairs = 8;
    std::size_t minLen = 40;
    std::size_t maxLen = 64;       ///< Hard cap; also the kernel stride.
    double mutationRate = 0.1;     ///< Per-base substitution probability.
    double indelRate = 0.03;       ///< Per-base insertion/deletion prob.
    std::uint64_t seed = 42;
};

/// Generate a deterministic set of related DNA pairs.
std::vector<SequencePair> generatePairs(const SequenceSetConfig& config);

/// Append "warp-boundary probe" pairs: full-length pairs where the query
/// carries a front insertion, pushing the optimal path through the warp
/// boundary early in the wavefront. Without such pairs a variant that
/// corrupts the warp-boundary exchange (paper edit 5 applied alone) can
/// slip through a small fitness set — these make the fitness suite as
/// discriminating as the paper's (where e5 alone fails validation).
void appendBoundaryProbePairs(std::vector<SequencePair>* pairs,
                              std::size_t maxLen, std::uint64_t seed);

} // namespace gevo::adept

#endif // GEVO_APPS_ADEPT_SEQUENCES_H
