#include "apps/adept/workload.h"

#include <memory>

#include "apps/adept/driver.h"
#include "apps/adept/fitness.h"
#include "apps/adept/golden_edits.h"
#include "apps/adept/sequences.h"
#include "core/workload.h"
#include "support/strings.h"

namespace gevo::adept {

namespace {

/// Self-owning instance: dataset, driver, oracle and fitness live exactly
/// as long as the search that uses them.
class AdeptWorkloadInstance : public core::WorkloadInstance {
  public:
    AdeptWorkloadInstance(int version, const core::WorkloadConfig& config)
        : built_(buildAdept(version, ScoringParams{}, kMaxThreads)),
          driver_(makePairs(config), built_.scoring, version, kMaxThreads),
          fitness_(driver_, config.device)
    {
        // Note: the driver stays at blockThreads=1 here. Block-parallel
        // launches (AdeptDriver::setBlockThreads) assume blocks never
        // touch each other's memory — true of the unmodified kernels,
        // but a mutated variant can compute any address, and a serial
        // block order is what resolves such accidental overlaps
        // deterministically. Search fitness must stay serial per launch;
        // the engine parallelizes across individuals instead.
    }

    const ir::Module& module() const override { return built_.module; }
    const core::FitnessFunction& fitness() const override
    {
        return fitness_;
    }

    std::string
    banner() const override
    {
        return strformat("%zu pairs, %zu IR instructions across %zu "
                         "kernels",
                         driver_.pairs().size(), built_.module.instrCount(),
                         built_.module.numFunctions());
    }

    std::vector<mut::Edit>
    goldenEdits() const override
    {
        return editsOf(built_.version == 0 ? v0GoldenEdits(built_)
                                           : v1AllGoldenEdits(built_));
    }

    double
    paperCeiling() const override
    {
        // Paper Figure 4: GEVO-optimized ADEPT-V1 reaches 1.28x on P100;
        // V0's ceiling is dominated by the Sec VI-C memset kill and the
        // paper reports it as ">30x", not a single figure.
        return built_.version == 1 ? 1.28 : 0.0;
    }

  private:
    static constexpr std::uint32_t kMaxThreads = 64;

    static std::vector<SequencePair>
    makePairs(const core::WorkloadConfig& config)
    {
        SequenceSetConfig cfg;
        cfg.numPairs =
            static_cast<std::size_t>(config.knobInt("pairs", 5));
        cfg.minLen = static_cast<std::size_t>(config.knobInt("min-len", 40));
        cfg.maxLen = static_cast<std::size_t>(config.knobInt("max-len", 64));
        cfg.seed = static_cast<std::uint64_t>(config.knobInt("data-seed", 7));
        auto pairs = generatePairs(cfg);
        // The held-out discipline of paper Sec III-C: warp-boundary probe
        // lengths ride along with every dataset.
        appendBoundaryProbePairs(&pairs, cfg.maxLen, cfg.seed);
        return pairs;
    }

    AdeptModule built_;
    AdeptDriver driver_;
    AdeptFitness fitness_;
};

core::Workload
makeWorkload(int version)
{
    core::Workload w;
    w.name = version == 0 ? "adept-v0" : "adept-v1";
    w.summary = version == 0
                    ? "ADEPT Smith-Waterman, naive port (the Sec VI-C "
                      "memset-loop bottleneck)"
                    : "ADEPT Smith-Waterman, hand-tuned forward+reverse "
                      "kernels (paper Fig. 9)";
    w.knobs = {
        {"pairs", 5, "related DNA pairs in the fitness set"},
        {"min-len", 40, "minimum sequence length"},
        {"max-len", 64, "maximum sequence length (<= 64)"},
        {"data-seed", 7, "dataset generation seed"},
    };
    w.searchDefaults.populationSize = 24;
    w.searchDefaults.generations = 25;
    w.searchDefaults.elitism = 2;
    w.searchDefaults.seed = 7;
    // Inert without --cache-path; with one, a killed long run still
    // warm-starts from its last interval.
    w.searchDefaults.cacheSaveInterval = 10;
    // The ROADMAP perf-anchor configuration (bench/throughput.cpp).
    w.benchDefaults.populationSize = 12;
    w.benchDefaults.generations = 20;
    w.benchDefaults.elitism = 2;
    w.benchDefaults.seed = 3;
    w.benchKnobs = {{"pairs", "4"}};
    w.variabilityRuns = 3;
    w.variabilityGens = 12;
    w.variabilityPop = 16;
    w.variabilityKnobs = {{"pairs", "4"}}; // historical Fig. 6 dataset
    w.make = [version](const core::WorkloadConfig& config) {
        return std::unique_ptr<core::WorkloadInstance>(
            new AdeptWorkloadInstance(version, config));
    };
    return w;
}

} // namespace

void
registerWorkloads()
{
    auto& registry = core::WorkloadRegistry::instance();
    registry.add(makeWorkload(0));
    registry.add(makeWorkload(1));
}

} // namespace gevo::adept
