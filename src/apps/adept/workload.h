/// \file
/// Registry entries for the ADEPT workloads ("adept-v0", "adept-v1").

#ifndef GEVO_APPS_ADEPT_WORKLOAD_H
#define GEVO_APPS_ADEPT_WORKLOAD_H

namespace gevo::adept {

/// Register adept-v0 and adept-v1 with the core::WorkloadRegistry.
/// Call through apps::registerBuiltinWorkloads(), which is idempotent.
void registerWorkloads();

} // namespace gevo::adept

#endif // GEVO_APPS_ADEPT_WORKLOAD_H
