#include "apps/bfs/driver.h"

#include "sim/device_memory.h"
#include "sim/program.h"

namespace gevo::bfs {

BfsDriver::BfsDriver(BfsConfig config, bool tightArena)
    : config_(config), tightArena_(tightArena), graph_(makeGraph(config)),
      expected_(runCpuBfs(config, graph_))
{
}

BfsRunOutput
BfsDriver::run(const ir::Module& module, const sim::DeviceConfig& dev,
               bool profile) const
{
    return run(sim::ProgramSet::decodeModule(module), dev, profile);
}

BfsRunOutput
BfsDriver::run(const sim::ProgramSet& programs,
               const sim::DeviceConfig& dev, bool profile) const
{
    BfsRunOutput out;
    const std::int64_t rowBytes = 4ll * (config_.nodes + 1);
    const std::int64_t colBytes = 4ll * config_.edges();
    const std::int64_t distBytes = 4ll * config_.nodes;

    // Allocation plan: rowPtr + colIdx + dist + the discovery counter,
    // with `dist` LAST before the counter so an unguarded neighbour
    // access from a mutated kernel runs off the mapped end on a tight
    // arena instead of landing in slack.
    const auto round = [](std::int64_t b) { return (b + 255) / 256 * 256; };
    const std::int64_t total = round(rowBytes) + round(colBytes) +
                               round(distBytes) + round(4);
    sim::DeviceMemory mem(tightArena_ ? total : total + (1 << 18));
    const auto rowPtr = mem.alloc(rowBytes);
    const auto colIdx = mem.alloc(colBytes);
    const auto dist = mem.alloc(distBytes);
    const auto changed = mem.alloc(4);
    mem.copyIn(rowPtr, graph_.rowPtr.data(), rowBytes);
    mem.copyIn(colIdx, graph_.colIdx.data(), colBytes);

    const auto* initProg = programs.find("bfs_init");
    const auto* levelProg = programs.find("bfs_level");
    if (initProg == nullptr || levelProg == nullptr) {
        out.fault.kind = sim::FaultKind::InvalidProgram;
        out.fault.detail = "bfs_init/bfs_level missing from module";
        return out;
    }

    const auto blocks = static_cast<std::uint32_t>(
        config_.nodes / static_cast<std::int32_t>(config_.blockDim));
    const sim::LaunchDims dims{blocks, config_.blockDim, oversubscribe_};
    auto u64 = [](sim::DevPtr p) { return static_cast<std::uint64_t>(p); };

    {
        const auto res = sim::launchKernel(
            dev, mem, *initProg, dims,
            {u64(dist), static_cast<std::uint64_t>(config_.source)},
            profile);
        out.totalMs += res.stats.ms;
        out.aggregate.accumulate(res.stats);
        if (!res.ok()) {
            out.fault = res.fault;
            return out;
        }
    }

    // Level-synchronous loop, capped at the node count (the longest
    // possible shortest path) so mutants cannot spin the host.
    for (std::int32_t level = 0; level < config_.nodes; ++level) {
        mem.write<std::int32_t>(changed, 0);
        const auto res = sim::launchKernel(
            dev, mem, *levelProg, dims,
            {u64(rowPtr), u64(colIdx), u64(dist), u64(changed),
             static_cast<std::uint64_t>(level)},
            profile);
        out.totalMs += res.stats.ms;
        out.aggregate.accumulate(res.stats);
        if (!res.ok()) {
            out.fault = res.fault;
            return out;
        }
        ++out.levels;
        if (mem.read<std::int32_t>(changed) == 0)
            break;
    }

    out.dist.resize(static_cast<std::size_t>(config_.nodes));
    mem.copyOut(out.dist.data(), dist, distBytes);
    return out;
}

} // namespace gevo::bfs
