/// \file
/// Host-side BFS driver: uploads the CSR graph, seeds the distance array
/// with `bfs_init`, then launches `bfs_level` once per level until a
/// launch discovers nothing (the level-synchronous loop), reading the
/// discovery counter back between launches. The level loop is capped at
/// the node count so a mutated kernel that keeps "discovering" cannot
/// hang an evaluation. The arena is sized to the allocation plan;
/// \p tightArena drops the slack (held-out regime).

#ifndef GEVO_APPS_BFS_DRIVER_H
#define GEVO_APPS_BFS_DRIVER_H

#include <vector>

#include "apps/bfs/kernels.h"
#include "core/fitness.h"
#include "sim/device_config.h"
#include "sim/executor.h"
#include "support/strings.h"

namespace gevo::bfs {

/// Output of a full traversal.
struct BfsRunOutput {
    sim::Fault fault;
    std::vector<std::int32_t> dist; ///< Final distances (empty on fault).
    std::int32_t levels = 0;        ///< Frontier launches that ran.
    double totalMs = 0.0;           ///< Simulated time across launches.
    sim::LaunchStats aggregate;     ///< Counters summed over launches.

    bool ok() const { return fault.ok(); }
};

/// Immutable graph + launch configuration; thread-safe (each run() owns
/// its memory).
class BfsDriver {
  public:
    explicit BfsDriver(BfsConfig config, bool tightArena = false);

    /// Execute the pre-decoded kernels (scoring stage of the two-stage
    /// pipeline; no IR access, no decoding).
    BfsRunOutput run(const sim::ProgramSet& programs,
                     const sim::DeviceConfig& dev,
                     bool profile = false) const;

    /// Convenience: decode \p module and run it (one-off callers).
    BfsRunOutput run(const ir::Module& module,
                     const sim::DeviceConfig& dev,
                     bool profile = false) const;

    /// CPU ground-truth distances (computed once).
    const std::vector<std::int32_t>& expected() const { return expected_; }
    const CsrGraph& graph() const { return graph_; }
    const BfsConfig& config() const { return config_; }

    /// Timing-grid multiplier (saturated-device regime).
    void setOversubscribe(std::uint32_t f) { oversubscribe_ = f; }

  private:
    BfsConfig config_;
    bool tightArena_;
    std::uint32_t oversubscribe_ = 512;
    CsrGraph graph_;
    std::vector<std::int32_t> expected_;
};

/// Scores a variant by total simulated kernel time; any fault or any
/// distance mismatch against the CPU BFS invalidates it.
class BfsFitness : public core::FitnessFunction {
  public:
    BfsFitness(const BfsDriver& driver, sim::DeviceConfig dev)
        : driver_(driver), dev_(std::move(dev))
    {
    }

    core::FitnessResult
    evaluate(const core::CompiledVariant& variant) const override
    {
        return evaluateOn(variant, dev_);
    }

    core::FitnessResult
    evaluateOn(const core::CompiledVariant& variant,
               const sim::DeviceConfig& dev) const override
    {
        const auto out = driver_.run(variant.programs, dev);
        if (!out.ok())
            return core::FitnessResult::fail(out.fault.detail);
        const auto& expected = driver_.expected();
        for (std::size_t v = 0; v < expected.size(); ++v) {
            if (out.dist[v] != expected[v])
                return core::FitnessResult::fail(strformat(
                    "node %zu: got distance %d, want %d", v, out.dist[v],
                    expected[v]));
        }
        return core::FitnessResult::pass(out.totalMs, out.aggregate);
    }

    bool
    profileVariant(const core::CompiledVariant& variant,
                   core::ProfileSummary* out) const override
    {
        const auto run = driver_.run(variant.programs, dev_, /*profile=*/true);
        if (!run.ok())
            return false;
        *out = core::ProfileSummary{};
        out->accumulateLaunch(run.aggregate);
        return true;
    }

    std::string
    name() const override
    {
        return strformat("bfs(%d nodes, degree %d, %s)",
                         driver_.config().nodes, driver_.config().degree,
                         dev_.name.c_str());
    }

  private:
    const BfsDriver& driver_;
    sim::DeviceConfig dev_;
};

} // namespace gevo::bfs

#endif // GEVO_APPS_BFS_DRIVER_H
