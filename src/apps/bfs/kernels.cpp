#include "apps/bfs/kernels.h"

#include <deque>

#include "ir/builder.h"
#include "support/logging.h"

namespace gevo::bfs {

using ir::IRBuilder;
using ir::MemSpace;
using ir::MemWidth;
using ir::Operand;

std::uint64_t
BfsModule::uidOf(const std::string& name) const
{
    const auto it = anchors.find(name);
    if (it == anchors.end())
        GEVO_FATAL("unknown bfs anchor '%s'", name.c_str());
    return it->second;
}

namespace {

/// Emits both BFS kernels.
class BfsEmitter {
  public:
    explicit BfsEmitter(BfsModule& out) : out_(out), b_(out.module) {}

    void
    emitAll()
    {
        emitInit();
        emitLevel();
    }

  private:
    static Operand imm(std::int64_t v) { return Operand::imm(v); }

    void
    anchor(const std::string& name)
    {
        auto& fn = b_.kernel();
        out_.anchors[name] =
            fn.blocks[b_.insertBlock()].instrs.back().uid;
    }
    void
    regAnchor(const std::string& name, Operand r)
    {
        out_.regs[name] = r.value;
    }

    /// i32 element address: base + 4 * index.
    Operand
    emitElemAddr(Operand base, Operand index)
    {
        return b_.ladd(base, b_.lmul(b_.sext64(index), imm(4)));
    }

    Operand
    emitNodeIndex()
    {
        return b_.iadd(b_.imul(b_.bid(), b_.ntid()), b_.tid());
    }

    /// dist[node] = node == source ? 0 : -1.
    void
    emitInit()
    {
        // p0 dist p1 source
        b_.startKernel("bfs_init", 2);
        b_.block("entry");
        b_.setLoc("bfs.cu:init");
        const auto node = emitNodeIndex();
        const auto isSrc = b_.ieq(node, b_.param(1));
        b_.st(MemSpace::Global, MemWidth::I32,
              emitElemAddr(b_.param(0), node),
              b_.sel(isSrc, imm(0), imm(-1)));
        b_.ret();
        b_.setLoc("");
    }

    /// Frontier expansion for one level.
    void
    emitLevel()
    {
        // p0 rowPtr p1 colIdx p2 dist p3 changed p4 level
        b_.startKernel("bfs_level", 5);
        const auto entry = b_.block("entry");
        b_.setLoc("bfs.cu:frontier");
        const auto node = emitNodeIndex();
        const auto d = b_.ld(MemSpace::Global, MemWidth::I32,
                             emitElemAddr(b_.param(2), node));
        const auto onFrontier = b_.ieq(d, b_.param(4));

        const auto bbCheck = b_.block("range_check");
        const auto bbExpand = b_.block("expand");
        const auto bbHead = b_.block("loop_head");
        const auto bbBody = b_.block("loop_body");
        const auto bbVisit = b_.block("visit");
        const auto bbClaim = b_.block("claim");
        const auto bbNext = b_.block("loop_next");
        const auto bbDone = b_.block("done");

        b_.setInsert(entry);
        b_.brc(onFrontier, bbCheck, bbDone);

        // Planted dominated guard (node ids are tiny by construction).
        b_.setInsert(bbCheck);
        b_.brc(b_.ilt(node, imm(1 << 22)), bbExpand, bbDone);
        anchor("bfs.bounds.brc");

        b_.setInsert(bbExpand);
        const auto start = b_.ld(MemSpace::Global, MemWidth::I32,
                                 emitElemAddr(b_.param(0), node));
        // Adjacency-run end address, then a planted duplicate chain
        // (fresh special-register reads) actually feeding the load; the
        // golden edit reroutes the load to `endAddr` and the duplicate
        // folds away as dead code.
        const auto endAddr =
            emitElemAddr(b_.param(0), b_.iadd(node, imm(1)));
        regAnchor("bfs.reg.endaddr", endAddr);
        const auto nodeB = emitNodeIndex();
        const auto endAddrB =
            emitElemAddr(b_.param(0), b_.iadd(nodeB, imm(1)));
        const auto end = b_.ld(MemSpace::Global, MemWidth::I32, endAddrB);
        anchor("bfs.end.load");
        const auto nextLevel = b_.iadd(b_.param(4), imm(1));
        const auto e = b_.mov(start);
        b_.br(bbHead);

        b_.setInsert(bbHead);
        b_.setLoc("bfs.cu:edges");
        b_.brc(b_.ilt(e, end), bbBody, bbDone);

        b_.setInsert(bbBody);
        const auto nbr = b_.ld(MemSpace::Global, MemWidth::I32,
                               emitElemAddr(b_.param(1), e));
        // Planted per-edge guard (full bounds check, the verbose Sec VI-D
        // idiom): CSR targets are valid node ids by construction, so a
        // range analysis would prove this true on every traversed edge —
        // the highest-frequency planted branch in the kernel.
        const auto nbrOk = b_.band(b_.ige(nbr, imm(0)),
                                   b_.ilt(nbr, imm(out_.config.nodes)));
        b_.brc(nbrOk, bbVisit, bbNext);
        anchor("bfs.edge.brc");

        b_.setInsert(bbVisit);
        const auto nbrAddr = emitElemAddr(b_.param(2), nbr);
        const auto dn = b_.ld(MemSpace::Global, MemWidth::I32, nbrAddr);
        b_.brc(b_.ieq(dn, imm(-1)), bbClaim, bbNext);
        anchor("bfs.unseen.brc"); // not a golden edit — a test handle for
                                  // the frontier-spin mutant

        b_.setInsert(bbClaim);
        b_.st(MemSpace::Global, MemWidth::I32, nbrAddr, nextLevel);
        b_.atomic(ir::AtomicOp::AddI32, MemSpace::Global, b_.param(3),
                  imm(1));
        b_.br(bbNext);

        b_.setInsert(bbNext);
        b_.iaddTo(e, e, imm(1));
        b_.br(bbHead);

        b_.setInsert(bbDone);
        b_.ret();
        b_.setLoc("");
    }

    BfsModule& out_;
    IRBuilder b_;
};

} // namespace

BfsModule
buildBfs(const BfsConfig& config)
{
    GEVO_ASSERT(config.nodes > 0 &&
                    config.nodes %
                            static_cast<std::int32_t>(config.blockDim) ==
                        0,
                "bfs nodes must be a positive multiple of blockDim");
    GEVO_ASSERT(config.degree > 0, "bfs degree must be positive");
    GEVO_ASSERT(config.source >= 0 && config.source < config.nodes,
                "bfs source out of range");
    BfsModule out;
    out.config = config;
    BfsEmitter emitter(out);
    emitter.emitAll();
    return out;
}

CsrGraph
makeGraph(const BfsConfig& config)
{
    CsrGraph g;
    g.rowPtr.reserve(static_cast<std::size_t>(config.nodes) + 1);
    g.colIdx.reserve(static_cast<std::size_t>(config.edges()));
    std::uint32_t s = static_cast<std::uint32_t>(config.seed) * 2654435761u +
                      0x1234567u;
    const auto draw = [&s]() {
        s ^= s << 13;
        s ^= s >> 17;
        s ^= s << 5;
        return s;
    };
    g.rowPtr.push_back(0);
    for (std::int32_t u = 0; u < config.nodes; ++u) {
        for (std::int32_t k = 0; k < config.degree; ++k) {
            auto v = static_cast<std::int32_t>(
                draw() % static_cast<std::uint32_t>(config.nodes));
            if (v == u)
                v = (v + 1) % config.nodes;
            g.colIdx.push_back(v);
        }
        g.rowPtr.push_back(static_cast<std::int32_t>(g.colIdx.size()));
    }
    return g;
}

std::vector<std::int32_t>
runCpuBfs(const BfsConfig& config, const CsrGraph& graph)
{
    std::vector<std::int32_t> dist(static_cast<std::size_t>(config.nodes),
                                   -1);
    dist[static_cast<std::size_t>(config.source)] = 0;
    std::deque<std::int32_t> frontier = {config.source};
    while (!frontier.empty()) {
        const auto u = frontier.front();
        frontier.pop_front();
        const auto du = dist[static_cast<std::size_t>(u)];
        for (auto e = graph.rowPtr[static_cast<std::size_t>(u)];
             e < graph.rowPtr[static_cast<std::size_t>(u) + 1]; ++e) {
            const auto v = graph.colIdx[static_cast<std::size_t>(e)];
            if (dist[static_cast<std::size_t>(v)] == -1) {
                dist[static_cast<std::size_t>(v)] = du + 1;
                frontier.push_back(v);
            }
        }
    }
    return dist;
}

std::vector<NamedEdit>
allGoldenEdits(const BfsModule& built)
{
    using mut::Edit;
    using mut::EditKind;
    std::vector<NamedEdit> out;
    for (const char* name : {"bfs.bounds.brc", "bfs.edge.brc"}) {
        Edit e;
        e.kind = EditKind::OperandReplace;
        e.srcUid = built.uidOf(name);
        e.opIndex = 0;
        e.newOperand = ir::Operand::imm(1);
        out.push_back({name, e});
    }
    {
        Edit e;
        e.kind = EditKind::OperandReplace;
        e.srcUid = built.uidOf("bfs.end.load");
        e.opIndex = 0;
        e.newOperand = ir::Operand::reg(built.regs.at("bfs.reg.endaddr"));
        out.push_back({"dup-row-index", e});
    }
    return out;
}

} // namespace gevo::bfs
