/// \file
/// Level-synchronous frontier BFS over a fixed CSR graph, built in IR.
///
/// The divergent, data-dependent member of the new workload family — the
/// irregular-kernel line of related work stresses that mutation payoff on
/// traversal codes differs sharply from regular stencils/reductions, and
/// the per-node neighbour loop (trip count = node degree) is exactly the
/// per-lane divergent region the ROADMAP names as the trace interpreter's
/// weak spot.
///
/// Two kernels: `bfs_init` seeds the distance array (source 0, everything
/// else -1), and `bfs_level` expands the current frontier — one thread
/// per node, nodes whose distance equals the level walk their CSR
/// adjacency run, claim unvisited neighbours at level+1, and bump a
/// global discovery counter the host polls for termination.
///
/// Planted inefficiencies (the golden-edit targets):
///   * a dominated `node < 2^22` guard in front of the expansion,
///   * a duplicate index chain (fresh tid/bid/ntid reads) feeding the
///     adjacency-run end load, and
///   * a per-edge `neighbour >= 0` guard inside the divergent loop that
///     CSR construction makes always-true (the highest-payoff fold: it
///     executes once per traversed edge).

#ifndef GEVO_APPS_BFS_KERNELS_H
#define GEVO_APPS_BFS_KERNELS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/golden_edit.h"
#include "ir/function.h"
#include "mutation/edit.h"

namespace gevo::bfs {

/// Scale/configuration constants embedded in the kernels.
struct BfsConfig {
    std::int32_t nodes = 256;  ///< Node count; multiple of 64.
    std::int32_t degree = 8;   ///< Out-degree per node.
    std::uint64_t seed = 11;   ///< Graph generation seed.
    std::int32_t source = 0;   ///< BFS root.
    std::uint32_t blockDim = 64;

    std::int32_t edges() const { return nodes * degree; }
};

/// A fixed CSR graph.
struct CsrGraph {
    std::vector<std::int32_t> rowPtr; ///< nodes + 1 entries.
    std::vector<std::int32_t> colIdx; ///< rowPtr.back() entries.
};

/// A built BFS module plus anchors for the golden edits.
struct BfsModule {
    ir::Module module;
    BfsConfig config;
    std::map<std::string, std::uint64_t> anchors;
    std::map<std::string, std::int64_t> regs;

    /// Anchor lookup; fatal when missing.
    std::uint64_t uidOf(const std::string& name) const;
};

/// Build both kernels (`bfs_init(dist, source)`,
/// `bfs_level(rowPtr, colIdx, dist, changed, level)`).
BfsModule buildBfs(const BfsConfig& config);

/// Deterministic pseudo-random graph (uniform targets, self-loops
/// skipped; duplicate edges kept — irregularity is the point).
CsrGraph makeGraph(const BfsConfig& config);

/// CPU reference: per-node BFS distance from the source (-1 when
/// unreachable).
std::vector<std::int32_t> runCpuBfs(const BfsConfig& config,
                                    const CsrGraph& graph);

/// A named golden edit (shared shape, see apps/golden_edit.h).
using NamedEdit = apps::NamedEdit;
using apps::editsOf;

/// All planted optimizations: fold the dominated node guard, fold the
/// per-edge neighbour guard, reroute the run-end load to the first index
/// chain (the duplicate chain then folds away as dead code).
std::vector<NamedEdit> allGoldenEdits(const BfsModule& built);

} // namespace gevo::bfs

#endif // GEVO_APPS_BFS_KERNELS_H
