#include "apps/bfs/workload.h"

#include <algorithm>
#include <memory>

#include "apps/bfs/driver.h"
#include "core/workload.h"
#include "mutation/patch.h"
#include "opt/passes.h"
#include "support/strings.h"

namespace gevo::bfs {

namespace {

class BfsWorkloadInstance : public core::WorkloadInstance {
  public:
    explicit BfsWorkloadInstance(const core::WorkloadConfig& config)
        : built_(buildBfs(makeConfig(config))), driver_(built_.config),
          fitness_(driver_, config.device), device_(config.device)
    {
    }

    const ir::Module& module() const override { return built_.module; }
    const core::FitnessFunction& fitness() const override
    {
        return fitness_;
    }

    std::string
    banner() const override
    {
        std::int32_t reached = 0;
        std::int32_t depth = 0;
        for (const auto d : driver_.expected()) {
            if (d >= 0) {
                ++reached;
                depth = std::max(depth, d);
            }
        }
        return strformat("%d nodes, degree %d CSR graph; %d reachable "
                         "from node %d, depth %d",
                         built_.config.nodes, built_.config.degree,
                         reached, built_.config.source, depth);
    }

    std::vector<mut::Edit>
    goldenEdits() const override
    {
        return editsOf(allGoldenEdits(built_));
    }

    /// Held-out validation on a 4x graph with a tightly sized arena: a
    /// variant that traverses past its adjacency arrays passes the small
    /// fitness graph (page slack) but faults here.
    std::string
    validateBest(const std::vector<mut::Edit>& edits) const override
    {
        BfsConfig big = built_.config;
        big.nodes = built_.config.nodes * 4;
        const auto bigBuilt = buildBfs(big);
        const BfsDriver bigDriver(big, /*tightArena=*/true);
        auto variant = mut::applyPatch(bigBuilt.module, edits);
        opt::runCleanupPipeline(variant);
        const auto heldOut = bigDriver.run(variant, device_);
        if (!heldOut.ok())
            return strformat("held-out %d-node check: %s", big.nodes,
                             heldOut.fault.detail.c_str());
        return {};
    }

  private:
    static BfsConfig
    makeConfig(const core::WorkloadConfig& config)
    {
        BfsConfig cfg;
        cfg.nodes =
            static_cast<std::int32_t>(config.knobInt("nodes", 256));
        cfg.degree =
            static_cast<std::int32_t>(config.knobInt("degree", 8));
        cfg.seed =
            static_cast<std::uint64_t>(config.knobInt("graph-seed", 11));
        return cfg;
    }

    BfsModule built_;
    BfsDriver driver_;
    BfsFitness fitness_;
    sim::DeviceConfig device_;
};

} // namespace

void
registerWorkloads()
{
    core::Workload w;
    w.name = "bfs";
    w.summary = "level-synchronous frontier BFS over a fixed CSR graph "
                "(divergent, data-dependent traversal)";
    w.knobs = {
        {"nodes", 256, "node count; multiple of the block size (64)"},
        {"degree", 8, "out-degree per node"},
        {"graph-seed", 11, "graph generation seed"},
    };
    w.searchDefaults.populationSize = 12;
    w.searchDefaults.generations = 8;
    w.searchDefaults.elitism = 2;
    w.searchDefaults.seed = 13;
    w.searchDefaults.cacheSaveInterval = 10;
    w.benchDefaults.populationSize = 12;
    w.benchDefaults.generations = 8;
    w.benchDefaults.elitism = 2;
    w.benchDefaults.seed = 3;
    w.benchKnobs = {{"nodes", "128"}, {"degree", "6"}};
    w.variabilityRuns = 2;
    w.variabilityGens = 6;
    w.variabilityPop = 10;
    w.make = [](const core::WorkloadConfig& config) {
        return std::unique_ptr<core::WorkloadInstance>(
            new BfsWorkloadInstance(config));
    };
    core::WorkloadRegistry::instance().add(std::move(w));
}

} // namespace gevo::bfs
