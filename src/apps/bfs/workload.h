/// \file
/// Registry hookup for the frontier-BFS workload.

#ifndef GEVO_APPS_BFS_WORKLOAD_H
#define GEVO_APPS_BFS_WORKLOAD_H

namespace gevo::bfs {

/// Register the "bfs" workload (see apps/registry.h for when).
void registerWorkloads();

} // namespace gevo::bfs

#endif // GEVO_APPS_BFS_WORKLOAD_H
