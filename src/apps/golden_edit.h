/// \file
/// The one shared shape of a "golden" (known-good) edit: every app
/// package expresses its planted/paper optimizations as named edits
/// against its module's anchors, and every consumer (benches, tests, the
/// workload instances) strips the names with editsOf() when applying
/// them. One definition here instead of a copy per app.

#ifndef GEVO_APPS_GOLDEN_EDIT_H
#define GEVO_APPS_GOLDEN_EDIT_H

#include <string>
#include <vector>

#include "mutation/edit.h"

namespace gevo::apps {

/// An edit with a human-readable name (the paper's, e.g. "e6", or the
/// planted inefficiency's, e.g. "vdiff-nb3").
struct NamedEdit {
    std::string name;
    mut::Edit edit;
};

/// Strip names.
inline std::vector<mut::Edit>
editsOf(const std::vector<NamedEdit>& named)
{
    std::vector<mut::Edit> out;
    out.reserve(named.size());
    for (const auto& n : named)
        out.push_back(n.edit);
    return out;
}

} // namespace gevo::apps

#endif // GEVO_APPS_GOLDEN_EDIT_H
