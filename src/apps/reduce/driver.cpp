#include "apps/reduce/driver.h"

#include "sim/device_memory.h"
#include "sim/program.h"

namespace gevo::reduce {

ReduceDriver::ReduceDriver(ReduceConfig config, bool tightArena)
    : config_(config), tightArena_(tightArena)
{
    for (std::int32_t d = 0; d < config_.inputs; ++d) {
        inputs_.push_back(makeInput(config_, d));
        expectedPartials_.push_back(cpuPartials(config_, inputs_.back()));
        expectedTotals_.push_back(cpuTotal(inputs_.back()));
    }
}

ReduceRunOutput
ReduceDriver::run(const ir::Module& module, const sim::DeviceConfig& dev,
                  bool profile) const
{
    return run(sim::ProgramSet::decodeModule(module), dev, profile);
}

ReduceRunOutput
ReduceDriver::run(const sim::ProgramSet& programs,
                  const sim::DeviceConfig& dev, bool profile) const
{
    ReduceRunOutput out;
    const std::int64_t inBytes = 4ll * config_.elems;
    const std::int64_t partialBytes = 4ll * config_.finalSlots();

    // Allocation plan: input + zero-padded partials + one result slot.
    const auto round = [](std::int64_t b) { return (b + 255) / 256 * 256; };
    const std::int64_t total =
        round(inBytes) + round(partialBytes) + round(4);
    sim::DeviceMemory mem(tightArena_ ? total : total + (1 << 18));
    const auto in = mem.alloc(inBytes);
    const auto partials = mem.alloc(partialBytes);
    const auto result = mem.alloc(4);

    const auto* partialProg = programs.find("rd_partial");
    const auto* finalProg = programs.find("rd_final");
    if (partialProg == nullptr || finalProg == nullptr) {
        out.fault.kind = sim::FaultKind::InvalidProgram;
        out.fault.detail = "rd_partial/rd_final missing from module";
        return out;
    }

    const auto blocks = static_cast<std::uint32_t>(config_.numBlocks());
    const sim::LaunchDims partialDims{blocks, config_.blockDim,
                                      oversubscribe_};
    const sim::LaunchDims finalDims{1, config_.blockDim, oversubscribe_};

    for (std::size_t d = 0; d < inputs_.size(); ++d) {
        mem.copyIn(in, inputs_[d].data(), inBytes);
        // Unwritten partial slots must read as zero for every dataset —
        // a mutant may have scribbled over the pad on the previous one.
        for (std::int32_t p = config_.numBlocks();
             p < config_.finalSlots(); ++p)
            mem.write<std::uint32_t>(partials + 4ll * p, 0);

        for (const auto& [prog, dims, src, dst] :
             {std::tuple{partialProg, partialDims, in, partials},
              std::tuple{finalProg, finalDims, partials, result}}) {
            const auto res = sim::launchKernel(
                dev, mem, *prog, dims,
                {static_cast<std::uint64_t>(src),
                 static_cast<std::uint64_t>(dst)},
                profile);
            out.totalMs += res.stats.ms;
            out.aggregate.accumulate(res.stats);
            if (!res.ok()) {
                out.fault = res.fault;
                return out;
            }
        }

        auto& p = out.partials.emplace_back();
        p.resize(static_cast<std::size_t>(config_.numBlocks()));
        mem.copyOut(p.data(), partials, 4ll * config_.numBlocks());
        out.totals.push_back(mem.read<std::uint32_t>(result));
    }
    return out;
}

} // namespace gevo::reduce
