/// \file
/// Host-side reduction driver: uploads each dataset, launches the
/// per-block partial kernel then the single-block final kernel, and reads
/// back both the partial sums and the total. The arena is sized to the
/// allocation plan; \p tightArena drops the slack (held-out regime).

#ifndef GEVO_APPS_REDUCE_DRIVER_H
#define GEVO_APPS_REDUCE_DRIVER_H

#include <vector>

#include "apps/reduce/kernels.h"
#include "core/fitness.h"
#include "sim/device_config.h"
#include "sim/executor.h"
#include "support/strings.h"

namespace gevo::reduce {

/// Output of one full run (all datasets).
struct ReduceRunOutput {
    sim::Fault fault;
    /// Per-dataset per-block partial sums (as `rd_partial` left them).
    std::vector<std::vector<std::uint32_t>> partials;
    std::vector<std::uint32_t> totals; ///< Per-dataset final sums.
    double totalMs = 0.0;              ///< Simulated time, all launches.
    sim::LaunchStats aggregate;        ///< Counters summed over launches.

    bool ok() const { return fault.ok(); }
};

/// Immutable datasets + launch configuration; thread-safe (each run()
/// owns its memory).
class ReduceDriver {
  public:
    explicit ReduceDriver(ReduceConfig config, bool tightArena = false);

    /// Execute the pre-decoded kernels over every dataset (scoring stage
    /// of the two-stage pipeline; no IR access, no decoding).
    ReduceRunOutput run(const sim::ProgramSet& programs,
                        const sim::DeviceConfig& dev,
                        bool profile = false) const;

    /// Convenience: decode \p module and run it (one-off callers).
    ReduceRunOutput run(const ir::Module& module,
                        const sim::DeviceConfig& dev,
                        bool profile = false) const;

    /// CPU ground truth, computed once.
    const std::vector<std::vector<std::uint32_t>>& expectedPartials() const
    {
        return expectedPartials_;
    }
    const std::vector<std::uint32_t>& expectedTotals() const
    {
        return expectedTotals_;
    }
    const ReduceConfig& config() const { return config_; }

    /// Timing-grid multiplier (saturated-device regime).
    void setOversubscribe(std::uint32_t f) { oversubscribe_ = f; }

  private:
    ReduceConfig config_;
    bool tightArena_;
    std::uint32_t oversubscribe_ = 512;
    std::vector<std::vector<std::uint32_t>> inputs_;
    std::vector<std::vector<std::uint32_t>> expectedPartials_;
    std::vector<std::uint32_t> expectedTotals_;
};

/// Scores a variant by total simulated kernel time; any fault, any wrong
/// partial sum, or any wrong total invalidates it (integer sums — exact
/// equality, no tolerance).
class ReduceFitness : public core::FitnessFunction {
  public:
    ReduceFitness(const ReduceDriver& driver, sim::DeviceConfig dev)
        : driver_(driver), dev_(std::move(dev))
    {
    }

    core::FitnessResult
    evaluate(const core::CompiledVariant& variant) const override
    {
        return evaluateOn(variant, dev_);
    }

    core::FitnessResult
    evaluateOn(const core::CompiledVariant& variant,
               const sim::DeviceConfig& dev) const override
    {
        const auto out = driver_.run(variant.programs, dev);
        if (!out.ok())
            return core::FitnessResult::fail(out.fault.detail);
        for (std::size_t d = 0; d < out.totals.size(); ++d) {
            if (out.partials[d] != driver_.expectedPartials()[d])
                return core::FitnessResult::fail(strformat(
                    "dataset %zu: partial sums diverge from the CPU "
                    "reference",
                    d));
            if (out.totals[d] != driver_.expectedTotals()[d])
                return core::FitnessResult::fail(strformat(
                    "dataset %zu: got total %u, want %u", d,
                    out.totals[d], driver_.expectedTotals()[d]));
        }
        return core::FitnessResult::pass(out.totalMs, out.aggregate);
    }

    bool
    profileVariant(const core::CompiledVariant& variant,
                   core::ProfileSummary* out) const override
    {
        const auto run = driver_.run(variant.programs, dev_, /*profile=*/true);
        if (!run.ok())
            return false;
        *out = core::ProfileSummary{};
        out->accumulateLaunch(run.aggregate);
        return true;
    }

    std::string
    name() const override
    {
        return strformat("reduce(%d elems x %d inputs, %s)",
                         driver_.config().elems, driver_.config().inputs,
                         dev_.name.c_str());
    }

  private:
    const ReduceDriver& driver_;
    sim::DeviceConfig dev_;
};

} // namespace gevo::reduce

#endif // GEVO_APPS_REDUCE_DRIVER_H
