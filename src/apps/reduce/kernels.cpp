#include "apps/reduce/kernels.h"

#include "ir/builder.h"
#include "support/logging.h"
#include "support/strings.h"

namespace gevo::reduce {

using ir::IRBuilder;
using ir::MemSpace;
using ir::MemWidth;
using ir::Operand;

std::uint64_t
ReduceModule::uidOf(const std::string& name) const
{
    const auto it = anchors.find(name);
    if (it == anchors.end())
        GEVO_FATAL("unknown reduce anchor '%s'", name.c_str());
    return it->second;
}

namespace {

/// Emits one reduction kernel; called twice with distinct names and
/// anchor prefixes so `rd_partial` and `rd_final` carry independent
/// golden-edit targets.
class ReduceEmitter {
  public:
    ReduceEmitter(ReduceModule& out) : out_(out), b_(out.module) {}

    void
    emitKernel(const std::string& name, const std::string& prefix)
    {
        // p0 in p1 out; shared staging = blockDim i32 slots.
        b_.startKernel(name, 2, out_.config.blockDim * 4);
        const auto entry = b_.block("entry");
        b_.setLoc("reduce.cu:load");
        const auto tid = b_.tid();
        const auto ntid = b_.ntid();
        const auto bid = b_.bid();
        const auto base = b_.imul(bid, b_.imul(ntid, imm(2)));
        const auto i0 = b_.iadd(base, tid);
        const auto a = b_.ld(MemSpace::Global, MemWidth::U32,
                             emitElemAddr(b_.param(0), i0));

        // Second element address, then a planted duplicate chain (fresh
        // special-register reads, full recomputation) actually feeding
        // the load; the golden edit reroutes the load to `addr1` and the
        // duplicate folds away as dead code.
        const auto addr1 =
            emitElemAddr(b_.param(0), b_.iadd(i0, ntid));
        regAnchor(prefix + ".reg.addr1", addr1);
        const auto tidB = b_.tid();
        const auto ntidB = b_.ntid();
        const auto bidB = b_.bid();
        const auto baseB = b_.imul(bidB, b_.imul(ntidB, imm(2)));
        const auto i1b = b_.iadd(b_.iadd(baseB, tidB), ntidB);
        const auto a2 = b_.ld(MemSpace::Global, MemWidth::U32,
                              emitElemAddr(b_.param(0), i1b));
        anchor(prefix + ".second.load");
        const auto s = b_.iadd(a, a2);

        b_.st(MemSpace::Shared, MemWidth::I32,
              b_.lmul(b_.sext64(tid), imm(4)), s);
        b_.barrier();
        b_.barrier(); // planted: redundant double sync
        anchor(prefix + ".extrabar");

        const auto bbWarp = b_.block("warp_fold");
        const auto bbStore = b_.block("store");
        const auto bbStore2 = b_.block("store2");
        const auto bbDone = b_.block("done");
        b_.setInsert(entry);
        b_.brc(b_.ilt(tid, imm(32)), bbWarp, bbDone);

        // Warp 0: fold the two warps' staging slots, then a shfl tree.
        b_.setInsert(bbWarp);
        b_.setLoc("reduce.cu:warp");
        const auto lo = b_.ld(MemSpace::Shared, MemWidth::U32,
                              b_.lmul(b_.sext64(tid), imm(4)));
        const auto hi = b_.ld(MemSpace::Shared, MemWidth::U32,
                              b_.lmul(b_.sext64(b_.iadd(tid, imm(32))),
                                      imm(4)));
        Operand x = b_.iadd(lo, hi);
        const auto m = b_.activemask();
        // Ballot identity: when no lane holds a nonzero value the select
        // short-circuits to the constant — semantically a no-op on this
        // data, but it keeps the vote ops on the hot path.
        const auto nz = b_.ballot(m, b_.ine(x, imm(0)));
        x = b_.sel(b_.ieq(nz, imm(0)), imm(0), x);
        const auto lane = b_.lane();
        for (const int off : {16, 8, 4, 2, 1}) {
            const auto y = b_.shflIdx(m, x, b_.iadd(lane, imm(off)));
            x = b_.iadd(x, y);
        }
        b_.brc(b_.ieq(tid, imm(0)), bbStore, bbDone);

        // Planted dominated guard in front of the result store.
        b_.setInsert(bbStore);
        b_.brc(b_.ilt(bid, imm(1 << 22)), bbStore2, bbDone);
        anchor(prefix + ".bounds.brc");
        b_.setInsert(bbStore2);
        b_.st(MemSpace::Global, MemWidth::I32,
              emitElemAddr(b_.param(1), bid), x);
        b_.br(bbDone);

        b_.setInsert(bbDone);
        b_.ret();
        b_.setLoc("");
    }

  private:
    static Operand imm(std::int64_t v) { return Operand::imm(v); }

    void
    anchor(const std::string& name)
    {
        auto& fn = b_.kernel();
        out_.anchors[name] =
            fn.blocks[b_.insertBlock()].instrs.back().uid;
    }
    void
    regAnchor(const std::string& name, Operand r)
    {
        out_.regs[name] = r.value;
    }

    /// Element address: base + 4 * index.
    Operand
    emitElemAddr(Operand base, Operand index)
    {
        return b_.ladd(base, b_.lmul(b_.sext64(index), imm(4)));
    }

    ReduceModule& out_;
    IRBuilder b_;
};

} // namespace

ReduceModule
buildReduce(const ReduceConfig& config)
{
    GEVO_ASSERT(config.elems > 0 &&
                    config.elems % config.perBlock() == 0,
                "reduce elems must be a positive multiple of 2*blockDim");
    GEVO_ASSERT(config.numBlocks() <= config.finalSlots(),
                "reduce partial count exceeds the final kernel's block");
    ReduceModule out;
    out.config = config;
    ReduceEmitter emitter(out);
    emitter.emitKernel("rd_partial", "rdp");
    emitter.emitKernel("rd_final", "rdf");
    return out;
}

std::vector<std::uint32_t>
makeInput(const ReduceConfig& config, std::int32_t index)
{
    std::vector<std::uint32_t> in(static_cast<std::size_t>(config.elems));
    std::uint32_t s = static_cast<std::uint32_t>(config.seed) +
                      0x9e3779b9u * static_cast<std::uint32_t>(index + 1);
    for (auto& v : in) {
        s ^= s << 13;
        s ^= s >> 17;
        s ^= s << 5;
        v = s & 0xffu;
    }
    return in;
}

std::vector<std::uint32_t>
cpuPartials(const ReduceConfig& config, const std::vector<std::uint32_t>& in)
{
    const auto per = static_cast<std::size_t>(config.perBlock());
    std::vector<std::uint32_t> partials(
        static_cast<std::size_t>(config.numBlocks()), 0);
    for (std::size_t i = 0; i < in.size(); ++i)
        partials[i / per] += in[i];
    return partials;
}

std::uint32_t
cpuTotal(const std::vector<std::uint32_t>& in)
{
    std::uint32_t total = 0;
    for (const auto v : in)
        total += v;
    return total;
}

std::vector<NamedEdit>
allGoldenEdits(const ReduceModule& built)
{
    using mut::Edit;
    using mut::EditKind;
    std::vector<NamedEdit> out;
    for (const char* prefix : {"rdp", "rdf"}) {
        const std::string p = prefix;
        {
            Edit e;
            e.kind = EditKind::InstrDelete;
            e.srcUid = built.uidOf(p + ".extrabar");
            out.push_back({p + "-extra-barrier", e});
        }
        {
            Edit e;
            e.kind = EditKind::OperandReplace;
            e.srcUid = built.uidOf(p + ".second.load");
            e.opIndex = 0;
            e.newOperand =
                ir::Operand::reg(built.regs.at(p + ".reg.addr1"));
            out.push_back({p + "-dup-index", e});
        }
        {
            Edit e;
            e.kind = EditKind::OperandReplace;
            e.srcUid = built.uidOf(p + ".bounds.brc");
            e.opIndex = 0;
            e.newOperand = ir::Operand::imm(1);
            out.push_back({p + "-store-bounds", e});
        }
    }
    return out;
}

} // namespace gevo::reduce
