/// \file
/// Tree reduction (sum) with shared-memory and warp-shuffle stages, built
/// in IR.
///
/// Two kernels with the same shape: `rd_partial` reduces the input array
/// to one partial sum per block (each thread folds two elements, a
/// shared-memory stage folds the block's two warps together, and a
/// shfl-based tree folds warp 0 — exercising the ballot/shfl/activemask
/// ops the trace interpreter scalarizes), and `rd_final` runs the same
/// body over the zero-padded partial array with a single block.
///
/// Planted inefficiencies (the golden-edit targets, one set per kernel):
///   * a redundant second barrier after the shared-memory stores,
///   * a duplicate index chain (fresh tid/bid/ntid reads) feeding the
///     second element load, and
///   * a dominated `bid < 2^22` guard in front of the result store.

#ifndef GEVO_APPS_REDUCE_KERNELS_H
#define GEVO_APPS_REDUCE_KERNELS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/golden_edit.h"
#include "ir/function.h"
#include "mutation/edit.h"

namespace gevo::reduce {

/// Scale/configuration constants embedded in the kernels.
struct ReduceConfig {
    std::int32_t elems = 8192;  ///< Input length; multiple of 128, <= 16384.
    std::int32_t inputs = 2;    ///< Independent datasets per evaluation.
    std::uint64_t seed = 21;    ///< Dataset generation seed.
    std::uint32_t blockDim = 64;

    /// Elements folded per block (two per thread).
    std::int32_t perBlock() const
    {
        return 2 * static_cast<std::int32_t>(blockDim);
    }
    std::int32_t numBlocks() const { return elems / perBlock(); }
    /// Zero-padded partial-array length `rd_final` reduces (one block's
    /// coverage).
    std::int32_t finalSlots() const { return perBlock(); }
};

/// A built reduction module plus anchors for the golden edits.
struct ReduceModule {
    ir::Module module;
    ReduceConfig config;
    std::map<std::string, std::uint64_t> anchors;
    std::map<std::string, std::int64_t> regs;

    /// Anchor lookup; fatal when missing.
    std::uint64_t uidOf(const std::string& name) const;
};

/// Build both kernels (`rd_partial(in, out)`, `rd_final(in, out)`).
ReduceModule buildReduce(const ReduceConfig& config);

/// Deterministic dataset \p index (xorshift values masked to a byte so
/// sums stay far from 32-bit wraparound at every supported scale).
std::vector<std::uint32_t> makeInput(const ReduceConfig& config,
                                     std::int32_t index);

/// CPU reference partial sums for one dataset (one entry per block).
std::vector<std::uint32_t> cpuPartials(const ReduceConfig& config,
                                       const std::vector<std::uint32_t>& in);

/// CPU reference total for one dataset.
std::uint32_t cpuTotal(const std::vector<std::uint32_t>& in);

/// A named golden edit (shared shape, see apps/golden_edit.h).
using NamedEdit = apps::NamedEdit;
using apps::editsOf;

/// All planted optimizations (both kernels): delete the redundant
/// barriers, reroute the second loads to the first index chain, fold the
/// dominated store guards.
std::vector<NamedEdit> allGoldenEdits(const ReduceModule& built);

} // namespace gevo::reduce

#endif // GEVO_APPS_REDUCE_KERNELS_H
