#include "apps/reduce/workload.h"

#include <algorithm>
#include <memory>

#include "apps/reduce/driver.h"
#include "core/workload.h"
#include "mutation/patch.h"
#include "opt/passes.h"
#include "support/strings.h"

namespace gevo::reduce {

namespace {

class ReduceWorkloadInstance : public core::WorkloadInstance {
  public:
    explicit ReduceWorkloadInstance(const core::WorkloadConfig& config)
        : built_(buildReduce(makeConfig(config))), driver_(built_.config),
          fitness_(driver_, config.device), device_(config.device)
    {
    }

    const ir::Module& module() const override { return built_.module; }
    const core::FitnessFunction& fitness() const override
    {
        return fitness_;
    }

    std::string
    banner() const override
    {
        return strformat("%d elements x %d datasets, %d partial blocks, "
                         "shared-memory + warp-shuffle tree",
                         built_.config.elems, built_.config.inputs,
                         built_.config.numBlocks());
    }

    std::vector<mut::Edit>
    goldenEdits() const override
    {
        return editsOf(allGoldenEdits(built_));
    }

    /// Held-out validation at a larger input with a tightly sized arena.
    std::string
    validateBest(const std::vector<mut::Edit>& edits) const override
    {
        // Double the configured input (the kernel structure caps the
        // supported length, so a maxed-out fitness scale degrades to a
        // tight-arena re-run at the same size).
        ReduceConfig big = built_.config;
        big.elems = std::min(built_.config.elems * 2, 16384);
        big.inputs = 1;
        const auto bigBuilt = buildReduce(big);
        const ReduceDriver bigDriver(big, /*tightArena=*/true);
        auto variant = mut::applyPatch(bigBuilt.module, edits);
        opt::runCleanupPipeline(variant);
        const auto heldOut = bigDriver.run(variant, device_);
        if (!heldOut.ok())
            return strformat("held-out %d-element check: %s", big.elems,
                             heldOut.fault.detail.c_str());
        return {};
    }

  private:
    static ReduceConfig
    makeConfig(const core::WorkloadConfig& config)
    {
        ReduceConfig cfg;
        cfg.elems =
            static_cast<std::int32_t>(config.knobInt("elems", 8192));
        cfg.inputs =
            static_cast<std::int32_t>(config.knobInt("inputs", 2));
        cfg.seed =
            static_cast<std::uint64_t>(config.knobInt("data-seed", 21));
        return cfg;
    }

    ReduceModule built_;
    ReduceDriver driver_;
    ReduceFitness fitness_;
    sim::DeviceConfig device_;
};

} // namespace

void
registerWorkloads()
{
    core::Workload w;
    w.name = "reduce";
    w.summary = "tree reduction, shared-memory stage + warp-shuffle "
                "finish (ballot/shfl/activemask on the hot path)";
    w.knobs = {
        {"elems", 8192, "input length; multiple of 128, at most 16384"},
        {"inputs", 2, "independent datasets per evaluation"},
        {"data-seed", 21, "dataset generation seed"},
    };
    w.searchDefaults.populationSize = 12;
    w.searchDefaults.generations = 8;
    w.searchDefaults.elitism = 2;
    w.searchDefaults.seed = 9;
    w.searchDefaults.cacheSaveInterval = 10;
    w.benchDefaults.populationSize = 12;
    w.benchDefaults.generations = 8;
    w.benchDefaults.elitism = 2;
    w.benchDefaults.seed = 3;
    w.benchKnobs = {{"elems", "2048"}, {"inputs", "1"}};
    w.variabilityRuns = 2;
    w.variabilityGens = 6;
    w.variabilityPop = 10;
    w.make = [](const core::WorkloadConfig& config) {
        return std::unique_ptr<core::WorkloadInstance>(
            new ReduceWorkloadInstance(config));
    };
    core::WorkloadRegistry::instance().add(std::move(w));
}

} // namespace gevo::reduce
