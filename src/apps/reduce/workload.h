/// \file
/// Registry hookup for the tree-reduction workload.

#ifndef GEVO_APPS_REDUCE_WORKLOAD_H
#define GEVO_APPS_REDUCE_WORKLOAD_H

namespace gevo::reduce {

/// Register the "reduce" workload (see apps/registry.h for when).
void registerWorkloads();

} // namespace gevo::reduce

#endif // GEVO_APPS_REDUCE_WORKLOAD_H
