#include "apps/registry.h"

#include "apps/adept/workload.h"
#include "apps/bfs/workload.h"
#include "apps/reduce/workload.h"
#include "apps/simcov/workload.h"
#include "apps/stencil/workload.h"

namespace gevo::apps {

void
registerBuiltinWorkloads()
{
    static const bool once = [] {
        adept::registerWorkloads();
        simcov::registerWorkloads();
        stencil::registerWorkloads();
        reduce::registerWorkloads();
        bfs::registerWorkloads();
        return true;
    }();
    (void)once;
}

} // namespace gevo::apps
