#include "apps/registry.h"

#include "apps/adept/workload.h"
#include "apps/simcov/workload.h"

namespace gevo::apps {

void
registerBuiltinWorkloads()
{
    static const bool once = [] {
        adept::registerWorkloads();
        simcov::registerWorkloads();
        return true;
    }();
    (void)once;
}

} // namespace gevo::apps
