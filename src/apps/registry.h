/// \file
/// One-call registration of every built-in workload.
///
/// gevo is a static library, so self-registration via static initializers
/// would be linker-stripped; instead every registry consumer (the evolve
/// example, the benches, the tests) makes this explicit, idempotent call
/// before touching core::WorkloadRegistry.

#ifndef GEVO_APPS_REGISTRY_H
#define GEVO_APPS_REGISTRY_H

namespace gevo::apps {

/// Register the built-in workloads (adept-v0, adept-v1, simcov) with
/// core::WorkloadRegistry::instance(). Safe to call any number of times.
void registerBuiltinWorkloads();

} // namespace gevo::apps

#endif // GEVO_APPS_REGISTRY_H
