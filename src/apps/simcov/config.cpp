#include "apps/simcov/config.h"

#include <algorithm>
#include <cmath>

#include "support/strings.h"

namespace gevo::simcov {

namespace {

struct SeriesCheck {
    const char* name;
    double meanErr = 0.0;
    double maxErr = 0.0;
};

void
accumulate(SeriesCheck* chk, double ref, double got, double absFloor)
{
    const double denom = std::max(std::abs(ref), absFloor);
    const double err = std::abs(got - ref) / denom;
    chk->meanErr += err;
    chk->maxErr = std::max(chk->maxErr, err);
}

} // namespace

std::string
compareSeries(const TimeSeries& ref, const TimeSeries& got,
              const SeriesTolerance& tol)
{
    if (ref.size() != got.size())
        return strformat("series length %zu != %zu", got.size(),
                         ref.size());
    SeriesCheck checks[5] = {
        {"virions"}, {"chemokine"}, {"tcells"}, {"infected"}, {"dead"}};
    for (std::size_t s = 0; s < ref.size(); ++s) {
        accumulate(&checks[0], ref[s].totalVirions, got[s].totalVirions,
                   tol.absFloor);
        accumulate(&checks[1], ref[s].totalChemokine,
                   got[s].totalChemokine, tol.absFloor);
        accumulate(&checks[2], ref[s].tcells, got[s].tcells, tol.absFloor);
        accumulate(&checks[3], ref[s].infected, got[s].infected,
                   tol.absFloor);
        accumulate(&checks[4], ref[s].dead, got[s].dead, tol.absFloor);
    }
    for (auto& chk : checks) {
        chk.meanErr /= static_cast<double>(ref.size());
        if (chk.meanErr > tol.meanRel)
            return strformat("%s: mean relative error %.4f > %.4f",
                             chk.name, chk.meanErr, tol.meanRel);
        if (chk.maxErr > tol.maxRel)
            return strformat("%s: max relative error %.4f > %.4f",
                             chk.name, chk.maxErr, tol.maxRel);
    }
    return {};
}

} // namespace gevo::simcov
