/// \file
/// SIMCoV model configuration (paper Sec II-C): a 2-D slice of lung
/// tissue with epithelial cells, virions, inflammatory signal (chemokine)
/// and T cells. Parameters are fixed-point/scaled where the GPU and CPU
/// models must agree bit-for-bit.

#ifndef GEVO_APPS_SIMCOV_CONFIG_H
#define GEVO_APPS_SIMCOV_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace gevo::simcov {

/// Epithelial cell states.
enum EpiState : std::int32_t {
    kHealthy = 0,
    kInfected = 1,
    kApoptotic = 2,
    kDead = 3,
};

/// Model + run configuration.
struct SimcovConfig {
    std::int32_t gridW = 32;     ///< Square grid side.
    std::int32_t steps = 30;     ///< Simulation steps.
    std::uint32_t blockDim = 128;
    std::uint64_t seed = 1337;   ///< Per-cell RNG seeding.

    // ---- dynamics (f32; the GPU kernels embed these as immediates) ----
    float virionDiffuse = 0.20f;
    float chemDiffuse = 0.15f;
    float virionDecay = 0.025f;
    float chemDecay = 0.06f;
    float virionProduction = 1.1f;
    float chemProduction = 0.75f;
    float infectThreshold = 0.9f;
    float tcellSpawnThreshold = 0.45f;
    float initialVirions = 60.0f;

    // ---- probabilities as 24-bit fixed point (draw < scaled) ----
    std::int32_t infectProbScaled = static_cast<std::int32_t>(0.28 * (1 << 24));
    std::int32_t spawnProbScaled = static_cast<std::int32_t>(0.04 * (1 << 24));

    // ---- timers ----
    std::int32_t incubationSteps = 9;
    std::int32_t apoptosisSteps = 4;

    std::int32_t cells() const { return gridW * gridW; }
};

/// One step's aggregate outputs (the validation time series, paper
/// Sec III-C: fixed-seed ground truth compared per value).
struct StepStats {
    float totalVirions = 0.0f;
    float totalChemokine = 0.0f;
    std::int32_t tcells = 0;
    std::int32_t infected = 0;
    std::int32_t dead = 0;
};

/// Full run output: one StepStats per step.
using TimeSeries = std::vector<StepStats>;

/// Tolerances for comparing a variant's series against ground truth
/// ("per-value mean and per-value variance", paper Sec II-C2/III-C).
struct SeriesTolerance {
    double meanRel = 0.02; ///< Mean relative error bound per series.
    double maxRel = 0.10;  ///< Max relative error bound per series.
    double absFloor = 0.5; ///< Absolute slack for near-zero values.
};

/// Compare a variant series against the reference. Returns an empty
/// string when within tolerance, else a diagnostic.
std::string compareSeries(const TimeSeries& ref, const TimeSeries& got,
                          const SeriesTolerance& tol);

/// xorshift32 step shared by the CPU model and (re-implemented in IR) the
/// GPU kernels.
inline std::uint32_t
xorshift32(std::uint32_t s)
{
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    return s;
}

/// Deterministic per-cell RNG seed (must match the GPU setup kernel).
inline std::uint32_t
cellSeed(std::uint64_t seed, std::int32_t cell)
{
    const auto mixed =
        (static_cast<std::uint64_t>(cell) + 1) * 0x9e3779b97f4a7c15ULL +
        seed;
    auto s = static_cast<std::uint32_t>(mixed >> 32) ^
             static_cast<std::uint32_t>(mixed);
    if (s == 0)
        s = 0x1234567;
    return s;
}

} // namespace gevo::simcov

#endif // GEVO_APPS_SIMCOV_CONFIG_H
