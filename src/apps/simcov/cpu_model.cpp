#include "apps/simcov/cpu_model.h"

#include <algorithm>

#include "support/logging.h"

namespace gevo::simcov {

namespace {

/// Fixed 8-neighbour order shared with the GPU kernel emitter.
constexpr int kNeighborDx[8] = {-1, 0, 1, -1, 1, -1, 0, 1};
constexpr int kNeighborDy[8] = {-1, -1, -1, 0, 0, 1, 1, 1};

/// One diffusion pass (kernels 2 and 3).
void
diffuse(const SimcovConfig& cfg, const std::vector<float>& src,
        std::vector<float>* dst, float rate, float decay)
{
    const std::int32_t w = cfg.gridW;
    for (std::int32_t c = 0; c < cfg.cells(); ++c) {
        const std::int32_t y = c / w;
        const std::int32_t x = c % w;
        const float v = src[static_cast<std::size_t>(c)];
        float acc = 0.0f;
        for (int k = 0; k < 8; ++k) {
            const std::int32_t nx = x + kNeighborDx[k];
            const std::int32_t ny = y + kNeighborDy[k];
            if (nx >= 0 && nx < w && ny >= 0 && ny < w)
                acc += src[static_cast<std::size_t>(ny * w + nx)];
        }
        const float lap = acc - v * 8.0f;
        const float t1 = lap * (rate / 8.0f);
        const float t2 = v * decay;
        const float next = std::max((v + t1) - t2, 0.0f);
        (*dst)[static_cast<std::size_t>(c)] = next;
    }
}

/// Kernel 4: epithelial state machine + production.
void
epicellUpdate(const SimcovConfig& cfg, ModelState* st)
{
    for (std::int32_t c = 0; c < cfg.cells(); ++c) {
        const auto idx = static_cast<std::size_t>(c);
        const std::int32_t state = st->epistate[idx];
        if (state == kHealthy) {
            if (st->virionsNext[idx] > cfg.infectThreshold) {
                const std::uint32_t draw = xorshift32(st->rng[idx]);
                st->rng[idx] = draw;
                if (static_cast<std::int32_t>(draw & 0xffffff) <
                    cfg.infectProbScaled) {
                    st->epistate[idx] = kInfected;
                    st->timer[idx] = 0;
                }
            }
        } else if (state == kInfected) {
            st->timer[idx] += 1;
            st->virionsNext[idx] += cfg.virionProduction;
            st->chemNext[idx] += cfg.chemProduction;
            if (st->timer[idx] > cfg.incubationSteps) {
                st->epistate[idx] = kApoptotic;
                st->timer[idx] = 0;
            }
        } else if (state == kApoptotic) {
            st->timer[idx] += 1;
            if (st->timer[idx] > cfg.apoptosisSteps)
                st->epistate[idx] = kDead;
        }
    }
}

/// Kernel 5: clear the move buffer and extravasate new T cells.
void
tcellGenerate(const SimcovConfig& cfg, ModelState* st)
{
    for (std::int32_t c = 0; c < cfg.cells(); ++c) {
        const auto idx = static_cast<std::size_t>(c);
        st->tcellNext[idx] = 0;
        if (st->tcell[idx] == 0 &&
            st->chemNext[idx] > cfg.tcellSpawnThreshold) {
            const std::uint32_t draw = xorshift32(st->rng[idx]);
            st->rng[idx] = draw;
            if (static_cast<std::int32_t>(draw & 0xffffff) <
                cfg.spawnProbScaled)
                st->tcell[idx] = 1;
        }
    }
}

/// Kernel 6: random movement with atomic claim of the destination.
///
/// The GPU executes this warp-wide: all 32 lanes issue their first-choice
/// CAS in lane order, and only then do the losers issue the fallback CAS
/// on their own cell. The CPU mirror therefore processes cells in
/// warp-sized chunks with the same two-phase order (warps of one block
/// run to completion sequentially in the simulator, so chunk order is
/// simply ascending).
void
tcellMove(const SimcovConfig& cfg, ModelState* st)
{
    const std::int32_t w = cfg.gridW;
    for (std::int32_t base = 0; base < cfg.cells(); base += 32) {
        std::int32_t losers[32];
        int numLosers = 0;
        const std::int32_t end = std::min(cfg.cells(), base + 32);
        for (std::int32_t c = base; c < end; ++c) {
            const auto idx = static_cast<std::size_t>(c);
            if (st->tcell[idx] != 1)
                continue;
            const std::uint32_t draw = xorshift32(st->rng[idx]);
            st->rng[idx] = draw;
            // Matches the kernel: mask to 31 bits, then signed modulo.
            const auto d =
                static_cast<std::int32_t>((draw & 0x7fffffffu) % 9u);
            const std::int32_t dx = d % 3 - 1;
            const std::int32_t dy = d / 3 - 1;
            const std::int32_t x = c % w;
            const std::int32_t y = c / w;
            const std::int32_t nx = x + dx;
            const std::int32_t ny = y + dy;
            std::int32_t dst = c;
            if (nx >= 0 && nx < w && ny >= 0 && ny < w)
                dst = ny * w + nx;
            auto& slot = st->tcellNext[static_cast<std::size_t>(dst)];
            if (slot == 0) {
                slot = 1; // first-choice CAS wins
            } else {
                losers[numLosers++] = c;
            }
        }
        for (int i = 0; i < numLosers; ++i) {
            const auto idx = static_cast<std::size_t>(losers[i]);
            if (st->tcellNext[idx] == 0)
                st->tcellNext[idx] = 1; // fallback CAS
        }
    }
}

/// Kernel 7: bound T cells push infected neighbours into apoptosis.
void
tcellBind(const SimcovConfig& cfg, ModelState* st)
{
    const std::int32_t w = cfg.gridW;
    for (std::int32_t c = 0; c < cfg.cells(); ++c) {
        if (st->tcellNext[static_cast<std::size_t>(c)] != 1)
            continue;
        const std::int32_t x = c % w;
        const std::int32_t y = c / w;
        for (int k = 0; k < 9; ++k) {
            const std::int32_t dx = k % 3 - 1;
            const std::int32_t dy = k / 3 - 1;
            const std::int32_t nx = x + dx;
            const std::int32_t ny = y + dy;
            if (nx < 0 || nx >= w || ny < 0 || ny >= w)
                continue;
            const auto nc = static_cast<std::size_t>(ny * w + nx);
            if (st->epistate[nc] == kInfected) {
                st->epistate[nc] = kApoptotic;
                st->timer[nc] = 0;
            }
        }
    }
}

/// Kernel 8: per-block float32 reduction in block order (mirrors the GPU
/// shared-memory scan + per-block atomics, so sums match bit-for-bit).
StepStats
reduceStats(const SimcovConfig& cfg, const ModelState& st)
{
    StepStats out;
    const auto blockDim = static_cast<std::int32_t>(cfg.blockDim);
    for (std::int32_t base = 0; base < cfg.cells(); base += blockDim) {
        float v = 0.0f;
        float ch = 0.0f;
        std::int32_t tc = 0;
        std::int32_t inf = 0;
        std::int32_t dead = 0;
        const std::int32_t end = std::min(cfg.cells(), base + blockDim);
        for (std::int32_t c = base; c < end; ++c) {
            const auto idx = static_cast<std::size_t>(c);
            v += st.virionsNext[idx];
            ch += st.chemNext[idx];
            tc += st.tcellNext[idx];
            inf += st.epistate[idx] == kInfected ? 1 : 0;
            dead += st.epistate[idx] == kDead ? 1 : 0;
        }
        out.totalVirions += v;
        out.totalChemokine += ch;
        out.tcells += tc;
        out.infected += inf;
        out.dead += dead;
    }
    return out;
}

} // namespace

ModelState
ModelState::initial(const SimcovConfig& cfg)
{
    ModelState st;
    const auto n = static_cast<std::size_t>(cfg.cells());
    st.epistate.assign(n, kHealthy);
    st.timer.assign(n, 0);
    st.virions.assign(n, 0.0f);
    st.virionsNext.assign(n, 0.0f);
    st.chemokine.assign(n, 0.0f);
    st.chemNext.assign(n, 0.0f);
    st.tcell.assign(n, 0);
    st.tcellNext.assign(n, 0);
    st.rng.resize(n);
    for (std::int32_t c = 0; c < cfg.cells(); ++c)
        st.rng[static_cast<std::size_t>(c)] = cellSeed(cfg.seed, c);
    const std::int32_t centre =
        (cfg.gridW / 2) * cfg.gridW + cfg.gridW / 2;
    st.virions[static_cast<std::size_t>(centre)] = cfg.initialVirions;
    return st;
}

StepStats
stepCpuModel(const SimcovConfig& cfg, ModelState* st)
{
    diffuse(cfg, st->virions, &st->virionsNext, cfg.virionDiffuse,
            cfg.virionDecay);
    diffuse(cfg, st->chemokine, &st->chemNext, cfg.chemDiffuse,
            cfg.chemDecay);
    epicellUpdate(cfg, st);
    tcellGenerate(cfg, st);
    tcellMove(cfg, st);
    tcellBind(cfg, st);
    const StepStats stats = reduceStats(cfg, *st);
    std::swap(st->virions, st->virionsNext);
    std::swap(st->chemokine, st->chemNext);
    std::swap(st->tcell, st->tcellNext);
    return stats;
}

TimeSeries
runCpuModel(const SimcovConfig& cfg)
{
    ModelState st = ModelState::initial(cfg);
    TimeSeries series;
    series.reserve(static_cast<std::size_t>(cfg.steps));
    for (std::int32_t s = 0; s < cfg.steps; ++s)
        series.push_back(stepCpuModel(cfg, &st));
    return series;
}

} // namespace gevo::simcov
