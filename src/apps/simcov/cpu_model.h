/// \file
/// CPU reference implementation of the SIMCoV model — the fixed-seed
/// ground truth the GPU kernels are validated against (paper Sec III-C:
/// "We use the simulation output generated from the unmodified SIMCoV as
/// ground truth").
///
/// Every loop mirrors one GPU kernel, iterating cells in ascending index
/// order — which is exactly the deterministic lane/warp/block order of the
/// simulator — and all accumulation is done in float32 with the kernels'
/// operation order, so the unmutated GPU module matches bit-for-bit.

#ifndef GEVO_APPS_SIMCOV_CPU_MODEL_H
#define GEVO_APPS_SIMCOV_CPU_MODEL_H

#include <vector>

#include "apps/simcov/config.h"

namespace gevo::simcov {

/// Full model state (host side).
struct ModelState {
    std::vector<std::int32_t> epistate;
    std::vector<std::int32_t> timer;
    std::vector<float> virions;
    std::vector<float> virionsNext;
    std::vector<float> chemokine;
    std::vector<float> chemNext;
    std::vector<std::int32_t> tcell;
    std::vector<std::int32_t> tcellNext;
    std::vector<std::uint32_t> rng;

    /// Initialize per the setup kernel: one infection site at the grid
    /// centre, deterministic per-cell RNG streams.
    static ModelState initial(const SimcovConfig& config);
};

/// Run the reference simulation, returning the per-step statistics series.
TimeSeries runCpuModel(const SimcovConfig& config);

/// Single-step variant used by tests: advances \p state in place and
/// returns the step's stats.
StepStats stepCpuModel(const SimcovConfig& config, ModelState* state);

} // namespace gevo::simcov

#endif // GEVO_APPS_SIMCOV_CPU_MODEL_H
