#include "apps/simcov/driver.h"

#include <array>

#include "apps/simcov/cpu_model.h"
#include "sim/device_memory.h"
#include "sim/program.h"
#include "support/logging.h"

namespace gevo::simcov {

SimcovDriver::SimcovDriver(SimcovConfig config, bool padded,
                           bool tightArena)
    : config_(config), padded_(padded), tightArena_(tightArena),
      expected_(runCpuModel(config))
{
}

SimcovRunOutput
SimcovDriver::run(const ir::Module& module, const sim::DeviceConfig& dev,
                  bool profile) const
{
    return run(sim::ProgramSet::decodeModule(module), dev, profile);
}

SimcovRunOutput
SimcovDriver::run(const sim::ProgramSet& programs,
                  const sim::DeviceConfig& dev, bool profile) const
{
    SimcovRunOutput out;
    const std::int32_t w = config_.gridW;
    const std::int32_t side = padded_ ? w + 2 : w;
    const std::int64_t gridBytes = 4ll * side * side;

    // Allocation plan: stats + rng/epistate/timer/tcell/tcell_next +
    // virions_next/chem_next + virions + CHEMOKINE LAST (see header).
    const std::int64_t statsBytes = 256;
    const std::int64_t total = statsBytes + 9 * ((gridBytes + 255) / 256)
                                   * 256;
    // Arena sized to the allocation plan plus fixed slack (zeroed once
    // per evaluation — see the ADEPT driver note); capacity never
    // affects the OOB mapping rule, only page rounding of used() does.
    sim::DeviceMemory mem(tightArena_ ? total : total + (1 << 20));

    const auto stats = mem.alloc(statsBytes);
    const auto rng = mem.alloc(gridBytes);
    const auto epistate = mem.alloc(gridBytes);
    const auto timer = mem.alloc(gridBytes);
    const auto tcell = mem.alloc(gridBytes);
    const auto tcellNext = mem.alloc(gridBytes);
    const auto virionsNext = mem.alloc(gridBytes);
    const auto chemNext = mem.alloc(gridBytes);
    const auto virions = mem.alloc(gridBytes);
    const auto chemokine = mem.alloc(gridBytes);

    const auto blocks = static_cast<std::uint32_t>(
        config_.cells() / static_cast<std::int32_t>(config_.blockDim));
    const sim::LaunchDims dims{blocks, config_.blockDim, oversubscribe_};

    // Look up all pre-decoded kernels up front.
    std::vector<const sim::Program*> kernels;
    for (const char* name :
         {"sc_setup", "sc_vdiff", "sc_cdiff", "sc_epicell", "sc_tgen",
          "sc_tmove", "sc_tbind", "sc_stats"}) {
        const auto* prog = programs.find(name);
        if (prog == nullptr) {
            out.fault.kind = sim::FaultKind::InvalidProgram;
            out.fault.detail = std::string(name) + " missing from module";
            return out;
        }
        kernels.push_back(prog);
    }
    auto launch = [&](std::size_t idx,
                      const std::vector<std::uint64_t>& args) {
        const auto res = sim::launchKernel(dev, mem, *kernels[idx],
                                           dims, args, profile);
        out.totalMs += res.stats.ms;
        out.aggregate.accumulate(res.stats);
        return res;
    };
    auto u64 = [](sim::DevPtr p) { return static_cast<std::uint64_t>(p); };

    // Setup.
    {
        const auto res = launch(
            0, {u64(epistate), u64(timer), u64(virions), u64(virionsNext),
                u64(chemokine), u64(chemNext), u64(tcell), u64(tcellNext),
                u64(rng), config_.seed});
        if (!res.ok()) {
            out.fault = res.fault;
            return out;
        }
    }

    sim::DevPtr vCur = virions;
    sim::DevPtr vNext = virionsNext;
    sim::DevPtr cCur = chemokine;
    sim::DevPtr cNext = chemNext;
    sim::DevPtr tCur = tcell;
    sim::DevPtr tNext = tcellNext;

    const auto wArg = static_cast<std::uint64_t>(w);
    for (std::int32_t step = 0; step < config_.steps; ++step) {
        for (int i = 0; i < 5; ++i)
            mem.write<std::uint32_t>(stats + 4ll * i, 0);

        const std::array<std::vector<std::uint64_t>, 7> argSets = {{
            {u64(vCur), u64(vNext), wArg},                      // vdiff
            {u64(cCur), u64(cNext), wArg},                      // cdiff
            {u64(epistate), u64(timer), u64(vNext), u64(cNext),
             u64(rng)},                                         // epicell
            {u64(tCur), u64(tNext), u64(cNext), u64(rng)},      // tgen
            {u64(tCur), u64(tNext), u64(rng), wArg},            // tmove
            {u64(tNext), u64(epistate), u64(timer), wArg},      // tbind
            {u64(vNext), u64(cNext), u64(tNext), u64(epistate),
             u64(stats)},                                       // stats
        }};
        for (std::size_t k = 0; k < argSets.size(); ++k) {
            const auto res = launch(k + 1, argSets[k]);
            if (!res.ok()) {
                out.fault = res.fault;
                return out;
            }
        }

        StepStats s;
        s.totalVirions = mem.read<float>(stats);
        s.totalChemokine = mem.read<float>(stats + 4);
        s.tcells = mem.read<std::int32_t>(stats + 8);
        s.infected = mem.read<std::int32_t>(stats + 12);
        s.dead = mem.read<std::int32_t>(stats + 16);
        out.series.push_back(s);

        std::swap(vCur, vNext);
        std::swap(cCur, cNext);
        std::swap(tCur, tNext);
    }
    return out;
}

} // namespace gevo::simcov
