/// \file
/// Host-side SIMCoV driver: allocates the grids, runs the per-step kernel
/// sequence, swaps the double buffers, and collects the statistics series.
///
/// Allocation order matters (DESIGN.md §2 / paper Sec VI-D): the
/// `chemokine` grid is the last allocation, so a boundary-check-free
/// stencil's worst overrun (4*(W+1) bytes past the array) lands in mapped
/// page slack on a roomy arena (small fitness grids pass) but past the
/// mapped end when the arena is sized tightly to the problem — the
/// held-out large-grid configuration — where it faults, exactly like the
/// paper's 2500x2500 segfault.

#ifndef GEVO_APPS_SIMCOV_DRIVER_H
#define GEVO_APPS_SIMCOV_DRIVER_H

#include "apps/simcov/config.h"
#include "apps/simcov/kernels.h"
#include "sim/device_config.h"
#include "sim/executor.h"

namespace gevo::simcov {

/// Output of a full simulation run.
struct SimcovRunOutput {
    sim::Fault fault;
    TimeSeries series;
    double totalMs = 0.0;           ///< Simulated time across all kernels.
    sim::LaunchStats aggregate;     ///< Issue/instr counters summed.

    bool ok() const { return fault.ok(); }
};

/// Immutable run configuration; thread-safe (each run() owns its memory).
class SimcovDriver {
  public:
    /// \p tightArena sizes device memory exactly to the allocations
    /// (the held-out large-grid regime).
    SimcovDriver(SimcovConfig config, bool padded = false,
                 bool tightArena = false);

    /// Execute the pre-decoded kernels over the configured run (scoring
    /// stage of the two-stage pipeline; no IR access, no decoding).
    SimcovRunOutput run(const sim::ProgramSet& programs,
                        const sim::DeviceConfig& dev,
                        bool profile = false) const;

    /// Convenience: decode \p module's kernels and run them (one-off
    /// callers; the hot path compiles once and uses the overload above).
    SimcovRunOutput run(const ir::Module& module,
                        const sim::DeviceConfig& dev,
                        bool profile = false) const;

    /// CPU ground-truth series (computed once; identical for the padded
    /// layout by construction).
    const TimeSeries& expected() const { return expected_; }

    const SimcovConfig& config() const { return config_; }
    bool padded() const { return padded_; }

    /// Timing-grid multiplier (saturated-device regime; the paper's
    /// production grids are 2500x2500).
    void setOversubscribe(std::uint32_t f) { oversubscribe_ = f; }

  private:
    SimcovConfig config_;
    bool padded_;
    bool tightArena_;
    std::uint32_t oversubscribe_ = 512;
    TimeSeries expected_;
};

} // namespace gevo::simcov

#endif // GEVO_APPS_SIMCOV_DRIVER_H
