/// \file
/// SIMCoV fitness: simulated total kernel time with per-value tolerance
/// validation against the fixed-seed CPU ground truth (paper Sec III-C).

#ifndef GEVO_APPS_SIMCOV_FITNESS_H
#define GEVO_APPS_SIMCOV_FITNESS_H

#include "apps/simcov/driver.h"
#include "core/fitness.h"

namespace gevo::simcov {

/// Scores a module variant by total simulated kernel time; any fault or
/// out-of-tolerance series invalidates it.
class SimcovFitness : public core::FitnessFunction {
  public:
    SimcovFitness(const SimcovDriver& driver, sim::DeviceConfig dev,
                  SeriesTolerance tolerance = {})
        : driver_(driver), dev_(std::move(dev)), tolerance_(tolerance)
    {
    }

    core::FitnessResult
    evaluate(const core::CompiledVariant& variant) const override
    {
        return evaluateOn(variant, dev_);
    }

    core::FitnessResult
    evaluateOn(const core::CompiledVariant& variant,
               const sim::DeviceConfig& dev) const override
    {
        const auto out = driver_.run(variant.programs, dev);
        if (!out.ok())
            return core::FitnessResult::fail(out.fault.detail);
        const auto diag =
            compareSeries(driver_.expected(), out.series, tolerance_);
        if (!diag.empty())
            return core::FitnessResult::fail(diag);
        return core::FitnessResult::pass(out.totalMs, out.aggregate);
    }

    bool
    profileVariant(const core::CompiledVariant& variant,
                   core::ProfileSummary* out) const override
    {
        const auto run = driver_.run(variant.programs, dev_, /*profile=*/true);
        if (!run.ok())
            return false;
        *out = core::ProfileSummary{};
        out->accumulateLaunch(run.aggregate);
        return true;
    }

    std::string
    name() const override
    {
        return "simcov(" + std::to_string(driver_.config().gridW) + "x" +
               std::to_string(driver_.config().gridW) + ", " + dev_.name +
               ")";
    }

  private:
    const SimcovDriver& driver_;
    sim::DeviceConfig dev_;
    SeriesTolerance tolerance_;
};

} // namespace gevo::simcov

#endif // GEVO_APPS_SIMCOV_FITNESS_H
