#include "apps/simcov/golden_edits.h"

#include "support/strings.h"

namespace gevo::simcov {

namespace {

using mut::Edit;
using mut::EditKind;

Edit
condReplace(std::uint64_t uid, ir::Operand newCond)
{
    Edit e;
    e.kind = EditKind::OperandReplace;
    e.srcUid = uid;
    e.opIndex = 0;
    e.newOperand = newCond;
    return e;
}

} // namespace

std::vector<NamedEdit>
boundaryCheckEdits(const SimcovModule& built)
{
    std::vector<NamedEdit> out;
    for (const char* tag : {"vdiff", "cdiff"}) {
        for (int k = 0; k < 8; ++k) {
            const auto name = strformat("%s.nb%d.brc", tag, k);
            out.push_back({strformat("%s-nb%d", tag, k),
                           condReplace(built.uidOf(name),
                                       ir::Operand::imm(1))});
        }
    }
    return out;
}

std::vector<NamedEdit>
minorEdits(const SimcovModule& built)
{
    std::vector<NamedEdit> out;
    {
        Edit e;
        e.kind = EditKind::InstrDelete;
        e.srcUid = built.uidOf("stats.extrabar");
        out.push_back({"stats-extra-barrier", e});
    }
    for (const char* tag : {"vdiff", "cdiff"}) {
        Edit e;
        e.kind = EditKind::OperandReplace;
        e.srcUid = built.uidOf(std::string(tag) + ".center.load");
        e.opIndex = 0;
        e.newOperand = ir::Operand::reg(
            built.regs.at(std::string(tag) + ".reg.caddr1"));
        out.push_back({std::string(tag) + "-dup-coords", e});
    }
    out.push_back({"tmove-bounds",
                   condReplace(built.uidOf("tmove.bounds.brc"),
                               ir::Operand::imm(1))});
    return out;
}

std::vector<NamedEdit>
allGoldenEdits(const SimcovModule& built)
{
    auto out = boundaryCheckEdits(built);
    for (auto& e : minorEdits(built))
        out.push_back(std::move(e));
    return out;
}

} // namespace gevo::simcov
