/// \file
/// Canonical SIMCoV edit sets (paper Sec VI-D and the Figure 5 result).

#ifndef GEVO_APPS_SIMCOV_GOLDEN_EDITS_H
#define GEVO_APPS_SIMCOV_GOLDEN_EDITS_H

#include <vector>

#include "apps/golden_edit.h"
#include "apps/simcov/kernels.h"
#include "mutation/edit.h"

namespace gevo::simcov {

/// A named golden edit (shared shape, see apps/golden_edit.h).
using NamedEdit = apps::NamedEdit;
using apps::editsOf;

/// The Sec VI-D boundary-check removals: the 16 per-neighbour guard
/// conditions of the two diffusion stencils rewritten to `true` (the
/// checks then fold away, leaving unguarded edge reads).
std::vector<NamedEdit> boundaryCheckEdits(const SimcovModule& built);

/// The small independents: redundant stats barrier, duplicate coordinate
/// chains in both stencils, dominated T-cell bounds check.
std::vector<NamedEdit> minorEdits(const SimcovModule& built);

/// Everything — the "SIMCoV-GEVO" configuration of Figure 5.
std::vector<NamedEdit> allGoldenEdits(const SimcovModule& built);

} // namespace gevo::simcov

#endif // GEVO_APPS_SIMCOV_GOLDEN_EDITS_H
