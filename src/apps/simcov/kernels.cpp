#include "apps/simcov/kernels.h"

#include "ir/builder.h"
#include "support/logging.h"
#include "support/strings.h"

namespace gevo::simcov {

using ir::IRBuilder;
using ir::MemSpace;
using ir::MemWidth;
using ir::Opcode;
using ir::Operand;

std::uint64_t
SimcovModule::uidOf(const std::string& name) const
{
    const auto it = anchors.find(name);
    if (it == anchors.end())
        GEVO_FATAL("unknown SIMCoV anchor '%s'", name.c_str());
    return it->second;
}

namespace {

/// Fixed 8-neighbour order (must match cpu_model.cpp).
constexpr int kNeighborDx[8] = {-1, 0, 1, -1, 1, -1, 0, 1};
constexpr int kNeighborDy[8] = {-1, -1, -1, 0, 0, 1, 1, 1};

/// Emits all eight kernels into one module.
class SimcovEmitter {
  public:
    SimcovEmitter(SimcovModule& out) : out_(out), b_(out.module) {}

    void
    emitAll()
    {
        emitSetup();
        emitDiffusion("sc_vdiff", "vdiff", out_.config.virionDiffuse,
                      out_.config.virionDecay);
        emitDiffusion("sc_cdiff", "cdiff", out_.config.chemDiffuse,
                      out_.config.chemDecay);
        emitEpicell();
        emitTcellGenerate();
        emitTcellMove();
        emitTcellBind();
        emitStats();
    }

  private:
    void
    anchor(const std::string& name)
    {
        auto& fn = b_.kernel();
        out_.anchors[name] =
            fn.blocks[b_.insertBlock()].instrs.back().uid;
    }
    void
    regAnchor(const std::string& name, Operand r)
    {
        out_.regs[name] = r.value;
    }

    static Operand imm(std::int64_t v) { return Operand::imm(v); }
    static Operand immf(float v) { return Operand::immF32(v); }

    std::int32_t gridW() const { return out_.config.gridW; }
    /// Row stride of the stored arrays (W, or W+2 when padded).
    std::int32_t stride() const
    {
        return out_.padded ? gridW() + 2 : gridW();
    }

    /// c = bid*ntid + tid (logical cell, 0..W*W).
    Operand
    emitCellIndex()
    {
        const auto tid = b_.tid();
        const auto bid = b_.bid();
        const auto ntid = b_.ntid();
        return b_.iadd(b_.imul(bid, ntid), tid);
    }

    /// Logical (x, y) of cell c.
    std::pair<Operand, Operand>
    emitXY(Operand c)
    {
        const auto y = b_.idiv(c, imm(gridW()));
        const auto x = b_.irem(c, imm(gridW()));
        return {x, y};
    }

    /// Element address: base + 4*(row*stride + col + pad offset).
    Operand
    emitAddrXY(Operand base, Operand x, Operand y)
    {
        const std::int32_t pad = out_.padded ? 1 : 0;
        const auto row = b_.iadd(y, imm(pad));
        const auto col = b_.iadd(x, imm(pad));
        const auto idx = b_.iadd(b_.imul(row, imm(stride())), col);
        return b_.ladd(base, b_.lmul(b_.sext64(idx), imm(4)));
    }

    /// Address of logical cell c in a (possibly padded) array.
    Operand
    emitAddrCell(Operand base, Operand c)
    {
        auto [x, y] = emitXY(c);
        return emitAddrXY(base, x, y);
    }

    // ---- kernels ----

    void emitSetup();
    void emitDiffusion(const std::string& name, const std::string& tag,
                       float rate, float decay);
    void emitEpicell();
    void emitTcellGenerate();
    void emitTcellMove();
    void emitTcellBind();
    void emitStats();

    /// rng draw: s = xorshift32(rng[c]); rng[c] = s; returns s (i32 reg).
    Operand
    emitRngDraw(Operand rngAddr)
    {
        const auto s0 = b_.ld(MemSpace::Global, MemWidth::U32, rngAddr);
        const auto s1 = b_.bxor(s0, b_.band(b_.shl(s0, imm(13)),
                                            imm(0xffffffffll)));
        const auto s2 = b_.bxor(s1, b_.shr(s1, imm(17)));
        const auto s3 = b_.bxor(s2, b_.band(b_.shl(s2, imm(5)),
                                            imm(0xffffffffll)));
        b_.st(MemSpace::Global, MemWidth::U32, rngAddr, s3);
        return s3;
    }

    SimcovModule& out_;
    IRBuilder b_;
};

void
SimcovEmitter::emitSetup()
{
    // p0 epistate p1 timer p2 virions p3 virions_next p4 chem p5 chem_next
    // p6 tcell p7 tcell_next p8 rng p9 seed
    b_.startKernel("sc_setup", 10);
    b_.block("entry");
    b_.setLoc("simcov.cu:setup");
    const auto c = emitCellIndex();
    auto [x, y] = emitXY(c);

    for (const std::uint32_t arrayParam : {0u, 1u, 6u, 7u}) {
        b_.st(MemSpace::Global, MemWidth::I32,
              emitAddrXY(b_.param(arrayParam), x, y), imm(0));
    }
    for (const std::uint32_t arrayParam : {3u, 4u, 5u}) {
        b_.st(MemSpace::Global, MemWidth::F32,
              emitAddrXY(b_.param(arrayParam), x, y), immf(0.0f));
    }
    // One infection site at the centre.
    const std::int32_t centre =
        (gridW() / 2) * gridW() + gridW() / 2;
    const auto isCentre = b_.ieq(c, imm(centre));
    const auto v0 = b_.sel(isCentre, immf(out_.config.initialVirions),
                           immf(0.0f));
    b_.st(MemSpace::Global, MemWidth::F32,
          emitAddrXY(b_.param(2), x, y), v0);

    // rng[c] = cellSeed(seed, c) — matches config.h's cellSeed().
    const auto c64 = b_.sext64(c);
    const auto mixed = b_.ladd(
        b_.lmul(b_.ladd(c64, imm(1)), imm(0x9e3779b97f4a7c15ULL)),
        b_.param(9));
    const auto hi = b_.shr(mixed, imm(32));
    const auto sVal = b_.band(b_.bxor(hi, mixed), imm(0xffffffffll));
    const auto zero = b_.ieq(sVal, imm(0));
    const auto seedVal = b_.sel(zero, imm(0x1234567), sVal);
    b_.st(MemSpace::Global, MemWidth::U32,
          emitAddrXY(b_.param(8), x, y), seedVal);
    b_.ret();
    b_.setLoc("");
}

void
SimcovEmitter::emitDiffusion(const std::string& name,
                             const std::string& tag, float rate,
                             float decay)
{
    // p0 src p1 dst p2 W(unused; embedded) — kept for interface symmetry.
    b_.startKernel(name, 3);
    b_.block("entry");
    b_.setLoc("simcov.cu:" + tag);
    const auto c = emitCellIndex();
    auto [x, y] = emitXY(c);

    // Planted duplicate coordinate computation: the centre load derives
    // its address from a second div/rem chain; rerouting the load to the
    // first chain's address makes the duplicate dead (independent edit).
    const auto centreAddr1 = emitAddrXY(b_.param(0), x, y);
    regAnchor(tag + ".reg.caddr1", centreAddr1);
    const auto y2 = b_.idiv(c, imm(gridW()));
    const auto x2 = b_.irem(c, imm(gridW()));
    const auto centreAddr2 = emitAddrXY(b_.param(0), x2, y2);
    const auto v = b_.ld(MemSpace::Global, MemWidth::F32, centreAddr2);
    anchor(tag + ".center.load");

    const auto acc = b_.mov(immf(0.0f));
    for (int k = 0; k < 8; ++k) {
        const auto nx = b_.iadd(x, imm(kNeighborDx[k]));
        const auto ny = b_.iadd(y, imm(kNeighborDy[k]));
        if (!out_.padded) {
            // Sec VI-D: verbose per-neighbour boundary checks.
            b_.setLoc("simcov.cu:boundary");
            const auto c1 = b_.ige(nx, imm(0));
            const auto c2 = b_.ilt(nx, imm(gridW()));
            const auto c3 = b_.ige(ny, imm(0));
            const auto c4 = b_.ilt(ny, imm(gridW()));
            const auto a1 = b_.band(c1, c2);
            const auto a2 = b_.band(c3, c4);
            const auto ok = b_.band(a1, a2);
            const auto cur = b_.insertBlock();
            const auto bbAcc = b_.block(strformat("acc%d", k));
            const auto bbSkip = b_.block(strformat("skip%d", k));
            b_.setInsert(cur);
            b_.brc(ok, bbAcc, bbSkip);
            anchor(strformat("%s.nb%d.brc", tag.c_str(), k));
            b_.setInsert(bbAcc);
            b_.setLoc("simcov.cu:" + tag);
            const auto val = b_.ld(MemSpace::Global, MemWidth::F32,
                                   emitAddrXY(b_.param(0), nx, ny));
            b_.faddTo(acc, acc, val);
            b_.br(bbSkip);
            b_.setInsert(bbSkip);
        } else {
            // Padded halo (Fig 10(c)): reads are in bounds and halo cells
            // are zero, so unconditional accumulation is exact.
            const auto val = b_.ld(MemSpace::Global, MemWidth::F32,
                                   emitAddrXY(b_.param(0), nx, ny));
            b_.faddTo(acc, acc, val);
        }
    }
    b_.setLoc("simcov.cu:" + tag);
    const auto lap = b_.fsub(acc, b_.fmul(v, immf(8.0f)));
    const auto t1 = b_.fmul(lap, immf(rate / 8.0f));
    const auto t2 = b_.fmul(v, immf(decay));
    const auto sum = b_.fadd(v, t1);
    const auto nextRaw = b_.fsub(sum, t2);
    const auto next = b_.fmax(nextRaw, immf(0.0f));
    b_.st(MemSpace::Global, MemWidth::F32,
          emitAddrXY(b_.param(1), x, y), next);
    b_.ret();
    b_.setLoc("");
}

void
SimcovEmitter::emitEpicell()
{
    // p0 epistate p1 timer p2 virions_next p3 chem_next p4 rng
    b_.startKernel("sc_epicell", 5);
    const auto entry = b_.block("entry");
    b_.setLoc("simcov.cu:epicell");
    b_.setInsert(entry);
    const auto c = emitCellIndex();
    auto [x, y] = emitXY(c);
    const auto stateAddr = emitAddrXY(b_.param(0), x, y);
    const auto timerAddr = emitAddrXY(b_.param(1), x, y);
    const auto virionAddr = emitAddrXY(b_.param(2), x, y);
    const auto chemAddr = emitAddrXY(b_.param(3), x, y);
    const auto rngAddr = emitAddrXY(b_.param(4), x, y);
    const auto state = b_.ld(MemSpace::Global, MemWidth::I32, stateAddr);

    const auto bbHealthy = b_.block("healthy");
    const auto bbInfect = b_.block("do_infect");
    const auto bbNotH = b_.block("not_healthy");
    const auto bbInfected = b_.block("infected");
    const auto bbApopCheck = b_.block("apop_check");
    const auto bbApop = b_.block("apoptotic");
    const auto bbDone = b_.block("done");

    b_.setInsert(entry);
    const auto isH = b_.ieq(state, imm(kHealthy));
    b_.brc(isH, bbHealthy, bbNotH);

    b_.setInsert(bbHealthy);
    const auto vHere = b_.ld(MemSpace::Global, MemWidth::F32, virionAddr);
    const auto hot = b_.fgt(vHere, immf(out_.config.infectThreshold));
    const auto bbDraw = b_.block("draw_infect");
    b_.setInsert(bbHealthy);
    b_.brc(hot, bbDraw, bbDone);
    b_.setInsert(bbDraw);
    const auto draw = emitRngDraw(rngAddr);
    const auto low = b_.band(draw, imm(0xffffff));
    const auto roll = b_.ilt(low, imm(out_.config.infectProbScaled));
    b_.brc(roll, bbInfect, bbDone);
    b_.setInsert(bbInfect);
    b_.st(MemSpace::Global, MemWidth::I32, stateAddr, imm(kInfected));
    b_.st(MemSpace::Global, MemWidth::I32, timerAddr, imm(0));
    b_.br(bbDone);

    b_.setInsert(bbNotH);
    const auto isInf = b_.ieq(state, imm(kInfected));
    b_.brc(isInf, bbInfected, bbApopCheck);

    b_.setInsert(bbInfected);
    const auto t0 = b_.ld(MemSpace::Global, MemWidth::I32, timerAddr);
    const auto t1 = b_.iadd(t0, imm(1));
    b_.st(MemSpace::Global, MemWidth::I32, timerAddr, t1);
    const auto vOld = b_.ld(MemSpace::Global, MemWidth::F32, virionAddr);
    b_.st(MemSpace::Global, MemWidth::F32, virionAddr,
          b_.fadd(vOld, immf(out_.config.virionProduction)));
    const auto cOld = b_.ld(MemSpace::Global, MemWidth::F32, chemAddr);
    b_.st(MemSpace::Global, MemWidth::F32, chemAddr,
          b_.fadd(cOld, immf(out_.config.chemProduction)));
    const auto bbToApop = b_.block("to_apop");
    b_.setInsert(bbInfected);
    const auto over = b_.igt(t1, imm(out_.config.incubationSteps));
    b_.brc(over, bbToApop, bbDone);
    b_.setInsert(bbToApop);
    b_.st(MemSpace::Global, MemWidth::I32, stateAddr, imm(kApoptotic));
    b_.st(MemSpace::Global, MemWidth::I32, timerAddr, imm(0));
    b_.br(bbDone);

    b_.setInsert(bbApopCheck);
    const auto isApop = b_.ieq(state, imm(kApoptotic));
    const auto bbDie = b_.block("to_dead");
    b_.setInsert(bbApopCheck);
    b_.brc(isApop, bbApop, bbDone);
    b_.setInsert(bbApop);
    const auto ta = b_.ld(MemSpace::Global, MemWidth::I32, timerAddr);
    const auto ta1 = b_.iadd(ta, imm(1));
    b_.st(MemSpace::Global, MemWidth::I32, timerAddr, ta1);
    const auto deadNow = b_.igt(ta1, imm(out_.config.apoptosisSteps));
    b_.brc(deadNow, bbDie, bbDone);
    b_.setInsert(bbDie);
    b_.st(MemSpace::Global, MemWidth::I32, stateAddr, imm(kDead));
    b_.br(bbDone);

    b_.setInsert(bbDone);
    b_.ret();
    b_.setLoc("");
}

void
SimcovEmitter::emitTcellGenerate()
{
    // p0 tcell p1 tcell_next p2 chem_next p3 rng
    b_.startKernel("sc_tgen", 4);
    const auto entry = b_.block("entry");
    b_.setLoc("simcov.cu:tgen");
    const auto c = emitCellIndex();
    auto [x, y] = emitXY(c);
    const auto tAddr = emitAddrXY(b_.param(0), x, y);
    const auto tnAddr = emitAddrXY(b_.param(1), x, y);
    const auto chAddr = emitAddrXY(b_.param(2), x, y);
    const auto rngAddr = emitAddrXY(b_.param(3), x, y);

    // Clear the move buffer.
    b_.st(MemSpace::Global, MemWidth::I32, tnAddr, imm(0));

    const auto occupied = b_.ld(MemSpace::Global, MemWidth::I32, tAddr);
    const auto ch = b_.ld(MemSpace::Global, MemWidth::F32, chAddr);
    const auto empty = b_.ieq(occupied, imm(0));
    const auto warm = b_.fgt(ch, immf(out_.config.tcellSpawnThreshold));
    const auto cand = b_.band(empty, warm);
    const auto bbDraw = b_.block("draw_spawn");
    const auto bbSpawn = b_.block("spawn");
    const auto bbDone = b_.block("done");
    b_.setInsert(entry);
    b_.brc(cand, bbDraw, bbDone);
    b_.setInsert(bbDraw);
    const auto draw = emitRngDraw(rngAddr);
    const auto low = b_.band(draw, imm(0xffffff));
    const auto roll = b_.ilt(low, imm(out_.config.spawnProbScaled));
    b_.brc(roll, bbSpawn, bbDone);
    b_.setInsert(bbSpawn);
    b_.st(MemSpace::Global, MemWidth::I32, tAddr, imm(1));
    b_.br(bbDone);
    b_.setInsert(bbDone);
    b_.ret();
    b_.setLoc("");
}

void
SimcovEmitter::emitTcellMove()
{
    // p0 tcell p1 tcell_next p2 rng p3 W(embedded)
    b_.startKernel("sc_tmove", 4);
    const auto entry = b_.block("entry");
    b_.setLoc("simcov.cu:tmove");
    const auto c = emitCellIndex();
    auto [x, y] = emitXY(c);
    const auto tAddr = emitAddrXY(b_.param(0), x, y);
    const auto rngAddr = emitAddrXY(b_.param(2), x, y);

    const auto occupied = b_.ld(MemSpace::Global, MemWidth::I32, tAddr);
    const auto bbMove = b_.block("move");
    const auto bbDone = b_.block("done");
    b_.setInsert(entry);
    const auto isT = b_.ieq(occupied, imm(1));
    b_.brc(isT, bbMove, bbDone);

    b_.setInsert(bbMove);
    // Planted dominated bounds check (always true).
    const auto bbMove2 = b_.block("move2");
    b_.setInsert(bbMove);
    const auto inRange = b_.ilt(c, imm(1 << 22));
    b_.brc(inRange, bbMove2, bbDone);
    anchor("tmove.bounds.brc"); // independent edit: cond -> imm 1
    b_.setInsert(bbMove2);
    const auto draw = emitRngDraw(rngAddr);
    const auto d = b_.irem(b_.band(draw, imm(0x7fffffff)), imm(9));
    const auto dx = b_.isub(b_.irem(d, imm(3)), imm(1));
    const auto dy = b_.isub(b_.idiv(d, imm(3)), imm(1));
    const auto nx = b_.iadd(x, dx);
    const auto ny = b_.iadd(y, dy);
    b_.setLoc("simcov.cu:boundary");
    const auto c1 = b_.ige(nx, imm(0));
    const auto c2 = b_.ilt(nx, imm(gridW()));
    const auto c3 = b_.ige(ny, imm(0));
    const auto c4 = b_.ilt(ny, imm(gridW()));
    const auto ok = b_.band(b_.band(c1, c2), b_.band(c3, c4));
    b_.setLoc("simcov.cu:tmove");
    const auto sx = b_.sel(ok, nx, x);
    const auto sy = b_.sel(ok, ny, y);
    const auto dstAddr = emitAddrXY(b_.param(1), sx, sy);
    const auto old = b_.atomicCas(MemSpace::Global, dstAddr, imm(0),
                                  imm(1));
    const auto bbStay = b_.block("stay");
    b_.setInsert(bbMove2);
    const auto lost = b_.ine(old, imm(0));
    b_.brc(lost, bbStay, bbDone);
    b_.setInsert(bbStay);
    const auto ownAddr = emitAddrXY(b_.param(1), x, y);
    b_.atomicCas(MemSpace::Global, ownAddr, imm(0), imm(1));
    b_.br(bbDone);
    b_.setInsert(bbDone);
    b_.ret();
    b_.setLoc("");
}

void
SimcovEmitter::emitTcellBind()
{
    // p0 tcell_next p1 epistate p2 timer p3 W(embedded)
    b_.startKernel("sc_tbind", 4);
    const auto entry = b_.block("entry");
    b_.setLoc("simcov.cu:tbind");
    const auto c = emitCellIndex();
    auto [x, y] = emitXY(c);
    const auto tAddr = emitAddrXY(b_.param(0), x, y);
    const auto occupied = b_.ld(MemSpace::Global, MemWidth::I32, tAddr);

    const auto bbBind = b_.block("bind");
    const auto bbDone = b_.block("done");
    b_.setInsert(entry);
    const auto isT = b_.ieq(occupied, imm(1));
    b_.brc(isT, bbBind, bbDone);
    b_.setInsert(bbBind);

    for (int k = 0; k < 9; ++k) {
        const int dx = k % 3 - 1;
        const int dy = k / 3 - 1;
        const auto nx = b_.iadd(x, imm(dx));
        const auto ny = b_.iadd(y, imm(dy));
        const auto cur = b_.insertBlock();
        const auto bbTouch = b_.block(strformat("touch%d", k));
        const auto bbKill = b_.block(strformat("kill%d", k));
        const auto bbNext = b_.block(strformat("next%d", k));
        b_.setInsert(cur);
        if (!out_.padded) {
            b_.setLoc("simcov.cu:boundary");
            const auto c1 = b_.ige(nx, imm(0));
            const auto c2 = b_.ilt(nx, imm(gridW()));
            const auto c3 = b_.ige(ny, imm(0));
            const auto c4 = b_.ilt(ny, imm(gridW()));
            const auto ok = b_.band(b_.band(c1, c2), b_.band(c3, c4));
            b_.setLoc("simcov.cu:tbind");
            b_.brc(ok, bbTouch, bbNext);
        } else {
            b_.br(bbTouch);
        }
        b_.setInsert(bbTouch);
        const auto stAddr = emitAddrXY(b_.param(1), nx, ny);
        const auto st = b_.ld(MemSpace::Global, MemWidth::I32, stAddr);
        const auto inf = b_.ieq(st, imm(kInfected));
        b_.brc(inf, bbKill, bbNext);
        b_.setInsert(bbKill);
        b_.st(MemSpace::Global, MemWidth::I32, stAddr, imm(kApoptotic));
        b_.st(MemSpace::Global, MemWidth::I32,
              emitAddrXY(b_.param(2), nx, ny), imm(0));
        b_.br(bbNext);
        b_.setInsert(bbNext);
    }
    b_.br(bbDone);
    b_.setInsert(bbDone);
    b_.ret();
    b_.setLoc("");
}

void
SimcovEmitter::emitStats()
{
    // p0 virions_next p1 chem_next p2 tcell_next p3 epistate p4 stats
    const auto T = out_.config.blockDim;
    b_.startKernel("sc_stats", 5, /*sharedBytes=*/T * 5 * 4);
    const auto entry = b_.block("entry");
    b_.setLoc("simcov.cu:stats");
    const auto c = emitCellIndex();
    auto [x, y] = emitXY(c);
    const auto tid = b_.tid();
    const auto tid64 = b_.sext64(tid);
    const auto slot = b_.lmul(tid64, imm(4));

    const auto v = b_.ld(MemSpace::Global, MemWidth::F32,
                         emitAddrXY(b_.param(0), x, y));
    const auto ch = b_.ld(MemSpace::Global, MemWidth::F32,
                          emitAddrXY(b_.param(1), x, y));
    const auto tc = b_.ld(MemSpace::Global, MemWidth::I32,
                          emitAddrXY(b_.param(2), x, y));
    const auto st = b_.ld(MemSpace::Global, MemWidth::I32,
                          emitAddrXY(b_.param(3), x, y));
    const auto inf = b_.ieq(st, imm(kInfected));
    const auto dead = b_.ieq(st, imm(kDead));

    const std::int64_t strideBytes = 4ll * T;
    b_.st(MemSpace::Shared, MemWidth::F32, slot, v);
    b_.st(MemSpace::Shared, MemWidth::F32,
          b_.ladd(slot, imm(strideBytes)), ch);
    b_.st(MemSpace::Shared, MemWidth::I32,
          b_.ladd(slot, imm(2 * strideBytes)), tc);
    b_.st(MemSpace::Shared, MemWidth::I32,
          b_.ladd(slot, imm(3 * strideBytes)), inf);
    b_.st(MemSpace::Shared, MemWidth::I32,
          b_.ladd(slot, imm(4 * strideBytes)), dead);
    b_.barrier();
    b_.barrier(); // planted: redundant double sync
    anchor("stats.extrabar");

    const auto bbScan = b_.block("scan");
    const auto bbLoop = b_.block("scan_loop");
    const auto bbOut = b_.block("scan_out");
    const auto bbDone = b_.block("done");
    b_.setInsert(entry);
    const auto isT0 = b_.ieq(tid, imm(0));
    b_.brc(isT0, bbScan, bbDone);

    b_.setInsert(bbScan);
    const auto sumV = b_.mov(immf(0.0f));
    const auto sumC = b_.mov(immf(0.0f));
    const auto sumT = b_.mov(imm(0));
    const auto sumI = b_.mov(imm(0));
    const auto sumD = b_.mov(imm(0));
    const auto k = b_.mov(imm(0));
    b_.br(bbLoop);
    b_.setInsert(bbLoop);
    const auto kslot = b_.lmul(b_.sext64(k), imm(4));
    b_.faddTo(sumV, sumV,
              b_.ld(MemSpace::Shared, MemWidth::F32, kslot));
    b_.faddTo(sumC, sumC,
              b_.ld(MemSpace::Shared, MemWidth::F32,
                    b_.ladd(kslot, imm(strideBytes))));
    b_.iaddTo(sumT, sumT,
              b_.ld(MemSpace::Shared, MemWidth::I32,
                    b_.ladd(kslot, imm(2 * strideBytes))));
    b_.iaddTo(sumI, sumI,
              b_.ld(MemSpace::Shared, MemWidth::I32,
                    b_.ladd(kslot, imm(3 * strideBytes))));
    b_.iaddTo(sumD, sumD,
              b_.ld(MemSpace::Shared, MemWidth::I32,
                    b_.ladd(kslot, imm(4 * strideBytes))));
    b_.iaddTo(k, k, imm(1));
    const auto more = b_.ilt(k, b_.ntid());
    b_.brc(more, bbLoop, bbOut);
    b_.setInsert(bbOut);
    b_.atomic(ir::AtomicOp::AddF32, MemSpace::Global, b_.param(4), sumV);
    b_.atomic(ir::AtomicOp::AddF32, MemSpace::Global,
              b_.ladd(b_.param(4), imm(4)), sumC);
    b_.atomic(ir::AtomicOp::AddI32, MemSpace::Global,
              b_.ladd(b_.param(4), imm(8)), sumT);
    b_.atomic(ir::AtomicOp::AddI32, MemSpace::Global,
              b_.ladd(b_.param(4), imm(12)), sumI);
    b_.atomic(ir::AtomicOp::AddI32, MemSpace::Global,
              b_.ladd(b_.param(4), imm(16)), sumD);
    b_.br(bbDone);
    b_.setInsert(bbDone);
    b_.ret();
    b_.setLoc("");
}

} // namespace

SimcovModule
buildSimcov(const SimcovConfig& config, bool padded)
{
    GEVO_ASSERT(config.cells() %
                        static_cast<std::int32_t>(config.blockDim) ==
                    0,
                "grid cells must be a multiple of blockDim");
    SimcovModule out;
    out.config = config;
    out.padded = padded;
    SimcovEmitter emitter(out);
    emitter.emitAll();
    return out;
}

} // namespace gevo::simcov
