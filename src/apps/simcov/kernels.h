/// \file
/// The SIMCoV GPU kernels, built in IR.
///
/// Eight kernels, mirroring the paper's "initial GPU port" (Sec III-B:
/// 8 kernels, one thread per grid point): setup, virion diffusion,
/// chemokine diffusion, epithelial update, T-cell generation, T-cell
/// movement (atomicCAS destination claim — the Sec II-C2 race, resolved
/// deterministically here), T-cell binding, and statistics reduction.
///
/// The diffusion stencils carry the verbose per-neighbour boundary checks
/// of Sec VI-D (tagged with the "simcov.cu:boundary" source location so
/// the profiler can measure their dynamic share); the padded variant
/// (paper Fig 10(c)) allocates a zero halo and drops them.

#ifndef GEVO_APPS_SIMCOV_KERNELS_H
#define GEVO_APPS_SIMCOV_KERNELS_H

#include <map>
#include <string>

#include "apps/simcov/config.h"
#include "ir/function.h"

namespace gevo::simcov {

/// A built SIMCoV module plus anchors for the golden edits.
struct SimcovModule {
    ir::Module module;
    SimcovConfig config; ///< Constants embedded in the kernels.
    bool padded = false;
    std::map<std::string, std::uint64_t> anchors;
    std::map<std::string, std::int64_t> regs;

    /// Anchor lookup; fatal when missing.
    std::uint64_t uidOf(const std::string& name) const;
};

/// Build the eight kernels. \p padded selects the Fig 10(c) halo layout
/// (boundary checks removed by construction; grid stride W+2).
SimcovModule buildSimcov(const SimcovConfig& config, bool padded = false);

} // namespace gevo::simcov

#endif // GEVO_APPS_SIMCOV_KERNELS_H
