#include "apps/simcov/workload.h"

#include <memory>

#include "apps/simcov/driver.h"
#include "apps/simcov/fitness.h"
#include "apps/simcov/golden_edits.h"
#include "core/workload.h"
#include "mutation/patch.h"
#include "opt/passes.h"
#include "support/strings.h"

namespace gevo::simcov {

namespace {

class SimcovWorkloadInstance : public core::WorkloadInstance {
  public:
    explicit SimcovWorkloadInstance(const core::WorkloadConfig& config)
        : built_(buildSimcov(makeConfig(config))), driver_(built_.config),
          fitness_(driver_, config.device), device_(config.device)
    {
    }

    const ir::Module& module() const override { return built_.module; }
    const core::FitnessFunction& fitness() const override
    {
        return fitness_;
    }

    std::string
    banner() const override
    {
        const auto& truth = driver_.expected();
        return strformat("%dx%d grid, %d steps, %zu kernels; ground truth "
                         "at final step: %.1f virions, %d T cells, %d dead",
                         built_.config.gridW, built_.config.gridW,
                         built_.config.steps, built_.module.numFunctions(),
                         static_cast<double>(truth.back().totalVirions),
                         truth.back().tcells, truth.back().dead);
    }

    std::vector<mut::Edit>
    goldenEdits() const override
    {
        return editsOf(allGoldenEdits(built_));
    }

    double
    paperCeiling() const override
    {
        return 1.29; // Paper Fig. 5: SIMCoV-GEVO on P100.
    }

    /// Held-out validation on a larger, memory-tight grid — the paper's
    /// Sec VI-D defence against variants (dropped boundary checks) that
    /// only look correct at fitness scale.
    std::string
    validateBest(const std::vector<mut::Edit>& edits) const override
    {
        SimcovConfig big = built_.config;
        big.gridW = 96;
        big.steps = 2;
        const auto bigBuilt = buildSimcov(big);
        const SimcovDriver bigDriver(big, false, /*tightArena=*/true);
        auto variant = mut::applyPatch(bigBuilt.module, edits);
        opt::runCleanupPipeline(variant);
        const auto heldOut = bigDriver.run(variant, device_);
        if (!heldOut.ok())
            return strformat("held-out %dx%d check: %s", big.gridW,
                             big.gridW, heldOut.fault.detail.c_str());
        return {};
    }

  private:
    static SimcovConfig
    makeConfig(const core::WorkloadConfig& config)
    {
        SimcovConfig cfg;
        cfg.gridW = static_cast<std::int32_t>(config.knobInt("grid", 32));
        cfg.steps = static_cast<std::int32_t>(config.knobInt("steps", 16));
        cfg.seed =
            static_cast<std::uint64_t>(config.knobInt("sim-seed", 1337));
        return cfg;
    }

    SimcovModule built_;
    SimcovDriver driver_;
    SimcovFitness fitness_;
    sim::DeviceConfig device_;
};

} // namespace

void
registerWorkloads()
{
    core::Workload w;
    w.name = "simcov";
    w.summary = "SIMCoV epidemic simulation, 8 kernels, tolerance-based "
                "stochastic fitness (paper Sec II-C)";
    w.knobs = {
        {"grid", 32, "square grid side; grid*grid must divide by the "
                     "block size (128)"},
        {"steps", 16, "simulation steps (fitness scale)"},
        {"sim-seed", 1337, "per-cell RNG seed"},
    };
    w.searchDefaults.populationSize = 12;
    w.searchDefaults.generations = 8;
    w.searchDefaults.elitism = 2;
    w.searchDefaults.seed = 3;
    // Inert without --cache-path; with one, a killed long run still
    // warm-starts from its last interval.
    w.searchDefaults.cacheSaveInterval = 10;
    // The ROADMAP perf-anchor configuration (bench/throughput.cpp).
    w.benchDefaults.populationSize = 12;
    w.benchDefaults.generations = 8;
    w.benchDefaults.elitism = 2;
    w.benchDefaults.seed = 3;
    w.benchKnobs = {{"grid", "16"}, {"steps", "6"}};
    w.variabilityRuns = 2;
    w.variabilityGens = 6;
    w.variabilityPop = 10;
    // Fig. 6 runs at the workload's own fitness scale (32x32, 16 steps),
    // not the throughput bench's scaled-down grid.
    w.variabilityKnobs = {};
    w.make = [](const core::WorkloadConfig& config) {
        return std::unique_ptr<core::WorkloadInstance>(
            new SimcovWorkloadInstance(config));
    };
    core::WorkloadRegistry::instance().add(std::move(w));
}

} // namespace gevo::simcov
