/// \file
/// Registry entry for the SIMCoV workload ("simcov").

#ifndef GEVO_APPS_SIMCOV_WORKLOAD_H
#define GEVO_APPS_SIMCOV_WORKLOAD_H

namespace gevo::simcov {

/// Register simcov with the core::WorkloadRegistry.
/// Call through apps::registerBuiltinWorkloads(), which is idempotent.
void registerWorkloads();

} // namespace gevo::simcov

#endif // GEVO_APPS_SIMCOV_WORKLOAD_H
