#include "apps/stencil/driver.h"

#include "sim/device_memory.h"
#include "sim/program.h"

namespace gevo::stencil {

StencilDriver::StencilDriver(StencilConfig config, bool tightArena)
    : config_(config), tightArena_(tightArena),
      initial_(initialGrid(config)), expected_(runCpuStencil(config))
{
}

StencilRunOutput
StencilDriver::run(const ir::Module& module, const sim::DeviceConfig& dev,
                   bool profile) const
{
    return run(sim::ProgramSet::decodeModule(module), dev, profile);
}

StencilRunOutput
StencilDriver::run(const sim::ProgramSet& programs,
                   const sim::DeviceConfig& dev, bool profile) const
{
    StencilRunOutput out;
    const std::int64_t gridBytes = 4ll * config_.cells();

    // Allocation plan: two ping-pong grids. The arena is sized to the
    // plan (capacity has no fault semantics — OOB keys on the
    // page-rounded allocated extent), so the per-evaluation zeroing cost
    // tracks the problem, not a fixed floor.
    const std::int64_t total = 2 * ((gridBytes + 255) / 256) * 256;
    sim::DeviceMemory mem(tightArena_ ? total : total + (1 << 18));
    const auto bufA = mem.alloc(gridBytes);
    const auto bufB = mem.alloc(gridBytes);
    mem.copyIn(bufA, initial_.data(), gridBytes);

    const auto* prog = programs.find("st_jacobi");
    if (prog == nullptr) {
        out.fault.kind = sim::FaultKind::InvalidProgram;
        out.fault.detail = "st_jacobi missing from module";
        return out;
    }
    const auto blocks = static_cast<std::uint32_t>(
        config_.cells() / static_cast<std::int32_t>(config_.blockDim));
    const sim::LaunchDims dims{blocks, config_.blockDim, oversubscribe_};

    sim::DevPtr src = bufA;
    sim::DevPtr dst = bufB;
    for (std::int32_t step = 0; step < config_.steps; ++step) {
        const auto res = sim::launchKernel(
            dev, mem, *prog, dims,
            {static_cast<std::uint64_t>(src),
             static_cast<std::uint64_t>(dst)},
            profile);
        out.totalMs += res.stats.ms;
        out.aggregate.accumulate(res.stats);
        if (!res.ok()) {
            out.fault = res.fault;
            return out;
        }
        std::swap(src, dst);
    }

    out.grid.resize(static_cast<std::size_t>(config_.cells()));
    mem.copyOut(out.grid.data(), src, gridBytes);
    return out;
}

} // namespace gevo::stencil
