/// \file
/// Host-side stencil driver: uploads the initial grid, runs the Jacobi
/// kernel for the configured number of steps over ping-pong buffers, and
/// reads back the final grid. The arena is sized to the allocation plan
/// (two grids plus fixed slack); \p tightArena drops the slack — the
/// held-out regime where a variant that reads past its arrays faults
/// instead of seeing page slack.

#ifndef GEVO_APPS_STENCIL_DRIVER_H
#define GEVO_APPS_STENCIL_DRIVER_H

#include <vector>

#include "apps/stencil/kernels.h"
#include "core/fitness.h"
#include "sim/device_config.h"
#include "sim/executor.h"
#include "support/strings.h"

namespace gevo::stencil {

/// Output of a full multi-step run.
struct StencilRunOutput {
    sim::Fault fault;
    std::vector<float> grid;    ///< Final grid (empty on fault).
    double totalMs = 0.0;       ///< Simulated time across all steps.
    sim::LaunchStats aggregate; ///< Counters summed over launches.

    bool ok() const { return fault.ok(); }
};

/// Immutable run configuration; thread-safe (each run() owns its memory).
class StencilDriver {
  public:
    explicit StencilDriver(StencilConfig config, bool tightArena = false);

    /// Execute the pre-decoded kernel over the configured run (scoring
    /// stage of the two-stage pipeline; no IR access, no decoding).
    StencilRunOutput run(const sim::ProgramSet& programs,
                         const sim::DeviceConfig& dev,
                         bool profile = false) const;

    /// Convenience: decode \p module and run it (one-off callers).
    StencilRunOutput run(const ir::Module& module,
                         const sim::DeviceConfig& dev,
                         bool profile = false) const;

    /// CPU ground-truth final grid (computed once).
    const std::vector<float>& expected() const { return expected_; }
    const StencilConfig& config() const { return config_; }

    /// Timing-grid multiplier (saturated-device regime).
    void setOversubscribe(std::uint32_t f) { oversubscribe_ = f; }

  private:
    StencilConfig config_;
    bool tightArena_;
    std::uint32_t oversubscribe_ = 512;
    std::vector<float> initial_;
    std::vector<float> expected_;
};

/// Scores a variant by total simulated kernel time; any fault or any
/// final-grid value mismatch (bit-exact — the kernel's float order is
/// replicated by the CPU reference) invalidates it.
class StencilFitness : public core::FitnessFunction {
  public:
    StencilFitness(const StencilDriver& driver, sim::DeviceConfig dev)
        : driver_(driver), dev_(std::move(dev))
    {
    }

    core::FitnessResult
    evaluate(const core::CompiledVariant& variant) const override
    {
        return evaluateOn(variant, dev_);
    }

    core::FitnessResult
    evaluateOn(const core::CompiledVariant& variant,
               const sim::DeviceConfig& dev) const override
    {
        const auto out = driver_.run(variant.programs, dev);
        if (!out.ok())
            return core::FitnessResult::fail(out.fault.detail);
        const auto& expected = driver_.expected();
        for (std::size_t i = 0; i < expected.size(); ++i) {
            if (out.grid[i] != expected[i]) {
                const auto W = driver_.config().gridW;
                return core::FitnessResult::fail(strformat(
                    "cell (%d,%d): got %.9g, want %.9g",
                    static_cast<int>(i) % W, static_cast<int>(i) / W,
                    static_cast<double>(out.grid[i]),
                    static_cast<double>(expected[i])));
            }
        }
        return core::FitnessResult::pass(out.totalMs, out.aggregate);
    }

    bool
    profileVariant(const core::CompiledVariant& variant,
                   core::ProfileSummary* out) const override
    {
        const auto run = driver_.run(variant.programs, dev_, /*profile=*/true);
        if (!run.ok())
            return false;
        *out = core::ProfileSummary{};
        out->accumulateLaunch(run.aggregate);
        return true;
    }

    std::string
    name() const override
    {
        return strformat("stencil(%dx%d, %d steps, %s)",
                         driver_.config().gridW, driver_.config().gridW,
                         driver_.config().steps, dev_.name.c_str());
    }

  private:
    const StencilDriver& driver_;
    sim::DeviceConfig dev_;
};

} // namespace gevo::stencil

#endif // GEVO_APPS_STENCIL_DRIVER_H
