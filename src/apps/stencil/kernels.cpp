#include "apps/stencil/kernels.h"

#include "ir/builder.h"
#include "support/logging.h"
#include "support/strings.h"

namespace gevo::stencil {

using ir::IRBuilder;
using ir::MemSpace;
using ir::MemWidth;
using ir::Operand;

std::uint64_t
StencilModule::uidOf(const std::string& name) const
{
    const auto it = anchors.find(name);
    if (it == anchors.end())
        GEVO_FATAL("unknown stencil anchor '%s'", name.c_str());
    return it->second;
}

namespace {

/// Emits the block-tiled Jacobi kernel.
class StencilEmitter {
  public:
    explicit StencilEmitter(StencilModule& out) : out_(out), b_(out.module)
    {
    }

    void
    emit()
    {
        const std::int32_t W = out_.config.gridW;
        // p0 src p1 dst; shared tile = blockDim + 2 halo floats.
        b_.startKernel("st_jacobi", 2, (out_.config.blockDim + 2) * 4);
        const auto entry = b_.block("entry");
        b_.setLoc("stencil.cu:tile");
        const auto tid = b_.tid();
        const auto ntid = b_.ntid();
        const auto c = b_.iadd(b_.imul(b_.bid(), ntid), tid);
        const auto y = b_.idiv(c, imm(W));
        const auto x = b_.irem(c, imm(W));

        // Centre value. Planted duplicate coordinate chain: the load's
        // address comes from a second div/rem recomputation; rerouting it
        // to `cAddr1` (the golden edit) makes the duplicate chain dead.
        const auto cAddr1 = emitCellAddr(b_.param(0), c);
        regAnchor("st.reg.caddr1", cAddr1);
        const auto y2 = b_.idiv(c, imm(W));
        const auto x2 = b_.irem(c, imm(W));
        const auto idx2 = b_.iadd(b_.imul(y2, imm(W)), x2);
        const auto cAddr2 = emitCellAddr(b_.param(0), idx2);
        const auto v = b_.ld(MemSpace::Global, MemWidth::F32, cAddr2);
        anchor("st.center.load");

        // Tile load: own cell at shared slot tid+1; the first/last thread
        // of the block also fills the halo (clamped to the grid, so the
        // loads are in bounds even at the corners — halo values feeding
        // boundary cells are never consumed).
        const auto slot =
            b_.lmul(b_.sext64(b_.iadd(tid, imm(1))), imm(4));
        b_.st(MemSpace::Shared, MemWidth::F32, slot, v);

        const auto bbLeft = b_.block("halo_left");
        const auto bbLeftDone = b_.block("halo_left_done");
        b_.setInsert(entry);
        b_.brc(b_.ieq(tid, imm(0)), bbLeft, bbLeftDone);
        b_.setInsert(bbLeft);
        const auto lc = b_.imax(b_.isub(c, imm(1)), imm(0));
        const auto lv = b_.ld(MemSpace::Global, MemWidth::F32,
                              emitCellAddr(b_.param(0), lc));
        b_.st(MemSpace::Shared, MemWidth::F32, imm(0), lv);
        b_.br(bbLeftDone);
        b_.setInsert(bbLeftDone);

        const auto bbRight = b_.block("halo_right");
        const auto bbRightDone = b_.block("halo_right_done");
        b_.setInsert(bbLeftDone);
        const auto lastTid = b_.isub(ntid, imm(1));
        b_.brc(b_.ieq(tid, lastTid), bbRight, bbRightDone);
        b_.setInsert(bbRight);
        const auto rc = b_.imin(b_.iadd(c, imm(1)),
                                imm(out_.config.cells() - 1));
        const auto rv = b_.ld(MemSpace::Global, MemWidth::F32,
                              emitCellAddr(b_.param(0), rc));
        const auto haloSlot = b_.lmul(
            b_.sext64(b_.iadd(ntid, imm(1))), imm(4));
        b_.st(MemSpace::Shared, MemWidth::F32, haloSlot, rv);
        b_.br(bbRightDone);
        b_.setInsert(bbRightDone);

        b_.barrier();
        b_.barrier(); // planted: redundant double sync
        anchor("st.extrabar");

        // Dirichlet boundary: edge cells copy through unchanged.
        const auto bbInterior = b_.block("interior");
        const auto bbCopy = b_.block("boundary_copy");
        const auto bbDone = b_.block("done");
        b_.setInsert(bbRightDone);
        const auto inX = b_.band(b_.ige(x, imm(1)), b_.ile(x, imm(W - 2)));
        const auto inY = b_.band(b_.ige(y, imm(1)), b_.ile(y, imm(W - 2)));
        b_.brc(b_.band(inX, inY), bbInterior, bbCopy);

        b_.setInsert(bbCopy);
        b_.st(MemSpace::Global, MemWidth::F32,
              emitCellAddr(b_.param(1), c), v);
        b_.br(bbDone);

        // Interior: 4-neighbour accumulation, each tap behind a guard a
        // range analysis would prove always-true here (the golden edits
        // fold them). Left/right from the shared tile, up/down global.
        b_.setInsert(bbInterior);
        b_.setLoc("stencil.cu:update");
        const auto acc = b_.mov(immf(0.0f));
        emitGuardedTap(0, b_.ige(b_.isub(x, imm(1)), imm(0)), [&] {
            const auto tileSlot = b_.lmul(b_.sext64(tid), imm(4));
            return b_.ld(MemSpace::Shared, MemWidth::F32, tileSlot);
        }, acc);
        emitGuardedTap(1, b_.ile(b_.iadd(x, imm(1)), imm(W - 1)), [&] {
            const auto tileSlot =
                b_.lmul(b_.sext64(b_.iadd(tid, imm(2))), imm(4));
            return b_.ld(MemSpace::Shared, MemWidth::F32, tileSlot);
        }, acc);
        emitGuardedTap(2, b_.ige(b_.isub(y, imm(1)), imm(0)), [&] {
            return b_.ld(MemSpace::Global, MemWidth::F32,
                         emitCellAddr(b_.param(0), b_.isub(c, imm(W))));
        }, acc);
        emitGuardedTap(3, b_.ile(b_.iadd(y, imm(1)), imm(W - 1)), [&] {
            return b_.ld(MemSpace::Global, MemWidth::F32,
                         emitCellAddr(b_.param(0), b_.iadd(c, imm(W))));
        }, acc);

        const auto lap = b_.fsub(acc, b_.fmul(v, immf(4.0f)));
        const auto delta = b_.fmul(lap, immf(out_.config.rate));
        const auto next = b_.fadd(v, delta);
        b_.st(MemSpace::Global, MemWidth::F32,
              emitCellAddr(b_.param(1), c), next);
        b_.br(bbDone);

        b_.setInsert(bbDone);
        b_.ret();
        b_.setLoc("");
    }

  private:
    static Operand imm(std::int64_t v) { return Operand::imm(v); }
    static Operand immf(float v) { return Operand::immF32(v); }

    void
    anchor(const std::string& name)
    {
        auto& fn = b_.kernel();
        out_.anchors[name] =
            fn.blocks[b_.insertBlock()].instrs.back().uid;
    }
    void
    regAnchor(const std::string& name, Operand r)
    {
        out_.regs[name] = r.value;
    }

    /// Element address: base + 4 * cell.
    Operand
    emitCellAddr(Operand base, Operand cell)
    {
        return b_.ladd(base, b_.lmul(b_.sext64(cell), imm(4)));
    }

    /// One guarded neighbour tap: `if (cond) acc += load()`. The guard
    /// branch is anchored as "st.nb<k>.brc" for the fold edit.
    template <typename LoadFn>
    void
    emitGuardedTap(int k, Operand cond, LoadFn load, Operand acc)
    {
        const auto cur = b_.insertBlock();
        const auto bbTap = b_.block(strformat("tap%d", k));
        const auto bbSkip = b_.block(strformat("skip%d", k));
        b_.setInsert(cur);
        b_.setLoc("stencil.cu:guard");
        b_.brc(cond, bbTap, bbSkip);
        anchor(strformat("st.nb%d.brc", k));
        b_.setInsert(bbTap);
        b_.setLoc("stencil.cu:update");
        b_.faddTo(acc, acc, load());
        b_.br(bbSkip);
        b_.setInsert(bbSkip);
    }

    StencilModule& out_;
    IRBuilder b_;
};

} // namespace

StencilModule
buildStencil(const StencilConfig& config)
{
    GEVO_ASSERT(config.gridW >= 4, "stencil grid too small");
    GEVO_ASSERT(config.cells() %
                        static_cast<std::int32_t>(config.blockDim) ==
                    0,
                "stencil cells must be a multiple of blockDim");
    StencilModule out;
    out.config = config;
    StencilEmitter emitter(out);
    emitter.emit();
    return out;
}

std::vector<float>
initialGrid(const StencilConfig& config)
{
    const std::int32_t W = config.gridW;
    std::vector<float> grid(static_cast<std::size_t>(config.cells()));
    for (std::int32_t y = 0; y < W; ++y) {
        for (std::int32_t x = 0; x < W; ++x) {
            // Hot left edge, cold right edge, a deterministic ripple in
            // between — enough structure that every cell's trajectory is
            // distinct and a wrong neighbour tap shows up immediately.
            const std::int32_t h = (x * 31 + y * 17 + x * y) % 97;
            float v = static_cast<float>(h) / 97.0f;
            if (x == 0)
                v = 1.0f;
            if (x == W - 1)
                v = 0.0f;
            grid[static_cast<std::size_t>(y * W + x)] = v;
        }
    }
    return grid;
}

std::vector<float>
runCpuStencil(const StencilConfig& config)
{
    const std::int32_t W = config.gridW;
    std::vector<float> cur = initialGrid(config);
    std::vector<float> next(cur.size());
    for (std::int32_t step = 0; step < config.steps; ++step) {
        for (std::int32_t y = 0; y < W; ++y) {
            for (std::int32_t x = 0; x < W; ++x) {
                const auto i = static_cast<std::size_t>(y * W + x);
                const float v = cur[i];
                if (x == 0 || x == W - 1 || y == 0 || y == W - 1) {
                    next[i] = v;
                    continue;
                }
                // Same accumulation order as the kernel: left, right,
                // up, down — float addition is not associative.
                float acc = 0.0f;
                acc += cur[i - 1];
                acc += cur[i + 1];
                acc += cur[i - static_cast<std::size_t>(W)];
                acc += cur[i + static_cast<std::size_t>(W)];
                const float lap = acc - v * 4.0f;
                next[i] = v + lap * config.rate;
            }
        }
        std::swap(cur, next);
    }
    return cur;
}

std::vector<NamedEdit>
allGoldenEdits(const StencilModule& built)
{
    using mut::Edit;
    using mut::EditKind;
    std::vector<NamedEdit> out;
    for (int k = 0; k < 4; ++k) {
        Edit e;
        e.kind = EditKind::OperandReplace;
        e.srcUid = built.uidOf(strformat("st.nb%d.brc", k));
        e.opIndex = 0;
        e.newOperand = ir::Operand::imm(1);
        out.push_back({strformat("guard-nb%d", k), e});
    }
    {
        Edit e;
        e.kind = EditKind::InstrDelete;
        e.srcUid = built.uidOf("st.extrabar");
        out.push_back({"extra-barrier", e});
    }
    {
        Edit e;
        e.kind = EditKind::OperandReplace;
        e.srcUid = built.uidOf("st.center.load");
        e.opIndex = 0;
        e.newOperand = ir::Operand::reg(built.regs.at("st.reg.caddr1"));
        out.push_back({"dup-coords", e});
    }
    return out;
}

} // namespace gevo::stencil
