/// \file
/// 2D 5-point Jacobi heat-step stencil, built in IR.
///
/// The regular memory-bound member of the new workload family (the GEVO
/// line of related work stresses that mutation payoff differs sharply
/// between regular stencil/reduction kernels and data-dependent
/// traversal): one kernel, one thread per cell, block-tiled — each block
/// caches its contiguous run of cells plus a one-element halo in shared
/// memory, so the left/right neighbour taps are shared-memory reads and
/// only the up/down taps go to global memory.
///
/// Planted inefficiencies (the golden-edit targets, mirroring the
/// ADEPT/SIMCoV recipe):
///   * a redundant second barrier after the tile load,
///   * a duplicate div/rem coordinate chain feeding the centre load, and
///   * four per-neighbour guard branches inside the interior path that a
///     range analysis would prove always-true (a condition -> `true`
///     operand edit folds each away).

#ifndef GEVO_APPS_STENCIL_KERNELS_H
#define GEVO_APPS_STENCIL_KERNELS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/golden_edit.h"
#include "ir/function.h"
#include "mutation/edit.h"

namespace gevo::stencil {

/// Scale/configuration constants embedded in the kernel.
struct StencilConfig {
    std::int32_t gridW = 32;    ///< Square grid side (>= 4, W*W % 64 == 0).
    std::int32_t steps = 4;     ///< Jacobi iterations (ping-pong buffers).
    float rate = 0.20f;         ///< Diffusion rate.
    std::uint32_t blockDim = 64;

    std::int32_t cells() const { return gridW * gridW; }
};

/// A built stencil module plus anchors for the golden edits.
struct StencilModule {
    ir::Module module;
    StencilConfig config;
    std::map<std::string, std::uint64_t> anchors;
    std::map<std::string, std::int64_t> regs;

    /// Anchor lookup; fatal when missing.
    std::uint64_t uidOf(const std::string& name) const;
};

/// Build the kernel (`st_jacobi(src, dst)`).
StencilModule buildStencil(const StencilConfig& config);

/// Deterministic initial grid (boundary + interior pattern, bit-exact
/// between the CPU reference and the device buffers).
std::vector<float> initialGrid(const StencilConfig& config);

/// CPU reference: run \p steps Jacobi iterations over initialGrid(),
/// replicating the kernel's float operation order exactly. Returns the
/// final grid.
std::vector<float> runCpuStencil(const StencilConfig& config);

/// A named golden edit (shared shape, see apps/golden_edit.h).
using NamedEdit = apps::NamedEdit;
using apps::editsOf;

/// All planted optimizations: fold the four interior neighbour guards,
/// delete the redundant barrier, reroute the centre load to the first
/// coordinate chain (the duplicate chain then folds away as dead code).
std::vector<NamedEdit> allGoldenEdits(const StencilModule& built);

} // namespace gevo::stencil

#endif // GEVO_APPS_STENCIL_KERNELS_H
