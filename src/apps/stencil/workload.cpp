#include "apps/stencil/workload.h"

#include <memory>

#include "apps/stencil/driver.h"
#include "core/workload.h"
#include "mutation/patch.h"
#include "opt/passes.h"
#include "support/strings.h"

namespace gevo::stencil {

namespace {

class StencilWorkloadInstance : public core::WorkloadInstance {
  public:
    explicit StencilWorkloadInstance(const core::WorkloadConfig& config)
        : built_(buildStencil(makeConfig(config))), driver_(built_.config),
          fitness_(driver_, config.device), device_(config.device)
    {
    }

    const ir::Module& module() const override { return built_.module; }
    const core::FitnessFunction& fitness() const override
    {
        return fitness_;
    }

    std::string
    banner() const override
    {
        return strformat("%dx%d grid, %d Jacobi steps, block tile %u+2 "
                         "floats in shared memory",
                         built_.config.gridW, built_.config.gridW,
                         built_.config.steps, built_.config.blockDim);
    }

    std::vector<mut::Edit>
    goldenEdits() const override
    {
        return editsOf(allGoldenEdits(built_));
    }

    /// Held-out validation on a larger grid with a tightly sized arena:
    /// a variant whose speedup comes from dropping a load out of bounds
    /// passes the small fitness grid (page slack) but faults here.
    std::string
    validateBest(const std::vector<mut::Edit>& edits) const override
    {
        // Scale relative to the configured fitness grid so the check is
        // a genuine enlargement at every knob setting.
        StencilConfig big = built_.config;
        big.gridW = built_.config.gridW * 2;
        big.steps = 2;
        const auto bigBuilt = buildStencil(big);
        const StencilDriver bigDriver(big, /*tightArena=*/true);
        auto variant = mut::applyPatch(bigBuilt.module, edits);
        opt::runCleanupPipeline(variant);
        const auto heldOut = bigDriver.run(variant, device_);
        if (!heldOut.ok())
            return strformat("held-out %dx%d check: %s", big.gridW,
                             big.gridW, heldOut.fault.detail.c_str());
        return {};
    }

  private:
    static StencilConfig
    makeConfig(const core::WorkloadConfig& config)
    {
        StencilConfig cfg;
        cfg.gridW = static_cast<std::int32_t>(config.knobInt("grid", 32));
        cfg.steps = static_cast<std::int32_t>(config.knobInt("steps", 4));
        return cfg;
    }

    StencilModule built_;
    StencilDriver driver_;
    StencilFitness fitness_;
    sim::DeviceConfig device_;
};

} // namespace

void
registerWorkloads()
{
    core::Workload w;
    w.name = "stencil";
    w.summary = "2D 5-point Jacobi heat step, block-tiled shared-memory "
                "stencil (regular, memory-bound)";
    w.knobs = {
        {"grid", 32, "square grid side; grid*grid must divide by the "
                     "block size (64)"},
        {"steps", 4, "Jacobi iterations (fitness scale)"},
    };
    w.searchDefaults.populationSize = 12;
    w.searchDefaults.generations = 8;
    w.searchDefaults.elitism = 2;
    w.searchDefaults.seed = 5;
    w.searchDefaults.cacheSaveInterval = 10;
    w.benchDefaults.populationSize = 12;
    w.benchDefaults.generations = 8;
    w.benchDefaults.elitism = 2;
    w.benchDefaults.seed = 3;
    w.benchKnobs = {{"grid", "16"}, {"steps", "3"}};
    w.variabilityRuns = 2;
    w.variabilityGens = 6;
    w.variabilityPop = 10;
    w.make = [](const core::WorkloadConfig& config) {
        return std::unique_ptr<core::WorkloadInstance>(
            new StencilWorkloadInstance(config));
    };
    core::WorkloadRegistry::instance().add(std::move(w));
}

} // namespace gevo::stencil
