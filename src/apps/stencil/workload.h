/// \file
/// Registry hookup for the Jacobi stencil workload.

#ifndef GEVO_APPS_STENCIL_WORKLOAD_H
#define GEVO_APPS_STENCIL_WORKLOAD_H

namespace gevo::stencil {

/// Register the "stencil" workload (see apps/registry.h for when).
void registerWorkloads();

} // namespace gevo::stencil

#endif // GEVO_APPS_STENCIL_WORKLOAD_H
