#include "core/cache_store.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_set>

#include <unistd.h>

#include "support/bytes.h"
#include "support/strings.h"

namespace gevo::core {

namespace {

constexpr char kMagic[8] = {'G', 'E', 'V', 'O', 'C', 'A', 'C', 'H'};
/// magic + u32 version + u64 scope fingerprint.
constexpr std::size_t kHeaderSize = sizeof(kMagic) + 4 + 8;
/// Per-record header: payload length + CRC.
constexpr std::size_t kRecordHeader = 8;
/// Sanity bound on a single payload; anything larger is treated as
/// corruption (real keys are tens to hundreds of bytes).
constexpr std::size_t kMaxPayload = std::size_t{1} << 26;

/// Parse one payload into \p out. False when the payload's internal
/// lengths do not add up (CRC passed but the writer was broken — treat as
/// corruption all the same).
bool
parsePayload(const char* p, std::size_t size, CacheStoreRecord* out)
{
    std::size_t pos = 0;
    auto need = [&](std::size_t n) { return pos + n <= size; };
    if (!need(1 + 4))
        return false;
    out->level = static_cast<std::uint8_t>(p[pos]);
    pos += 1;
    const std::uint32_t keyLen = readLeU32(p + pos);
    pos += 4;
    if (!need(keyLen))
        return false;
    out->key.assign(p + pos, keyLen);
    pos += keyLen;
    if (!need(1 + 4))
        return false;
    out->result.valid = p[pos] != 0;
    pos += 1;
    const std::uint32_t objCount = readLeU32(p + pos);
    pos += 4;
    if (objCount > 64 || !need(std::size_t{objCount} * 8 + 4))
        return false;
    out->result.objectives.resize(objCount);
    for (auto& v : out->result.objectives) {
        v = std::bit_cast<double>(readLeU64(p + pos));
        pos += 8;
    }
    const std::uint32_t reasonLen = readLeU32(p + pos);
    pos += 4;
    if (!need(reasonLen))
        return false;
    out->result.failReason.assign(p + pos, reasonLen);
    pos += reasonLen;
    return pos == size;
}

void
appendPayload(std::string* out, const CacheStoreRecord& rec)
{
    out->push_back(static_cast<char>(rec.level));
    appendLeU32(out, static_cast<std::uint32_t>(rec.key.size()));
    out->append(rec.key);
    out->push_back(rec.result.valid ? 1 : 0);
    appendLeU32(out,
                static_cast<std::uint32_t>(rec.result.objectives.size()));
    for (const double v : rec.result.objectives)
        appendLeU64(out, std::bit_cast<std::uint64_t>(v));
    appendLeU32(out,
                static_cast<std::uint32_t>(rec.result.failReason.size()));
    out->append(rec.result.failReason);
}

} // namespace

std::uint32_t
crc32(const char* data, std::size_t size)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ static_cast<std::uint8_t>(data[i])) & 0xff] ^
              (crc >> 8);
    return crc ^ 0xffffffffu;
}

CacheLoadResult
loadCacheStore(const std::string& path, std::uint64_t expectedScope)
{
    CacheLoadResult res;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        res.status = CacheLoadResult::Status::Missing;
        return res;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad()) {
        res.status = CacheLoadResult::Status::BadHeader;
        res.message = "read error";
        return res;
    }

    if (bytes.size() < kHeaderSize ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
        res.status = CacheLoadResult::Status::BadHeader;
        res.message = "not a gevo cache file";
        return res;
    }
    const std::uint32_t version = readLeU32(bytes.data() + sizeof(kMagic));
    if (version != kCacheStoreVersion) {
        res.status = CacheLoadResult::Status::VersionMismatch;
        res.message = strformat("format version %u, expected %u", version,
                                kCacheStoreVersion);
        return res;
    }
    const std::uint64_t scope = readLeU64(bytes.data() + sizeof(kMagic) + 4);
    if (expectedScope != 0 && scope != expectedScope) {
        res.status = CacheLoadResult::Status::ScopeMismatch;
        res.message = "saved for a different workload/scale/device";
        return res;
    }
    res.status = CacheLoadResult::Status::Ok;

    std::size_t pos = kHeaderSize;
    while (pos < bytes.size()) {
        // Any malformed record ends the usable stream: everything from
        // here on is a damaged tail we skip (a crash mid-append or a
        // flipped byte cannot damage records before it).
        if (bytes.size() - pos < kRecordHeader)
            break;
        const std::uint32_t len = readLeU32(bytes.data() + pos);
        const std::uint32_t crc = readLeU32(bytes.data() + pos + 4);
        if (len > kMaxPayload || bytes.size() - pos - kRecordHeader < len)
            break;
        const char* payload = bytes.data() + pos + kRecordHeader;
        if (crc32(payload, len) != crc)
            break;
        CacheStoreRecord rec;
        if (!parsePayload(payload, len, &rec))
            break;
        res.records.push_back(std::move(rec));
        pos += kRecordHeader + len;
    }
    if (pos < bytes.size()) {
        res.truncated = true;
        res.skippedBytes = bytes.size() - pos;
        res.message = strformat("damaged tail: skipped %zu trailing bytes "
                                "after %zu good records",
                                res.skippedBytes, res.records.size());
    }
    return res;
}

bool
saveCacheStore(const std::string& path, std::uint64_t scope,
               const std::vector<CacheStoreRecord>& records,
               std::string* error)
{
    // Process-unique temp name: two processes saving the same cache file
    // concurrently must not truncate each other's half-written temp (the
    // last rename wins, both renames publish a complete file).
    static std::atomic<std::uint64_t> saveCounter{0};
    const std::string tmp = strformat(
        "%s.tmp.%llu.%llu", path.c_str(),
        static_cast<unsigned long long>(::getpid()),
        static_cast<unsigned long long>(
            saveCounter.fetch_add(1, std::memory_order_relaxed)));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            if (error)
                *error = "cannot open '" + tmp + "' for writing";
            return false;
        }
        out.write(kMagic, sizeof(kMagic));
        std::string header;
        appendLeU32(&header, kCacheStoreVersion);
        appendLeU64(&header, scope);
        out.write(header.data(),
                  static_cast<std::streamsize>(header.size()));

        std::string payload;
        std::string head;
        for (const auto& rec : records) {
            payload.clear();
            appendPayload(&payload, rec);
            head.clear();
            appendLeU32(&head, static_cast<std::uint32_t>(payload.size()));
            appendLeU32(&head, crc32(payload.data(), payload.size()));
            out.write(head.data(),
                      static_cast<std::streamsize>(head.size()));
            out.write(payload.data(),
                      static_cast<std::streamsize>(payload.size()));
        }
        out.flush();
        if (!out.good()) {
            if (error)
                *error = "write to '" + tmp + "' failed";
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "rename '" + tmp + "' -> '" + path + "' failed";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
mergeSaveCacheStore(const std::string& path, std::uint64_t scope,
                    const std::vector<CacheStoreRecord>& records,
                    std::string* error)
{
    // Read-merge-write is not atomic as a whole — a save landing between
    // our load and our rename wins the rename race and its entries are
    // picked up by OUR next merge instead. Every published file is still
    // complete and self-consistent; interleaving only delays union, it
    // never corrupts.
    const CacheLoadResult existing = loadCacheStore(path, scope);
    if (!existing.usable() || existing.records.empty())
        return saveCacheStore(path, scope, records, error);

    std::unordered_set<std::string> fresh;
    fresh.reserve(records.size());
    for (const auto& rec : records)
        fresh.insert(static_cast<char>(rec.level) + rec.key);

    std::vector<CacheStoreRecord> merged;
    merged.reserve(existing.records.size() + records.size());
    for (const auto& rec : existing.records) {
        if (!fresh.count(static_cast<char>(rec.level) + rec.key))
            merged.push_back(rec);
    }
    merged.insert(merged.end(), records.begin(), records.end());
    return saveCacheStore(path, scope, merged, error);
}

} // namespace gevo::core
