/// \file
/// On-disk persistence for the variant caches: a versioned,
/// content-addressed record store that survives process boundaries.
///
/// The two cache levels key on content, not on process state — the
/// canonical edit-list encoding and `sim::ProgramSet::contentKey` are
/// byte-identical across runs — so compile/score work done by one search
/// is directly reusable by the next (and by islands running in separate
/// processes against the same workload). GEVO-scale campaigns (256 x 300
/// evaluations, repeated across seeds and restarts) only amortize their
/// evaluation cost if it survives restarts; this store is that boundary.
///
/// File format (all integers little-endian):
///
///   header   "GEVOCACH" magic (8 bytes) + u32 format version
///            + u64 scope fingerprint
///   record*  u32 payloadLen | u32 crc32(payload) | payload
///   payload  u8 level | u32 keyLen | key bytes
///            | u8 valid | u64 ms-double-bits | u32 reasonLen | reason
///
/// The scope fingerprint binds a file to the search it can accelerate.
/// Level-0 keys encode only the edit list — two different workloads
/// produce colliding keys (the empty list, for one) with entirely
/// different fitness values — so the engine derives the fingerprint from
/// the compiled baseline program content plus the fitness function's
/// description (which names the app, dataset scale and device) and the
/// loader rejects files saved under any other scope, exactly like a
/// version mismatch: a clean, warned-about cold start.
///
/// The record stream is append-friendly and self-checking: every record
/// carries its own CRC, so a partially written tail (crash mid-save, disk
/// full, concurrent copy) or a flipped byte is detected at the damaged
/// record and the loader keeps everything before it. Loading NEVER aborts
/// the search — a missing, unreadable, version-mismatched or corrupted
/// file degrades to a cold start (the cache is an accelerator, not a
/// source of truth: every entry is deterministically recomputable).
///
/// Saving writes the whole snapshot to `path + ".tmp"` and renames it
/// over the target, so readers only ever observe a complete old file or a
/// complete new file. Records are emitted in the caches' deterministic
/// snapshot order (least-recently-used first — see
/// `VariantCache::snapshot`), which makes a load/save cycle reproduce LRU
/// eviction order exactly.

#ifndef GEVO_CORE_CACHE_STORE_H
#define GEVO_CORE_CACHE_STORE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/fitness.h"

namespace gevo::core {

/// Current file-format version. Bump on any layout change: the loader
/// rejects other versions wholesale (a half-understood cache is worse
/// than a cold start). v2 replaced the single fitness scalar with the
/// objective vector.
inline constexpr std::uint32_t kCacheStoreVersion = 2;

/// One persisted cache entry. `level` says which cache the key belongs
/// to: 0 = canonical edit-list key, 1 = compiled-program content key.
/// Unknown levels are preserved by load/save but ignored by the engine
/// (room for future cache levels without a version bump).
struct CacheStoreRecord {
    std::uint8_t level = 0;
    std::string key;
    FitnessResult result;
};

/// Outcome of reading a cache file.
struct CacheLoadResult {
    enum class Status {
        Ok,              ///< Header valid; `records` holds the good prefix.
        Missing,         ///< No file at the path (normal first run).
        BadHeader,       ///< Too short / wrong magic — not a cache file.
        VersionMismatch, ///< A cache file, but another format version.
        ScopeMismatch,   ///< Saved for a different workload/scale/device.
    };

    Status status = Status::Missing;
    std::vector<CacheStoreRecord> records;
    /// True when a damaged or incomplete tail was dropped (the records
    /// before it are still good and returned).
    bool truncated = false;
    /// Bytes of damaged tail that were skipped.
    std::size_t skippedBytes = 0;
    /// Human-readable detail for warnings (empty when clean).
    std::string message;

    /// File contributed usable records (possibly zero on an empty store).
    bool usable() const { return status == Status::Ok; }
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of \p size bytes. Exposed so
/// tests can craft deliberately corrupted files.
std::uint32_t crc32(const char* data, std::size_t size);

/// Read a cache file. \p expectedScope must match the fingerprint the
/// file was saved with (see the header comment); 0 skips the check
/// (diagnostic tooling). Never throws and never terminates: every
/// failure mode maps to a CacheLoadResult the caller can warn about and
/// ignore.
CacheLoadResult loadCacheStore(const std::string& path,
                               std::uint64_t expectedScope = 0);

/// Atomically replace \p path with a store holding \p records under
/// \p scope (write to a process-unique `path + ".tmp.<id>"`, then
/// rename — concurrent savers cannot tear each other's temp files, and
/// readers only ever see a complete old or complete new file). Returns
/// false with \p error set when the file cannot be written; the previous
/// file, if any, is left intact in that case.
bool saveCacheStore(const std::string& path, std::uint64_t scope,
                    const std::vector<CacheStoreRecord>& records,
                    std::string* error = nullptr);

/// saveCacheStore, but first union \p records with whatever a same-scope
/// file at \p path already holds ((level, key) identity; \p records win
/// on collision — harmless, since both sides of a collision are values of
/// the same deterministic function). Two searches sharing a cache path
/// interleave their saves without clobbering each other's entries: each
/// save preserves everything the other has published so far, instead of
/// last-writer-wins discarding it. Disk-only entries are emitted first,
/// in file order, so they re-enter LRU older than this process's own
/// (fresher) snapshot. A missing, mismatched or damaged existing file
/// contributes nothing (its good prefix still merges when only the tail
/// is damaged). Returns false with \p error set only when the final
/// write fails.
bool mergeSaveCacheStore(const std::string& path, std::uint64_t scope,
                         const std::vector<CacheStoreRecord>& records,
                         std::string* error = nullptr);

} // namespace gevo::core

#endif // GEVO_CORE_CACHE_STORE_H
