#include "core/checkpoint.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <unistd.h>

#include "core/cache_store.h" // crc32 — shared framing discipline.
#include "support/bytes.h"
#include "support/strings.h"

namespace gevo::core {

namespace {

constexpr char kMagic[8] = {'G', 'E', 'V', 'O', 'C', 'K', 'P', 'T'};
/// magic + u32 version + u64 scope fingerprint.
constexpr std::size_t kHeaderSize = sizeof(kMagic) + 4 + 8;
/// Per-record header: payload length + CRC.
constexpr std::size_t kRecordHeader = 8;
/// Sanity bound on a single payload (a 256-member island with hundreds
/// of edits per individual is ~MBs; 64 MiB is corruption).
constexpr std::size_t kMaxPayload = std::size_t{1} << 26;

// ---- payload builders ----

void
appendString(std::string* out, const std::string& s)
{
    appendLeU32(out, static_cast<std::uint32_t>(s.size()));
    out->append(s);
}

void
appendDouble(std::string* out, double v)
{
    appendLeU64(out, std::bit_cast<std::uint64_t>(v));
}

void
appendIndividual(std::string* out, const Individual& ind)
{
    appendString(out, mut::serializeEdits(ind.edits));
    out->push_back(ind.fitness.valid ? 1 : 0);
    appendLeU32(out,
                static_cast<std::uint32_t>(ind.fitness.objectives.size()));
    for (const double v : ind.fitness.objectives)
        appendDouble(out, v);
    appendString(out, ind.fitness.failReason);
    out->push_back(ind.evaluated ? 1 : 0);
}

void
appendSamplerConfig(std::string* out, const mut::SamplerConfig& cfg)
{
    appendDouble(out, cfg.wDelete);
    appendDouble(out, cfg.wCopy);
    appendDouble(out, cfg.wMove);
    appendDouble(out, cfg.wReplace);
    appendDouble(out, cfg.wSwap);
    appendDouble(out, cfg.wOperand);
    appendDouble(out, cfg.exploreFloor);
}

void
appendLog(std::string* out, const GenerationLog& log)
{
    appendLeU32(out, log.generation);
    appendDouble(out, log.bestMs);
    appendDouble(out, log.meanMs);
    appendLeU64(out, log.validCount);
    appendLeU64(out, log.evaluations);
    appendLeU64(out, log.cacheHits);
    appendLeU64(out, log.cacheMisses);
    appendLeU64(out, log.workerCrashes);
    appendLeU64(out, log.workerTimeouts);
    appendLeU64(out, log.protocolErrors);
    appendLeU64(out, log.quarantineHits);
    appendLeU64(out, log.paretoFrontSize);
    appendString(out, mut::serializeEdits(log.bestEdits));
    appendLeU32(out, static_cast<std::uint32_t>(log.islandBestMs.size()));
    for (const double ms : log.islandBestMs)
        appendDouble(out, ms);
    appendLeU32(out, static_cast<std::uint32_t>(log.islandRates.size()));
    for (const auto& rates : log.islandRates)
        appendSamplerConfig(out, rates);
}

// ---- payload parsers ----

/// Bounds-checked cursor over one payload. Every read* returns false on
/// overrun; the caller maps any failure to Status::Corrupt.
struct Cursor {
    const char* p;
    std::size_t size;
    std::size_t pos = 0;

    bool
    need(std::size_t n) const
    {
        return pos + n <= size;
    }
    bool
    readU8(std::uint8_t* out)
    {
        if (!need(1))
            return false;
        *out = static_cast<std::uint8_t>(p[pos]);
        pos += 1;
        return true;
    }
    bool
    readU32(std::uint32_t* out)
    {
        if (!need(4))
            return false;
        *out = readLeU32(p + pos);
        pos += 4;
        return true;
    }
    bool
    readU64(std::uint64_t* out)
    {
        if (!need(8))
            return false;
        *out = readLeU64(p + pos);
        pos += 8;
        return true;
    }
    bool
    readDouble(double* out)
    {
        std::uint64_t bits = 0;
        if (!readU64(&bits))
            return false;
        *out = std::bit_cast<double>(bits);
        return true;
    }
    bool
    readString(std::string* out)
    {
        std::uint32_t len = 0;
        if (!readU32(&len) || !need(len))
            return false;
        out->assign(p + pos, len);
        pos += len;
        return true;
    }
    bool
    readSize(std::size_t* out)
    {
        std::uint64_t v = 0;
        if (!readU64(&v))
            return false;
        *out = static_cast<std::size_t>(v);
        return true;
    }
    bool
    atEnd() const
    {
        return pos == size;
    }
};

bool
parseIndividual(Cursor* c, Individual* out)
{
    std::string edits;
    std::uint8_t valid = 0;
    std::uint8_t evaluated = 0;
    if (!c->readString(&edits) || !mut::deserializeEdits(edits, &out->edits))
        return false;
    std::uint32_t objCount = 0;
    if (!c->readU8(&valid) || !c->readU32(&objCount) || objCount > 64)
        return false;
    out->fitness.objectives.resize(objCount);
    for (auto& v : out->fitness.objectives) {
        if (!c->readDouble(&v))
            return false;
    }
    if (!c->readString(&out->fitness.failReason) || !c->readU8(&evaluated))
        return false;
    out->fitness.valid = valid != 0;
    out->evaluated = evaluated != 0;
    return true;
}

bool
parseSamplerConfig(Cursor* c, mut::SamplerConfig* out)
{
    return c->readDouble(&out->wDelete) && c->readDouble(&out->wCopy) &&
           c->readDouble(&out->wMove) && c->readDouble(&out->wReplace) &&
           c->readDouble(&out->wSwap) && c->readDouble(&out->wOperand) &&
           c->readDouble(&out->exploreFloor);
}

bool
parseLog(Cursor* c, GenerationLog* out)
{
    std::string edits;
    std::uint32_t islandCount = 0;
    if (!c->readU32(&out->generation) || !c->readDouble(&out->bestMs) ||
        !c->readDouble(&out->meanMs) || !c->readSize(&out->validCount) ||
        !c->readSize(&out->evaluations) || !c->readSize(&out->cacheHits) ||
        !c->readSize(&out->cacheMisses) ||
        !c->readSize(&out->workerCrashes) ||
        !c->readSize(&out->workerTimeouts) ||
        !c->readSize(&out->protocolErrors) ||
        !c->readSize(&out->quarantineHits) ||
        !c->readSize(&out->paretoFrontSize) || !c->readString(&edits) ||
        !mut::deserializeEdits(edits, &out->bestEdits) ||
        !c->readU32(&islandCount))
        return false;
    out->islandBestMs.resize(islandCount);
    for (auto& ms : out->islandBestMs) {
        if (!c->readDouble(&ms))
            return false;
    }
    std::uint32_t ratesCount = 0;
    if (!c->readU32(&ratesCount) || ratesCount > 4096)
        return false;
    out->islandRates.resize(ratesCount);
    for (auto& rates : out->islandRates) {
        if (!parseSamplerConfig(c, &rates))
            return false;
    }
    return true;
}

/// Pull the next CRC-framed record payload out of \p bytes at \p pos.
/// False on truncation, oversize, or CRC mismatch — all Corrupt.
bool
nextRecord(const std::string& bytes, std::size_t* pos, Cursor* out)
{
    if (bytes.size() - *pos < kRecordHeader)
        return false;
    const std::uint32_t len = readLeU32(bytes.data() + *pos);
    const std::uint32_t crc = readLeU32(bytes.data() + *pos + 4);
    if (len > kMaxPayload || bytes.size() - *pos - kRecordHeader < len)
        return false;
    const char* payload = bytes.data() + *pos + kRecordHeader;
    if (crc32(payload, len) != crc)
        return false;
    *pos += kRecordHeader + len;
    *out = Cursor{payload, len};
    return true;
}

void
appendRecord(std::string* out, const std::string& payload)
{
    appendLeU32(out, static_cast<std::uint32_t>(payload.size()));
    appendLeU32(out, crc32(payload.data(), payload.size()));
    out->append(payload);
}

} // namespace

CheckpointLoadResult
loadCheckpoint(const std::string& path, std::uint64_t expectedScope)
{
    CheckpointLoadResult res;
    auto corrupt = [&](const char* what) {
        res.status = CheckpointLoadResult::Status::Corrupt;
        res.state = CheckpointState{};
        res.message = strformat("damaged checkpoint (%s)", what);
        return res;
    };

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        res.status = CheckpointLoadResult::Status::Missing;
        return res;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad()) {
        res.status = CheckpointLoadResult::Status::BadHeader;
        res.message = "read error";
        return res;
    }
    if (bytes.size() < kHeaderSize ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
        res.status = CheckpointLoadResult::Status::BadHeader;
        res.message = "not a gevo checkpoint file";
        return res;
    }
    const std::uint32_t version = readLeU32(bytes.data() + sizeof(kMagic));
    if (version != kCheckpointVersion) {
        res.status = CheckpointLoadResult::Status::VersionMismatch;
        res.message = strformat("format version %u, expected %u", version,
                                kCheckpointVersion);
        return res;
    }
    const std::uint64_t scope = readLeU64(bytes.data() + sizeof(kMagic) + 4);
    if (expectedScope != 0 && scope != expectedScope) {
        res.status = CheckpointLoadResult::Status::ScopeMismatch;
        res.message = "saved by a trajectory-incompatible search "
                      "(different workload, seed or parameters)";
        return res;
    }

    std::size_t pos = kHeaderSize;
    Cursor c{nullptr, 0};

    // meta: generation | finished | baselineMs | islands | history
    // | quarantine | pareto-front counts.
    std::uint8_t finished = 0;
    std::size_t islandCount = 0;
    std::size_t historyCount = 0;
    std::size_t quarantineCount = 0;
    std::size_t frontCount = 0;
    if (!nextRecord(bytes, &pos, &c))
        return corrupt("meta record");
    if (!c.readU32(&res.state.generation) || !c.readU8(&finished) ||
        !c.readDouble(&res.state.baselineMs) ||
        !c.readSize(&islandCount) || !c.readSize(&historyCount) ||
        !c.readSize(&quarantineCount) || !c.readSize(&frontCount) ||
        !c.atEnd())
        return corrupt("meta record");
    res.state.finished = finished != 0;
    // Count sanity: a corrupted-but-CRC-valid meta must not drive
    // gigabyte allocations.
    if (islandCount > 4096 || historyCount > (1u << 24) ||
        quarantineCount > (1u << 24) || frontCount > (1u << 24))
        return corrupt("meta counts");

    if (!nextRecord(bytes, &pos, &c) ||
        !parseIndividual(&c, &res.state.best) || !c.atEnd())
        return corrupt("best-individual record");

    res.state.islands.resize(islandCount);
    for (auto& island : res.state.islands) {
        if (!nextRecord(bytes, &pos, &c))
            return corrupt("island record");
        for (auto& word : island.rngState) {
            if (!c.readU64(&word))
                return corrupt("island record");
        }
        std::size_t memberCount = 0;
        if (!c.readDouble(&island.bestMs) || !c.readSize(&memberCount) ||
            memberCount > (1u << 24))
            return corrupt("island record");
        island.members.resize(memberCount);
        for (auto& member : island.members) {
            if (!parseIndividual(&c, &member))
                return corrupt("island member");
        }
        std::uint8_t ratePending = 0;
        if (!parseSamplerConfig(&c, &island.rates) ||
            !parseSamplerConfig(&c, &island.candidateRates) ||
            !c.readU8(&ratePending) ||
            !c.readDouble(&island.rateLastBest))
            return corrupt("island rate state");
        island.ratePending = ratePending != 0;
        if (!c.atEnd())
            return corrupt("island record");
    }

    res.state.history.resize(historyCount);
    for (auto& log : res.state.history) {
        if (!nextRecord(bytes, &pos, &c) || !parseLog(&c, &log) ||
            !c.atEnd())
            return corrupt("history record");
    }

    if (!nextRecord(bytes, &pos, &c))
        return corrupt("quarantine record");
    res.state.quarantine.resize(quarantineCount);
    for (auto& key : res.state.quarantine) {
        if (!c.readString(&key))
            return corrupt("quarantine record");
    }
    if (!c.atEnd())
        return corrupt("quarantine record");

    if (!nextRecord(bytes, &pos, &c))
        return corrupt("pareto-front record");
    res.state.paretoFront.resize(frontCount);
    for (auto& ind : res.state.paretoFront) {
        if (!parseIndividual(&c, &ind))
            return corrupt("pareto-front record");
    }
    if (!c.atEnd())
        return corrupt("pareto-front record");

    // One consistent state means exactly these records: trailing bytes
    // are damage (or a writer this version does not understand).
    if (pos != bytes.size())
        return corrupt("trailing bytes");

    res.status = CheckpointLoadResult::Status::Ok;
    return res;
}

bool
saveCheckpoint(const std::string& path, std::uint64_t scope,
               const CheckpointState& state, std::string* error)
{
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    appendLeU32(&out, kCheckpointVersion);
    appendLeU64(&out, scope);

    std::string payload;
    appendLeU32(&payload, state.generation);
    payload.push_back(state.finished ? 1 : 0);
    appendDouble(&payload, state.baselineMs);
    appendLeU64(&payload, state.islands.size());
    appendLeU64(&payload, state.history.size());
    appendLeU64(&payload, state.quarantine.size());
    appendLeU64(&payload, state.paretoFront.size());
    appendRecord(&out, payload);

    payload.clear();
    appendIndividual(&payload, state.best);
    appendRecord(&out, payload);

    for (const auto& island : state.islands) {
        payload.clear();
        for (const std::uint64_t word : island.rngState)
            appendLeU64(&payload, word);
        appendDouble(&payload, island.bestMs);
        appendLeU64(&payload, island.members.size());
        for (const auto& member : island.members)
            appendIndividual(&payload, member);
        appendSamplerConfig(&payload, island.rates);
        appendSamplerConfig(&payload, island.candidateRates);
        payload.push_back(island.ratePending ? 1 : 0);
        appendDouble(&payload, island.rateLastBest);
        appendRecord(&out, payload);
    }

    for (const auto& log : state.history) {
        payload.clear();
        appendLog(&payload, log);
        appendRecord(&out, payload);
    }

    payload.clear();
    for (const auto& key : state.quarantine)
        appendString(&payload, key);
    appendRecord(&out, payload);

    payload.clear();
    for (const auto& ind : state.paretoFront)
        appendIndividual(&payload, ind);
    appendRecord(&out, payload);

    // Same atomic-replace discipline as saveCacheStore: process-unique
    // temp, then rename over the target.
    static std::atomic<std::uint64_t> saveCounter{0};
    const std::string tmp = strformat(
        "%s.tmp.%llu.%llu", path.c_str(),
        static_cast<unsigned long long>(::getpid()),
        static_cast<unsigned long long>(
            saveCounter.fetch_add(1, std::memory_order_relaxed)));
    {
        std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
        if (!file) {
            if (error)
                *error = "cannot open '" + tmp + "' for writing";
            return false;
        }
        file.write(out.data(), static_cast<std::streamsize>(out.size()));
        file.flush();
        if (!file.good()) {
            if (error)
                *error = "write to '" + tmp + "' failed";
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "rename '" + tmp + "' -> '" + path + "' failed";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace gevo::core
