/// \file
/// Durable search-state snapshots: kill -9 a long campaign, `--resume`,
/// and replay to the bit-identical trajectory of an uninterrupted run.
///
/// A checkpoint captures everything the next generation depends on —
/// per-island populations with their evaluated fitness, per-island RNG
/// streams mid-sequence (support/rng.h state()/setState()), the
/// generation counter, the full GenerationLog history, the incumbent
/// best, and the quarantine set (core/eval_backend.h). It deliberately
/// captures NOTHING the trajectory does not depend on: cache contents are
/// trajectory-neutral (every entry is a deterministic function of its
/// key) and already have their own persistence (core/cache_store.h), so a
/// resumed run may re-simulate work a warm cache would have served —
/// cacheHits/cacheMisses wobble, the trajectory does not.
///
/// File format (all integers little-endian), following the cache-store
/// discipline — magic + version + scope header, CRC-32 framed records,
/// atomic temp+rename saves — with one deliberate difference: any damage
/// anywhere rejects the WHOLE file. The cache keeps its good prefix
/// because records are independent; a checkpoint is one consistent state,
/// and resuming from half of it would silently fork the trajectory.
///
///   header   "GEVOCKPT" magic (8 bytes) + u32 format version
///            + u64 scope fingerprint
///   record*  u32 payloadLen | u32 crc32(payload) | payload
///   records  meta, best individual, islands[i]..., history[g]...,
///            quarantine, pareto front (exact counts and order fixed
///            by meta)
///
/// The scope fingerprint binds a checkpoint to the search that wrote it:
/// compiled-baseline content + fitness name + every trajectory-relevant
/// parameter (population size, operator probabilities, seed, island
/// layout, sampler weights). Trajectory-NEUTRAL knobs — thread count,
/// cache settings, backend, generation budget — are excluded on purpose:
/// resuming with more threads, a different backend, or a raised
/// `--gens` (extending a finished search) is sound and supported.

#ifndef GEVO_CORE_CHECKPOINT_H
#define GEVO_CORE_CHECKPOINT_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/population.h"

namespace gevo::core {

/// Current checkpoint format version. Bump on any layout change: the
/// loader rejects other versions wholesale. v2 added the per-island
/// self-adaptive operator-rate state and the per-generation islandRates
/// log field (PR 8); v3 replaced the single fitness scalar with the
/// objective vector and added the Pareto archive and the per-generation
/// paretoFrontSize log field. Older versions degrade to a cold start
/// with a warning.
inline constexpr std::uint32_t kCheckpointVersion = 3;

/// One island's durable state.
struct CheckpointIsland {
    /// The island's xoshiro256** stream, captured mid-sequence.
    std::array<std::uint64_t, 4> rngState{};
    double bestMs = 0.0; ///< Island best-so-far fitness.
    /// The population as bred for the next generation (fitness and
    /// evaluated flags included, so elites and migrants skip
    /// re-evaluation exactly as they would have in the original run).
    std::vector<Individual> members;
    /// Self-adaptive rate state (engine Island mirror; inert defaults
    /// when adaptation is off). The guided sampler's heat profile is
    /// deliberately NOT here: it is recomputed from the island elite
    /// after every evaluation, so a resumed run re-derives it
    /// bit-identically before the next breed.
    mut::SamplerConfig rates{};
    mut::SamplerConfig candidateRates{};
    bool ratePending = false;
    double rateLastBest = 0.0;
};

/// Full durable search state.
struct CheckpointState {
    /// Last fully completed generation (its log is in `history`; the
    /// islands are already bred for generation + 1).
    std::uint32_t generation = 0;
    /// The run completed its generation budget (as opposed to being
    /// checkpointed mid-search or interrupted). Informational: resume
    /// decides what to do from `generation` alone.
    bool finished = false;
    double baselineMs = 0.0;
    Individual best; ///< Incumbent best over the whole run.
    std::vector<GenerationLog> history;
    std::vector<CheckpointIsland> islands;
    /// Canonical edit-list keys of quarantined genotypes, sorted.
    std::vector<std::string> quarantine;
    /// Cross-generation non-dominated archive (Pareto selection only;
    /// empty for scalar runs), ordered by canonical edit-list key.
    std::vector<Individual> paretoFront;
};

/// Outcome of reading a checkpoint file.
struct CheckpointLoadResult {
    enum class Status {
        Ok,              ///< `state` holds the complete snapshot.
        Missing,         ///< No file at the path.
        BadHeader,       ///< Too short / wrong magic.
        VersionMismatch, ///< Another format version.
        ScopeMismatch,   ///< Saved by a trajectory-incompatible search.
        Corrupt,         ///< Damaged anywhere — whole file rejected.
    };

    Status status = Status::Missing;
    CheckpointState state;
    /// Human-readable detail for warnings (empty when Ok).
    std::string message;

    bool usable() const { return status == Status::Ok; }
};

/// Read a checkpoint. \p expectedScope must match the fingerprint the
/// file was saved with; 0 skips the check (diagnostic tooling). Never
/// throws and never terminates: every failure mode maps to a status the
/// caller can warn about and degrade to a cold start.
CheckpointLoadResult loadCheckpoint(const std::string& path,
                                    std::uint64_t expectedScope = 0);

/// Atomically replace \p path with a snapshot of \p state under \p scope
/// (process-unique temp + rename, same discipline as saveCacheStore).
/// Returns false with \p error set on I/O failure; the previous file, if
/// any, is left intact.
bool saveCheckpoint(const std::string& path, std::uint64_t scope,
                    const CheckpointState& state,
                    std::string* error = nullptr);

} // namespace gevo::core

#endif // GEVO_CORE_CHECKPOINT_H
