#include "core/engine.h"

#include <algorithm>

#include "mutation/patch.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace gevo::core {

EvolutionEngine::EvolutionEngine(const ir::Module& base,
                                 const FitnessFunction& fitness,
                                 EvolutionParams params)
    : base_(base), fitness_(fitness), params_(params)
{
    GEVO_ASSERT(params_.populationSize >= 2, "population too small");
    GEVO_ASSERT(params_.elitism < params_.populationSize,
                "elitism exceeds population");
}

Individual
EvolutionEngine::makeSeedIndividual(Rng& rng)
{
    // GEVO seeds the population with single-mutation variants of the
    // original program.
    Individual ind;
    const auto edit = mut::sampleEdit(base_, rng, params_.sampler);
    if (edit)
        ind.edits.push_back(*edit);
    return ind;
}

void
EvolutionEngine::evaluatePopulation(ThreadPool& pool,
                                    std::vector<Individual>* pop)
{
    std::vector<Individual*> todo;
    for (auto& ind : *pop) {
        if (!ind.evaluated)
            todo.push_back(&ind);
    }
    pool.parallelFor(todo.size(), [&](std::size_t i) {
        todo[i]->fitness = evaluateVariant(base_, todo[i]->edits, fitness_);
        todo[i]->evaluated = true;
    });
}

const Individual&
EvolutionEngine::tournament(const std::vector<Individual>& pop,
                            Rng& rng) const
{
    const Individual* best = nullptr;
    for (std::uint32_t i = 0; i < params_.tournamentSize; ++i) {
        const Individual& c = pop[rng.below(pop.size())];
        if (best == nullptr || c.fitness.ms < best->fitness.ms)
            best = &c;
    }
    return *best;
}

void
EvolutionEngine::mutate(Individual* ind, Rng& rng)
{
    if (!ind->edits.empty() && !rng.chance(params_.mutationAppendProb)) {
        ind->edits.erase(ind->edits.begin() +
                         static_cast<std::ptrdiff_t>(
                             rng.below(ind->edits.size())));
        ind->evaluated = false;
        return;
    }
    // Sample against the patched variant so new edits can build on
    // previously inserted instructions.
    const ir::Module patched = mut::applyPatch(base_, ind->edits);
    const auto edit = mut::sampleEdit(patched, rng, params_.sampler);
    if (edit) {
        ind->edits.push_back(*edit);
        ind->evaluated = false;
    }
}

SearchResult
EvolutionEngine::run(const GenerationCallback& onGeneration)
{
    Rng rng(params_.seed);
    SearchResult result;
    ThreadPool pool(params_.threads);

    const auto baseline = evaluateVariant(base_, {}, fitness_);
    if (!baseline.valid)
        GEVO_FATAL("baseline program fails its own tests: %s",
                   baseline.failReason.c_str());
    result.baselineMs = baseline.ms;
    result.best.fitness = baseline;
    result.best.evaluated = true;

    std::vector<Individual> pop;
    pop.reserve(params_.populationSize);
    for (std::uint32_t i = 0; i < params_.populationSize; ++i)
        pop.push_back(makeSeedIndividual(rng));

    for (std::uint32_t gen = 1; gen <= params_.generations; ++gen) {
        std::size_t evals = 0;
        for (const auto& ind : pop)
            evals += ind.evaluated ? 0 : 1;
        evaluatePopulation(pool, &pop);

        std::sort(pop.begin(), pop.end(),
                  [](const Individual& a, const Individual& b) {
                      return a.fitness.ms < b.fitness.ms;
                  });

        GenerationLog log;
        log.generation = gen;
        log.evaluations = evals;
        double sum = 0.0;
        for (const auto& ind : pop) {
            if (ind.fitness.valid) {
                sum += ind.fitness.ms;
                ++log.validCount;
            }
        }
        log.meanMs = log.validCount
                         ? sum / static_cast<double>(log.validCount)
                         : 0.0;
        if (pop.front().fitness.valid &&
            pop.front().fitness.ms < result.best.fitness.ms) {
            result.best = pop.front();
        }
        log.bestMs = result.best.fitness.ms;
        log.bestEdits = result.best.edits;
        result.history.push_back(log);
        if (onGeneration)
            onGeneration(result.history.back(), result);

        // ---- breed the next generation ----
        std::vector<Individual> next;
        next.reserve(params_.populationSize);
        for (std::uint32_t e = 0;
             e < params_.elitism && e < pop.size(); ++e)
            next.push_back(pop[e]);

        while (next.size() < params_.populationSize) {
            const Individual& a = tournament(pop, rng);
            const Individual& b = tournament(pop, rng);
            Individual child;
            if (rng.chance(params_.crossoverProb)) {
                auto [c1, c2] = mut::crossoverEdits(a.edits, b.edits, rng);
                child.edits = std::move(c1);
                if (next.size() + 1 < params_.populationSize) {
                    Individual sibling;
                    sibling.edits = std::move(c2);
                    if (rng.chance(params_.mutationProb))
                        mutate(&sibling, rng);
                    next.push_back(std::move(sibling));
                }
            } else {
                child = a;
            }
            if (rng.chance(params_.mutationProb))
                mutate(&child, rng);
            next.push_back(std::move(child));
        }
        pop = std::move(next);
    }
    return result;
}

} // namespace gevo::core
