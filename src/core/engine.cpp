#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "core/cache_store.h"
#include "support/logging.h"

namespace gevo::core {

namespace {

/// Seed for island \p island's private stream. Island 0 uses the search
/// seed verbatim — a 1-island run is bit-for-bit the pre-island engine —
/// and higher islands decorrelate through a golden-ratio multiple (the
/// Rng constructor splitmixes whatever it is given, so nearby values
/// still yield independent streams).
std::uint64_t
islandSeed(std::uint64_t seed, std::uint32_t island)
{
    return seed ^ (0x9e3779b97f4a7c15ULL * island);
}

} // namespace

EvolutionEngine::EvolutionEngine(const ir::Module& base,
                                 const FitnessFunction& fitness,
                                 EvolutionParams params,
                                 std::unique_ptr<SearchTopology> topology)
    : base_(base), fitness_(fitness), params_(params),
      topology_(topology ? std::move(topology) : makeTopology(params_)),
      cache_(16, params_.cacheMaxEntries),
      programCache_(16, params_.cacheMaxEntries)
{
    // User-facing parameter validation (these arrive straight from
    // flags, so they are fatal user errors, not internal invariants).
    if (params_.populationSize < 2)
        GEVO_FATAL("populationSize must be >= 2 (got %u)",
                   params_.populationSize);
    if (params_.elitism >= params_.populationSize)
        GEVO_FATAL("elitism (%u) must be below populationSize (%u)",
                   params_.elitism, params_.populationSize);
    if (params_.migrationCount >= params_.populationSize)
        GEVO_FATAL("migrationCount (%u) must be below populationSize (%u)",
                   params_.migrationCount, params_.populationSize);
    GEVO_ASSERT(topology_->islandCount() >= 1, "no islands");
}

void
EvolutionEngine::evaluateIslands(ThreadPool& pool,
                                 std::vector<Island>* islands,
                                 GenerationLog* log)
{
    if (!params_.useCache) {
        // Reference path: literal compile-per-call — every individual of
        // every island is re-patched, re-cleaned, re-verified, re-decoded
        // and re-simulated every generation, with no memo of any kind.
        // Deterministic fitness makes this trajectory-identical to the
        // cached path.
        std::vector<Individual*> all;
        for (auto& island : *islands) {
            for (auto& ind : island.pop.members())
                all.push_back(&ind);
        }
        pool.parallelFor(all.size(), [&](std::size_t i) {
            Individual* ind = all[i];
            ind->fitness = evaluateVariant(base_, ind->edits, fitness_);
            ind->evaluated = true;
        });
        log->evaluations += all.size();
        log->cacheMisses += all.size();
        return;
    }

    // Whole-generation batching: the unevaluated individuals of every
    // island go into one work list (island order, then population order —
    // deterministic regardless of thread count), deduplicated globally so
    // identical offspring on different islands compile at most once.
    std::vector<Individual*> todo;
    for (auto& island : *islands) {
        for (auto& ind : island.pop.members()) {
            if (!ind.evaluated)
                todo.push_back(&ind);
        }
    }
    log->evaluations += todo.size();

    // Group identical offspring by canonical key; the first occurrence is
    // the group's representative.
    std::vector<std::string> keys(todo.size());
    std::unordered_map<std::string, std::size_t> firstOf;
    std::vector<std::size_t> owner(todo.size());
    std::vector<std::size_t> reps;
    for (std::size_t i = 0; i < todo.size(); ++i) {
        keys[i] = VariantCache::keyOf(todo[i]->edits);
        const auto [it, inserted] = firstOf.try_emplace(keys[i], i);
        owner[i] = it->second;
        if (inserted)
            reps.push_back(i);
    }

    // Serve representatives from the cross-generation cache.
    std::vector<std::size_t> missing;
    for (const std::size_t rep : reps) {
        FitnessResult cached;
        if (cache_.lookup(keys[rep], &cached)) {
            todo[rep]->fitness = cached;
            todo[rep]->evaluated = true;
        } else {
            missing.push_back(rep);
        }
    }

    // Compile each unique miss once, in parallel. Simulation — the
    // expensive stage — only runs when the compiled program itself is
    // novel: distinct edit lists routinely clean up to identical programs,
    // which the program-content cache collapses. Results go into both
    // cache levels from the worker threads.
    std::atomic<std::size_t> simulations{0};
    std::atomic<std::size_t> rejected{0};
    pool.parallelFor(missing.size(), [&](std::size_t i) {
        const std::size_t rep = missing[i];
        Individual* ind = todo[rep];
        const CompiledVariant cv = compileVariant(base_, ind->edits);
        if (!cv.ok) {
            ind->fitness = FitnessResult::fail(cv.failReason);
            rejected.fetch_add(1, std::memory_order_relaxed);
        } else {
            const std::string programKey = cv.programs.contentKey();
            FitnessResult cached;
            if (programCache_.lookup(programKey, &cached)) {
                ind->fitness = cached;
            } else {
                ind->fitness = fitness_.evaluate(cv);
                simulations.fetch_add(1, std::memory_order_relaxed);
                programCache_.insert(programKey, ind->fitness);
            }
        }
        ind->evaluated = true;
        cache_.insert(keys[rep], ind->fitness);
    });

    // Fan representative results out to within-generation duplicates.
    for (std::size_t i = 0; i < todo.size(); ++i) {
        if (!todo[i]->evaluated) {
            todo[i]->fitness = todo[owner[i]]->fitness;
            todo[i]->evaluated = true;
        }
    }
    // A miss is a request that cost real pipeline work: a simulation, or
    // a compile the verifier rejected. Everything else was served from a
    // memo/cache level. (Under concurrency two workers can race to
    // first-simulate the same novel program; the values are deterministic
    // either way, only these counters can wobble by the overlap.)
    const std::size_t worked =
        simulations.load(std::memory_order_relaxed) +
        rejected.load(std::memory_order_relaxed);
    log->cacheMisses += worked;
    log->cacheHits += todo.size() - worked;
}

std::size_t
EvolutionEngine::loadPersistentCaches()
{
    const auto load = loadCacheStore(params_.cachePath, cacheScope_);
    using Status = CacheLoadResult::Status;
    switch (load.status) {
    case Status::Missing:
        return 0; // Normal first run: cold start, nothing to say.
    case Status::BadHeader:
    case Status::VersionMismatch:
    case Status::ScopeMismatch:
        warn("ignoring cache file '%s' (%s): cold start",
             params_.cachePath.c_str(), load.message.c_str());
        return 0;
    case Status::Ok:
        break;
    }
    if (load.truncated)
        warn("cache file '%s': %s", params_.cachePath.c_str(),
             load.message.c_str());
    // Split records by level, preserving file order so bounded caches
    // re-enter LRU order deterministically. Unknown levels (from a future
    // writer of the same format version) are ignored, not an error.
    std::vector<std::pair<std::string, FitnessResult>> level0;
    std::vector<std::pair<std::string, FitnessResult>> level1;
    for (const auto& rec : load.records) {
        if (rec.level == 0)
            level0.emplace_back(rec.key, rec.result);
        else if (rec.level == 1)
            level1.emplace_back(rec.key, rec.result);
    }
    return cache_.preload(level0) + programCache_.preload(level1);
}

void
EvolutionEngine::savePersistentCaches() const
{
    std::vector<CacheStoreRecord> records;
    for (auto& [key, fitnessResult] : cache_.snapshot())
        records.push_back({0, std::move(key), fitnessResult});
    for (auto& [key, fitnessResult] : programCache_.snapshot())
        records.push_back({1, std::move(key), fitnessResult});
    std::string error;
    if (!saveCacheStore(params_.cachePath, cacheScope_, records, &error))
        warn("cache save to '%s' failed (%s); continuing without "
             "persistence",
             params_.cachePath.c_str(), error.c_str());
}

SearchResult
EvolutionEngine::run(const GenerationCallback& onGeneration)
{
    SearchResult result;
    ThreadPool pool(params_.threads);

    const auto baselineCv = compileVariant(base_, {});
    if (!baselineCv.ok)
        GEVO_FATAL("baseline program fails its own tests: %s",
                   baselineCv.failReason.c_str());
    const auto baseline = fitness_.evaluate(baselineCv);
    if (!baseline.valid)
        GEVO_FATAL("baseline program fails its own tests: %s",
                   baseline.failReason.c_str());

    // Persistence is scoped to (compiled baseline content, fitness
    // description): level-0 keys are pure edit-list bytes, identical
    // across workloads, so an unscoped file from another workload (or
    // the same one at another dataset scale/device — the fitness name
    // carries those) would serve wrong fitness values with no error.
    const bool persist = params_.useCache && !params_.cachePath.empty();
    if (persist) {
        cacheScope_ = VariantCache::hashKey(
            baselineCv.programs.contentKey() + '\n' + fitness_.name());
        if (cacheScope_ == 0) // 0 means "don't check" to the loader
            cacheScope_ = 1;
        result.cacheSummary.preloaded = loadPersistentCaches();
    }
    result.baselineMs = baseline.ms;
    result.best.fitness = baseline;
    result.best.evaluated = true;
    if (params_.useCache) {
        // Crossover routinely produces empty edit lists, and edits often
        // cancel back to the baseline program; serve both from the
        // baseline evaluation instead of re-simulating.
        cache_.insert(VariantCache::keyOf({}), baseline);
        programCache_.insert(baselineCv.programs.contentKey(), baseline);
    }

    const std::uint32_t numIslands = topology_->islandCount();
    std::vector<Island> islands;
    islands.reserve(numIslands);
    for (std::uint32_t i = 0; i < numIslands; ++i) {
        islands.push_back({Population(base_, params_),
                           Rng(islandSeed(params_.seed, i)),
                           baseline.ms});
        islands.back().pop.seed(islands.back().rng);
    }

    for (std::uint32_t gen = 1; gen <= params_.generations; ++gen) {
        GenerationLog log;
        log.generation = gen;
        evaluateIslands(pool, &islands, &log);

        double sum = 0.0;
        for (auto& island : islands) {
            island.pop.sortByFitness();
            for (const auto& ind : island.pop.members()) {
                if (ind.fitness.valid) {
                    sum += ind.fitness.ms;
                    ++log.validCount;
                }
            }
            const Individual& front = island.pop.best();
            if (front.fitness.valid) {
                island.bestMs = std::min(island.bestMs, front.fitness.ms);
                if (front.fitness.ms < result.best.fitness.ms)
                    result.best = front;
            }
            log.islandBestMs.push_back(island.bestMs);
        }
        log.meanMs = log.validCount
                         ? sum / static_cast<double>(log.validCount)
                         : 0.0;
        log.bestMs = result.best.fitness.ms;
        log.bestEdits = result.best.edits;
        result.history.push_back(log);
        if (onGeneration)
            onGeneration(result.history.back(), result);

        // ---- migration (simultaneous: all outboxes snapshot first) ----
        const auto edges = topology_->migrationsAfter(gen);
        if (!edges.empty() && params_.migrationCount > 0) {
            std::vector<std::vector<Individual>> outbox(islands.size());
            for (const auto& e : edges) {
                GEVO_ASSERT(e.from < islands.size() && e.to < islands.size(),
                            "migration edge out of range");
                if (outbox[e.from].empty())
                    outbox[e.from] =
                        islands[e.from].pop.emigrants(params_.migrationCount);
            }
            for (const auto& e : edges)
                islands[e.to].pop.receiveMigrants(outbox[e.from]);
        }

        // ---- breed the next generation on every island ----
        for (auto& island : islands)
            island.pop.breedNext(island.rng);

        // Periodic persistence: a long campaign killed mid-run still
        // warm-starts from its last interval. The save runs between
        // evaluation dispatches (no worker is touching the caches), but
        // snapshot() tolerates concurrent inserts regardless.
        if (persist && params_.cacheSaveInterval > 0 &&
            gen % params_.cacheSaveInterval == 0 &&
            gen != params_.generations)
            savePersistentCaches();
    }
    if (persist)
        savePersistentCaches();
    for (const auto& log : result.history) {
        result.cacheSummary.served += log.cacheHits;
        result.cacheSummary.evaluated += log.cacheMisses;
    }
    const auto cs = cache_.stats();
    const auto ps = programCache_.stats();
    result.cacheSummary.entries = cs.entries + ps.entries;
    result.cacheSummary.evictions = cs.evictions + ps.evictions;
    return result;
}

} // namespace gevo::core
