#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/cache_store.h"
#include "core/checkpoint.h"
#include "core/eval_backend.h"
#include "support/logging.h"
#include "support/strings.h"

namespace gevo::core {

namespace {

/// Seed for island \p island's private stream. Island 0 uses the search
/// seed verbatim — a 1-island run is bit-for-bit the pre-island engine —
/// and higher islands decorrelate through a golden-ratio multiple (the
/// Rng constructor splitmixes whatever it is given, so nearby values
/// still yield independent streams).
std::uint64_t
islandSeed(std::uint64_t seed, std::uint32_t island)
{
    return seed ^ (0x9e3779b97f4a7c15ULL * island);
}

/// The deterministic score served for quarantined genotypes. Same
/// valid/ms as every evaluation-failure penalty (invalid, +inf), so a
/// resumed run that serves this from the restored quarantine set sorts
/// and breeds exactly like the uninterrupted run that saw the original
/// failure.
FitnessResult
quarantinePenalty()
{
    return FitnessResult::fail("quarantined: evaluating this genotype "
                               "previously killed its worker");
}

void
countFailure(GenerationLog* log, EvalFailure failure)
{
    switch (failure) {
      // The remote kinds fold into the three original counters (a lost
      // connection is a crashed worker, a blown RPC deadline is a
      // timeout, a rejected handshake is a protocol fault), so the
      // --dump-history line format is identical across backends.
      case EvalFailure::WorkerCrash:
      case EvalFailure::ConnectionLost:
        ++log->workerCrashes;
        break;
      case EvalFailure::WorkerTimeout:
      case EvalFailure::RpcTimeout:
        ++log->workerTimeouts;
        break;
      case EvalFailure::ProtocolError:
      case EvalFailure::HandshakeRejected:
        ++log->protocolErrors;
        break;
      case EvalFailure::None:
        break;
    }
}

/// Checkpoint scope fingerprint: the cache-scope inputs (compiled
/// baseline content + fitness name) plus every trajectory-relevant
/// parameter. Doubles are rendered with %a so the fingerprint is exact.
/// Trajectory-neutral knobs (threads, cache settings, backend, the
/// generation budget) are excluded on purpose — see core/checkpoint.h.
std::uint64_t
checkpointScopeOf(const CompiledVariant& baselineCv,
                  const FitnessFunction& fitness,
                  const EvolutionParams& p)
{
    const auto& w = p.sampler;
    const std::string fingerprint = strformat(
        "pop=%u eli=%u xov=%a mut=%a app=%a tour=%u seed=%llu isl=%u "
        "mig=%u,%u w=%a,%a,%a,%a,%a,%a smp=%u floor=%a topo=%u adapt=%u "
        "fam=%u sel=%u obj=%s",
        p.populationSize, p.elitism, p.crossoverProb, p.mutationProb,
        p.mutationAppendProb, p.tournamentSize,
        static_cast<unsigned long long>(p.seed), p.islands,
        p.migrationInterval, p.migrationCount, w.wDelete, w.wCopy, w.wMove,
        w.wReplace, w.wSwap, w.wOperand,
        static_cast<unsigned>(p.samplerKind), w.exploreFloor,
        static_cast<unsigned>(p.topology), p.adaptRates ? 1u : 0u,
        p.fitnessAwareMigrants ? 1u : 0u,
        static_cast<unsigned>(p.selection),
        objectiveListName(p.objectives).c_str());
    std::uint64_t scope =
        VariantCache::hashKey(baselineCv.programs.contentKey() + '\n' +
                              fitness.name() + '\n' + fingerprint);
    if (scope == 0) // 0 means "don't check" to the loader.
        scope = 1;
    return scope;
}

} // namespace

EvolutionEngine::EvolutionEngine(const ir::Module& base,
                                 const FitnessFunction& fitness,
                                 EvolutionParams params,
                                 std::unique_ptr<SearchTopology> topology)
    : base_(base), fitness_(fitness), params_(params),
      topology_(topology ? std::move(topology) : makeTopology(params_)),
      cache_(16, params_.cacheMaxEntries),
      programCache_(16, params_.cacheMaxEntries)
{
    // User-facing parameter validation (these arrive straight from
    // flags, so they are fatal user errors, not internal invariants).
    if (params_.populationSize < 2)
        GEVO_FATAL("populationSize must be >= 2 (got %u)",
                   params_.populationSize);
    if (params_.elitism >= params_.populationSize)
        GEVO_FATAL("elitism (%u) must be below populationSize (%u)",
                   params_.elitism, params_.populationSize);
    if (params_.migrationCount >= params_.populationSize)
        GEVO_FATAL("migrationCount (%u) must be below populationSize (%u)",
                   params_.migrationCount, params_.populationSize);
    if (params_.backend == EvalBackendKind::Isolated &&
        params_.evalTimeoutMs == 0)
        GEVO_FATAL("evalTimeoutMs must be > 0 with the isolated backend "
                   "(the watchdog needs a budget)");
    if (params_.backend == EvalBackendKind::Remote) {
        if (params_.workers.empty())
            GEVO_FATAL("the remote backend needs --workers "
                       "(comma-separated host:port or unix:/path)");
        if (params_.evalTimeoutMs == 0)
            GEVO_FATAL("evalTimeoutMs must be > 0 with the remote backend "
                       "(the per-evaluation deadline needs a budget)");
    }
    if (params_.resume && params_.checkpointPath.empty())
        GEVO_FATAL("resume requires a checkpointPath");
    params_.sampler.validate();
    GEVO_ASSERT(topology_->islandCount() >= 1, "no islands");
    if (params_.samplerKind == SamplerKind::Guided)
        guidedSamplers_.resize(topology_->islandCount());
}

const mut::MutationSampler*
EvolutionEngine::samplerFor(std::uint32_t i) const
{
    if (params_.samplerKind == SamplerKind::Guided)
        return &guidedSamplers_[i];
    return &uniformSampler_;
}

void
EvolutionEngine::profileElites(const std::vector<Island>& islands)
{
    if (params_.samplerKind != SamplerKind::Guided)
        return;
    // One profiled evaluation per island per generation — the cheap path.
    // The elite's cleaned module shares the base's interned-loc table
    // (COW), so the histogram indexes map straight onto the instruction
    // locs the sampler sees. An invalid elite (or a workload without
    // profiling support) keeps the previous generation's heat.
    for (std::size_t i = 0; i < islands.size(); ++i) {
        const Individual& elite = islands[i].pop.best();
        if (!elite.fitness.valid)
            continue;
        const auto cv = compileVariant(base_, elite.edits);
        if (!cv.ok)
            continue;
        ProfileSummary summary;
        if (fitness_.profileVariant(cv, &summary))
            guidedSamplers_[i].setProfile(summary.locIssues);
    }
}

void
EvolutionEngine::adaptRatesStep(std::vector<Island>* islands,
                                GenerationLog* log)
{
    if (!params_.adaptRates)
        return;
    // Log-normal-style multiplicative perturbation (the ESCH lineage's
    // self-adaptation rule, from a uniform draw since the Rng has no
    // gaussian): w' = clamp(w * exp(tau * U(-1, 1))). exploreFloor is
    // left alone — it is a guided-sampler shape knob, not an operator
    // rate.
    constexpr double kTau = 0.25;
    constexpr double kMinW = 0.01;
    constexpr double kMaxW = 4.0;
    auto perturb = [&](const mut::SamplerConfig& from, Rng& rng) {
        mut::SamplerConfig next = from;
        for (double* w : {&next.wDelete, &next.wCopy, &next.wMove,
                          &next.wReplace, &next.wSwap, &next.wOperand}) {
            const double factor =
                std::exp(kTau * (2.0 * rng.uniform() - 1.0));
            *w = std::clamp(*w * factor, kMinW, kMaxW);
        }
        return next;
    };
    for (auto& island : *islands) {
        // Verdict on the candidate that bred this generation: keep it
        // only when the island's best improved under it (1+1 rule at
        // island granularity).
        if (island.ratePending && island.bestMs < island.rateLastBest)
            island.rates = island.candidateRates;
        island.rateLastBest = island.bestMs;
        island.candidateRates = perturb(island.rates, island.rng);
        island.ratePending = true;
        island.pop.rates() = island.candidateRates;
        log->islandRates.push_back(island.candidateRates);
    }
}

void
EvolutionEngine::evaluateIslands(EvaluationBackend& backend,
                                 std::vector<Island>* islands,
                                 GenerationLog* log)
{
    if (!params_.useCache) {
        // Reference path: literal compile-per-call — every individual of
        // every island is re-patched, re-cleaned, re-verified, re-decoded
        // and re-simulated every generation, with no memo of any kind
        // (the null programCache keeps the backend from even computing
        // content keys). Deterministic fitness makes this trajectory-
        // identical to the cached path.
        std::vector<Individual*> all;
        for (auto& island : *islands) {
            for (auto& ind : island.pop.members())
                all.push_back(&ind);
        }
        log->evaluations += all.size();

        // Quarantine screen. Only taken once something is quarantined:
        // until then the reference path computes no canonical keys at
        // all, exactly as before the backend seam existed.
        std::vector<Individual*> todo;
        std::vector<std::string> todoKeys;
        if (quarantine_.empty()) {
            todo = std::move(all);
        } else {
            todoKeys.reserve(all.size());
            for (auto* ind : all) {
                std::string key = VariantCache::keyOf(ind->edits);
                if (quarantine_.count(key) != 0) {
                    ind->fitness = quarantinePenalty();
                    ind->evaluated = true;
                    ++log->quarantineHits;
                } else {
                    todo.push_back(ind);
                    todoKeys.push_back(std::move(key));
                }
            }
        }

        std::vector<const std::vector<mut::Edit>*> batch;
        batch.reserve(todo.size());
        for (const auto* ind : todo)
            batch.push_back(&ind->edits);
        std::vector<EvalOutcome> outcomes;
        backend.evaluateBatch(batch, nullptr, &outcomes);
        for (std::size_t i = 0; i < todo.size(); ++i) {
            todo[i]->fitness = outcomes[i].result;
            todo[i]->evaluated = true;
            if (outcomes[i].failure != EvalFailure::None) {
                countFailure(log, outcomes[i].failure);
                quarantine_.insert(
                    todoKeys.empty() ? VariantCache::keyOf(todo[i]->edits)
                                     : todoKeys[i]);
            }
        }
        log->cacheMisses += batch.size();
        log->cacheHits += log->quarantineHits;
        return;
    }

    // Whole-generation batching: the unevaluated individuals of every
    // island go into one work list (island order, then population order —
    // deterministic regardless of thread count), deduplicated globally so
    // identical offspring on different islands compile at most once.
    std::vector<Individual*> todo;
    for (auto& island : *islands) {
        for (auto& ind : island.pop.members()) {
            if (!ind.evaluated)
                todo.push_back(&ind);
        }
    }
    log->evaluations += todo.size();

    // Group identical offspring by canonical key; the first occurrence is
    // the group's representative.
    std::vector<std::string> keys(todo.size());
    std::unordered_map<std::string, std::size_t> firstOf;
    std::vector<std::size_t> owner(todo.size());
    std::vector<std::size_t> reps;
    for (std::size_t i = 0; i < todo.size(); ++i) {
        keys[i] = VariantCache::keyOf(todo[i]->edits);
        const auto [it, inserted] = firstOf.try_emplace(keys[i], i);
        owner[i] = it->second;
        if (inserted)
            reps.push_back(i);
    }

    // Serve representatives from the quarantine set and the
    // cross-generation cache.
    std::vector<std::size_t> missing;
    for (const std::size_t rep : reps) {
        if (!quarantine_.empty() && quarantine_.count(keys[rep]) != 0) {
            todo[rep]->fitness = quarantinePenalty();
            todo[rep]->evaluated = true;
            ++log->quarantineHits;
            continue;
        }
        FitnessResult cached;
        if (cache_.lookup(keys[rep], &cached)) {
            todo[rep]->fitness = cached;
            todo[rep]->evaluated = true;
        } else {
            missing.push_back(rep);
        }
    }

    // Dispatch each unique miss to the backend (compile once; simulation
    // — the expensive stage — only runs when the compiled program itself
    // is novel: distinct edit lists routinely clean up to identical
    // programs, which the program-content cache collapses).
    std::vector<const std::vector<mut::Edit>*> batch;
    batch.reserve(missing.size());
    for (const std::size_t rep : missing)
        batch.push_back(&todo[rep]->edits);
    std::vector<EvalOutcome> outcomes;
    backend.evaluateBatch(batch, &programCache_, &outcomes);

    // Settle outcomes in deterministic representative order. The level-0
    // insert happens here, parent-side, because the backend may have run
    // the evaluation in another process; failures go to quarantine
    // instead of the cache (the caches hold values of the deterministic
    // fitness function — a dead worker is not one).
    std::size_t worked = 0;
    for (std::size_t i = 0; i < missing.size(); ++i) {
        const std::size_t rep = missing[i];
        Individual* ind = todo[rep];
        const EvalOutcome& outcome = outcomes[i];
        ind->fitness = outcome.result;
        ind->evaluated = true;
        if (outcome.failure != EvalFailure::None) {
            countFailure(log, outcome.failure);
            quarantine_.insert(keys[rep]);
            ++worked; // It cost (and killed) a worker's pipeline attempt.
            continue;
        }
        cache_.insert(keys[rep], ind->fitness);
        if (outcome.simulated || outcome.rejected)
            ++worked;
    }

    // Fan representative results out to within-generation duplicates.
    for (std::size_t i = 0; i < todo.size(); ++i) {
        if (!todo[i]->evaluated) {
            todo[i]->fitness = todo[owner[i]]->fitness;
            todo[i]->evaluated = true;
        }
    }
    // A miss is a request that cost real pipeline work: a simulation, a
    // compile the verifier rejected, or an evaluation that took its
    // worker down. Everything else was served from a memo/cache level —
    // the quarantine set included. (Under concurrency two workers can
    // race to first-simulate the same novel program; the values are
    // deterministic either way, only these counters can wobble by the
    // overlap.)
    log->cacheMisses += worked;
    log->cacheHits += todo.size() - worked;
}

std::size_t
EvolutionEngine::loadPersistentCaches()
{
    const auto load = loadCacheStore(params_.cachePath, cacheScope_);
    using Status = CacheLoadResult::Status;
    switch (load.status) {
    case Status::Missing:
        return 0; // Normal first run: cold start, nothing to say.
    case Status::BadHeader:
    case Status::VersionMismatch:
    case Status::ScopeMismatch:
        warn("ignoring cache file '%s' (%s): cold start",
             params_.cachePath.c_str(), load.message.c_str());
        return 0;
    case Status::Ok:
        break;
    }
    if (load.truncated)
        warn("cache file '%s': %s", params_.cachePath.c_str(),
             load.message.c_str());
    // Split records by level, preserving file order so bounded caches
    // re-enter LRU order deterministically. Unknown levels (from a future
    // writer of the same format version) are ignored, not an error.
    std::vector<std::pair<std::string, FitnessResult>> level0;
    std::vector<std::pair<std::string, FitnessResult>> level1;
    for (const auto& rec : load.records) {
        if (rec.level == 0)
            level0.emplace_back(rec.key, rec.result);
        else if (rec.level == 1)
            level1.emplace_back(rec.key, rec.result);
    }
    return cache_.preload(level0) + programCache_.preload(level1);
}

void
EvolutionEngine::savePersistentCaches() const
{
    std::vector<CacheStoreRecord> records;
    for (auto& [key, fitnessResult] : cache_.snapshot())
        records.push_back({0, std::move(key), fitnessResult});
    for (auto& [key, fitnessResult] : programCache_.snapshot())
        records.push_back({1, std::move(key), fitnessResult});
    // Merge-on-save: concurrent searches sharing this cache path union
    // their snapshots instead of last-writer-wins clobbering each other.
    std::string error;
    if (!mergeSaveCacheStore(params_.cachePath, cacheScope_, records,
                             &error))
        warn("cache save to '%s' failed (%s); continuing without "
             "persistence",
             params_.cachePath.c_str(), error.c_str());
}

void
EvolutionEngine::updateParetoArchive(const std::vector<Island>& islands)
{
    // Candidates: the current archive plus every valid member,
    // deduplicated by canonical key (first occurrence wins — fitness is
    // a deterministic function of the key, so duplicates are equal).
    std::vector<Individual> pool;
    std::vector<std::string> keys;
    std::unordered_set<std::string> seen;
    const auto add = [&](const Individual& ind) {
        std::string key = VariantCache::keyOf(ind.edits);
        if (!seen.insert(key).second)
            return;
        pool.push_back(ind);
        keys.push_back(std::move(key));
    };
    for (const auto& ind : paretoArchive_)
        add(ind);
    for (const auto& island : islands)
        for (const auto& ind : island.pop.members())
            if (ind.fitness.valid)
                add(ind);

    // Keep the non-dominated subset. Equal objective vectors under
    // distinct keys are all kept — distinct edit lists tied on the
    // front are exactly what the front should report. O(n^2) over
    // archive + populations, fine at these scales.
    std::vector<std::size_t> keep;
    for (std::size_t i = 0; i < pool.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < pool.size() && !dominated; ++j)
            dominated = j != i && dominates(pool[j].fitness,
                                            pool[i].fitness,
                                            params_.objectives);
        if (!dominated)
            keep.push_back(i);
    }
    std::sort(keep.begin(), keep.end(),
              [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
    paretoArchive_.clear();
    paretoArchive_.reserve(keep.size());
    for (const std::size_t i : keep)
        paretoArchive_.push_back(std::move(pool[i]));
}

void
EvolutionEngine::saveSearchCheckpoint(const std::vector<Island>& islands,
                                      const SearchResult& result,
                                      std::uint32_t lastGen,
                                      bool finished) const
{
    CheckpointState st;
    st.generation = lastGen;
    st.finished = finished;
    st.baselineMs = result.baselineMs;
    st.best = result.best;
    st.history = result.history;
    st.islands.reserve(islands.size());
    for (const auto& island : islands) {
        CheckpointIsland ci;
        ci.rngState = island.rng.state();
        ci.bestMs = island.bestMs;
        ci.members = island.pop.members();
        ci.rates = island.rates;
        ci.candidateRates = island.candidateRates;
        ci.ratePending = island.ratePending;
        ci.rateLastBest = island.rateLastBest;
        st.islands.push_back(std::move(ci));
    }
    st.quarantine.assign(quarantine_.begin(), quarantine_.end());
    std::sort(st.quarantine.begin(), st.quarantine.end());
    st.paretoFront = paretoArchive_;
    std::string error;
    if (!saveCheckpoint(params_.checkpointPath, checkpointScope_, st,
                        &error))
        warn("checkpoint save to '%s' failed (%s); continuing without "
             "durability",
             params_.checkpointPath.c_str(), error.c_str());
}

SearchResult
EvolutionEngine::run(const GenerationCallback& onGeneration)
{
    SearchResult result;
    stopRequested_.store(false, std::memory_order_relaxed);
    quarantine_.clear();
    paretoArchive_.clear();

    const auto baselineCv = compileVariant(base_, {});
    if (!baselineCv.ok)
        GEVO_FATAL("baseline program fails its own tests: %s",
                   baselineCv.failReason.c_str());
    const auto baseline = fitness_.evaluate(baselineCv);
    if (!baseline.valid)
        GEVO_FATAL("baseline program fails its own tests: %s",
                   baseline.failReason.c_str());

    // Persistence is scoped to (compiled baseline content, fitness
    // description): level-0 keys are pure edit-list bytes, identical
    // across workloads, so an unscoped file from another workload (or
    // the same one at another dataset scale/device — the fitness name
    // carries those) would serve wrong fitness values with no error.
    const bool persist = params_.useCache && !params_.cachePath.empty();
    if (persist) {
        cacheScope_ = VariantCache::hashKey(
            baselineCv.programs.contentKey() + '\n' + fitness_.name());
        if (cacheScope_ == 0) // 0 means "don't check" to the loader
            cacheScope_ = 1;
        result.cacheSummary.preloaded = loadPersistentCaches();
    }
    result.baselineMs = baseline.ms();
    result.best.fitness = baseline;
    result.best.evaluated = true;
    if (params_.useCache) {
        // Crossover routinely produces empty edit lists, and edits often
        // cancel back to the baseline program; serve both from the
        // baseline evaluation instead of re-simulating.
        cache_.insert(VariantCache::keyOf({}), baseline);
        programCache_.insert(baselineCv.programs.contentKey(), baseline);
    }

    const auto backend = makeBackend(base_, fitness_, params_);

    const std::uint32_t numIslands = topology_->islandCount();
    std::vector<Island> islands;
    islands.reserve(numIslands);

    // ---- checkpoint restore (or cold start) ----
    const bool checkpointing = !params_.checkpointPath.empty();
    if (checkpointing)
        checkpointScope_ = checkpointScopeOf(baselineCv, fitness_, params_);
    std::uint32_t startGen = 1;
    bool restored = false;
    if (checkpointing && params_.resume) {
        const auto load =
            loadCheckpoint(params_.checkpointPath, checkpointScope_);
        using Status = CheckpointLoadResult::Status;
        switch (load.status) {
        case Status::Missing:
            inform("no checkpoint at '%s': starting fresh",
                   params_.checkpointPath.c_str());
            break;
        case Status::BadHeader:
        case Status::VersionMismatch:
        case Status::ScopeMismatch:
        case Status::Corrupt:
            warn("ignoring checkpoint '%s' (%s): starting fresh",
                 params_.checkpointPath.c_str(), load.message.c_str());
            break;
        case Status::Ok: {
            const CheckpointState& st = load.state;
            // The scope fingerprint pins the island layout, so a
            // mismatch here means the file lied about its scope.
            GEVO_ASSERT(st.islands.size() == numIslands,
                        "checkpoint island count mismatch");
            for (std::uint32_t i = 0; i < numIslands; ++i) {
                islands.push_back(
                    {Population(base_, params_), Rng(0),
                     st.islands[i].bestMs});
                islands.back().pop.members() = st.islands[i].members;
                islands.back().rng.setState(st.islands[i].rngState);
                islands.back().pop.setSampler(samplerFor(i));
                islands.back().rates = st.islands[i].rates;
                islands.back().candidateRates =
                    st.islands[i].candidateRates;
                islands.back().ratePending = st.islands[i].ratePending;
                islands.back().rateLastBest = st.islands[i].rateLastBest;
                if (params_.adaptRates)
                    islands.back().pop.rates() =
                        islands.back().ratePending
                            ? islands.back().candidateRates
                            : islands.back().rates;
            }
            result.history = st.history;
            result.best = st.best;
            paretoArchive_ = st.paretoFront;
            quarantine_.insert(st.quarantine.begin(),
                               st.quarantine.end());
            startGen = st.generation + 1;
            restored = true;
            inform("resumed '%s' after generation %u (%s)",
                   params_.checkpointPath.c_str(), st.generation,
                   st.finished ? "a finished run" : "mid-search");
            break;
        }
        }
    }
    if (!restored) {
        for (std::uint32_t i = 0; i < numIslands; ++i) {
            islands.push_back({Population(base_, params_),
                               Rng(islandSeed(params_.seed, i)),
                               baseline.ms()});
            islands.back().pop.setSampler(samplerFor(i));
            islands.back().rates = params_.sampler;
            islands.back().candidateRates = params_.sampler;
            islands.back().pop.seed(islands.back().rng);
        }
    }

    std::uint32_t lastGen = startGen - 1;
    for (std::uint32_t gen = startGen; gen <= params_.generations; ++gen) {
        GenerationLog log;
        log.generation = gen;
        evaluateIslands(*backend, &islands, &log);

        double sum = 0.0;
        for (auto& island : islands) {
            island.pop.sortByFitness();
            // Scan every member for the scalar best, not just the
            // sorted front: in Pareto mode the head of the list is
            // rank/crowding ordered, not the time minimum. The strict
            // better() comparator makes this identical to the
            // historical front-only check in Scalar mode, where the
            // front IS the minimum.
            for (const auto& ind : island.pop.members()) {
                if (!ind.fitness.valid)
                    continue;
                sum += ind.fitness.ms();
                ++log.validCount;
                island.bestMs = std::min(island.bestMs, ind.fitness.ms());
                if (FitnessResult::better(ind.fitness,
                                          result.best.fitness))
                    result.best = ind;
            }
            log.islandBestMs.push_back(island.bestMs);
        }
        if (params_.selection == SelectionKind::Pareto) {
            updateParetoArchive(islands);
            log.paretoFrontSize = paretoArchive_.size();
        }
        // Diagnosis feedback for the next breed: re-profile each island's
        // elite for the guided samplers, then run the per-island
        // self-adaptation step (which records the next generation's rates
        // in this log entry). Both happen before migration/breed and draw
        // only from per-island streams, so resumed runs replay them
        // bit-identically.
        profileElites(islands);
        adaptRatesStep(&islands, &log);
        log.meanMs = log.validCount
                         ? sum / static_cast<double>(log.validCount)
                         : 0.0;
        log.bestMs = result.best.fitness.ms();
        log.bestEdits = result.best.edits;
        result.history.push_back(log);
        if (onGeneration)
            onGeneration(result.history.back(), result);

        // ---- migration (simultaneous: all outboxes snapshot first) ----
        const auto edges = topology_->migrationsAfter(gen);
        if (!edges.empty() && params_.migrationCount > 0) {
            std::vector<std::vector<Individual>> outbox(islands.size());
            for (const auto& e : edges) {
                GEVO_ASSERT(e.from < islands.size() && e.to < islands.size(),
                            "migration edge out of range");
                if (outbox[e.from].empty())
                    outbox[e.from] =
                        islands[e.from].pop.emigrants(params_.migrationCount);
            }
            for (const auto& e : edges)
                islands[e.to].pop.receiveMigrants(outbox[e.from]);
        }

        // ---- breed the next generation on every island ----
        for (auto& island : islands)
            island.pop.breedNext(island.rng);
        lastGen = gen;

        // A stop request (SIGINT/SIGTERM) finishes the in-flight
        // generation — evaluate, log, migrate, breed, exactly as above —
        // then leaves the loop so the final saves below capture a state
        // any later --resume continues bit-identically.
        if (stopRequested_.load(std::memory_order_relaxed)) {
            result.interrupted = true;
            break;
        }

        // Periodic persistence: a long campaign killed mid-run still
        // warm-starts from its last interval. The save runs between
        // evaluation dispatches (no worker is touching the caches), but
        // snapshot() tolerates concurrent inserts regardless. The
        // checkpoint is written after breedNext on purpose: populations
        // are already bred for gen + 1 and the RNG streams sit exactly
        // where the next generation's draws begin.
        if (gen != params_.generations) {
            if (persist && params_.cacheSaveInterval > 0 &&
                gen % params_.cacheSaveInterval == 0)
                savePersistentCaches();
            if (checkpointing && params_.checkpointInterval > 0 &&
                gen % params_.checkpointInterval == 0)
                saveSearchCheckpoint(islands, result, gen, false);
        }
    }
    if (persist)
        savePersistentCaches();
    if (checkpointing)
        saveSearchCheckpoint(islands, result, lastGen,
                             !result.interrupted &&
                                 lastGen >= params_.generations);
    for (const auto& log : result.history) {
        result.cacheSummary.served += log.cacheHits;
        result.cacheSummary.evaluated += log.cacheMisses;
        result.evalFailures += log.workerCrashes + log.workerTimeouts +
                               log.protocolErrors;
    }
    result.quarantined = quarantine_.size();
    result.paretoFront = paretoArchive_;
    const auto cs = cache_.stats();
    const auto ps = programCache_.stats();
    result.cacheSummary.entries = cs.entries + ps.entries;
    result.cacheSummary.evictions = cs.evictions + ps.evictions;
    return result;
}

} // namespace gevo::core
