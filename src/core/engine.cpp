#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <unordered_map>

#include "mutation/patch.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace gevo::core {

EvolutionEngine::EvolutionEngine(const ir::Module& base,
                                 const FitnessFunction& fitness,
                                 EvolutionParams params)
    : base_(base), fitness_(fitness), params_(params)
{
    GEVO_ASSERT(params_.populationSize >= 2, "population too small");
    GEVO_ASSERT(params_.elitism < params_.populationSize,
                "elitism exceeds population");
}

Individual
EvolutionEngine::makeSeedIndividual(Rng& rng)
{
    // GEVO seeds the population with single-mutation variants of the
    // original program.
    Individual ind;
    const auto edit = mut::sampleEdit(base_, rng, params_.sampler);
    if (edit)
        ind.edits.push_back(*edit);
    return ind;
}

void
EvolutionEngine::evaluatePopulation(ThreadPool& pool,
                                    std::vector<Individual>* pop,
                                    GenerationLog* log)
{
    if (!params_.useCache) {
        // Reference path: literal compile-per-call — every individual is
        // re-patched, re-cleaned, re-verified, re-decoded and re-simulated
        // every generation, with no memo of any kind. Deterministic
        // fitness makes this trajectory-identical to the cached path.
        pool.parallelFor(pop->size(), [&](std::size_t i) {
            Individual& ind = (*pop)[i];
            ind.fitness = evaluateVariant(base_, ind.edits, fitness_);
            ind.evaluated = true;
        });
        log->evaluations += pop->size();
        log->cacheMisses += pop->size();
        return;
    }

    std::vector<Individual*> todo;
    for (auto& ind : *pop) {
        if (!ind.evaluated)
            todo.push_back(&ind);
    }
    log->evaluations += todo.size();

    // Group identical offspring by canonical key; the first occurrence is
    // the group's representative. Iteration order (population order) keeps
    // this deterministic regardless of thread count.
    std::vector<std::string> keys(todo.size());
    std::unordered_map<std::string, std::size_t> firstOf;
    std::vector<std::size_t> owner(todo.size());
    std::vector<std::size_t> reps;
    for (std::size_t i = 0; i < todo.size(); ++i) {
        keys[i] = VariantCache::keyOf(todo[i]->edits);
        const auto [it, inserted] = firstOf.try_emplace(keys[i], i);
        owner[i] = it->second;
        if (inserted)
            reps.push_back(i);
    }

    // Serve representatives from the cross-generation cache.
    std::vector<std::size_t> missing;
    for (const std::size_t rep : reps) {
        FitnessResult cached;
        if (cache_.lookup(keys[rep], &cached)) {
            todo[rep]->fitness = cached;
            todo[rep]->evaluated = true;
        } else {
            missing.push_back(rep);
        }
    }

    // Compile each unique miss once, in parallel. Simulation — the
    // expensive stage — only runs when the compiled program itself is
    // novel: distinct edit lists routinely clean up to identical programs,
    // which the program-content cache collapses. Results go into both
    // cache levels from the worker threads.
    std::atomic<std::size_t> simulations{0};
    std::atomic<std::size_t> rejected{0};
    pool.parallelFor(missing.size(), [&](std::size_t i) {
        const std::size_t rep = missing[i];
        Individual* ind = todo[rep];
        const CompiledVariant cv = compileVariant(base_, ind->edits);
        if (!cv.ok) {
            ind->fitness = FitnessResult::fail(cv.failReason);
            rejected.fetch_add(1, std::memory_order_relaxed);
        } else {
            const std::string programKey = cv.programs.contentKey();
            FitnessResult cached;
            if (programCache_.lookup(programKey, &cached)) {
                ind->fitness = cached;
            } else {
                ind->fitness = fitness_.evaluate(cv);
                simulations.fetch_add(1, std::memory_order_relaxed);
                programCache_.insert(programKey, ind->fitness);
            }
        }
        ind->evaluated = true;
        cache_.insert(keys[rep], ind->fitness);
    });

    // Fan representative results out to within-generation duplicates.
    for (std::size_t i = 0; i < todo.size(); ++i) {
        if (!todo[i]->evaluated) {
            todo[i]->fitness = todo[owner[i]]->fitness;
            todo[i]->evaluated = true;
        }
    }
    // A miss is a request that cost real pipeline work: a simulation, or
    // a compile the verifier rejected. Everything else was served from a
    // memo/cache level. (Under concurrency two workers can race to
    // first-simulate the same novel program; the values are deterministic
    // either way, only these counters can wobble by the overlap.)
    const std::size_t worked =
        simulations.load(std::memory_order_relaxed) +
        rejected.load(std::memory_order_relaxed);
    log->cacheMisses += worked;
    log->cacheHits += todo.size() - worked;
}

const Individual&
EvolutionEngine::tournament(const std::vector<Individual>& pop,
                            Rng& rng) const
{
    const Individual* best = nullptr;
    for (std::uint32_t i = 0; i < params_.tournamentSize; ++i) {
        const Individual& c = pop[rng.below(pop.size())];
        if (best == nullptr || c.fitness.ms < best->fitness.ms)
            best = &c;
    }
    return *best;
}

void
EvolutionEngine::mutate(Individual* ind, Rng& rng)
{
    if (!ind->edits.empty() && !rng.chance(params_.mutationAppendProb)) {
        ind->edits.erase(ind->edits.begin() +
                         static_cast<std::ptrdiff_t>(
                             rng.below(ind->edits.size())));
        ind->evaluated = false;
        return;
    }
    // Sample against the patched variant so new edits can build on
    // previously inserted instructions.
    const ir::Module patched = mut::applyPatch(base_, ind->edits);
    const auto edit = mut::sampleEdit(patched, rng, params_.sampler);
    if (edit) {
        ind->edits.push_back(*edit);
        ind->evaluated = false;
    }
}

SearchResult
EvolutionEngine::run(const GenerationCallback& onGeneration)
{
    Rng rng(params_.seed);
    SearchResult result;
    ThreadPool pool(params_.threads);

    const auto baselineCv = compileVariant(base_, {});
    if (!baselineCv.ok)
        GEVO_FATAL("baseline program fails its own tests: %s",
                   baselineCv.failReason.c_str());
    const auto baseline = fitness_.evaluate(baselineCv);
    if (!baseline.valid)
        GEVO_FATAL("baseline program fails its own tests: %s",
                   baseline.failReason.c_str());
    result.baselineMs = baseline.ms;
    result.best.fitness = baseline;
    result.best.evaluated = true;
    if (params_.useCache) {
        // Crossover routinely produces empty edit lists, and edits often
        // cancel back to the baseline program; serve both from the
        // baseline evaluation instead of re-simulating.
        cache_.insert(VariantCache::keyOf({}), baseline);
        programCache_.insert(baselineCv.programs.contentKey(), baseline);
    }

    std::vector<Individual> pop;
    pop.reserve(params_.populationSize);
    for (std::uint32_t i = 0; i < params_.populationSize; ++i)
        pop.push_back(makeSeedIndividual(rng));

    for (std::uint32_t gen = 1; gen <= params_.generations; ++gen) {
        GenerationLog log;
        log.generation = gen;
        evaluatePopulation(pool, &pop, &log);

        // Sort index proxies, not Individuals: comparing doubles is cheap,
        // but std::sort on the structs themselves copies whole edit
        // vectors and fail-reason strings on every swap. Apply the
        // permutation afterwards so each Individual moves exactly once.
        std::vector<std::uint32_t> order(pop.size());
        std::iota(order.begin(), order.end(), 0u);
        std::stable_sort(order.begin(), order.end(),
                         [&pop](std::uint32_t a, std::uint32_t b) {
                             return pop[a].fitness.ms < pop[b].fitness.ms;
                         });
        std::vector<Individual> sorted;
        sorted.reserve(pop.size());
        for (const std::uint32_t i : order)
            sorted.push_back(std::move(pop[i]));
        pop = std::move(sorted);

        double sum = 0.0;
        for (const auto& ind : pop) {
            if (ind.fitness.valid) {
                sum += ind.fitness.ms;
                ++log.validCount;
            }
        }
        log.meanMs = log.validCount
                         ? sum / static_cast<double>(log.validCount)
                         : 0.0;
        if (pop.front().fitness.valid &&
            pop.front().fitness.ms < result.best.fitness.ms) {
            result.best = pop.front();
        }
        log.bestMs = result.best.fitness.ms;
        log.bestEdits = result.best.edits;
        result.history.push_back(log);
        if (onGeneration)
            onGeneration(result.history.back(), result);

        // ---- breed the next generation ----
        std::vector<Individual> next;
        next.reserve(params_.populationSize);
        for (std::uint32_t e = 0;
             e < params_.elitism && e < pop.size(); ++e)
            next.push_back(pop[e]);

        while (next.size() < params_.populationSize) {
            const Individual& a = tournament(pop, rng);
            const Individual& b = tournament(pop, rng);
            Individual child;
            if (rng.chance(params_.crossoverProb)) {
                auto [c1, c2] = mut::crossoverEdits(a.edits, b.edits, rng);
                child.edits = std::move(c1);
                if (next.size() + 1 < params_.populationSize) {
                    Individual sibling;
                    sibling.edits = std::move(c2);
                    if (rng.chance(params_.mutationProb))
                        mutate(&sibling, rng);
                    next.push_back(std::move(sibling));
                }
            } else {
                child = a;
            }
            if (rng.chance(params_.mutationProb))
                mutate(&child, rng);
            next.push_back(std::move(child));
        }
        pop = std::move(next);
    }
    for (const auto& log : result.history) {
        result.cacheSummary.served += log.cacheHits;
        result.cacheSummary.evaluated += log.cacheMisses;
    }
    result.cacheSummary.entries =
        cache_.stats().entries + programCache_.stats().entries;
    return result;
}

} // namespace gevo::core
