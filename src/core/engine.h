/// \file
/// The GEVO evolutionary search orchestrator.
///
/// Runs N islands (core/population.h) under a search topology
/// (core/topology.h): per-island RNG streams, periodic migration, and a
/// shared two-level variant cache. Fitness evaluations from every island
/// are batched into one EvaluationBackend dispatch per generation
/// (core/eval_backend.h — in-process thread pool or crash-isolated
/// worker processes), so the backend sees the whole generation's work at
/// once regardless of island count.
///
/// islands = 1 is the paper's Sec III-E configuration (population 256,
/// elitism 4, crossover 0.8, mutation 0.3) and reproduces the pre-island
/// engine bit-for-bit: island 0's RNG stream is seeded with the search
/// seed directly and every operator draws in the same order, so (seed,
/// base module, fitness) fully determines the trajectory — which is what
/// lets the Figure 8 discovery-sequence analysis recapitulate a run.

#ifndef GEVO_CORE_ENGINE_H
#define GEVO_CORE_ENGINE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/fitness.h"
#include "core/params.h"
#include "core/population.h"
#include "core/topology.h"
#include "core/variant_cache.h"
#include "support/rng.h"

namespace gevo::core {

class EvaluationBackend;

/// Per-generation record (drives Figures 6 and 8). With islands > 1 the
/// scalar fields aggregate across islands (bestMs/bestEdits are global,
/// meanMs/validCount/evaluations are summed over all islands).
struct GenerationLog {
    std::uint32_t generation = 0;
    double bestMs = 0.0;     ///< Best (lowest) valid fitness so far.
    double meanMs = 0.0;     ///< Mean over valid individuals this gen.
    std::size_t validCount = 0;
    std::size_t evaluations = 0; ///< Fitness requests this generation.
    /// Requests served from a memo/cache level (within-generation
    /// duplicates, edit-list hits, compiled-program hits, quarantine
    /// serves) with no simulation and no rejected compile. Zero when the
    /// cache is off, except for quarantine serves — those exist on the
    /// reference path too.
    std::size_t cacheHits = 0;
    /// Requests that cost real pipeline work this generation: simulated,
    /// or compiled and rejected by the verifier.
    std::size_t cacheMisses = 0;
    std::vector<mut::Edit> bestEdits; ///< Edit list of the run best.
    /// Per-island best-so-far fitness (one entry per island). Island 0 of
    /// a migration-free run evolves exactly like a single-island search
    /// with the same seed.
    std::vector<double> islandBestMs;
    /// Per-island operator rates that will breed the NEXT generation
    /// (one entry per island when params.adaptRates is on, empty
    /// otherwise) — the ESCH-style self-adaptation audit trail.
    std::vector<mut::SamplerConfig> islandRates;

    // ---- robustness accounting (core/eval_backend.h) ----
    /// Evaluations whose worker died (segfault/abort/OOM) this generation.
    std::size_t workerCrashes = 0;
    /// Evaluations the wall-clock watchdog killed this generation.
    std::size_t workerTimeouts = 0;
    /// Evaluations whose worker returned an undecodable response.
    std::size_t protocolErrors = 0;
    /// Requests served from the quarantine set this generation: genotypes
    /// that previously took a worker down are scored as the deterministic
    /// failure penalty without being dispatched again. Counted inside
    /// cacheHits (they are served from a memo level), broken out here.
    std::size_t quarantineHits = 0;

    /// Size of the cross-generation Pareto archive after this
    /// generation (always 0 in Scalar mode — the field only reaches
    /// --dump-history output under --select=pareto).
    std::size_t paretoFrontSize = 0;
};

/// Whole-run cache accounting, aggregated from the GenerationLogs (the
/// VariantCache's own lookup counters see only a subset of traffic —
/// duplicate fan-outs and program-level hits never call lookup()).
struct CacheSummary {
    std::size_t served = 0;    ///< Requests served from memo/cache.
    std::size_t evaluated = 0; ///< Requests that cost pipeline work.
    std::size_t entries = 0;   ///< Entries across both cache levels.
    std::size_t evictions = 0; ///< LRU evictions across both levels.
    /// Entries loaded from EvolutionParams::cachePath before generation 1
    /// (0 on a cold start or when persistence is off).
    std::size_t preloaded = 0;
};

/// Result of a full search.
struct SearchResult {
    double baselineMs = 0.0;  ///< Fitness of the unmodified program.
    Individual best;          ///< Best individual over the whole run.
    std::vector<GenerationLog> history;
    CacheSummary cacheSummary;
    /// Evaluation failures over the whole run (worker crashes + watchdog
    /// timeouts + protocol errors, summed from the history).
    std::size_t evalFailures = 0;
    /// Genotypes in the quarantine set when the run ended.
    std::size_t quarantined = 0;
    /// The run stopped early via requestStop() (SIGINT/SIGTERM): history
    /// covers only the completed generations, and the final checkpoint /
    /// cache saves have already been written.
    bool interrupted = false;
    /// Non-dominated archive over the whole run (Pareto selection only;
    /// empty in Scalar mode). Deterministically ordered by canonical
    /// edit-list key.
    std::vector<Individual> paretoFront;

    /// Final speedup (baseline / best), 1.0 when nothing improved.
    double speedup() const
    {
        return best.fitness.valid && best.fitness.ms() > 0.0
                   ? baselineMs / best.fitness.ms()
                   : 1.0;
    }
};

/// Evolutionary search driver: owns the islands, the evaluation pipeline
/// and the caches; delegates population structure to a SearchTopology.
class EvolutionEngine {
  public:
    /// Observer invoked after each generation (progress reporting).
    using GenerationCallback =
        std::function<void(const GenerationLog&, const SearchResult&)>;

    /// \p base must evaluate as valid under \p fitness (fatal otherwise —
    /// a broken baseline means the test suite itself is wrong). When
    /// \p topology is null, one is derived from \p params (panmictic for
    /// islands <= 1, ring otherwise).
    EvolutionEngine(const ir::Module& base, const FitnessFunction& fitness,
                    EvolutionParams params,
                    std::unique_ptr<SearchTopology> topology = nullptr);

    /// Run the configured number of generations.
    SearchResult run(const GenerationCallback& onGeneration = {});

    /// Ask a running search to stop after the in-flight generation
    /// completes (breed, checkpoint and cache saves included). Safe to
    /// call from a signal handler (a lock-free atomic store) or another
    /// thread; the result comes back with `interrupted = true`.
    void
    requestStop()
    {
        stopRequested_.store(true, std::memory_order_relaxed);
    }

  private:
    /// One island: a population plus its private RNG stream and its
    /// self-adaptive operator-rate state (meaningful when
    /// params.adaptRates; inert defaults otherwise).
    struct Island {
        Population pop;
        Rng rng;
        double bestMs;
        /// Accepted operator rates (the 1+1-ES incumbent).
        mut::SamplerConfig rates{};
        /// Perturbed rates that bred the generation now being evaluated.
        mut::SamplerConfig candidateRates{};
        /// candidateRates awaits its accept/revert verdict.
        bool ratePending = false;
        /// Island best at the moment candidateRates was proposed; the
        /// verdict compares against this.
        double rateLastBest = 0.0;
    };

    /// The sampler driving island \p i's populations.
    const mut::MutationSampler* samplerFor(std::uint32_t i) const;

    /// Re-profile island elites and feed the heat to the guided samplers
    /// (no-op unless params.samplerKind == Guided).
    void profileElites(const std::vector<Island>& islands);

    /// One self-adaptation step per island (ESCH-style 1+1 rule): judge
    /// the pending candidate against the island best, adopt or revert,
    /// propose the next candidate from the island's own RNG stream, and
    /// record the rates that will breed the next generation in \p log.
    void adaptRatesStep(std::vector<Island>* islands, GenerationLog* log);

    /// Evaluate every unevaluated individual across all islands as one
    /// batched backend dispatch, deduplicated globally and served from
    /// the shared caches and the quarantine set.
    void evaluateIslands(EvaluationBackend& backend,
                         std::vector<Island>* islands, GenerationLog* log);

    /// Fold this generation's valid members into the cross-generation
    /// non-dominated archive (Pareto mode only): dedup by canonical
    /// edit-list key, drop dominated entries, order by key.
    void updateParetoArchive(const std::vector<Island>& islands);

    /// Snapshot the full search state to params_.checkpointPath
    /// (failure warns and continues — durability never fails a search).
    void saveSearchCheckpoint(const std::vector<Island>& islands,
                              const SearchResult& result,
                              std::uint32_t lastGen, bool finished) const;

    /// Load params_.cachePath into both cache levels (cold start on any
    /// failure, with a warning). Returns the number of entries loaded.
    std::size_t loadPersistentCaches();

    /// Snapshot both cache levels to params_.cachePath (atomic rename;
    /// failure warns and continues — persistence never fails a search).
    void savePersistentCaches() const;

    /// Scope fingerprint binding cache files to this search (compiled
    /// baseline content + fitness description — covers app, dataset
    /// scale and device). Computed once per run().
    std::uint64_t cacheScope_ = 0;
    /// Scope fingerprint binding checkpoint files to this search: the
    /// cache scope inputs PLUS every trajectory-relevant parameter (see
    /// core/checkpoint.h). Computed once per run().
    std::uint64_t checkpointScope_ = 0;

    /// Cross-generation Pareto archive (Pareto mode only; checkpointed
    /// and surfaced as SearchResult::paretoFront).
    std::vector<Individual> paretoArchive_;

    const ir::Module& base_;
    const FitnessFunction& fitness_;
    EvolutionParams params_;
    std::unique_ptr<SearchTopology> topology_;
    /// Edit-sampling strategies. Uniform is stateless and shared;
    /// guided samplers are per island (each carries its island elite's
    /// loc-heat profile).
    mut::UniformSampler uniformSampler_;
    std::vector<mut::ProfileGuidedSampler> guidedSamplers_;
    /// Level 1: canonical edit-list key -> fitness (skips even the
    /// compile stage for genotypes seen before).
    VariantCache cache_;
    /// Level 2: compiled-program content key -> fitness. Distinct edit
    /// lists very often clean up to the identical program (dangling edits
    /// skip, DCE strips dead inserts — paper Sec V-A: 1394 edits, 17
    /// matter), so novel genotypes usually need only the cheap compile
    /// stage, not a simulation.
    VariantCache programCache_;
    /// Canonical edit-list keys of genotypes whose evaluation took a
    /// worker down (crash/hang/garbage). Never dispatched again: they are
    /// served the deterministic failure penalty, which keeps the resumed
    /// and the uninterrupted trajectory identical — and keeps a
    /// crash-variant from killing a fresh worker every generation it
    /// reappears. Deliberately NOT a cache entry: the caches hold values
    /// of the deterministic fitness function, and a worker death is a
    /// property of the evaluation machinery, not of the variant's
    /// fitness.
    std::unordered_set<std::string> quarantine_;
    /// Set by requestStop(); polled once per generation.
    std::atomic<bool> stopRequested_{false};
};

} // namespace gevo::core

#endif // GEVO_CORE_ENGINE_H
