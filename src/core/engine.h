/// \file
/// The GEVO evolutionary search engine.
///
/// Generational GA over edit lists with the paper's Sec III-E parameters as
/// defaults: population 256, elitism 4, crossover probability 0.8, mutation
/// probability 0.3 per individual per generation. Fitness evaluations run
/// on a thread pool; every stochastic decision flows from the single seed,
/// so (seed, base module, fitness) fully determines the search trajectory —
/// which is what lets the Figure 8 discovery-sequence analysis recapitulate
/// a run.

#ifndef GEVO_CORE_ENGINE_H
#define GEVO_CORE_ENGINE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "core/fitness.h"
#include "core/variant_cache.h"
#include "mutation/sampler.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace gevo::core {

/// One member of the population: an edit list plus its cached fitness.
struct Individual {
    std::vector<mut::Edit> edits;
    FitnessResult fitness;
    bool evaluated = false;
};

/// Search hyper-parameters (paper defaults).
struct EvolutionParams {
    std::uint32_t populationSize = 256;
    std::uint32_t generations = 300;
    std::uint32_t elitism = 4;
    double crossoverProb = 0.8;
    double mutationProb = 0.3;
    /// Within a mutation event: probability the edit list grows (vs. a
    /// random existing edit being dropped).
    double mutationAppendProb = 0.85;
    std::uint32_t tournamentSize = 2;
    std::uint64_t seed = 1;
    std::uint32_t threads = 0; ///< 0 = hardware concurrency.
    /// true: full evaluation pipeline — per-individual memo, within-
    /// generation dedup, and the two-level content-addressed variant cache
    /// (edit-list key, then compiled-program key).
    /// false: the un-cached compile-per-call reference path — every
    /// individual is patched, cleaned, verified, decoded and simulated
    /// every generation. Fitness is deterministic in the edit list, so the
    /// search trajectory is identical either way; the reference path
    /// exists to benchmark the pipeline against (bench/throughput.cpp).
    bool useCache = true;
    mut::SamplerConfig sampler;
};

/// Per-generation record (drives Figures 6 and 8).
struct GenerationLog {
    std::uint32_t generation = 0;
    double bestMs = 0.0;     ///< Best (lowest) valid fitness so far.
    double meanMs = 0.0;     ///< Mean over valid individuals this gen.
    std::size_t validCount = 0;
    std::size_t evaluations = 0; ///< Fitness requests this generation.
    /// Requests served from a memo/cache level (within-generation
    /// duplicates, edit-list hits, compiled-program hits) with no
    /// simulation and no rejected compile. Zero when the cache is off.
    std::size_t cacheHits = 0;
    /// Requests that cost real pipeline work this generation: simulated,
    /// or compiled and rejected by the verifier.
    std::size_t cacheMisses = 0;
    std::vector<mut::Edit> bestEdits; ///< Edit list of the generation best.
};

/// Whole-run cache accounting, aggregated from the GenerationLogs (the
/// VariantCache's own lookup counters see only a subset of traffic —
/// duplicate fan-outs and program-level hits never call lookup()).
struct CacheSummary {
    std::size_t served = 0;    ///< Requests served from memo/cache.
    std::size_t evaluated = 0; ///< Requests that cost pipeline work.
    std::size_t entries = 0;   ///< Entries across both cache levels.
};

/// Result of a full search.
struct SearchResult {
    double baselineMs = 0.0;  ///< Fitness of the unmodified program.
    Individual best;          ///< Best individual over the whole run.
    std::vector<GenerationLog> history;
    CacheSummary cacheSummary;

    /// Final speedup (baseline / best), 1.0 when nothing improved.
    double speedup() const
    {
        return best.fitness.valid && best.fitness.ms > 0.0
                   ? baselineMs / best.fitness.ms
                   : 1.0;
    }
};

/// Evolutionary search driver.
class EvolutionEngine {
  public:
    /// Observer invoked after each generation (progress reporting).
    using GenerationCallback =
        std::function<void(const GenerationLog&, const SearchResult&)>;

    /// \p base must evaluate as valid under \p fitness (fatal otherwise —
    /// a broken baseline means the test suite itself is wrong).
    EvolutionEngine(const ir::Module& base, const FitnessFunction& fitness,
                    EvolutionParams params);

    /// Run the configured number of generations.
    SearchResult run(const GenerationCallback& onGeneration = {});

  private:
    Individual makeSeedIndividual(Rng& rng);
    void evaluatePopulation(ThreadPool& pool, std::vector<Individual>* pop,
                            GenerationLog* log);
    const Individual& tournament(const std::vector<Individual>& pop,
                                 Rng& rng) const;
    void mutate(Individual* ind, Rng& rng);

    const ir::Module& base_;
    const FitnessFunction& fitness_;
    EvolutionParams params_;
    /// Level 1: canonical edit-list key -> fitness (skips even the
    /// compile stage for genotypes seen before).
    VariantCache cache_;
    /// Level 2: compiled-program content key -> fitness. Distinct edit
    /// lists very often clean up to the identical program (dangling edits
    /// skip, DCE strips dead inserts — paper Sec V-A: 1394 edits, 17
    /// matter), so novel genotypes usually need only the cheap compile
    /// stage, not a simulation.
    VariantCache programCache_;
};

} // namespace gevo::core

#endif // GEVO_CORE_ENGINE_H
