#include "core/eval_backend.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <thread>

#include <poll.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "core/cache_store.h" // crc32 — the pipe frames reuse it.
#include "core/fault_inject.h"
#include "support/bytes.h"
#include "support/io.h"
#include "support/logging.h"
#include "support/strings.h"
#include "support/thread_pool.h"

namespace gevo::core {

std::string_view
evalFailureName(EvalFailure failure)
{
    switch (failure) {
      case EvalFailure::None: return "none";
      case EvalFailure::WorkerCrash: return "crash";
      case EvalFailure::WorkerTimeout: return "timeout";
      case EvalFailure::ProtocolError: return "protocol";
      case EvalFailure::ConnectionLost: return "connection-lost";
      case EvalFailure::HandshakeRejected: return "handshake-rejected";
      case EvalFailure::RpcTimeout: return "rpc-timeout";
    }
    return "?";
}

namespace {

// ---- shared single-task evaluation ----

using StageClock = std::chrono::steady_clock;

std::uint64_t
stageNsSince(StageClock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            StageClock::now() - start)
            .count());
}

} // namespace

/// Both stages run through the caller's precompiled VariantCompiler and
/// record into the process-wide stage timers. (Exported: the farm worker
/// session serves connections with this exact body, so remote results
/// are bit-identical to in-process ones.)
EvalOutcome
evaluateTask(const VariantCompiler& compiler, const FitnessFunction& fitness,
             const std::vector<mut::Edit>& edits, VariantCache* programCache,
             std::string* programKeyOut)
{
    EvalOutcome out;
    const auto compileStart = StageClock::now();
    const CompiledVariant cv = compiler.compile(edits);
    recordCompileNs(stageNsSince(compileStart));
    if (programCache == nullptr) {
        out.result = cv.ok ? scoreVariant(fitness, cv)
                           : FitnessResult::fail(cv.failReason);
        out.simulated = true;
        return out;
    }
    if (!cv.ok) {
        out.result = FitnessResult::fail(cv.failReason);
        out.rejected = true;
        return out;
    }
    const std::string programKey = cv.programs.contentKey();
    FitnessResult cached;
    if (programCache->lookup(programKey, &cached)) {
        out.result = cached;
        return out;
    }
    out.result = scoreVariant(fitness, cv);
    out.simulated = true;
    programCache->insert(programKey, out.result);
    if (programKeyOut != nullptr)
        *programKeyOut = programKey;
    return out;
}

namespace {

// ---- in-process backend ----

class InProcessBackend final : public EvaluationBackend {
  public:
    InProcessBackend(const ir::Module& base, const FitnessFunction& fitness,
                     std::uint32_t threads)
        : compiler_(base), fitness_(fitness), pool_(threads),
          faults_(parseFaultSpecs())
    {
    }

    void
    evaluateBatch(const std::vector<const std::vector<mut::Edit>*>& batch,
                  VariantCache* programCache,
                  std::vector<EvalOutcome>* out) override
    {
        out->assign(batch.size(), EvalOutcome{});
        // Sequence numbers are assigned by batch position, not dispatch
        // order, so the fault schedule is thread-count independent.
        const std::uint64_t seqBase = nextSeq_;
        nextSeq_ += batch.size();
        pool_.parallelFor(batch.size(), [&](std::size_t i) {
            if (const auto fault = faultFor(faults_, seqBase + i)) {
                if (*fault == FaultKind::Crash)
                    faultCrash();
                if (*fault == FaultKind::Hang)
                    faultHang();
                // Garbage and the network kinds have no in-process
                // meaning: there is no pipe or socket to corrupt. Ignored,
                // so one spec can drive every backend.
            }
            (*out)[i] =
                evaluateTask(compiler_, fitness_, *batch[i], programCache,
                             nullptr);
        });
    }

    std::string
    describe() const override
    {
        return strformat("in-process x%zu", pool_.workerCount());
    }

  private:
    VariantCompiler compiler_;
    const FitnessFunction& fitness_;
    ThreadPool pool_;
    std::vector<FaultSpec> faults_;
    std::uint64_t nextSeq_ = 0;
};

// ---- isolated (fork-per-batch) backend ----

/// Response-frame header: u32 magic | u32 payloadLen | u32 crc32(payload).
constexpr std::uint32_t kFrameMagic = 0x52564547u; // "GEVR"
constexpr std::size_t kFrameHeader = 12;
/// Sanity bound on one response payload (fail reasons and program keys
/// are at most tens of KB); anything larger is protocol corruption.
constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;
/// Request task index meaning "exit cleanly".
constexpr std::uint32_t kShutdownTask = 0xffffffffu;
/// Request message: u32 taskIndex | u64 sequence number.
constexpr std::size_t kRequestSize = 12;

class IsolatedBackend final : public EvaluationBackend {
  public:
    IsolatedBackend(const ir::Module& base, const FitnessFunction& fitness,
                    std::size_t workers, std::uint32_t timeoutMs)
        : compiler_(base), fitness_(fitness), workers_(std::max<std::size_t>(
                                                  workers, 1)),
          timeoutMs_(timeoutMs), faults_(parseFaultSpecs())
    {
        GEVO_ASSERT(timeoutMs_ > 0, "isolated watchdog needs a budget");
        // Requests may race a worker's death; that must surface as a
        // write error on the pipe, not a process-killing SIGPIPE.
        std::signal(SIGPIPE, SIG_IGN);
    }

    void
    evaluateBatch(const std::vector<const std::vector<mut::Edit>*>& batch,
                  VariantCache* programCache,
                  std::vector<EvalOutcome>* out) override
    {
        out->assign(batch.size(), EvalOutcome{});
        if (batch.empty())
            return;
        const std::uint64_t seqBase = nextSeq_;
        nextSeq_ += batch.size();

        // Fork the workers up front: they inherit the batch, the base
        // module, the fitness function and a copy-on-write snapshot of
        // the program cache — no serialization, and the parent does not
        // touch the cache until the batch completes, so respawned
        // workers see the identical snapshot.
        std::vector<Worker> ws(std::min(workers_, batch.size()));
        for (auto& w : ws)
            spawn(&w, ws, batch, programCache);

        std::size_t nextTask = 0;
        std::size_t done = 0;
        while (done < batch.size()) {
            dispatchIdle(ws, batch, programCache, &nextTask, &done, seqBase,
                         out);
            awaitResponses(ws, batch, programCache, &done, out);
        }
        for (auto& w : ws)
            shutdownWorker(&w);
    }

    std::string
    describe() const override
    {
        return strformat("isolated x%zu (watchdog %u ms)", workers_,
                         timeoutMs_);
    }

  private:
    // The watchdog must measure wall-clock monotonically: a suspend/
    // resume or an NTP step across a system_clock deadline would fire
    // spurious WorkerTimeouts (and poison the quarantine set).
    using Clock = std::chrono::steady_clock;
    static_assert(Clock::is_steady, "watchdog clock must be monotonic");

    struct Worker {
        pid_t pid = -1;
        int reqFd = -1;  ///< Parent write end.
        int respFd = -1; ///< Parent read end.
        bool busy = false;
        std::uint32_t task = 0;
        Clock::time_point deadline{};
        std::string buf; ///< Partially received response bytes.
    };

    [[noreturn]] void
    workerLoop(int reqFd, int respFd,
               const std::vector<const std::vector<mut::Edit>*>& batch,
               VariantCache* programCache) const
    {
        for (;;) {
            char req[kRequestSize];
            if (!readFull(reqFd, req, sizeof(req)))
                std::_Exit(0); // Parent closed the pipe: shutdown.
            const std::uint32_t task = readLeU32(req);
            const std::uint64_t seq = readLeU64(req + 4);
            if (task == kShutdownTask)
                std::_Exit(0);
            if (task >= batch.size())
                std::_Exit(3); // Corrupt request; parent reaps us.
            if (const auto fault = faultFor(faults_, seq)) {
                switch (*fault) {
                  case FaultKind::Crash:
                    faultCrash();
                  case FaultKind::Hang:
                    faultHang();
                  case FaultKind::Garbage: {
                    static constexpr char junk[] = "these bytes are not a "
                                                   "response frame";
                    writeAll(respFd, junk, sizeof(junk));
                    std::_Exit(0);
                  }
                  case FaultKind::Disconnect:
                  case FaultKind::Delay:
                  case FaultKind::Truncate:
                    break; // Socket-only kinds: no meaning on a pipe.
                }
            }
            std::string programKey;
            const EvalOutcome outcome = evaluateTask(
                compiler_, fitness_, *batch[task], programCache, &programKey);

            std::string payload;
            appendLeU32(&payload, task);
            payload.push_back(outcome.result.valid ? 1 : 0);
            appendLeU32(&payload,
                        static_cast<std::uint32_t>(
                            outcome.result.objectives.size()));
            for (const double v : outcome.result.objectives)
                appendLeU64(&payload, std::bit_cast<std::uint64_t>(v));
            appendLeU32(&payload, static_cast<std::uint32_t>(
                                      outcome.result.failReason.size()));
            payload.append(outcome.result.failReason);
            payload.push_back(outcome.simulated ? 1 : 0);
            payload.push_back(outcome.rejected ? 1 : 0);
            appendLeU32(&payload,
                        static_cast<std::uint32_t>(programKey.size()));
            payload.append(programKey);

            std::string frame;
            appendLeU32(&frame, kFrameMagic);
            appendLeU32(&frame,
                        static_cast<std::uint32_t>(payload.size()));
            appendLeU32(&frame, crc32(payload.data(), payload.size()));
            frame.append(payload);
            if (!writeAll(respFd, frame.data(), frame.size()))
                std::_Exit(4); // Parent went away.
        }
    }

    void
    spawn(Worker* w, const std::vector<Worker>& all,
          const std::vector<const std::vector<mut::Edit>*>& batch,
          VariantCache* programCache) const
    {
        int req[2];
        int resp[2];
        if (::pipe(req) != 0 || ::pipe(resp) != 0)
            GEVO_FATAL("isolated backend: pipe failed: %s",
                       std::strerror(errno));
        const pid_t pid = ::fork();
        if (pid < 0)
            GEVO_FATAL("isolated backend: fork failed: %s",
                       std::strerror(errno));
        if (pid == 0) {
            // Child. Close the parent-side ends — including the other
            // workers' pipes: a sibling holding a crashed worker's
            // response write-end open would mask its EOF from the parent.
            ::close(req[1]);
            ::close(resp[0]);
            for (const auto& other : all) {
                if (other.reqFd >= 0)
                    ::close(other.reqFd);
                if (other.respFd >= 0)
                    ::close(other.respFd);
            }
            workerLoop(req[0], resp[1], batch, programCache);
        }
        ::close(req[0]);
        ::close(resp[1]);
        w->pid = pid;
        w->reqFd = req[1];
        w->respFd = resp[0];
        w->busy = false;
        w->buf.clear();
    }

    /// Close the parent-side pipes and collect the exit status. Safe on a
    /// worker that is already gone.
    void
    reapWorker(Worker* w) const
    {
        if (w->reqFd >= 0)
            ::close(w->reqFd);
        if (w->respFd >= 0)
            ::close(w->respFd);
        w->reqFd = w->respFd = -1;
        if (w->pid > 0) {
            int status = 0;
            while (::waitpid(w->pid, &status, 0) < 0 && errno == EINTR) {
            }
        }
        w->pid = -1;
        w->busy = false;
        w->buf.clear();
    }

    void
    killWorker(Worker* w) const
    {
        if (w->pid > 0)
            ::kill(w->pid, SIGKILL);
        reapWorker(w);
    }

    void
    shutdownWorker(Worker* w) const
    {
        if (w->pid > 0 && w->reqFd >= 0) {
            std::string msg;
            appendLeU32(&msg, kShutdownTask);
            appendLeU64(&msg, 0);
            writeAll(w->reqFd, msg.data(), msg.size()); // Best effort.
        }
        reapWorker(w);
    }

    bool
    dispatch(Worker* w, std::uint32_t task, std::uint64_t seq) const
    {
        std::string msg;
        appendLeU32(&msg, task);
        appendLeU64(&msg, seq);
        if (!writeAll(w->reqFd, msg.data(), msg.size()))
            return false;
        w->busy = true;
        w->task = task;
        w->deadline =
            Clock::now() + std::chrono::milliseconds(timeoutMs_);
        return true;
    }

    /// The deterministic invalid-individual penalty for a failed
    /// evaluation (no pids, no timestamps: the same variant scores the
    /// same penalty on every run).
    EvalOutcome
    failureOutcome(EvalFailure failure) const
    {
        EvalOutcome out;
        out.failure = failure;
        switch (failure) {
          case EvalFailure::WorkerCrash:
            out.result = FitnessResult::fail("evaluation worker crashed");
            break;
          case EvalFailure::WorkerTimeout:
            out.result = FitnessResult::fail(
                strformat("evaluation exceeded the %u ms watchdog",
                          timeoutMs_));
            break;
          case EvalFailure::ProtocolError:
            out.result =
                FitnessResult::fail("evaluation worker protocol error");
            break;
          case EvalFailure::None:
          case EvalFailure::ConnectionLost:
          case EvalFailure::HandshakeRejected:
          case EvalFailure::RpcTimeout:
            GEVO_PANIC("failureOutcome(%d): not an isolated-backend "
                       "failure kind",
                       static_cast<int>(failure));
        }
        return out;
    }

    void
    dispatchIdle(std::vector<Worker>& ws,
                 const std::vector<const std::vector<mut::Edit>*>& batch,
                 VariantCache* programCache, std::size_t* nextTask,
                 std::size_t* done, std::uint64_t seqBase,
                 std::vector<EvalOutcome>* out) const
    {
        for (auto& w : ws) {
            if (w.busy || *nextTask >= batch.size())
                continue;
            const auto task = static_cast<std::uint32_t>(*nextTask);
            const std::uint64_t seq = seqBase + *nextTask;
            if (w.pid < 0)
                spawn(&w, ws, batch, programCache);
            if (!dispatch(&w, task, seq)) {
                // Died while idle; one fresh worker gets a second try. A
                // second failure means forking itself is broken — score
                // the task as a crash so the search still completes.
                reapWorker(&w);
                spawn(&w, ws, batch, programCache);
                if (!dispatch(&w, task, seq)) {
                    reapWorker(&w);
                    (*out)[task] = failureOutcome(EvalFailure::WorkerCrash);
                    ++*done;
                }
            }
            ++*nextTask;
        }
    }

    /// Block until a busy worker responds, dies, or times out; settle
    /// every event observed.
    void
    awaitResponses(std::vector<Worker>& ws,
                   const std::vector<const std::vector<mut::Edit>*>& batch,
                   VariantCache* programCache, std::size_t* done,
                   std::vector<EvalOutcome>* out) const
    {
        std::vector<pollfd> fds;
        std::vector<std::size_t> owner;
        auto earliest = Clock::time_point::max();
        for (std::size_t i = 0; i < ws.size(); ++i) {
            if (!ws[i].busy)
                continue;
            fds.push_back({ws[i].respFd, POLLIN, 0});
            owner.push_back(i);
            earliest = std::min(earliest, ws[i].deadline);
        }
        if (fds.empty())
            return; // Nothing in flight (everything settled at dispatch).

        const auto now = Clock::now();
        const auto budget = std::chrono::duration_cast<
            std::chrono::milliseconds>(earliest - now);
        const int timeout = earliest <= now
                                ? 0
                                : static_cast<int>(std::min<long long>(
                                      budget.count() + 1, 1 << 30));
        const int rc = ::poll(fds.data(),
                              static_cast<nfds_t>(fds.size()), timeout);
        if (rc < 0) {
            if (errno == EINTR)
                return; // E.g. SIGINT while stopping: just re-loop.
            GEVO_PANIC("isolated backend: poll failed: %s",
                       std::strerror(errno));
        }
        for (std::size_t k = 0; k < fds.size(); ++k) {
            if (fds[k].revents & (POLLIN | POLLHUP | POLLERR))
                drainWorker(&ws[owner[k]], programCache, done, out);
        }
        // Watchdog: reap anyone past deadline (workers are respawned
        // lazily at the next dispatch).
        const auto after = Clock::now();
        for (auto& w : ws) {
            if (!w.busy || after < w.deadline)
                continue;
            const std::uint32_t task = w.task;
            killWorker(&w);
            (*out)[task] = failureOutcome(EvalFailure::WorkerTimeout);
            ++*done;
        }
        (void)batch;
    }

    /// Read whatever the worker has written and settle complete frames.
    void
    drainWorker(Worker* w, VariantCache* programCache, std::size_t* done,
                std::vector<EvalOutcome>* out) const
    {
        char tmp[4096];
        const ssize_t r = ::read(w->respFd, tmp, sizeof(tmp));
        if (r < 0) {
            if (errno == EINTR || errno == EAGAIN)
                return;
            // Unreadable pipe: treat like a death.
        }
        if (r <= 0) {
            // EOF: the worker died (segfault, abort, OOM kill, or a
            // garbage-then-exit) with a task still in flight.
            const bool hadTask = w->busy;
            const std::uint32_t task = w->task;
            reapWorker(w);
            if (hadTask) {
                (*out)[task] = failureOutcome(EvalFailure::WorkerCrash);
                ++*done;
            }
            return;
        }
        w->buf.append(tmp, static_cast<std::size_t>(r));

        while (w->busy && w->buf.size() >= kFrameHeader) {
            const std::uint32_t magic = readLeU32(w->buf.data());
            const std::uint32_t len = readLeU32(w->buf.data() + 4);
            const std::uint32_t crc = readLeU32(w->buf.data() + 8);
            if (magic != kFrameMagic || len > kMaxFramePayload) {
                settleProtocolError(w, done, out);
                return;
            }
            if (w->buf.size() - kFrameHeader < len)
                return; // Frame still in flight.
            const char* payload = w->buf.data() + kFrameHeader;
            EvalOutcome outcome;
            std::string programKey;
            std::uint32_t task = 0;
            if (crc32(payload, len) != crc ||
                !parsePayload(payload, len, &task, &outcome, &programKey) ||
                task != w->task) {
                settleProtocolError(w, done, out);
                return;
            }
            // The worker's own program-cache insert died with its address
            // space; replay it against the live cache.
            if (programCache != nullptr && !programKey.empty())
                programCache->insert(programKey, outcome.result);
            (*out)[task] = outcome;
            ++*done;
            w->busy = false;
            w->buf.erase(0, kFrameHeader + len);
        }
        if (!w->busy && !w->buf.empty()) {
            // Bytes with no request in flight: the worker is confused.
            // Nothing to score; just replace it.
            killWorker(w);
        }
    }

    void
    settleProtocolError(Worker* w, std::size_t* done,
                        std::vector<EvalOutcome>* out) const
    {
        const std::uint32_t task = w->task;
        killWorker(w);
        (*out)[task] = failureOutcome(EvalFailure::ProtocolError);
        ++*done;
    }

    static bool
    parsePayload(const char* p, std::size_t size, std::uint32_t* task,
                 EvalOutcome* out, std::string* programKey)
    {
        std::size_t pos = 0;
        auto need = [&](std::size_t n) { return pos + n <= size; };
        if (!need(4 + 1 + 4))
            return false;
        *task = readLeU32(p + pos);
        pos += 4;
        out->result.valid = p[pos] != 0;
        pos += 1;
        const std::uint32_t objCount = readLeU32(p + pos);
        pos += 4;
        if (objCount > 64 || !need(std::size_t{objCount} * 8 + 4))
            return false;
        out->result.objectives.resize(objCount);
        for (auto& v : out->result.objectives) {
            v = std::bit_cast<double>(readLeU64(p + pos));
            pos += 8;
        }
        const std::uint32_t reasonLen = readLeU32(p + pos);
        pos += 4;
        if (!need(reasonLen))
            return false;
        out->result.failReason.assign(p + pos, reasonLen);
        pos += reasonLen;
        if (!need(1 + 1 + 4))
            return false;
        out->simulated = p[pos] != 0;
        pos += 1;
        out->rejected = p[pos] != 0;
        pos += 1;
        const std::uint32_t keyLen = readLeU32(p + pos);
        pos += 4;
        if (!need(keyLen))
            return false;
        programKey->assign(p + pos, keyLen);
        pos += keyLen;
        return pos == size;
    }

    /// Precompiled before any fork: workers inherit the cleaned base and
    /// decoded base programs by process copy-on-write, so the incremental
    /// pipeline costs each worker nothing to set up.
    VariantCompiler compiler_;
    const FitnessFunction& fitness_;
    std::size_t workers_;
    std::uint32_t timeoutMs_;
    std::vector<FaultSpec> faults_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace

std::unique_ptr<EvaluationBackend>
makeBackend(const ir::Module& base, const FitnessFunction& fitness,
            const EvolutionParams& params)
{
    switch (params.backend) {
      case EvalBackendKind::InProcess:
        return std::make_unique<InProcessBackend>(base, fitness,
                                                  params.threads);
      case EvalBackendKind::Isolated: {
        const std::size_t workers =
            params.threads != 0
                ? params.threads
                : std::max(1u, std::thread::hardware_concurrency());
        return std::make_unique<IsolatedBackend>(base, fitness, workers,
                                                 params.evalTimeoutMs);
      }
      case EvalBackendKind::Remote:
        return makeRemoteBackend(base, fitness, params);
    }
    GEVO_PANIC("unknown evaluation backend kind");
}

} // namespace gevo::core
