/// \file
/// The evaluation-backend seam: who executes a generation's batch of
/// fitness evaluations, and what happens when an evaluation takes the
/// evaluating process down with it.
///
/// The engine batches every island's unevaluated individuals into one
/// dispatch per generation (core/engine.h); this interface owns that
/// dispatch. Two implementations:
///
///   InProcessBackend — the thread pool the engine always had, extracted
///   verbatim: every evaluation runs in the engine's own address space.
///   Fastest, and trajectory-identical to the pre-backend engine, but a
///   variant whose simulation segfaults, aborts or hangs kills the whole
///   search (GEVO-scale campaigns are 256 x 300 ~ 77k evaluations of
///   adversarially mutated programs — hours of wall clock riding on every
///   one of them behaving).
///
///   IsolatedBackend — fork-per-batch worker processes on a pipe
///   protocol with a per-evaluation wall-clock watchdog. A variant that
///   crashes, OOMs or hangs its worker is reaped and scored as a
///   deterministic invalid-individual penalty carrying an EvalFailure
///   tag; the engine quarantines the genotype by content key so it is
///   never dispatched again. Workers are forked at batch start, so they
///   inherit the parent's base module, fitness function and (read-only,
///   copy-on-write) program cache with zero serialization.
///
/// Both backends produce identical FitnessResults for every evaluation
/// that completes — fitness is a deterministic function of the edit list
/// — so the search trajectory is backend-independent as long as no fault
/// fires. Only the cache/simulation counters may differ (isolated workers
/// cannot share within-batch program-cache hits across process
/// boundaries).
///
/// Fault injection (testing): the GEVO_FAULT_INJECT environment variable
/// deterministically injects failures by global evaluation sequence
/// number, e.g. "crash@12" (the 13th dispatched evaluation segfaults),
/// "hang@3" (sleeps until the watchdog kills it), "garbage@7" (an
/// isolated worker writes a malformed response frame), with a comma-
/// separated list and a "+" suffix meaning "this one and every later
/// evaluation" ("crash@5+"). Crash and hang apply to both backends (in
/// process they take the host down — that is the demonstration); garbage
/// is isolated-only. The spec is re-read per backend construction and
/// sequence numbers are per-backend, so tests stay independent.

#ifndef GEVO_CORE_EVAL_BACKEND_H
#define GEVO_CORE_EVAL_BACKEND_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fitness.h"
#include "core/params.h"
#include "core/variant_cache.h"
#include "mutation/edit.h"

namespace gevo::core {

/// How an evaluation failed to produce a genuine pipeline result. None
/// means the pipeline ran to completion (the FitnessResult itself may
/// still be invalid — a verifier rejection or wrong output — but that is
/// a property of the variant, not of the evaluation machinery).
enum class EvalFailure : std::uint8_t {
    None = 0,
    WorkerCrash,   ///< The evaluating process died (segfault/abort/OOM).
    WorkerTimeout, ///< The watchdog killed an evaluation over budget.
    ProtocolError, ///< The worker returned an undecodable response.
    // Remote-backend (farm) kinds. GenerationLog counters fold these into
    // the three above (connection loss counts as a crash, an RPC deadline
    // as a timeout, a handshake rejection as a protocol error) so the
    // --dump-history format is backend-independent.
    ConnectionLost,    ///< The transport died mid-evaluation, repeatedly.
    HandshakeRejected, ///< Every redispatch landed on a worker that now
                       ///< rejects the trajectory-scope handshake.
    RpcTimeout,        ///< No reply within the per-evaluation deadline.
};

/// Human-readable failure name ("crash", "timeout", "protocol",
/// "connection-lost", "handshake-rejected", "rpc-timeout").
std::string_view evalFailureName(EvalFailure failure);

/// Outcome of one dispatched evaluation.
struct EvalOutcome {
    FitnessResult result;
    EvalFailure failure = EvalFailure::None;
    /// Cost a fresh simulation (vs. a program-cache hit).
    bool simulated = false;
    /// Compile stage ran and the verifier rejected the variant.
    bool rejected = false;
};

/// Executes one generation's batch of fitness evaluations. Implementations
/// must be deterministic per task: outcome[i] depends only on batch[i]
/// (and the injected fault schedule), never on scheduling.
class EvaluationBackend {
  public:
    virtual ~EvaluationBackend() = default;

    /// Evaluate batch[i] (an edit list against the backend's base module)
    /// into (*out)[i]. \p programCache, when non-null, is the shared
    /// compiled-program-content cache: backends serve repeat programs
    /// from it and insert fresh simulation results into it. Null selects
    /// the compile-per-call reference path (every task compiled and
    /// simulated, no cache lookups).
    virtual void
    evaluateBatch(const std::vector<const std::vector<mut::Edit>*>& batch,
                  VariantCache* programCache,
                  std::vector<EvalOutcome>* out) = 0;

    /// Short description for logs/banners, e.g. "in-process x8".
    virtual std::string describe() const = 0;
};

/// Backend implied by \p params (threads, backend kind, watchdog budget).
/// \p base and \p fitness must outlive the backend.
std::unique_ptr<EvaluationBackend>
makeBackend(const ir::Module& base, const FitnessFunction& fitness,
            const EvolutionParams& params);

/// The fault-tolerant socket client over the farm protocol
/// (`params.workers` = comma-separated "host:port" / "unix:/path" list).
/// Defined in farm/client.cpp; makeBackend routes
/// EvalBackendKind::Remote here.
std::unique_ptr<EvaluationBackend>
makeRemoteBackend(const ir::Module& base, const FitnessFunction& fitness,
                  const EvolutionParams& params);

/// Evaluate one edit list through the two-stage pipeline against a
/// precompiled \p compiler. With a \p programCache this is the cached-path
/// body (compile, serve repeat programs from the cache, simulate + insert
/// otherwise); without one it is the compile-per-call reference path
/// (every task simulated, no cache lookups). \p programKeyOut, when
/// non-null, receives the program content key of a fresh simulation
/// (out-of-process workers ship it back so the caller's live cache learns
/// the result). Shared by every backend and the farm worker session.
EvalOutcome
evaluateTask(const VariantCompiler& compiler, const FitnessFunction& fitness,
             const std::vector<mut::Edit>& edits, VariantCache* programCache,
             std::string* programKeyOut);

} // namespace gevo::core

#endif // GEVO_CORE_EVAL_BACKEND_H
