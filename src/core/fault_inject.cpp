#include "core/fault_inject.h"

#include <csignal>
#include <cstdlib>
#include <string>
#include <string_view>

#include <time.h>

#include "support/logging.h"
#include "support/strings.h"

namespace gevo::core {

std::vector<FaultSpec>
parseFaultSpecs()
{
    std::vector<FaultSpec> specs;
    const char* env = std::getenv("GEVO_FAULT_INJECT");
    if (env == nullptr || *env == '\0')
        return specs;
    for (const auto& part : split(env, ',')) {
        const auto text = trim(part);
        if (text.empty())
            GEVO_FATAL("GEVO_FAULT_INJECT: empty spec in '%s'", env);
        const auto sep = text.find('@');
        if (sep == std::string_view::npos)
            GEVO_FATAL("GEVO_FAULT_INJECT: expected kind@index, got '%s'",
                       std::string(text).c_str());
        const auto kindName = text.substr(0, sep);
        FaultSpec spec;
        if (kindName == "crash") {
            spec.kind = FaultKind::Crash;
        } else if (kindName == "hang") {
            spec.kind = FaultKind::Hang;
        } else if (kindName == "garbage") {
            spec.kind = FaultKind::Garbage;
        } else if (kindName == "disconnect") {
            spec.kind = FaultKind::Disconnect;
        } else if (kindName == "delay") {
            spec.kind = FaultKind::Delay;
        } else if (kindName == "truncate") {
            spec.kind = FaultKind::Truncate;
        } else {
            GEVO_FATAL("GEVO_FAULT_INJECT: unknown kind '%s' (want crash/"
                       "hang/garbage/disconnect/delay/truncate)",
                       std::string(kindName).c_str());
        }
        auto index = text.substr(sep + 1);
        if (!index.empty() && index.back() == '+') {
            spec.fromHere = true;
            index.remove_suffix(1);
        }
        if (index.empty() ||
            index.find_first_not_of("0123456789") != std::string_view::npos)
            GEVO_FATAL("GEVO_FAULT_INJECT: bad index in '%s'",
                       std::string(text).c_str());
        spec.at = std::strtoull(std::string(index).c_str(), nullptr, 10);
        specs.push_back(spec);
    }
    return specs;
}

std::optional<FaultKind>
faultFor(const std::vector<FaultSpec>& specs, std::uint64_t seq)
{
    for (const auto& spec : specs) {
        if (spec.fromHere ? seq >= spec.at : seq == spec.at)
            return spec.kind;
    }
    return std::nullopt;
}

void
faultCrash()
{
    std::raise(SIGSEGV);
    std::_Exit(139); // Not reached unless SIGSEGV is blocked.
}

void
faultHang()
{
    for (;;) {
        struct timespec ts = {1, 0};
        nanosleep(&ts, nullptr);
    }
}

} // namespace gevo::core
