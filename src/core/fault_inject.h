/// \file
/// Deterministic fault injection for the evaluation backends and the
/// farm (GEVO_FAULT_INJECT). Shared by the in-process/isolated backends
/// (core/eval_backend.cpp) and the remote worker session
/// (farm/session.cpp) so one spec can drive every failure path.
///
/// Spec grammar: a comma-separated list of `kind@N` entries, firing when
/// the global evaluation sequence number equals N (or any later number
/// with a `+` suffix: `crash@5+`). Kinds:
///
///   crash      — the evaluating process raises SIGSEGV.
///   hang       — the evaluation sleeps until a watchdog kills it.
///   garbage    — an isolated/farm worker writes a malformed frame.
///   disconnect — a farm worker closes the connection instead of
///                replying (network-layer death, no process exit code).
///   delay      — a farm worker replies, but only after sleeping past
///                the client's per-evaluation deadline.
///   truncate   — a farm worker sends a partial frame, then closes
///                (mid-frame peer loss).
///
/// The network kinds are meaningless to the in-process and isolated
/// backends and are ignored there, so a single spec can drive a test
/// that compares backends. Malformed specs are fatal user errors — a
/// silently ignored fault spec would make a crash test vacuously green.

#ifndef GEVO_CORE_FAULT_INJECT_H
#define GEVO_CORE_FAULT_INJECT_H

#include <cstdint>
#include <optional>
#include <vector>

namespace gevo::core {

enum class FaultKind : std::uint8_t {
    Crash,
    Hang,
    Garbage,
    Disconnect,
    Delay,
    Truncate,
};

/// One injected fault: fire when the global evaluation sequence number
/// equals `at` (or any later number, with the "+" suffix).
struct FaultSpec {
    FaultKind kind = FaultKind::Crash;
    std::uint64_t at = 0;
    bool fromHere = false;
};

/// Parse GEVO_FAULT_INJECT from the environment. Empty/unset yields an
/// empty schedule; malformed specs are fatal.
std::vector<FaultSpec> parseFaultSpecs();

/// The fault scheduled for evaluation sequence number \p seq, if any.
std::optional<FaultKind> faultFor(const std::vector<FaultSpec>& specs,
                                  std::uint64_t seq);

/// A genuine invalid-access death, not a tidy abort(): the reaping path
/// under test is the one a wild pointer in a hostile mutant would take.
[[noreturn]] void faultCrash();

/// Sleep until something kills us (a watchdog — or nothing, when
/// injected into the in-process backend: hanging the host is the
/// failure mode the isolated/remote backends exist to contain).
[[noreturn]] void faultHang();

} // namespace gevo::core

#endif // GEVO_CORE_FAULT_INJECT_H
