#include "core/fitness.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/verifier.h"
#include "mutation/patch.h"
#include "opt/passes.h"

namespace gevo::core {

namespace {

// Stage-time accumulators (nanoseconds), summed across evaluator threads.
std::atomic<std::uint64_t> gCompileNs{0};
std::atomic<std::uint64_t> gSimulateNs{0};

// -1 = not yet resolved from the environment.
std::atomic<int> gCompileMode{-1};

CompileMode
resolveCompileMode()
{
    const char* env = std::getenv("GEVO_COMPILE_REF");
    const bool ref = env != nullptr && env[0] != '\0' &&
                     !(env[0] == '0' && env[1] == '\0');
    return ref ? CompileMode::Reference : CompileMode::Incremental;
}

} // namespace

CompileMode
compileMode()
{
    int mode = gCompileMode.load(std::memory_order_relaxed);
    if (mode < 0) {
        mode = static_cast<int>(resolveCompileMode());
        gCompileMode.store(mode, std::memory_order_relaxed);
    }
    return static_cast<CompileMode>(mode);
}

void
setCompileMode(CompileMode mode)
{
    gCompileMode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

StageTimes
stageTimes()
{
    StageTimes t;
    t.compileMs =
        gCompileNs.load(std::memory_order_relaxed) / 1e6;
    t.simulateMs =
        gSimulateNs.load(std::memory_order_relaxed) / 1e6;
    return t;
}

void
resetStageTimes()
{
    gCompileNs.store(0, std::memory_order_relaxed);
    gSimulateNs.store(0, std::memory_order_relaxed);
}

void
recordCompileNs(std::uint64_t ns)
{
    gCompileNs.fetch_add(ns, std::memory_order_relaxed);
}

void
recordSimulateNs(std::uint64_t ns)
{
    gSimulateNs.fetch_add(ns, std::memory_order_relaxed);
}

void
ProfileSummary::accumulateLaunch(const sim::LaunchStats& stats)
{
    warpInstrs += stats.warpInstrs;
    issueCycles += stats.issueCycles;
    divergences += stats.divergences;
    sharedConflictWays += stats.sharedConflictWays;
    globalSectors += stats.globalSectors;
    if (locIssues.size() < stats.locIssues.size())
        locIssues.resize(stats.locIssues.size(), 0);
    for (std::size_t loc = 0; loc < stats.locIssues.size(); ++loc)
        locIssues[loc] += stats.locIssues[loc];
}

CompiledVariant
compileVariant(const ir::Module& base, const std::vector<mut::Edit>& edits)
{
    CompiledVariant cv;
    cv.module = mut::applyPatch(base, edits);
    const auto verify = ir::verifyModule(cv.module);
    if (!verify.ok()) {
        cv.failReason = "verify: " + verify.message();
        return cv;
    }
    opt::runCleanupPipeline(cv.module);
    const auto reVerify = ir::verifyModule(cv.module);
    if (!reVerify.ok()) {
        cv.failReason = "post-opt verify: " + reVerify.message();
        return cv;
    }
    cv.programs = sim::ProgramSet::decodeModule(cv.module);
    cv.ok = true;
    return cv;
}

VariantCompiler::VariantCompiler(const ir::Module& base) : base_(base)
{
    if (!ir::verifyModule(base_).ok())
        return; // base is broken; compile() falls back to the oracle.
    cleanedBase_ = base_.clone();
    opt::runCleanupPipeline(cleanedBase_);
    if (!ir::verifyModule(cleanedBase_).ok())
        return;
    basePrograms_ = sim::ProgramSet::decodeModule(cleanedBase_);
    incremental_ = true;
}

CompiledVariant
VariantCompiler::compile(const std::vector<mut::Edit>& edits) const
{
    if (!incremental_ || compileMode() == CompileMode::Reference)
        return compileVariant(base_, edits);

    ir::Module patched = mut::applyPatch(base_, edits);

    // Touched set = functions applyPatch detached: pointer identity
    // against the COW-shared base, no content comparison.
    std::vector<std::size_t> touched;
    for (std::size_t i = 0; i < patched.numFunctions(); ++i) {
        if (patched.functionPtr(i) != base_.functionPtr(i))
            touched.push_back(i);
    }

    CompiledVariant cv;

    // Verify only what changed. The base verified clean at construction
    // and verifyModule carries no module-level checks, so the joined
    // diagnostic (touched functions, index order) is byte-identical to
    // the full-module message.
    ir::VerifyResult verify;
    for (const std::size_t i : touched) {
        auto r = ir::verifyFunction(std::as_const(patched).function(i));
        for (auto& err : r.errors)
            verify.errors.push_back(std::move(err));
    }
    if (!verify.ok()) {
        cv.module = std::move(patched);
        cv.failReason = "verify: " + verify.message();
        return cv;
    }

    // Cleanup + re-verify, per touched function (the pipeline is
    // per-function pure: no uid draws, no loc interning). The touched
    // functions are uniquely owned after applyPatch, so the non-const
    // accessor mutates in place without another copy.
    for (const std::size_t i : touched)
        opt::runCleanupPipeline(patched.function(i));
    ir::VerifyResult reVerify;
    for (const std::size_t i : touched) {
        auto r = ir::verifyFunction(std::as_const(patched).function(i));
        for (auto& err : r.errors)
            reVerify.errors.push_back(std::move(err));
    }
    if (!reVerify.ok()) {
        cv.module = std::move(patched);
        cv.failReason = "post-opt verify: " + reVerify.message();
        return cv;
    }

    // Assemble the variant: share the precompiled base everywhere the
    // patch didn't reach, splice in the touched functions/programs.
    cv.module = cleanedBase_.clone();
    for (const std::size_t i : touched)
        cv.module.setFunction(i, patched.functionPtr(i));
    cv.module.bumpUidCounter(patched.uidCounter());

    std::size_t next = 0;
    for (std::size_t i = 0; i < cv.module.numFunctions(); ++i) {
        const bool isTouched =
            next < touched.size() && touched[next] == i;
        if (isTouched) {
            ++next;
            cv.programs.add(std::make_shared<const sim::Program>(
                sim::Program::decode(std::as_const(cv.module).function(i))));
        } else {
            cv.programs.add(basePrograms_.share(i));
        }
    }
    cv.ok = true;
    return cv;
}

FitnessResult
scoreVariant(const FitnessFunction& fitness, const CompiledVariant& variant)
{
    const auto start = std::chrono::steady_clock::now();
    FitnessResult result = fitness.evaluate(variant);
    recordSimulateNs(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    return result;
}

FitnessResult
evaluateVariant(const ir::Module& base, const std::vector<mut::Edit>& edits,
                const FitnessFunction& fitness)
{
    const CompiledVariant cv = compileVariant(base, edits);
    if (!cv.ok)
        return FitnessResult::fail(cv.failReason);
    return scoreVariant(fitness, cv);
}

} // namespace gevo::core
