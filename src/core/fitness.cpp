#include "core/fitness.h"

#include "ir/verifier.h"
#include "mutation/patch.h"
#include "opt/passes.h"

namespace gevo::core {

CompiledVariant
compileVariant(const ir::Module& base, const std::vector<mut::Edit>& edits)
{
    CompiledVariant cv;
    cv.module = mut::applyPatch(base, edits);
    const auto verify = ir::verifyModule(cv.module);
    if (!verify.ok()) {
        cv.failReason = "verify: " + verify.message();
        return cv;
    }
    opt::runCleanupPipeline(cv.module);
    const auto reVerify = ir::verifyModule(cv.module);
    if (!reVerify.ok()) {
        cv.failReason = "post-opt verify: " + reVerify.message();
        return cv;
    }
    cv.programs = sim::ProgramSet::decodeModule(cv.module);
    cv.ok = true;
    return cv;
}

FitnessResult
evaluateVariant(const ir::Module& base, const std::vector<mut::Edit>& edits,
                const FitnessFunction& fitness)
{
    const CompiledVariant cv = compileVariant(base, edits);
    if (!cv.ok)
        return FitnessResult::fail(cv.failReason);
    return fitness.evaluate(cv);
}

} // namespace gevo::core
