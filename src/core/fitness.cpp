#include "core/fitness.h"

#include "ir/verifier.h"
#include "mutation/patch.h"
#include "opt/passes.h"

namespace gevo::core {

FitnessResult
evaluateVariant(const ir::Module& base, const std::vector<mut::Edit>& edits,
                const FitnessFunction& fitness)
{
    ir::Module variant = mut::applyPatch(base, edits);
    const auto verify = ir::verifyModule(variant);
    if (!verify.ok())
        return FitnessResult::fail("verify: " + verify.message());
    opt::runCleanupPipeline(variant);
    const auto reVerify = ir::verifyModule(variant);
    if (!reVerify.ok())
        return FitnessResult::fail("post-opt verify: " + reVerify.message());
    return fitness.evaluate(variant);
}

} // namespace gevo::core
