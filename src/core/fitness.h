/// \file
/// Fitness abstraction: how a kernel-module variant is scored.
///
/// Paper Sec III-E: "Kernel execution time is the fitness target, averaged
/// across all test cases. Individuals that fail one or more test cases are
/// not part of the calculation." Applications implement FitnessFunction
/// (ADEPT: exact score/position match; SIMCoV: per-value mean/variance
/// tolerance against the fixed-seed ground truth).
///
/// Evaluation is an explicit two-stage pipeline:
///
///   1. compile — patch the base module, run the cleanup pipeline (the
///      NVPTX-codegen stand-in), verify, and decode every kernel into an
///      execution-ready sim::ProgramSet. This happens once per variant.
///   2. score — the FitnessFunction launches the pre-decoded programs over
///      all test cases. This is the only stage that touches device state.
///
/// Splitting the stages lets the evolution engine cache CompiledVariants
/// and fitness results content-addressed by edit list (see variant_cache.h)
/// instead of re-patching/re-verifying/re-decoding per individual.

#ifndef GEVO_CORE_FITNESS_H
#define GEVO_CORE_FITNESS_H

#include <limits>
#include <string>
#include <vector>

#include "ir/function.h"
#include "mutation/edit.h"
#include "sim/device_config.h"
#include "sim/executor.h"
#include "sim/program.h"

namespace gevo::core {

/// Outcome of evaluating one variant: a vector of minimized objective
/// values instead of the historical single scalar. The legacy scalar
/// survives as the derived accessor ms(), which every scalar-mode
/// ordering decision goes through, so single-objective trajectories are
/// unchanged.
struct FitnessResult {
    /// Indices into `objectives` (core/objectives.h names the same
    /// slots as an enum for selection config).
    static constexpr std::size_t kTime = 0;
    static constexpr std::size_t kSectors = 1;
    static constexpr std::size_t kDivergence = 2;

    bool valid = false; ///< Passed every test case.
    /// Structured payload, all minimized: [kTime] = mean simulated
    /// kernel time (the legacy scalar), [kSectors] = 32B global-memory
    /// sectors touched, [kDivergence] = branch-divergence events.
    /// Empty when invalid; a bare pass(ms) carries only the time slot.
    std::vector<double> objectives;
    std::string failReason; ///< Why the variant was rejected.

    /// The legacy scalar: simulated time for valid results, +inf
    /// otherwise. Invalid results sink exactly as the old `ms` field
    /// did, so orderings over ms() reproduce the historical ones.
    double ms() const
    {
        return valid && !objectives.empty()
                   ? objectives[kTime]
                   : std::numeric_limits<double>::infinity();
    }

    /// Objective \p i with the same sink semantics as ms(): +inf when
    /// invalid, 0 when the producer did not record that dimension.
    double objective(std::size_t i) const
    {
        if (!valid)
            return std::numeric_limits<double>::infinity();
        return i < objectives.size() ? objectives[i] : 0.0;
    }

    /// Strict "a is fitter than b" on the primary scalar — THE
    /// comparator for every scalar-mode ordering decision (engine
    /// best-tracking, migrant acceptance, tournament), centralized so
    /// call sites cannot silently drift from one another.
    static bool better(const FitnessResult& a, const FitnessResult& b)
    {
        return a.ms() < b.ms();
    }

    /// Passing result carrying only the time objective.
    static FitnessResult pass(double msValue)
    {
        FitnessResult r;
        r.valid = true;
        r.objectives = {msValue};
        return r;
    }
    /// Passing result with the full objective vector.
    static FitnessResult pass(double msValue, double sectors,
                              double divergences)
    {
        FitnessResult r;
        r.valid = true;
        r.objectives = {msValue, sectors, divergences};
        return r;
    }
    /// Full vector from a launch-stat aggregate.
    static FitnessResult pass(double msValue,
                              const sim::LaunchStats& stats)
    {
        return pass(msValue, static_cast<double>(stats.globalSectors),
                    static_cast<double>(stats.divergences));
    }
    /// Convenience for a failing result.
    static FitnessResult fail(std::string reason)
    {
        FitnessResult r;
        r.failReason = std::move(reason);
        return r;
    }
};

/// Output of the compile stage: a patched, cleaned, verified module with
/// every kernel decoded once. Move-only (owns the module).
struct CompiledVariant {
    bool ok = false;         ///< Compile stage succeeded.
    std::string failReason;  ///< Verifier diagnostic when !ok.
    ir::Module module;       ///< Patched + cleanup-pipeline output.
    sim::ProgramSet programs; ///< Every kernel decoded (empty when !ok).
};

/// Compile stage: apply \p edits to \p base, run the post-mutation cleanup
/// pipeline (constant folding / CFG simplification / DCE), verify, and
/// decode every kernel. Returns !ok with a diagnostic when verification
/// rejects the patched module.
CompiledVariant compileVariant(const ir::Module& base,
                               const std::vector<mut::Edit>& edits);

/// Which compile-stage implementation VariantCompiler::compile uses.
enum class CompileMode {
    Incremental, ///< Touched-function pipeline over COW-shared modules.
    Reference,   ///< Full-module pipeline (the original compileVariant).
};

/// Process-wide compile mode. Defaults to Incremental; setting
/// GEVO_COMPILE_REF=1 (anything but "0"/"") selects Reference — the
/// differential oracle for the incremental path, exactly like
/// GEVO_SIM_REFPATH gates the trace interpreter.
CompileMode compileMode();
/// Override the compile mode (tests; call before spawning evaluators).
void setCompileMode(CompileMode mode);

/// Incremental compile stage bound to one base module.
///
/// Construction runs the full pipeline once on the unedited base (cleanup
/// a COW clone, verify, decode every kernel). compile(edits) then pays
/// only for the functions the edit list actually touched: applyPatch over
/// the COW-shared base detaches just those, so the touched set falls out
/// of a pointer comparison per function; verification, the cleanup
/// pipeline and program decode run on touched functions only, and the
/// result's module/ProgramSet alias the precompiled base for everything
/// else. This is byte-identical to compileVariant because the verifier
/// has no module-level checks (a module diagnostic is the index-ordered
/// concatenation of per-function diagnostics) and the cleanup pipeline
/// and decoder are per-function pure.
///
/// Thread-safe: compile() only reads the immutable base state
/// (shared_ptr refcounts are atomic), so evaluator threads share one
/// compiler.
class VariantCompiler {
  public:
    /// \p base must outlive the compiler. Falls back to the reference
    /// pipeline when the base itself fails verification (tests exercise
    /// that path; searches never do).
    explicit VariantCompiler(const ir::Module& base);

    /// Compile \p edits against the bound base. Honours compileMode().
    CompiledVariant compile(const std::vector<mut::Edit>& edits) const;

    /// The bound base module.
    const ir::Module& base() const { return base_; }

  private:
    const ir::Module& base_;
    bool incremental_ = false;
    ir::Module cleanedBase_;       ///< Base after the cleanup pipeline.
    sim::ProgramSet basePrograms_; ///< cleanedBase_ decoded once.
};

/// Structured diagnosis of one profiled evaluation: the per-loc issue
/// histogram plus the memory-stall and divergence aggregates the simulator
/// already computes. `locIssues` is indexed by interned source-loc id
/// (slot 0 = instructions without a loc) — the same id space the base
/// module's instructions carry, because the COW loc table is shared by
/// every variant, so the guided sampler can map heat straight onto
/// candidate edit sites.
struct ProfileSummary {
    std::vector<std::uint64_t> locIssues; ///< Issue slots per loc id.
    std::uint64_t warpInstrs = 0;         ///< Warp-instructions executed.
    std::uint64_t issueCycles = 0;        ///< Issue slots incl. stalls.
    std::uint64_t divergences = 0;        ///< Branch divergence events.
    std::uint64_t sharedConflictWays = 0; ///< Shared-mem bank conflict ways.
    std::uint64_t globalSectors = 0;      ///< 32B global sectors touched.

    /// Fold another launch's stats into this summary.
    void accumulateLaunch(const sim::LaunchStats& stats);
};

/// Application-supplied scoring of a compiled variant.
///
/// Implementations must be safe to call concurrently from multiple threads
/// (each call creates its own device memory / launch state), and must not
/// re-decode: launch the pre-decoded `variant.programs`.
class FitnessFunction {
  public:
    virtual ~FitnessFunction() = default;

    /// Score a successfully compiled variant. \pre variant.ok.
    virtual FitnessResult evaluate(const CompiledVariant& variant) const = 0;

    /// Score a compiled variant on a specific device model — the
    /// portfolio path (core/portfolio.h loops this over a device set).
    /// Workloads that support it implement evaluate() by delegating
    /// here with their configured device; the default refuses, so a
    /// single-device-only fitness keeps working everywhere except
    /// inside a portfolio.
    virtual FitnessResult evaluateOn(const CompiledVariant& variant,
                                     const sim::DeviceConfig& dev) const
    {
        (void)variant;
        (void)dev;
        return FitnessResult::fail("fitness '" + name() +
                                   "' does not support per-device "
                                   "evaluation");
    }

    /// Re-run one evaluation with per-loc profiling enabled and fill
    /// \p out. Returns false when the workload does not support profiling
    /// (the default) or the variant fails its tests — the caller keeps
    /// whatever profile it had. This is the deliberately separate "cheap
    /// path": the engine profiles only the per-island elite once per
    /// generation, so bulk evaluate() never pays for histogram upkeep.
    virtual bool profileVariant(const CompiledVariant& variant,
                                ProfileSummary* out) const
    {
        (void)variant;
        (void)out;
        return false;
    }

    /// Short description for logs.
    virtual std::string name() const = 0;
};

/// Both pipeline stages in one call: compile \p edits against \p base and
/// score the result. This is THE entry point used by the evolution engine,
/// the analysis algorithms, and the benches, so every consumer sees
/// identical semantics.
FitnessResult evaluateVariant(const ir::Module& base,
                              const std::vector<mut::Edit>& edits,
                              const FitnessFunction& fitness);

/// Score stage shared by every evaluate call site (both evaluation
/// backends and evaluateVariant): runs fitness.evaluate under the
/// simulate stage timer, so the objective vector is produced — and its
/// cost attributed — in exactly one place. \pre variant.ok.
FitnessResult scoreVariant(const FitnessFunction& fitness,
                           const CompiledVariant& variant);

/// Cumulative wall-clock spent in each pipeline stage since the last
/// reset, summed across evaluator threads.
struct StageTimes {
    double compileMs = 0.0;  ///< VariantCompiler::compile / compileVariant.
    double simulateMs = 0.0; ///< FitnessFunction::evaluate.
};

/// Per-stage attribution of evaluation cost. The evaluation backends
/// record around both stages; bench/throughput resets before a search and
/// reads after, so the --json rows can split uncached cost between
/// compile and simulate. Relaxed atomics — totals, not ordering. Caveat:
/// the isolated backend's forked workers accumulate in their own address
/// spaces, so only in-process evaluation (the bench default) is
/// attributed.
StageTimes stageTimes();
void resetStageTimes();
void recordCompileNs(std::uint64_t ns);
void recordSimulateNs(std::uint64_t ns);

} // namespace gevo::core

#endif // GEVO_CORE_FITNESS_H
