/// \file
/// Fitness abstraction: how a kernel-module variant is scored.
///
/// Paper Sec III-E: "Kernel execution time is the fitness target, averaged
/// across all test cases. Individuals that fail one or more test cases are
/// not part of the calculation." Applications implement FitnessFunction
/// (ADEPT: exact score/position match; SIMCoV: per-value mean/variance
/// tolerance against the fixed-seed ground truth).

#ifndef GEVO_CORE_FITNESS_H
#define GEVO_CORE_FITNESS_H

#include <limits>
#include <string>
#include <vector>

#include "ir/function.h"
#include "mutation/edit.h"

namespace gevo::core {

/// Outcome of evaluating one variant.
struct FitnessResult {
    bool valid = false;  ///< Passed every test case.
    double ms = std::numeric_limits<double>::infinity(); ///< Mean simulated
                                                         ///< kernel time.
    std::string failReason; ///< Why the variant was rejected.

    /// Convenience for a passing result.
    static FitnessResult pass(double msValue)
    {
        return {true, msValue, {}};
    }
    /// Convenience for a failing result.
    static FitnessResult fail(std::string reason)
    {
        return {false, std::numeric_limits<double>::infinity(),
                std::move(reason)};
    }
};

/// Application-supplied evaluation of a fully-patched, cleaned module.
///
/// Implementations must be safe to call concurrently from multiple threads
/// (each call creates its own device memory / launch state).
class FitnessFunction {
  public:
    virtual ~FitnessFunction() = default;

    /// Evaluate a structurally valid module variant.
    virtual FitnessResult evaluate(const ir::Module& variant) const = 0;

    /// Short description for logs.
    virtual std::string name() const = 0;
};

/// Apply \p edits to \p base, run the post-mutation cleanup pipeline
/// (constant folding / CFG simplification / DCE — the NVPTX-codegen
/// stand-in), verify, and score. This is THE entry point used by the
/// evolution engine, the analysis algorithms, and the benches, so every
/// consumer sees identical semantics.
FitnessResult evaluateVariant(const ir::Module& base,
                              const std::vector<mut::Edit>& edits,
                              const FitnessFunction& fitness);

} // namespace gevo::core

#endif // GEVO_CORE_FITNESS_H
