#include "core/objectives.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <numeric>

#include "core/fitness.h"
#include "support/logging.h"
#include "support/strings.h"

namespace gevo::core {

namespace {

constexpr Objective kAllObjectives[] = {Objective::Time, Objective::Sectors,
                                        Objective::Divergence};

std::string
lowered(std::string_view text)
{
    std::string out(text);
    for (auto& c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
registeredObjectiveNames()
{
    std::string known;
    for (const auto o : kAllObjectives)
        known += (known.empty() ? "" : ", ") + std::string(objectiveName(o));
    return known;
}

} // namespace

std::string_view
objectiveName(Objective o)
{
    switch (o) {
    case Objective::Time:
        return "cycles";
    case Objective::Sectors:
        return "sectors";
    case Objective::Divergence:
        return "divergence";
    }
    GEVO_FATAL("objectiveName: bad objective %u",
               static_cast<unsigned>(o));
}

Objective
objectiveByName(const std::string& name)
{
    const std::string n = lowered(name);
    if (n == "cycles" || n == "time" || n == "ms")
        return Objective::Time;
    if (n == "sectors" || n == "memory")
        return Objective::Sectors;
    if (n == "divergence" || n == "div")
        return Objective::Divergence;
    GEVO_FATAL("unknown objective '%s' (registered: %s)", name.c_str(),
               registeredObjectiveNames().c_str());
}

std::vector<Objective>
resolveObjectiveList(const std::string& csv)
{
    if (lowered(trim(csv)) == "all")
        return {kAllObjectives,
                kAllObjectives + std::size(kAllObjectives)};
    // split() yields at least one entry even for an empty csv, so the
    // per-entry emptiness check also covers the empty-list case.
    std::vector<Objective> out;
    for (const auto& raw : split(csv, ',')) {
        const auto name = std::string(trim(raw));
        if (name.empty())
            GEVO_FATAL("empty objective name in list '%s' (registered: "
                       "%s)",
                       csv.c_str(), registeredObjectiveNames().c_str());
        const Objective o = objectiveByName(name);
        if (std::find(out.begin(), out.end(), o) != out.end())
            GEVO_FATAL("duplicate objective '%s' in list '%s'",
                       name.c_str(), csv.c_str());
        out.push_back(o);
    }
    return out;
}

std::string
objectiveListName(const std::vector<Objective>& objectives)
{
    std::string out;
    for (const auto o : objectives)
        out += (out.empty() ? "" : ",") + std::string(objectiveName(o));
    return out;
}

bool
dominates(const FitnessResult& a, const FitnessResult& b,
          const std::vector<Objective>& objectives)
{
    if (!a.valid)
        return false;
    if (!b.valid)
        return true;
    bool strictlyBetter = false;
    for (const auto o : objectives) {
        const auto i = static_cast<std::size_t>(o);
        const double va = a.objective(i);
        const double vb = b.objective(i);
        if (va > vb)
            return false;
        if (va < vb)
            strictlyBetter = true;
    }
    return strictlyBetter;
}

std::vector<ParetoScore>
paretoScores(const std::vector<const FitnessResult*>& results,
             const std::vector<std::string>& keys,
             const std::vector<Objective>& objectives)
{
    const std::size_t n = results.size();
    GEVO_ASSERT(keys.size() == n, "paretoScores: keys/results mismatch");
    std::vector<ParetoScore> scores(n);
    if (n == 0)
        return scores;

    // Fast non-dominated sort: O(n^2) domination counting, which is
    // plenty for population-sized pools.
    std::vector<std::uint32_t> dominatedBy(n, 0);
    std::vector<std::vector<std::uint32_t>> dominatees(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = i + 1; j < n; ++j) {
            if (dominates(*results[i], *results[j], objectives)) {
                dominatees[i].push_back(j);
                ++dominatedBy[j];
            } else if (dominates(*results[j], *results[i], objectives)) {
                dominatees[j].push_back(i);
                ++dominatedBy[i];
            }
        }
    }
    std::vector<std::uint32_t> front;
    for (std::uint32_t i = 0; i < n; ++i)
        if (dominatedBy[i] == 0)
            front.push_back(i);
    std::uint32_t rank = 0;
    std::vector<std::vector<std::uint32_t>> fronts;
    while (!front.empty()) {
        std::vector<std::uint32_t> next;
        for (const auto i : front) {
            scores[i].rank = rank;
            for (const auto j : dominatees[i])
                if (--dominatedBy[j] == 0)
                    next.push_back(j);
        }
        fronts.push_back(std::move(front));
        front = std::move(next);
        ++rank;
    }

    // Crowding distance, per front. The per-objective sweep orders by
    // (value, canonical key): equal objective values would otherwise
    // leave neighbour assignment — and with it the crowding sum —
    // dependent on input order.
    const double inf = std::numeric_limits<double>::infinity();
    for (const auto& members : fronts) {
        if (members.size() <= 2) {
            for (const auto i : members)
                scores[i].crowding = inf;
            continue;
        }
        for (const auto o : objectives) {
            const auto dim = static_cast<std::size_t>(o);
            std::vector<std::uint32_t> order = members;
            std::sort(order.begin(), order.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                          const double va = results[a]->objective(dim);
                          const double vb = results[b]->objective(dim);
                          if (va != vb)
                              return va < vb;
                          return keys[a] < keys[b];
                      });
            const double lo = results[order.front()]->objective(dim);
            const double hi = results[order.back()]->objective(dim);
            scores[order.front()].crowding = inf;
            scores[order.back()].crowding = inf;
            if (hi <= lo)
                continue; // degenerate dimension: no spread to score
            for (std::size_t k = 1; k + 1 < order.size(); ++k) {
                const double prev =
                    results[order[k - 1]]->objective(dim);
                const double next =
                    results[order[k + 1]]->objective(dim);
                scores[order[k]].crowding += (next - prev) / (hi - lo);
            }
        }
    }
    return scores;
}

} // namespace gevo::core
