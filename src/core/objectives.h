/// \file
/// Objective vocabulary for multi-objective fitness: which dimensions a
/// search minimizes, Pareto domination over them, and NSGA-II
/// rank/crowding scoring with deterministic tie-breaking.

#ifndef GEVO_CORE_OBJECTIVES_H
#define GEVO_CORE_OBJECTIVES_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gevo::core {

struct FitnessResult; // core/fitness.h

/// One scoreable dimension. The enum value is the index into
/// FitnessResult::objectives, so projecting a result onto a chosen
/// objective set is `result.objective(static_cast<size_t>(obj))`.
/// Every objective is minimized.
enum class Objective : std::uint8_t {
    Time = 0,       ///< Simulated kernel time (the legacy scalar).
    Sectors = 1,    ///< 32B global-memory sectors touched (traffic).
    Divergence = 2, ///< Branch-divergence events.
};

/// Canonical CLI name: "cycles", "sectors", "divergence". Time is
/// spelled "cycles" after the paper's fitness (simulated time is a
/// fixed-frequency scaling of the cycle count, so the ordering is the
/// same quantity).
std::string_view objectiveName(Objective o);

/// Parse one objective name, case-insensitive, accepting aliases
/// (time/ms for cycles, memory for sectors, div for divergence).
/// Fatal with the registered list on unknown names, mirroring
/// WorkloadRegistry::resolveList.
Objective objectiveByName(const std::string& name);

/// Parse a comma-separated objective list ("cycles,sectors"; "all" =
/// every dimension). Fatal on empty or unknown entries, listing what
/// is registered.
std::vector<Objective> resolveObjectiveList(const std::string& csv);

/// Render a list back to canonical comma-separated form (scope
/// fingerprints, summary lines).
std::string objectiveListName(const std::vector<Objective>& objectives);

/// Pareto domination of \p a over \p b projected onto \p objectives:
/// no worse on every dimension, strictly better on at least one. An
/// invalid result never dominates and is dominated by any valid one.
bool dominates(const FitnessResult& a, const FitnessResult& b,
               const std::vector<Objective>& objectives);

/// NSGA-II scores for one pool of results.
struct ParetoScore {
    std::uint32_t rank = 0; ///< 0 = the non-dominated front.
    double crowding = 0.0;  ///< Crowding distance within the rank.
};

/// Fast non-dominated sort + crowding distance over \p results (all
/// entries must be valid). \p keys are the canonical edit-list keys,
/// aligned with \p results: per-objective crowding sweeps order by
/// (value, key), so the scores are independent of input order — the
/// property that keeps Pareto trajectories reproducible across
/// threads and backends. Front boundaries get infinite crowding.
std::vector<ParetoScore>
paretoScores(const std::vector<const FitnessResult*>& results,
             const std::vector<std::string>& keys,
             const std::vector<Objective>& objectives);

} // namespace gevo::core

#endif // GEVO_CORE_OBJECTIVES_H
