/// \file
/// Search hyper-parameters, shared by the population and orchestrator
/// layers (paper Sec III-E defaults, plus the island-model and cache
/// extensions this reproduction adds on top).

#ifndef GEVO_CORE_PARAMS_H
#define GEVO_CORE_PARAMS_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/objectives.h"
#include "mutation/sampler.h"

namespace gevo::core {

/// Which evaluation backend executes a generation's batch of fitness
/// evaluations (core/eval_backend.h).
enum class EvalBackendKind : std::uint8_t {
    /// Today's thread pool: every evaluation runs in the engine's own
    /// address space. Fastest; a variant that crashes or hangs the
    /// simulator takes the whole search down with it.
    InProcess,
    /// Fork-per-batch worker processes on a pipe protocol with a
    /// per-evaluation wall-clock watchdog: a variant that segfaults,
    /// aborts, OOMs or hangs kills only its worker. The failure is scored
    /// as a deterministic invalid-individual penalty and the genotype is
    /// quarantined so it is never dispatched again.
    Isolated,
    /// Socket-based evaluation farm (src/farm/): batches are sharded
    /// across `workers` daemons over the framed protocol, with
    /// per-evaluation deadlines, redispatch on worker loss, and local
    /// degradation when every worker is gone. Fault-free runs are
    /// trajectory-identical to InProcess.
    Remote,
};

/// Which edit-sampling strategy the populations use (mutation/sampler.h).
enum class SamplerKind : std::uint8_t {
    /// Historical uniform sampling; bit-for-bit the pre-seam RNG draws.
    Uniform,
    /// Profile-guided: edit sites weighted by the per-island elite's
    /// per-loc issue heat, re-profiled every generation.
    Guided,
};

/// Which migration topology connects the islands (core/topology.h).
enum class TopologyKind : std::uint8_t {
    /// Historical behavior: panmictic when islands <= 1, ring otherwise.
    Auto,
    /// Single population, no migration. Requires islands <= 1.
    Panmictic,
    /// Directed cycle i -> (i+1) % N.
    Ring,
    /// 2D torus grid: each island sends to its right and down neighbors.
    Torus,
    /// Hub-and-spoke: island 0 exchanges with every other island.
    Star,
};

/// Which survivor-/tournament-ordering rule selection uses
/// (core/population.h).
enum class SelectionKind : std::uint8_t {
    /// Single-scalar ordering by FitnessResult::ms() — the paper's rule
    /// and the bit-identical legacy default.
    Scalar,
    /// NSGA-II: non-dominated sort + crowding distance over
    /// EvolutionParams::objectives, ties broken by canonical edit-list
    /// key so trajectories stay reproducible across threads and
    /// backends.
    Pareto,
};

/// Search hyper-parameters (paper defaults).
struct EvolutionParams {
    std::uint32_t populationSize = 256; ///< Per island.
    std::uint32_t generations = 300;
    std::uint32_t elitism = 4;
    double crossoverProb = 0.8;
    double mutationProb = 0.3;
    /// Within a mutation event: probability the edit list grows (vs. a
    /// random existing edit being dropped).
    double mutationAppendProb = 0.85;
    std::uint32_t tournamentSize = 2;
    std::uint64_t seed = 1;
    std::uint32_t threads = 0; ///< 0 = hardware concurrency.

    // ---- population structure (island model) ----
    /// Number of islands. 1 is the paper's single panmictic population and
    /// reproduces the pre-island engine bit-for-bit (island 0's RNG stream
    /// is seeded with `seed` directly). Islands evolve independently
    /// except for migration; their fitness evaluations are batched into
    /// one thread-pool dispatch per generation.
    std::uint32_t islands = 1;
    /// Ring migration period in generations (0 = never migrate). Only
    /// meaningful when islands > 1.
    std::uint32_t migrationInterval = 10;
    /// Individuals copied island i -> (i+1) % islands at each migration
    /// (the receiver's worst are replaced). Clamped below populationSize.
    std::uint32_t migrationCount = 2;
    /// Migration topology. Auto keeps the historical mapping (panmictic
    /// for one island, ring otherwise) and is the trajectory-neutral
    /// default.
    TopologyKind topology = TopologyKind::Auto;
    /// Fitness-aware migrant acceptance: an immigrant replaces the
    /// receiver's worst resident only when strictly fitter than it.
    /// Default off = historical blind replacement.
    bool fitnessAwareMigrants = false;

    // ---- diagnosis-driven search ----
    /// Edit-sampling strategy. Uniform reproduces the pre-seam trajectory
    /// bit-for-bit; Guided re-profiles each island's elite every
    /// generation and biases edit sites toward hot locations.
    SamplerKind samplerKind = SamplerKind::Uniform;
    /// Self-adaptive operator rates (ESCH-style 1+1 rule at island
    /// granularity): each island perturbs its own SamplerConfig weights,
    /// keeps the perturbation when the island's best improves, reverts it
    /// otherwise. Rates are checkpointed and logged per generation.
    bool adaptRates = false;

    // ---- multi-objective selection ----
    /// Survivor/tournament ordering. Scalar reproduces the historical
    /// trajectory bit-for-bit; Pareto ranks on `objectives`.
    SelectionKind selection = SelectionKind::Scalar;
    /// Objective dimensions Pareto selection ranks on (Scalar mode uses
    /// only the primary time objective regardless). Part of the
    /// checkpoint scope fingerprint.
    std::vector<Objective> objectives = {Objective::Time};

    // ---- evaluation pipeline ----
    /// true: full evaluation pipeline — per-individual memo, within-
    /// generation dedup across all islands, and the two-level content-
    /// addressed variant cache (edit-list key, then compiled-program key).
    /// false: the un-cached compile-per-call reference path — every
    /// individual is patched, cleaned, verified, decoded and simulated
    /// every generation. Fitness is deterministic in the edit list, so the
    /// search trajectory is identical either way; the reference path
    /// exists to benchmark the pipeline against (bench/throughput.cpp).
    bool useCache = true;
    /// Per-level entry bound for the variant caches (0 = unbounded). When
    /// set, each cache evicts least-recently-used entries beyond the
    /// bound; eviction is trajectory-neutral because evicted results are
    /// deterministically recomputed on the next miss.
    std::size_t cacheMaxEntries = 0;
    /// Cross-run persistence (core/cache_store.h): when non-empty, both
    /// cache levels are loaded from this file before generation 1 and
    /// saved back on completion (and every `cacheSaveInterval`
    /// generations). A missing, version-mismatched or corrupted file
    /// degrades to a cold start — it never fails the run. Persistence is
    /// trajectory-neutral for the same reason the cache itself is:
    /// entries are values of a deterministic function of their key.
    /// Ignored when useCache is false.
    std::string cachePath;
    /// Generations between periodic cache saves while the search runs
    /// (0 = save only on completion). Only meaningful with a cachePath.
    /// Saves are atomic (rename-over), so a run warm-starting from a
    /// file another process is still appending to sees a complete
    /// snapshot either way.
    std::uint32_t cacheSaveInterval = 0;

    // ---- robustness (crash isolation + durable search state) ----
    /// Evaluation backend. InProcess is trajectory-identical to the
    /// pre-backend engine; Isolated survives worker crashes/hangs at the
    /// cost of fork/pipe overhead per generation.
    EvalBackendKind backend = EvalBackendKind::InProcess;
    /// Per-evaluation wall-clock watchdog budget, applied uniformly to
    /// every out-of-process path: the isolated backend kills the worker
    /// and scores a WorkerTimeout penalty; the remote backend treats a
    /// silent connection as dead after this budget (RpcTimeout after the
    /// redispatch strikes are exhausted). Ignored by the in-process
    /// backend.
    std::uint32_t evalTimeoutMs = 30000;
    /// Remote-backend worker endpoints: comma-separated "host:port" or
    /// "unix:/path" entries. Required when backend == Remote.
    std::string workers;
    /// Durable search-state snapshots (core/checkpoint.h): when
    /// non-empty, full search state (populations, fitness, RNG streams,
    /// generation counter, history, quarantine set) is written here every
    /// `checkpointInterval` generations and on completion/interruption. A
    /// run killed mid-search resumes from the last snapshot with
    /// `resume = true` and replays to the bit-identical trajectory of an
    /// uninterrupted run.
    std::string checkpointPath;
    /// Generations between periodic checkpoint saves (0 = only on
    /// completion/interruption). Only meaningful with a checkpointPath.
    std::uint32_t checkpointInterval = 10;
    /// Restore search state from checkpointPath before running. A
    /// missing, corrupted, version- or scope-mismatched checkpoint
    /// degrades to a cold start with a warning — it never fails the run.
    bool resume = false;

    mut::SamplerConfig sampler;
};

} // namespace gevo::core

#endif // GEVO_CORE_PARAMS_H
