/// \file
/// Search hyper-parameters, shared by the population and orchestrator
/// layers (paper Sec III-E defaults, plus the island-model and cache
/// extensions this reproduction adds on top).

#ifndef GEVO_CORE_PARAMS_H
#define GEVO_CORE_PARAMS_H

#include <cstdint>
#include <string>

#include "mutation/sampler.h"

namespace gevo::core {

/// Search hyper-parameters (paper defaults).
struct EvolutionParams {
    std::uint32_t populationSize = 256; ///< Per island.
    std::uint32_t generations = 300;
    std::uint32_t elitism = 4;
    double crossoverProb = 0.8;
    double mutationProb = 0.3;
    /// Within a mutation event: probability the edit list grows (vs. a
    /// random existing edit being dropped).
    double mutationAppendProb = 0.85;
    std::uint32_t tournamentSize = 2;
    std::uint64_t seed = 1;
    std::uint32_t threads = 0; ///< 0 = hardware concurrency.

    // ---- population structure (island model) ----
    /// Number of islands. 1 is the paper's single panmictic population and
    /// reproduces the pre-island engine bit-for-bit (island 0's RNG stream
    /// is seeded with `seed` directly). Islands evolve independently
    /// except for migration; their fitness evaluations are batched into
    /// one thread-pool dispatch per generation.
    std::uint32_t islands = 1;
    /// Ring migration period in generations (0 = never migrate). Only
    /// meaningful when islands > 1.
    std::uint32_t migrationInterval = 10;
    /// Individuals copied island i -> (i+1) % islands at each migration
    /// (the receiver's worst are replaced). Clamped below populationSize.
    std::uint32_t migrationCount = 2;

    // ---- evaluation pipeline ----
    /// true: full evaluation pipeline — per-individual memo, within-
    /// generation dedup across all islands, and the two-level content-
    /// addressed variant cache (edit-list key, then compiled-program key).
    /// false: the un-cached compile-per-call reference path — every
    /// individual is patched, cleaned, verified, decoded and simulated
    /// every generation. Fitness is deterministic in the edit list, so the
    /// search trajectory is identical either way; the reference path
    /// exists to benchmark the pipeline against (bench/throughput.cpp).
    bool useCache = true;
    /// Per-level entry bound for the variant caches (0 = unbounded). When
    /// set, each cache evicts least-recently-used entries beyond the
    /// bound; eviction is trajectory-neutral because evicted results are
    /// deterministically recomputed on the next miss.
    std::size_t cacheMaxEntries = 0;
    /// Cross-run persistence (core/cache_store.h): when non-empty, both
    /// cache levels are loaded from this file before generation 1 and
    /// saved back on completion (and every `cacheSaveInterval`
    /// generations). A missing, version-mismatched or corrupted file
    /// degrades to a cold start — it never fails the run. Persistence is
    /// trajectory-neutral for the same reason the cache itself is:
    /// entries are values of a deterministic function of their key.
    /// Ignored when useCache is false.
    std::string cachePath;
    /// Generations between periodic cache saves while the search runs
    /// (0 = save only on completion). Only meaningful with a cachePath.
    /// Saves are atomic (rename-over), so a run warm-starting from a
    /// file another process is still appending to sees a complete
    /// snapshot either way.
    std::uint32_t cacheSaveInterval = 0;

    mut::SamplerConfig sampler;
};

} // namespace gevo::core

#endif // GEVO_CORE_PARAMS_H
