#include "core/population.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>

#include "core/objectives.h"
#include "core/variant_cache.h"
#include "mutation/patch.h"
#include "support/logging.h"

namespace gevo::core {

Population::Population(const ir::Module& base, const EvolutionParams& params)
    : base_(base), params_(params), rates_(params.sampler)
{
    GEVO_ASSERT(params_.populationSize >= 2, "population too small");
    GEVO_ASSERT(params_.elitism < params_.populationSize,
                "elitism exceeds population");
}

std::optional<mut::Edit>
Population::sampleOne(const ir::Module& mod, Rng& rng) const
{
    if (sampler_ != nullptr)
        return sampler_->sample(mod, rng, rates_);
    return mut::sampleEdit(mod, rng, rates_);
}

void
Population::seed(Rng& rng)
{
    members_.clear();
    members_.reserve(params_.populationSize);
    for (std::uint32_t i = 0; i < params_.populationSize; ++i) {
        // GEVO seeds the population with single-mutation variants of the
        // original program.
        Individual ind;
        const auto edit = sampleOne(base_, rng);
        if (edit)
            ind.edits.push_back(*edit);
        members_.push_back(std::move(ind));
    }
}

void
Population::sortByFitness()
{
    if (params_.selection == SelectionKind::Pareto) {
        sortPareto();
        return;
    }
    std::vector<std::uint32_t> order(members_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                         return FitnessResult::better(members_[a].fitness,
                                                      members_[b].fitness);
                     });
    std::vector<Individual> sorted;
    sorted.reserve(members_.size());
    for (const std::uint32_t i : order)
        sorted.push_back(std::move(members_[i]));
    members_ = std::move(sorted);
}

void
Population::sortPareto()
{
    // Canonical keys, computed once per sort: the deterministic
    // tie-break that keeps Pareto trajectories identical across
    // threads and backends — rank and crowding are order-independent,
    // but equal-crowding ties within a rank would not be without a
    // total order.
    const std::size_t n = members_.size();
    std::vector<std::string> keys(n);
    for (std::size_t i = 0; i < n; ++i)
        keys[i] = VariantCache::keyOf(members_[i].edits);

    std::vector<std::uint32_t> validIdx;
    std::vector<const FitnessResult*> fits;
    std::vector<std::string> validKeys;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!members_[i].fitness.valid) {
            members_[i].paretoRank =
                std::numeric_limits<std::uint32_t>::max();
            members_[i].crowding = 0.0;
            continue;
        }
        validIdx.push_back(i);
        fits.push_back(&members_[i].fitness);
        validKeys.push_back(keys[i]);
    }
    const auto scores = paretoScores(fits, validKeys, params_.objectives);
    for (std::size_t k = 0; k < validIdx.size(); ++k) {
        members_[validIdx[k]].paretoRank = scores[k].rank;
        members_[validIdx[k]].crowding = scores[k].crowding;
    }

    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  const Individual& ia = members_[a];
                  const Individual& ib = members_[b];
                  if (ia.paretoRank != ib.paretoRank)
                      return ia.paretoRank < ib.paretoRank;
                  if (ia.crowding != ib.crowding)
                      return ia.crowding > ib.crowding;
                  return keys[a] < keys[b];
              });
    std::vector<Individual> sorted;
    sorted.reserve(n);
    for (const std::uint32_t i : order)
        sorted.push_back(std::move(members_[i]));
    members_ = std::move(sorted);
}

bool
Population::beats(const Individual& a, const Individual& b) const
{
    if (params_.selection == SelectionKind::Pareto) {
        // The NSGA-II order is already materialized in the member list,
        // so "earlier in the list" IS "better" — comparing positions
        // avoids recomputing rank/crowding per tournament draw.
        return &a < &b;
    }
    return FitnessResult::better(a.fitness, b.fitness);
}

const Individual&
Population::tournament(Rng& rng) const
{
    const Individual* best = nullptr;
    for (std::uint32_t i = 0; i < params_.tournamentSize; ++i) {
        const Individual& c = members_[rng.below(members_.size())];
        if (best == nullptr || beats(c, *best))
            best = &c;
    }
    return *best;
}

void
Population::mutate(Individual* ind, Rng& rng)
{
    if (!ind->edits.empty() && !rng.chance(params_.mutationAppendProb)) {
        ind->edits.erase(ind->edits.begin() +
                         static_cast<std::ptrdiff_t>(
                             rng.below(ind->edits.size())));
        ind->evaluated = false;
        return;
    }
    // Sample against the patched variant so new edits can build on
    // previously inserted instructions.
    const ir::Module patched = mut::applyPatch(base_, ind->edits);
    const auto edit = sampleOne(patched, rng);
    if (edit) {
        ind->edits.push_back(*edit);
        ind->evaluated = false;
    }
}

void
Population::breedNext(Rng& rng)
{
    std::vector<Individual> next;
    next.reserve(params_.populationSize);
    for (std::uint32_t e = 0; e < params_.elitism && e < members_.size();
         ++e)
        next.push_back(members_[e]);

    while (next.size() < params_.populationSize) {
        const Individual& a = tournament(rng);
        const Individual& b = tournament(rng);
        Individual child;
        if (rng.chance(params_.crossoverProb)) {
            auto [c1, c2] = mut::crossoverEdits(a.edits, b.edits, rng);
            child.edits = std::move(c1);
            if (next.size() + 1 < params_.populationSize) {
                Individual sibling;
                sibling.edits = std::move(c2);
                if (rng.chance(params_.mutationProb))
                    mutate(&sibling, rng);
                next.push_back(std::move(sibling));
            }
        } else {
            child = a;
        }
        if (rng.chance(params_.mutationProb))
            mutate(&child, rng);
        next.push_back(std::move(child));
    }
    members_ = std::move(next);
}

std::vector<Individual>
Population::emigrants(std::uint32_t count) const
{
    const auto n = std::min<std::size_t>(count, members_.size());
    return {members_.begin(),
            members_.begin() + static_cast<std::ptrdiff_t>(n)};
}

void
Population::receiveMigrants(const std::vector<Individual>& migrants)
{
    GEVO_ASSERT(migrants.size() < members_.size(),
                "migration would replace the whole population");
    auto slot =
        members_.end() - static_cast<std::ptrdiff_t>(migrants.size());
    if (params_.fitnessAwareMigrants) {
        // Same slot pairing as the blind path, but an immigrant only
        // evicts a strictly worse resident — a weak island can no longer
        // overwrite a receiver's good genotypes. Pareto mode also uses
        // the scalar comparator here: ranks are island-local and not
        // comparable across populations.
        for (const auto& m : migrants) {
            if (FitnessResult::better(m.fitness, slot->fitness))
                *slot = m;
            ++slot;
        }
    } else {
        std::copy(migrants.begin(), migrants.end(), slot);
    }
    sortByFitness();
}

} // namespace gevo::core
