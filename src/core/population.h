/// \file
/// One GA population: individuals plus the paper's Sec III-E breeding
/// operators (tournament selection, one-point crossover, append/drop
/// mutation, elitism).
///
/// Extracted from the pre-island EvolutionEngine so the orchestrator can
/// run N of these side by side. The operator implementations and their
/// RNG draw order are preserved verbatim: a single Population driven by
/// one Rng stream reproduces the pre-island engine's trajectory exactly.
/// Fitness evaluation is NOT here — the engine owns it, so that
/// evaluations from every island can be batched into one thread-pool
/// dispatch and share the variant caches.

#ifndef GEVO_CORE_POPULATION_H
#define GEVO_CORE_POPULATION_H

#include <vector>

#include "core/fitness.h"
#include "core/params.h"
#include "mutation/edit.h"
#include "mutation/sampler.h"
#include "support/rng.h"

namespace gevo::core {

/// One member of the population: an edit list plus its cached fitness.
struct Individual {
    std::vector<mut::Edit> edits;
    FitnessResult fitness;
    bool evaluated = false;
    /// Pareto bookkeeping, recomputed by every Pareto-mode
    /// sortByFitness (never serialized; meaningless in Scalar mode).
    /// Rank 0 is the non-dominated front of this island's members.
    std::uint32_t paretoRank = 0;
    double crowding = 0.0;
};

/// A population with the GA operators; all stochastic decisions flow from
/// the Rng the caller passes in (one stream per island).
class Population {
  public:
    /// \p base and \p params must outlive the population.
    Population(const ir::Module& base, const EvolutionParams& params);

    /// Fill with populationSize single-mutation variants of the base
    /// program (GEVO's seeding recipe).
    void seed(Rng& rng);

    std::vector<Individual>& members() { return members_; }
    const std::vector<Individual>& members() const { return members_; }
    std::size_t size() const { return members_.size(); }

    /// Order members best-first. Scalar mode: stable sort ascending by
    /// fitness.ms() (invalid = +inf sinks to the back) — bit-identical
    /// to the historical single-scalar sort. Pareto mode: NSGA-II order
    /// (rank ascending, crowding descending, canonical edit-list key
    /// ascending; invalid members last). Both sort index proxies, then
    /// apply the permutation, so each Individual moves exactly once
    /// instead of being copied per swap.
    void sortByFitness();

    /// Best member. \pre sorted. In Pareto mode this is the head of the
    /// NSGA-II order (a non-dominated member), not the scalar minimum.
    const Individual& best() const { return members_.front(); }

    /// Replace the members with the next generation: elitism, tournament
    /// selection, one-point crossover, append/drop mutation. \pre sorted.
    void breedNext(Rng& rng);

    /// Copies of the top \p count members (migration outbox). \pre sorted.
    std::vector<Individual> emigrants(std::uint32_t count) const;

    /// Replace the worst members with \p migrants (already evaluated on
    /// the sending island; fitness is island-independent so it transfers).
    /// With params.fitnessAwareMigrants, each migrant only takes its slot
    /// when strictly fitter than the resident it would evict. Leaves the
    /// population sorted.
    void receiveMigrants(const std::vector<Individual>& migrants);

    /// Install the edit-sampling strategy (non-owning; must outlive the
    /// population). nullptr = the legacy free-function path, which is
    /// draw-for-draw what UniformSampler does.
    void setSampler(const mut::MutationSampler* sampler)
    {
        sampler_ = sampler;
    }

    /// This population's own operator rates — seeded from params.sampler,
    /// perturbed by the engine's self-adaptive machinery, restored from
    /// checkpoints. All sampling goes through these, so the default path
    /// (rates == params.sampler, never touched) is unchanged.
    mut::SamplerConfig& rates() { return rates_; }
    const mut::SamplerConfig& rates() const { return rates_; }

  private:
    const Individual& tournament(Rng& rng) const;
    /// Selection's "a beats b": FitnessResult::better in Scalar mode,
    /// NSGA-II list position in Pareto mode (\pre sorted, and both must
    /// point into members_). Identical RNG consumption either way.
    bool beats(const Individual& a, const Individual& b) const;
    void sortPareto();
    void mutate(Individual* ind, Rng& rng);
    std::optional<mut::Edit> sampleOne(const ir::Module& mod,
                                       Rng& rng) const;

    const ir::Module& base_;
    const EvolutionParams& params_;
    const mut::MutationSampler* sampler_ = nullptr;
    mut::SamplerConfig rates_;
    std::vector<Individual> members_;
};

} // namespace gevo::core

#endif // GEVO_CORE_POPULATION_H
