#include "core/portfolio.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "support/logging.h"

namespace gevo::core {

std::string_view
deviceAggName(DeviceAgg agg)
{
    switch (agg) {
    case DeviceAgg::Worst:
        return "worst";
    case DeviceAgg::Mean:
        return "mean";
    }
    GEVO_FATAL("deviceAggName: bad aggregation %u",
               static_cast<unsigned>(agg));
}

DeviceAgg
deviceAggByName(const std::string& name)
{
    std::string n = name;
    for (auto& c : n)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (n == "worst")
        return DeviceAgg::Worst;
    if (n == "mean")
        return DeviceAgg::Mean;
    GEVO_FATAL("unknown device aggregation '%s' (registered: worst, "
               "mean)",
               name.c_str());
}

PortfolioFitness::PortfolioFitness(const FitnessFunction& inner,
                                   std::vector<sim::DeviceConfig> devices,
                                   DeviceAgg agg)
    : inner_(inner), devices_(std::move(devices)), agg_(agg)
{
    GEVO_ASSERT(!devices_.empty(), "portfolio needs at least one device");
}

FitnessResult
PortfolioFitness::evaluate(const CompiledVariant& variant) const
{
    if (devices_.size() == 1)
        return inner_.evaluateOn(variant, devices_[0]);

    std::vector<FitnessResult> per;
    per.reserve(devices_.size());
    for (const auto& dev : devices_) {
        FitnessResult r = inner_.evaluateOn(variant, dev);
        if (!r.valid)
            return FitnessResult::fail(dev.name + ": " + r.failReason);
        per.push_back(std::move(r));
    }

    std::size_t width = 0;
    for (const auto& r : per)
        width = std::max(width, r.objectives.size());
    FitnessResult out;
    out.valid = true;
    out.objectives.assign(width, 0.0);
    for (std::size_t i = 0; i < width; ++i) {
        if (agg_ == DeviceAgg::Worst) {
            double worst = per[0].objective(i);
            for (const auto& r : per)
                worst = std::max(worst, r.objective(i));
            out.objectives[i] = worst;
        } else {
            double sum = 0.0;
            for (const auto& r : per)
                sum += r.objective(i);
            out.objectives[i] = sum / static_cast<double>(per.size());
        }
    }
    return out;
}

FitnessResult
PortfolioFitness::evaluateOn(const CompiledVariant& variant,
                             const sim::DeviceConfig& dev) const
{
    return inner_.evaluateOn(variant, dev);
}

bool
PortfolioFitness::profileVariant(const CompiledVariant& variant,
                                 ProfileSummary* out) const
{
    return inner_.profileVariant(variant, out);
}

std::string
PortfolioFitness::name() const
{
    std::string devs;
    for (const auto& dev : devices_)
        devs += (devs.empty() ? "" : "+") + dev.name;
    return inner_.name() + "|portfolio(" + devs + "," +
           std::string(deviceAggName(agg_)) + ")";
}

} // namespace gevo::core
