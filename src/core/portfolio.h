/// \file
/// Device-portfolio fitness: score one variant against a set of device
/// models (the paper's Table I GPUs) and aggregate per-objective, so
/// the search rewards edits that generalize across devices instead of
/// overfitting one timing model.
///
/// The portfolio wraps any FitnessFunction that implements evaluateOn
/// and presents the same FitnessFunction interface, so the engine,
/// backends, caches and farm are portfolio-agnostic: name() encodes the
/// device set and aggregation, which automatically re-scopes cache
/// files, checkpoints and farm handshakes.

#ifndef GEVO_CORE_PORTFOLIO_H
#define GEVO_CORE_PORTFOLIO_H

#include <string>
#include <string_view>
#include <vector>

#include "core/fitness.h"
#include "sim/device_config.h"

namespace gevo::core {

/// How per-device objective values collapse into the portfolio's
/// vector. Every objective is minimized, so Worst = max over devices.
enum class DeviceAgg : std::uint8_t {
    Worst, ///< Per-objective max: optimize the worst-case device.
    Mean,  ///< Per-objective arithmetic mean over the devices.
};

/// Canonical CLI name ("worst", "mean").
std::string_view deviceAggName(DeviceAgg agg);

/// Parse one aggregation name, case-insensitive; fatal with the
/// registered list on unknown names.
DeviceAgg deviceAggByName(const std::string& name);

/// Portfolio wrapper around a per-device-capable fitness function.
class PortfolioFitness final : public FitnessFunction {
  public:
    /// \p inner must outlive the portfolio and support evaluateOn; the
    /// device list must be non-empty.
    PortfolioFitness(const FitnessFunction& inner,
                     std::vector<sim::DeviceConfig> devices,
                     DeviceAgg agg = DeviceAgg::Worst);

    /// A portfolio of one device passes straight through to the inner
    /// fitness on that device (identical FitnessResult, failReason
    /// included) — what makes single-device portfolio runs bit-identical
    /// to plain runs. Multi-device: any per-device failure fails the
    /// variant (tagged with the device name); otherwise each objective
    /// is aggregated across devices per `agg`.
    FitnessResult evaluate(const CompiledVariant& variant) const override;

    /// Delegates to the inner fitness (a portfolio inside a portfolio
    /// collapses to per-device scoring).
    FitnessResult evaluateOn(const CompiledVariant& variant,
                             const sim::DeviceConfig& dev) const override;

    /// Profiles on the inner fitness's own device: the guided sampler
    /// wants one representative heat map, not a cross-device blend.
    bool profileVariant(const CompiledVariant& variant,
                        ProfileSummary* out) const override;

    /// Inner name + '+'-joined device list + aggregation, so every
    /// scope fingerprint derived from the fitness name changes with the
    /// portfolio config.
    std::string name() const override;

    const std::vector<sim::DeviceConfig>& devices() const
    {
        return devices_;
    }

  private:
    const FitnessFunction& inner_;
    std::vector<sim::DeviceConfig> devices_;
    DeviceAgg agg_;
};

} // namespace gevo::core

#endif // GEVO_CORE_PORTFOLIO_H
