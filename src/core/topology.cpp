#include "core/topology.h"

#include "support/logging.h"
#include "support/strings.h"

namespace gevo::core {

RingTopology::RingTopology(std::uint32_t islands, std::uint32_t interval)
    : islands_(islands), interval_(interval)
{
    GEVO_ASSERT(islands_ >= 1, "ring needs at least one island");
}

std::vector<MigrationEdge>
RingTopology::migrationsAfter(std::uint32_t gen) const
{
    // gen 0 is the seed population: `gen % interval_ == 0` alone would
    // fire a migration there, one full interval before the documented
    // "every N generations" (first at gen == interval). The engine counts
    // generations from 1, but this is a public seam — callers stepping
    // from 0 must see the same schedule.
    if (islands_ < 2 || interval_ == 0 || gen == 0 || gen % interval_ != 0)
        return {};
    std::vector<MigrationEdge> edges;
    edges.reserve(islands_);
    for (std::uint32_t i = 0; i < islands_; ++i)
        edges.push_back({i, (i + 1) % islands_});
    return edges;
}

std::string
RingTopology::describe() const
{
    if (interval_ == 0)
        return strformat("%u isolated islands", islands_);
    return strformat("%u-island ring, migration every %u generations",
                     islands_, interval_);
}

std::unique_ptr<SearchTopology>
makeTopology(const EvolutionParams& params)
{
    if (params.islands <= 1)
        return std::make_unique<PanmicticTopology>();
    return std::make_unique<RingTopology>(params.islands,
                                          params.migrationInterval);
}

} // namespace gevo::core
