#include "core/topology.h"

#include "support/logging.h"
#include "support/strings.h"

namespace gevo::core {

RingTopology::RingTopology(std::uint32_t islands, std::uint32_t interval)
    : islands_(islands), interval_(interval)
{
    GEVO_ASSERT(islands_ >= 1, "ring needs at least one island");
}

std::vector<MigrationEdge>
RingTopology::migrationsAfter(std::uint32_t gen) const
{
    // gen 0 is the seed population: `gen % interval_ == 0` alone would
    // fire a migration there, one full interval before the documented
    // "every N generations" (first at gen == interval). The engine counts
    // generations from 1, but this is a public seam — callers stepping
    // from 0 must see the same schedule.
    if (islands_ < 2 || interval_ == 0 || gen == 0 || gen % interval_ != 0)
        return {};
    std::vector<MigrationEdge> edges;
    edges.reserve(islands_);
    for (std::uint32_t i = 0; i < islands_; ++i)
        edges.push_back({i, (i + 1) % islands_});
    return edges;
}

std::string
RingTopology::describe() const
{
    if (interval_ == 0)
        return strformat("%u isolated islands", islands_);
    return strformat("%u-island ring, migration every %u generations",
                     islands_, interval_);
}

TorusTopology::TorusTopology(std::uint32_t islands, std::uint32_t interval)
    : islands_(islands), interval_(interval), rows_(1), cols_(islands)
{
    GEVO_ASSERT(islands_ >= 1, "torus needs at least one island");
    // Largest divisor of N at most sqrt(N) -> the most square grid.
    for (std::uint32_t r = 1; r * r <= islands_; ++r) {
        if (islands_ % r == 0)
            rows_ = r;
    }
    cols_ = islands_ / rows_;
}

std::vector<MigrationEdge>
TorusTopology::migrationsAfter(std::uint32_t gen) const
{
    if (islands_ < 2 || interval_ == 0 || gen == 0 || gen % interval_ != 0)
        return {};
    std::vector<MigrationEdge> edges;
    edges.reserve(2 * islands_);
    for (std::uint32_t i = 0; i < islands_; ++i) {
        const std::uint32_t r = i / cols_;
        const std::uint32_t c = i % cols_;
        const std::uint32_t right = r * cols_ + (c + 1) % cols_;
        const std::uint32_t down = ((r + 1) % rows_) * cols_ + c;
        if (right != i)
            edges.push_back({i, right});
        // A 1-row torus degenerates to the ring; skip the self/duplicate
        // down edge it would produce.
        if (down != i && down != right)
            edges.push_back({i, down});
    }
    return edges;
}

std::string
TorusTopology::describe() const
{
    if (interval_ == 0)
        return strformat("%u isolated islands", islands_);
    return strformat("%ux%u-island torus, migration every %u generations",
                     rows_, cols_, interval_);
}

StarTopology::StarTopology(std::uint32_t islands, std::uint32_t interval)
    : islands_(islands), interval_(interval)
{
    GEVO_ASSERT(islands_ >= 1, "star needs at least one island");
}

std::vector<MigrationEdge>
StarTopology::migrationsAfter(std::uint32_t gen) const
{
    if (islands_ < 2 || interval_ == 0 || gen == 0 || gen % interval_ != 0)
        return {};
    std::vector<MigrationEdge> edges;
    edges.reserve(2 * (islands_ - 1));
    for (std::uint32_t i = 1; i < islands_; ++i)
        edges.push_back({i, 0}); // spokes feed the hub
    for (std::uint32_t i = 1; i < islands_; ++i)
        edges.push_back({0, i}); // hub broadcasts (pre-migration snapshot)
    return edges;
}

std::string
StarTopology::describe() const
{
    if (interval_ == 0)
        return strformat("%u isolated islands", islands_);
    return strformat("%u-island star (hub 0), migration every %u "
                     "generations",
                     islands_, interval_);
}

std::unique_ptr<SearchTopology>
makeTopology(const EvolutionParams& params)
{
    switch (params.topology) {
    case TopologyKind::Auto:
        break;
    case TopologyKind::Panmictic:
        if (params.islands > 1)
            GEVO_FATAL("topology 'panmictic' is a single population; "
                       "got islands=%u (use ring/torus/star, or islands=1)",
                       params.islands);
        return std::make_unique<PanmicticTopology>();
    case TopologyKind::Ring:
        return std::make_unique<RingTopology>(params.islands,
                                              params.migrationInterval);
    case TopologyKind::Torus:
        return std::make_unique<TorusTopology>(params.islands,
                                               params.migrationInterval);
    case TopologyKind::Star:
        return std::make_unique<StarTopology>(params.islands,
                                              params.migrationInterval);
    }
    if (params.islands <= 1)
        return std::make_unique<PanmicticTopology>();
    return std::make_unique<RingTopology>(params.islands,
                                          params.migrationInterval);
}

} // namespace gevo::core
