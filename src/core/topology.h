/// \file
/// Population structure of the search: how many islands evolve in
/// parallel and when/where individuals migrate between them.
///
/// The seam exists so search topologies can vary without touching the
/// orchestrator: the engine asks the topology for the island count and,
/// after each generation, for the migration edges to apply. Both built-in
/// topologies are deterministic — migration needs no RNG draws, which
/// keeps per-island streams independent of the topology choice.

#ifndef GEVO_CORE_TOPOLOGY_H
#define GEVO_CORE_TOPOLOGY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/params.h"

namespace gevo::core {

/// One directed migrant transfer: copies of islands[from]'s best replace
/// islands[to]'s worst.
struct MigrationEdge {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
};

/// Interface the orchestrator runs against.
class SearchTopology {
  public:
    virtual ~SearchTopology() = default;

    /// Number of islands (>= 1).
    virtual std::uint32_t islandCount() const = 0;

    /// Migration edges to apply after generation \p gen has been evaluated
    /// and sorted (empty = no migration this generation). All edges of one
    /// generation are applied from pre-migration snapshots, so transfer
    /// order never matters.
    virtual std::vector<MigrationEdge>
    migrationsAfter(std::uint32_t gen) const = 0;

    /// Short description for logs/banners.
    virtual std::string describe() const = 0;
};

/// The paper's topology: one panmictic population, no migration.
class PanmicticTopology : public SearchTopology {
  public:
    std::uint32_t islandCount() const override { return 1; }
    std::vector<MigrationEdge>
    migrationsAfter(std::uint32_t) const override
    {
        return {};
    }
    std::string describe() const override { return "panmictic"; }
};

/// N islands in a directed ring: every `interval` generations island i
/// sends its best to island (i+1) % N — the first migration fires after
/// generation `interval`, never after generation 0 (the seed population
/// has not evolved yet). interval 0 disables migration (fully isolated
/// islands — equivalent to N independent runs sharing the evaluation
/// pipeline and caches).
class RingTopology : public SearchTopology {
  public:
    RingTopology(std::uint32_t islands, std::uint32_t interval);

    std::uint32_t islandCount() const override { return islands_; }
    std::vector<MigrationEdge>
    migrationsAfter(std::uint32_t gen) const override;
    std::string describe() const override;

  private:
    std::uint32_t islands_;
    std::uint32_t interval_;
};

/// N islands on a 2D torus grid (rows x cols with rows the largest
/// divisor of N at most sqrt(N)): every `interval` generations each
/// island sends its best to its right and down neighbors (wrapping).
/// Denser than the ring — two out-edges per island — so good genotypes
/// spread in O(sqrt(N)) migrations instead of O(N), while staying
/// deterministic and RNG-free like every built-in topology.
class TorusTopology : public SearchTopology {
  public:
    TorusTopology(std::uint32_t islands, std::uint32_t interval);

    std::uint32_t islandCount() const override { return islands_; }
    std::vector<MigrationEdge>
    migrationsAfter(std::uint32_t gen) const override;
    std::string describe() const override;

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }

  private:
    std::uint32_t islands_;
    std::uint32_t interval_;
    std::uint32_t rows_;
    std::uint32_t cols_;
};

/// Hub-and-spoke: island 0 is the hub; every `interval` generations each
/// spoke sends its best to the hub and the hub broadcasts its best to
/// every spoke. The hub concentrates the globally best genotypes (pair
/// with fitnessAwareMigrants so a weak spoke cannot overwrite hub
/// elites), and spokes receive hub elites without seeing each other —
/// a classic exploitation-heavy layout.
class StarTopology : public SearchTopology {
  public:
    StarTopology(std::uint32_t islands, std::uint32_t interval);

    std::uint32_t islandCount() const override { return islands_; }
    std::vector<MigrationEdge>
    migrationsAfter(std::uint32_t gen) const override;
    std::string describe() const override;

  private:
    std::uint32_t islands_;
    std::uint32_t interval_;
};

/// Topology implied by \p params. TopologyKind::Auto keeps the historical
/// mapping — panmictic when islands <= 1, else a ring with
/// params.migrationInterval; explicit kinds select directly. Panmictic
/// with islands > 1 is a fatal config error; ring/torus/star with one
/// island simply never migrate.
std::unique_ptr<SearchTopology> makeTopology(const EvolutionParams& params);

} // namespace gevo::core

#endif // GEVO_CORE_TOPOLOGY_H
