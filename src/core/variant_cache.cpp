#include "core/variant_cache.h"

#include <algorithm>

#include "support/bytes.h"
#include "support/logging.h"

namespace gevo::core {

namespace {

/// Round up to the next power of two (min 1).
std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/// Largest power of two <= n (n >= 1).
std::size_t
roundDownPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p * 2 <= n)
        p <<= 1;
    return p;
}

/// Shard count for the given request: a power of two, clamped so that a
/// bounded cache can give every shard a capacity of at least one without
/// the per-shard sum exceeding maxEntries.
std::size_t
effectiveShards(std::size_t shardCount, std::size_t maxEntries)
{
    std::size_t shards = roundUpPow2(shardCount == 0 ? 1 : shardCount);
    if (maxEntries > 0)
        shards = std::min(shards, roundDownPow2(maxEntries));
    return shards;
}

} // namespace

VariantCache::VariantCache(std::size_t shardCount, std::size_t maxEntries)
    : shards_(effectiveShards(shardCount, maxEntries)),
      shardMask_(shards_.size() - 1), maxEntries_(maxEntries),
      shardCapacity_(maxEntries == 0 ? 0 : maxEntries / shards_.size())
{
    GEVO_ASSERT(maxEntries == 0 || shardCapacity_ >= 1,
                "bounded cache with zero-capacity shards");
}

std::string
VariantCache::keyOf(const std::vector<mut::Edit>& edits)
{
    // 27 bytes per edit: kind, opIndex, operand kind, then three u64s.
    std::string key;
    key.reserve(edits.size() * 27);
    for (const auto& e : edits) {
        key.push_back(static_cast<char>(e.kind));
        key.push_back(static_cast<char>(e.opIndex));
        key.push_back(static_cast<char>(e.newOperand.kind));
        appendLeU64(&key, e.srcUid);
        appendLeU64(&key, e.dstUid);
        appendLeI64(&key, e.newOperand.value);
        // newUid matters: clone uids are anchor targets for later edits,
        // so lists differing only in newUid can patch differently.
        appendLeU64(&key, e.newUid);
    }
    return key;
}

std::uint64_t
VariantCache::hashKey(const std::string& key)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : key) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

VariantCache::Shard&
VariantCache::shardFor(const std::string& key)
{
    return shards_[hashKey(key) & shardMask_];
}

const VariantCache::Shard&
VariantCache::shardFor(const std::string& key) const
{
    return shards_[hashKey(key) & shardMask_];
}

bool
VariantCache::lookup(const std::string& key, FitnessResult* out) const
{
    const Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (shardCapacity_ > 0) {
        // Refresh recency: splice the entry's node to the front.
        shard.order.splice(shard.order.begin(), shard.order,
                           it->second.where);
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    *out = it->second.result;
    return true;
}

void
VariantCache::insert(const std::string& key, const FitnessResult& result)
{
    insertImpl(key, result);
}

bool
VariantCache::insertImpl(const std::string& key, const FitnessResult& result)
{
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [it, inserted] =
        shard.map.try_emplace(key, Shard::Entry{result, shard.order.end()});
    if (shardCapacity_ == 0)
        return inserted;
    if (!inserted) {
        // Existing key: keep the first value (fitness is deterministic in
        // the key) but refresh recency — a re-inserted entry is as hot as
        // a looked-up one, and must not be evicted as if cold.
        shard.order.splice(shard.order.begin(), shard.order,
                           it->second.where);
        return false;
    }
    shard.order.push_front(key);
    it->second.where = shard.order.begin();
    if (shard.map.size() > shardCapacity_) {
        shard.map.erase(shard.order.back());
        shard.order.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
}

std::vector<std::pair<std::string, FitnessResult>>
VariantCache::snapshot() const
{
    std::vector<std::pair<std::string, FitnessResult>> out;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shardCapacity_ > 0) {
            // Bounded: emit in recency order, least recent first, so an
            // in-order preload() reproduces the eviction order.
            for (auto it = shard.order.rbegin(); it != shard.order.rend();
                 ++it) {
                const auto entry = shard.map.find(*it);
                out.emplace_back(*it, entry->second.result);
            }
        } else {
            // Unbounded: no recency list; sort keys so the snapshot (and
            // therefore the persisted file) is deterministic.
            const std::size_t first = out.size();
            for (const auto& [key, entry] : shard.map)
                out.emplace_back(key, entry.result);
            std::sort(out.begin() + static_cast<std::ptrdiff_t>(first),
                      out.end(),
                      [](const auto& a, const auto& b) {
                          return a.first < b.first;
                      });
        }
    }
    return out;
}

std::size_t
VariantCache::preload(
    const std::vector<std::pair<std::string, FitnessResult>>& entries)
{
    std::size_t added = 0;
    for (const auto& [key, result] : entries)
        added += insertImpl(key, result) ? 1 : 0;
    return added;
}

VariantCache::Stats
VariantCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        s.entries += shard.map.size();
    }
    return s;
}

void
VariantCache::clear()
{
    for (auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.map.clear();
        shard.order.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
}

} // namespace gevo::core
