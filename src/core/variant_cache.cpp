#include "core/variant_cache.h"

#include "support/bytes.h"

namespace gevo::core {

namespace {

/// Round up to the next power of two (min 1).
std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

VariantCache::VariantCache(std::size_t shardCount)
    : shards_(roundUpPow2(shardCount == 0 ? 1 : shardCount)),
      shardMask_(shards_.size() - 1)
{
}

std::string
VariantCache::keyOf(const std::vector<mut::Edit>& edits)
{
    // 27 bytes per edit: kind, opIndex, operand kind, then three u64s.
    std::string key;
    key.reserve(edits.size() * 27);
    for (const auto& e : edits) {
        key.push_back(static_cast<char>(e.kind));
        key.push_back(static_cast<char>(e.opIndex));
        key.push_back(static_cast<char>(e.newOperand.kind));
        appendLeU64(&key, e.srcUid);
        appendLeU64(&key, e.dstUid);
        appendLeI64(&key, e.newOperand.value);
        // newUid matters: clone uids are anchor targets for later edits,
        // so lists differing only in newUid can patch differently.
        appendLeU64(&key, e.newUid);
    }
    return key;
}

std::uint64_t
VariantCache::hashKey(const std::string& key)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : key) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

VariantCache::Shard&
VariantCache::shardFor(const std::string& key)
{
    return shards_[hashKey(key) & shardMask_];
}

const VariantCache::Shard&
VariantCache::shardFor(const std::string& key) const
{
    return shards_[hashKey(key) & shardMask_];
}

bool
VariantCache::lookup(const std::string& key, FitnessResult* out) const
{
    const Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    *out = it->second;
    return true;
}

void
VariantCache::insert(const std::string& key, const FitnessResult& result)
{
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.try_emplace(key, result);
}

VariantCache::Stats
VariantCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        s.entries += shard.map.size();
    }
    return s;
}

void
VariantCache::clear()
{
    for (auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.map.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

} // namespace gevo::core
