/// \file
/// Content-addressed fitness cache over edit lists.
///
/// The evolutionary search re-creates identical genotypes constantly:
/// crossover of converged parents clones edit lists, elites reappear, and
/// dropped-then-resampled edits recreate earlier individuals. GEVO (Liou et
/// al., TACO 2020) reports that fitness caching is what makes 256x300
/// searches tractable; this cache is our equivalent. Keys are a canonical
/// byte encoding of the edit list — injective, so two distinct lists can
/// never collide, and order-preserving, so reordered-but-distinct lists map
/// to distinct keys (edit application is order-sensitive).
///
/// The cache is sharded: each shard owns a mutex plus an open hash map, so
/// concurrent inserts from the evaluation thread pool contend only when
/// they land on the same shard. Results are immutable once inserted —
/// fitness is a deterministic function of the edit list — which is what
/// makes serving cached results trajectory-neutral (same seed, same best
/// edit list, cache on or off).
///
/// By default the cache is unbounded (fine for 77k-evaluation runs). For
/// multi-day searches a `maxEntries` bound enables per-shard LRU
/// eviction: each shard keeps a recency list and drops its
/// least-recently-touched entry when full. Eviction is trajectory-neutral
/// too — an evicted result is deterministically recomputed on the next
/// miss — it only costs throughput, which the evict counter makes
/// visible.

#ifndef GEVO_CORE_VARIANT_CACHE_H
#define GEVO_CORE_VARIANT_CACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/fitness.h"
#include "mutation/edit.h"

namespace gevo::core {

/// Thread-safe, sharded fitness cache keyed by canonical edit-list bytes.
class VariantCache {
  public:
    /// \p shardCount is rounded up to a power of two (min 1).
    /// \p maxEntries of 0 keeps the cache unbounded; otherwise entries
    /// beyond the bound are evicted least-recently-used. The bound is
    /// enforced per shard (shard capacity = maxEntries / shards), so the
    /// total entry count never exceeds maxEntries; the shard count is
    /// clamped down when maxEntries is smaller than the shard count.
    explicit VariantCache(std::size_t shardCount = 16,
                          std::size_t maxEntries = 0);

    VariantCache(const VariantCache&) = delete;
    VariantCache& operator=(const VariantCache&) = delete;

    /// Canonical content key of \p edits: a byte string encoding every
    /// semantic field of every edit in order (kind, srcUid, dstUid,
    /// opIndex, operand, newUid). Injective — distinct lists (including
    /// reorderings of the same edits) always yield distinct keys.
    static std::string keyOf(const std::vector<mut::Edit>& edits);

    /// 64-bit FNV-1a of a canonical key (shard selection, diagnostics).
    static std::uint64_t hashKey(const std::string& key);

    /// Look up a previously inserted result. Counts a hit or miss; a hit
    /// refreshes the entry's recency when the cache is bounded.
    bool lookup(const std::string& key, FitnessResult* out) const;

    /// Insert (idempotent: re-inserting an existing key keeps the first
    /// value, which is safe because fitness is deterministic in the key,
    /// but still refreshes the entry's recency — a re-inserted key is a
    /// hot key). May evict the shard's least-recently-used entry when
    /// bounded and full.
    void insert(const std::string& key, const FitnessResult& result);

    /// Deterministic snapshot of every entry, least-recently-used first
    /// within each shard (insertion order by sorted key when unbounded —
    /// recency is not tracked then). Feeding a snapshot back through
    /// insert() in order reproduces both the contents and the LRU
    /// eviction order, which is what makes persisted caches re-enter
    /// recency deterministically (core/cache_store.h). Safe to call
    /// concurrently with lookups/inserts: shards are locked one at a
    /// time, so the result is a per-shard-consistent view.
    std::vector<std::pair<std::string, FitnessResult>> snapshot() const;

    /// Bulk insert() of \p entries in order (preserves LRU order of a
    /// snapshot). Returns the number of keys actually added (existing
    /// keys refresh recency but do not count). Does not touch the
    /// hit/miss counters.
    std::size_t
    preload(const std::vector<std::pair<std::string, FitnessResult>>& entries);

    /// Aggregate counters since construction / clear().
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t entries = 0;
        std::uint64_t evictions = 0;

        double
        hitRate() const
        {
            const auto total = hits + misses;
            return total ? static_cast<double>(hits) /
                               static_cast<double>(total)
                         : 0.0;
        }
    };
    Stats stats() const;

    /// Entry bound this cache was built with (0 = unbounded).
    std::size_t maxEntries() const { return maxEntries_; }

    /// Drop every entry and reset the counters.
    void clear();

  private:
    struct Shard {
        mutable std::mutex mu;
        /// Recency list, most-recent first; only maintained when bounded.
        mutable std::list<std::string> order;
        /// Value plus its position in `order` (order.end() if unbounded).
        struct Entry {
            FitnessResult result;
            std::list<std::string>::iterator where;
        };
        std::unordered_map<std::string, Entry> map;
    };

    Shard& shardFor(const std::string& key);
    const Shard& shardFor(const std::string& key) const;

    /// insert() body; returns true when the key was new to the cache.
    bool insertImpl(const std::string& key, const FitnessResult& result);

    std::vector<Shard> shards_;
    std::uint64_t shardMask_ = 0;
    std::size_t maxEntries_ = 0;
    std::size_t shardCapacity_ = 0; ///< 0 = unbounded.
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace gevo::core

#endif // GEVO_CORE_VARIANT_CACHE_H
