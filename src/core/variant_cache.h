/// \file
/// Content-addressed fitness cache over edit lists.
///
/// The evolutionary search re-creates identical genotypes constantly:
/// crossover of converged parents clones edit lists, elites reappear, and
/// dropped-then-resampled edits recreate earlier individuals. GEVO (Liou et
/// al., TACO 2020) reports that fitness caching is what makes 256x300
/// searches tractable; this cache is our equivalent. Keys are a canonical
/// byte encoding of the edit list — injective, so two distinct lists can
/// never collide, and order-preserving, so reordered-but-distinct lists map
/// to distinct keys (edit application is order-sensitive).
///
/// The cache is sharded: each shard owns a mutex plus an open hash map, so
/// concurrent inserts from the evaluation thread pool contend only when
/// they land on the same shard. Results are immutable once inserted —
/// fitness is a deterministic function of the edit list — which is what
/// makes serving cached results trajectory-neutral (same seed, same best
/// edit list, cache on or off).

#ifndef GEVO_CORE_VARIANT_CACHE_H
#define GEVO_CORE_VARIANT_CACHE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fitness.h"
#include "mutation/edit.h"

namespace gevo::core {

/// Thread-safe, sharded fitness cache keyed by canonical edit-list bytes.
class VariantCache {
  public:
    /// \p shardCount is rounded up to a power of two (min 1).
    explicit VariantCache(std::size_t shardCount = 16);

    VariantCache(const VariantCache&) = delete;
    VariantCache& operator=(const VariantCache&) = delete;

    /// Canonical content key of \p edits: a byte string encoding every
    /// semantic field of every edit in order (kind, srcUid, dstUid,
    /// opIndex, operand, newUid). Injective — distinct lists (including
    /// reorderings of the same edits) always yield distinct keys.
    static std::string keyOf(const std::vector<mut::Edit>& edits);

    /// 64-bit FNV-1a of a canonical key (shard selection, diagnostics).
    static std::uint64_t hashKey(const std::string& key);

    /// Look up a previously inserted result. Counts a hit or miss.
    bool lookup(const std::string& key, FitnessResult* out) const;

    /// Insert (idempotent: re-inserting an existing key is a no-op, which
    /// is safe because fitness is deterministic in the key).
    void insert(const std::string& key, const FitnessResult& result);

    /// Aggregate counters since construction / clear().
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t entries = 0;

        double
        hitRate() const
        {
            const auto total = hits + misses;
            return total ? static_cast<double>(hits) /
                               static_cast<double>(total)
                         : 0.0;
        }
    };
    Stats stats() const;

    /// Drop every entry and reset the counters.
    void clear();

  private:
    struct Shard {
        mutable std::mutex mu;
        std::unordered_map<std::string, FitnessResult> map;
    };

    Shard& shardFor(const std::string& key);
    const Shard& shardFor(const std::string& key) const;

    std::vector<Shard> shards_;
    std::uint64_t shardMask_ = 0;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
};

} // namespace gevo::core

#endif // GEVO_CORE_VARIANT_CACHE_H
