#include "core/workload.h"

#include <cstdlib>

#include "support/logging.h"
#include "support/strings.h"

namespace gevo::core {

std::int64_t
WorkloadConfig::knobInt(const std::string& name, std::int64_t fallback) const
{
    if (flags != nullptr && flags->has(name))
        return flags->getInt(name, fallback);
    const auto it = defaults.find(name);
    if (it != defaults.end()) {
        char* end = nullptr;
        const auto v = std::strtoll(it->second.c_str(), &end, 0);
        if (end == nullptr || *end != '\0' || end == it->second.c_str())
            GEVO_FATAL("workload knob %s: malformed default '%s'",
                       name.c_str(), it->second.c_str());
        return v;
    }
    return fallback;
}

WorkloadRegistry&
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

void
WorkloadRegistry::add(Workload workload)
{
    GEVO_ASSERT(!workload.name.empty(), "unnamed workload");
    GEVO_ASSERT(static_cast<bool>(workload.make),
                "workload without a factory");
    if (find(workload.name) != nullptr)
        GEVO_FATAL("workload '%s' registered twice", workload.name.c_str());
    entries_.push_back(std::move(workload));
}

const Workload*
WorkloadRegistry::find(const std::string& name) const
{
    for (const auto& w : entries_) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

const Workload&
WorkloadRegistry::get(const std::string& name) const
{
    const Workload* w = find(name);
    if (w == nullptr) {
        std::string known;
        for (const auto& n : names())
            known += (known.empty() ? "" : ", ") + n;
        GEVO_FATAL("unknown workload '%s' (registered: %s)", name.c_str(),
                   known.c_str());
    }
    return *w;
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& w : entries_)
        out.push_back(w.name);
    return out;
}

std::vector<std::string>
WorkloadRegistry::resolveList(const std::string& csv) const
{
    std::string known;
    for (const auto& n : names())
        known += (known.empty() ? "" : ", ") + n;
    // split() yields at least one entry even for an empty csv, so the
    // per-entry emptiness check also covers the empty-list case.
    std::vector<std::string> out;
    for (const auto& raw : split(csv, ',')) {
        const auto name = std::string(trim(raw));
        if (name.empty())
            GEVO_FATAL("empty workload name in list '%s' (registered: "
                       "%s)",
                       csv.c_str(), known.c_str());
        get(name); // fatal on unknown, listing what is registered
        out.push_back(name);
    }
    return out;
}

} // namespace gevo::core
