/// \file
/// Workload abstraction + registry: the uniform recipe for "something the
/// evolutionary search can optimize".
///
/// A Workload names an application, knows how to build a self-owning
/// instance (base module + fitness function + whatever the fitness
/// references: datasets, drivers, oracles) at a caller-chosen scale, and
/// carries the search defaults its figures were tuned with. The registry
/// is what lets one driver (`examples/evolve.cpp`), the throughput bench
/// and the variability bench iterate every application instead of each
/// app shipping its own ~150-line driver.
///
/// Apps register themselves via `apps::registerBuiltinWorkloads()` (an
/// explicit call, not static initializers — gevo is a static library, so
/// initializer-only translation units would be dropped by the linker).

#ifndef GEVO_CORE_WORKLOAD_H
#define GEVO_CORE_WORKLOAD_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/fitness.h"
#include "core/params.h"
#include "sim/device_config.h"
#include "support/flags.h"

namespace gevo::core {

/// Scale/configuration inputs for building a workload instance. Knob
/// precedence: explicit user flag (or GEVO_* env) > consumer-supplied
/// default > the workload's own baked-in default.
struct WorkloadConfig {
    sim::DeviceConfig device = sim::p100();
    /// Optional user knob source (nullptr = no user overrides).
    const Flags* flags = nullptr;
    /// Consumer-scale knob defaults (e.g. the throughput bench pins
    /// "pairs" to 4); lose to explicit user flags.
    std::map<std::string, std::string> defaults;

    /// Integer knob lookup with the precedence above.
    std::int64_t knobInt(const std::string& name,
                         std::int64_t fallback) const;
};

/// A named scale knob a workload understands (drives --help listings).
struct KnobSpec {
    std::string name;
    std::int64_t defaultValue = 0;
    std::string help;
};

/// A fully built, self-owning workload instance: the base module, the
/// fitness function, and everything the fitness references (datasets,
/// drivers, CPU oracles). Thread-safe to evaluate concurrently, like the
/// FitnessFunction it exposes.
class WorkloadInstance {
  public:
    virtual ~WorkloadInstance() = default;

    virtual const ir::Module& module() const = 0;
    virtual const FitnessFunction& fitness() const = 0;

    /// One-line scale description for banners (e.g. "6 pairs, 64
    /// threads"). Empty = nothing to say.
    virtual std::string banner() const { return {}; }

    /// The paper's known-good edit set against this instance's module
    /// (reporting ceiling); empty when the workload has none.
    virtual std::vector<mut::Edit> goldenEdits() const { return {}; }

    /// Speedup the paper reports for the golden set (0 = not applicable).
    virtual double paperCeiling() const { return 0.0; }

    /// Held-out validation of a search's best edit list (e.g. SIMCoV's
    /// memory-tight large grid). Returns an empty string when the variant
    /// passes, else a diagnostic.
    virtual std::string
    validateBest(const std::vector<mut::Edit>& edits) const
    {
        (void)edits;
        return {};
    }
};

/// Registry entry: how to build a workload and how to search it.
struct Workload {
    std::string name;    ///< Registry key (e.g. "adept-v0").
    std::string summary; ///< One-liner for --help / --list.
    /// Scale knobs `make` understands (documented defaults).
    std::vector<KnobSpec> knobs;
    /// Example-scale search defaults (what examples/evolve.cpp uses).
    EvolutionParams searchDefaults;
    /// Bench-scale search defaults (what bench/throughput.cpp uses —
    /// these pin the ROADMAP's perf-anchor configuration).
    EvolutionParams benchDefaults;
    /// Bench-scale build knobs (paired with benchDefaults).
    std::map<std::string, std::string> benchKnobs;
    /// Independent-run count / generations / population for the Figure 6
    /// variability bench, plus its build knobs (the figure's historical
    /// scale, which is not always the throughput bench's).
    std::uint32_t variabilityRuns = 3;
    std::uint32_t variabilityGens = 12;
    std::uint32_t variabilityPop = 16;
    std::map<std::string, std::string> variabilityKnobs;
    /// Build an instance at the configured scale.
    std::function<std::unique_ptr<WorkloadInstance>(const WorkloadConfig&)>
        make;
};

/// Process-wide workload registry (registration order preserved).
class WorkloadRegistry {
  public:
    static WorkloadRegistry& instance();

    /// Register; fatal on duplicate names (two apps claiming one name is
    /// a build misconfiguration, not a runtime condition).
    void add(Workload workload);

    /// nullptr when \p name is unknown.
    const Workload* find(const std::string& name) const;

    /// Fatal when \p name is unknown (lists what is registered).
    const Workload& get(const std::string& name) const;

    /// Registered names, in registration order.
    std::vector<std::string> names() const;

    /// Resolve a `--workloads=a,b,c` list: entries are trimmed and must
    /// each name a registered workload. Fatal — listing what is
    /// registered — on an unknown name, an empty entry (`a,,b`, a
    /// trailing comma) or an empty list, so a typo can never silently
    /// skip a workload a bench or CI gate was asked to cover.
    std::vector<std::string> resolveList(const std::string& csv) const;

    std::size_t size() const { return entries_.size(); }

  private:
    WorkloadRegistry() = default;
    std::vector<Workload> entries_;
};

} // namespace gevo::core

#endif // GEVO_CORE_WORKLOAD_H
