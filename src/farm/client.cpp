#include "farm/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "farm/endpoint.h"
#include "farm/protocol.h"
#include "support/io.h"
#include "support/logging.h"
#include "support/strings.h"

namespace gevo::farm {

namespace {

using core::EvalFailure;
using core::EvalOutcome;

/// Redispatch budget per evaluation: the first strike forgives a worker
/// dying underneath an innocent request; the second writes the variant
/// off as the likely killer (matching the isolated backend's
/// one-respawn-then-penalize discipline at dispatch).
constexpr std::uint8_t kStrikes = 2;
/// Requests pipelined per connection: one being evaluated, one queued
/// behind it so the worker never idles between evaluations.
constexpr std::size_t kPipelineDepth = 2;
/// Consecutive failed dials before a worker is declared gone for the
/// rest of the run.
constexpr std::uint32_t kMaxConnectAttempts = 6;
constexpr int kConnectTimeoutMs = 1000;
constexpr int kHandshakeTimeoutMs = 5000;

std::chrono::milliseconds
backoffAfter(std::uint32_t attempts)
{
    const std::uint32_t shift = std::min(attempts, 6u);
    return std::chrono::milliseconds(
        std::min<std::uint64_t>(100ull << shift, 5000));
}

class RemoteBackend final : public core::EvaluationBackend {
  public:
    RemoteBackend(const ir::Module& base,
                  const core::FitnessFunction& fitness,
                  const core::EvolutionParams& params)
        : compiler_(base), fitness_(fitness),
          timeoutMs_(params.evalTimeoutMs),
          scope_(trajectoryScope(compiler_, fitness))
    {
        GEVO_ASSERT(timeoutMs_ > 0, "remote deadline needs a budget");
        // A worker vanishing mid-send must surface as a write error on
        // the socket, not a process-killing SIGPIPE.
        std::signal(SIGPIPE, SIG_IGN);
        for (const auto& part : split(params.workers, ',')) {
            const auto spec = trim(part);
            if (spec.empty())
                continue;
            Remote r;
            std::string error;
            if (!parseEndpoint(std::string(spec), &r.ep, &error))
                GEVO_FATAL("--workers: %s", error.c_str());
            remotes_.push_back(std::move(r));
        }
        if (remotes_.empty())
            GEVO_FATAL("--workers: no endpoints in '%s'",
                       params.workers.c_str());
        // Dial eagerly so a misconfigured farm (wrong workload, wrong
        // version) warns before the search invests anything; failures
        // here just start the normal backoff schedule.
        for (auto& r : remotes_)
            tryConnect(&r);
    }

    ~RemoteBackend() override
    {
        for (auto& r : remotes_)
            closeRemote(&r);
        // Failure counters are reported loudly (the run completed, but
        // an operator should know the farm misbehaved); a clean run
        // logs at info level only.
        const bool faulty =
            counters_.redispatched + counters_.disconnects +
                counters_.crcErrors + counters_.rpcTimeouts +
                counters_.handshakeRejects + counters_.localEvals >
            0;
        (faulty ? warn : inform)(
            "remote backend: %llu dispatched, %llu redispatched, "
            "%llu disconnects, %llu crc errors, %llu rpc timeouts, "
            "%llu handshake rejects, %llu reconnects, %llu local "
            "evaluations",
            counters_.dispatched, counters_.redispatched,
            counters_.disconnects, counters_.crcErrors,
            counters_.rpcTimeouts, counters_.handshakeRejects,
            counters_.reconnects, counters_.localEvals);
    }

    void
    evaluateBatch(const std::vector<const std::vector<mut::Edit>*>& batch,
                  core::VariantCache* programCache,
                  std::vector<EvalOutcome>* out) override
    {
        out->assign(batch.size(), EvalOutcome{});
        out_ = out;
        if (batch.empty())
            return;
        const std::uint64_t seqBase = nextSeq_;
        nextSeq_ += batch.size();

        tasks_.assign(batch.size(), Task{});
        for (std::size_t i = 0; i < batch.size(); ++i) {
            EvalRequest req;
            req.seq = seqBase + i;
            req.useCache = programCache != nullptr;
            req.edits = *batch[i];
            appendFrame(&tasks_[i].wire, encodeEvalRequest(req));
        }
        pending_.clear();
        for (std::size_t i = 0; i < batch.size(); ++i)
            pending_.push_back(i);
        settled_ = 0;
        seqBase_ = seqBase;
        batchSize_ = batch.size();

        heartbeat();
        while (settled_ < batchSize_) {
            tryReconnects();
            if (!anyUp() && allGone()) {
                localFallback(batch, programCache);
                break;
            }
            dispatchPending();
            pollOnce(programCache);
        }
        tasks_.clear();
        pending_.clear();
        out_ = nullptr;
    }

    std::string
    describe() const override
    {
        return strformat("remote x%zu (deadline %u ms)", remotes_.size(),
                         timeoutMs_);
    }

  private:
    // Deadlines and backoff must survive NTP steps: monotonic only.
    using Clock = std::chrono::steady_clock;
    static_assert(Clock::is_steady, "deadline clock must be monotonic");

    struct Remote {
        Endpoint ep;
        int fd = -1;
        bool up = false;       ///< Connected and handshaken.
        bool rejected = false; ///< Handshake rejected: never redial.
        bool gone = false;     ///< Permanently unusable this run.
        std::uint32_t attempts = 0; ///< Consecutive failed dials.
        Clock::time_point nextAttempt = Clock::time_point::min();
        bool everUp = false;
        FrameReader reader;
        /// Batch indices in dispatch order; front is being evaluated.
        std::deque<std::size_t> inflight;
        Clock::time_point frontDeadline{};
    };

    struct Task {
        std::string wire; ///< Pre-encoded request frame.
        std::uint8_t strikes = 0;
        EvalFailure lastStrike = EvalFailure::None;
        bool settled = false;
    };

    struct Counters {
        unsigned long long dispatched = 0;
        unsigned long long redispatched = 0;
        unsigned long long disconnects = 0;
        unsigned long long crcErrors = 0;
        unsigned long long rpcTimeouts = 0;
        unsigned long long handshakeRejects = 0;
        unsigned long long reconnects = 0;
        unsigned long long localEvals = 0;
    };

    bool
    anyUp() const
    {
        return std::any_of(remotes_.begin(), remotes_.end(),
                           [](const Remote& r) { return r.up; });
    }

    bool
    allGone() const
    {
        return std::all_of(remotes_.begin(), remotes_.end(),
                           [](const Remote& r) { return r.gone; });
    }

    void
    closeRemote(Remote* r)
    {
        if (r->fd >= 0)
            ::close(r->fd);
        r->fd = -1;
        r->up = false;
        r->reader.reset();
        r->inflight.clear();
    }

    /// The deterministic penalty for an evaluation the farm could not
    /// complete (no hostnames, no timestamps: the same variant scores
    /// the same penalty on every run).
    EvalOutcome
    penaltyOutcome(EvalFailure failure) const
    {
        EvalOutcome out;
        out.failure = failure;
        switch (failure) {
          case EvalFailure::ConnectionLost:
            out.result = core::FitnessResult::fail(
                "remote evaluation connection lost");
            break;
          case EvalFailure::RpcTimeout:
            out.result = core::FitnessResult::fail(
                strformat("remote evaluation exceeded the %u ms deadline",
                          timeoutMs_));
            break;
          case EvalFailure::ProtocolError:
            out.result = core::FitnessResult::fail(
                "remote worker protocol error");
            break;
          case EvalFailure::HandshakeRejected:
            out.result = core::FitnessResult::fail(
                "remote worker rejected the trajectory handshake");
            break;
          default:
            GEVO_PANIC("penaltyOutcome(%d)", static_cast<int>(failure));
        }
        return out;
    }

    /// Record a strike against \p task. The second strike settles it as
    /// a penalty; before that it goes back to the head of the pending
    /// queue for redispatch to another worker.
    void
    strike(std::size_t task, EvalFailure kind)
    {
        Task& t = tasks_[task];
        ++t.strikes;
        t.lastStrike = kind;
        if (kind == EvalFailure::RpcTimeout)
            ++counters_.rpcTimeouts;
        if (t.strikes >= kStrikes) {
            (*out_)[task] = penaltyOutcome(kind);
            t.settled = true;
            ++settled_;
        } else {
            ++counters_.redispatched;
            pending_.push_front(task);
        }
    }

    /// The transport under \p r died (EOF, reset, write failure,
    /// corrupt frame). The front request — the one being evaluated —
    /// takes the strike; everything queued behind it is redispatched
    /// unpenalized. The endpoint goes to the redial schedule.
    void
    connectionLost(Remote* r, EvalFailure frontKind)
    {
        ++counters_.disconnects;
        // Requeue back-to-front so pending_ preserves dispatch order.
        std::deque<std::size_t> inflight = std::move(r->inflight);
        closeRemote(r);
        r->attempts = 0;
        r->nextAttempt = Clock::now(); // First redial is immediate.
        while (inflight.size() > 1) {
            pending_.push_front(inflight.back());
            inflight.pop_back();
        }
        if (!inflight.empty())
            strike(inflight.front(), frontKind);
    }

    void
    heartbeat()
    {
        // Probe idle connections at batch start so a worker that died
        // between generations is redialed before any request is risked
        // on its half-open socket. Pongs are drained during polling.
        for (auto& r : remotes_) {
            if (!r.up || !r.inflight.empty())
                continue;
            const std::string frame = [&] {
                std::string f;
                appendFrame(&f, encodePing(nextSeq_));
                return f;
            }();
            if (!writeAll(r.fd, frame.data(), frame.size()))
                connectionLost(&r, EvalFailure::ConnectionLost);
        }
    }

    void
    tryConnect(Remote* r)
    {
        std::string error;
        const int fd = connectEndpoint(r->ep, kConnectTimeoutMs, &error);
        if (fd < 0) {
            ++r->attempts;
            r->nextAttempt = Clock::now() + backoffAfter(r->attempts);
            return;
        }
        HelloMsg hello;
        hello.scope = scope_;
        hello.timeoutMs = timeoutMs_;
        std::string frame;
        appendFrame(&frame, encodeHello(hello));
        if (!writeAll(fd, frame.data(), frame.size())) {
            ::close(fd);
            ++r->attempts;
            r->nextAttempt = Clock::now() + backoffAfter(r->attempts);
            return;
        }
        // Await the HelloOk/HelloReject verdict within a hard budget.
        FrameReader reader;
        std::string payload;
        const auto deadline =
            Clock::now() + std::chrono::milliseconds(kHandshakeTimeoutMs);
        for (;;) {
            const auto st = reader.next(&payload);
            if (st == FrameReader::Status::Frame)
                break;
            if (st == FrameReader::Status::Corrupt || Clock::now() >= deadline) {
                ::close(fd);
                ++r->attempts;
                r->nextAttempt = Clock::now() + backoffAfter(r->attempts);
                return;
            }
            pollfd pfd{fd, POLLIN, 0};
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now());
            const int rc =
                ::poll(&pfd, 1,
                       static_cast<int>(std::max<long long>(left.count(), 0)));
            if (rc < 0 && errno == EINTR)
                continue;
            char tmp[4096];
            const ssize_t n = rc > 0 ? ::read(fd, tmp, sizeof(tmp)) : 0;
            if (rc > 0 && n < 0 && errno == EINTR)
                continue;
            if (rc == 0 || n <= 0) {
                ::close(fd);
                ++r->attempts;
                r->nextAttempt = Clock::now() + backoffAfter(r->attempts);
                return;
            }
            reader.push(tmp, static_cast<std::size_t>(n));
        }
        std::string text;
        if (decodeHelloOk(payload, &text)) {
            r->fd = fd;
            r->up = true;
            r->attempts = 0;
            if (r->everUp)
                ++counters_.reconnects;
            r->everUp = true;
            return;
        }
        ::close(fd);
        if (decodeHelloReject(payload, &text)) {
            // Wrong trajectory scope or protocol version: this daemon
            // can never serve this search. Same verdict a mismatched
            // checkpoint gets — refuse, loudly.
            warn("remote worker %s rejected the handshake (%s); "
                 "abandoning it for this run",
                 r->ep.spec.c_str(), text.c_str());
            ++counters_.handshakeRejects;
            r->rejected = true;
            r->gone = true;
            return;
        }
        ++r->attempts;
        r->nextAttempt = Clock::now() + backoffAfter(r->attempts);
    }

    void
    tryReconnects()
    {
        const auto now = Clock::now();
        for (auto& r : remotes_) {
            if (r.up || r.gone)
                continue;
            if (r.attempts >= kMaxConnectAttempts) {
                warn("remote worker %s unreachable after %u dial "
                     "attempts; abandoning it for this run",
                     r.ep.spec.c_str(), r.attempts);
                r.gone = true;
                continue;
            }
            if (now >= r.nextAttempt)
                tryConnect(&r);
        }
    }

    void
    dispatchPending()
    {
        while (!pending_.empty()) {
            Remote* target = nullptr;
            for (std::size_t k = 0; k < remotes_.size(); ++k) {
                Remote& r = remotes_[(rrCursor_ + k) % remotes_.size()];
                if (r.up && r.inflight.size() < kPipelineDepth) {
                    target = &r;
                    rrCursor_ = (rrCursor_ + k + 1) % remotes_.size();
                    break;
                }
            }
            if (target == nullptr)
                return;
            const std::size_t task = pending_.front();
            const std::string& wire = tasks_[task].wire;
            if (!writeAll(target->fd, wire.data(), wire.size())) {
                // The dial looked live but the send failed: strike the
                // connection's front (if any) and retry this task on the
                // next loop — it was never in flight here.
                connectionLost(target, EvalFailure::ConnectionLost);
                continue;
            }
            pending_.pop_front();
            target->inflight.push_back(task);
            ++counters_.dispatched;
            if (target->inflight.size() == 1)
                armFrontDeadline(target);
        }
    }

    void
    armFrontDeadline(Remote* r)
    {
        r->frontDeadline =
            Clock::now() + std::chrono::milliseconds(timeoutMs_);
    }

    void
    pollOnce(core::VariantCache* programCache)
    {
        std::vector<pollfd> fds;
        std::vector<std::size_t> owner;
        auto wake = Clock::time_point::max();
        for (std::size_t i = 0; i < remotes_.size(); ++i) {
            Remote& r = remotes_[i];
            if (r.up) {
                fds.push_back({r.fd, POLLIN, 0});
                owner.push_back(i);
                if (!r.inflight.empty())
                    wake = std::min(wake, r.frontDeadline);
            } else if (!r.gone) {
                wake = std::min(wake, r.nextAttempt);
            }
        }
        const auto now = Clock::now();
        int timeout = 50; // Idle fallback: re-examine soon.
        if (wake != Clock::time_point::max()) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(wake -
                                                                      now);
            timeout = static_cast<int>(
                std::clamp<long long>(left.count() + 1, 0, 1000));
        }
        const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                              timeout);
        if (rc < 0 && errno != EINTR)
            GEVO_PANIC("remote backend: poll failed: %s",
                       std::strerror(errno));
        if (rc > 0) {
            for (std::size_t k = 0; k < fds.size(); ++k) {
                if (fds[k].revents & (POLLIN | POLLHUP | POLLERR))
                    drainRemote(&remotes_[owner[k]], programCache);
            }
        }
        // Deadline pass: a silent front past its budget means the worker
        // is wedged (or the link is black-holing) — drop the connection,
        // strike the front as an RPC timeout, redispatch the rest.
        const auto after = Clock::now();
        for (auto& r : remotes_) {
            if (r.up && !r.inflight.empty() && after >= r.frontDeadline)
                connectionLost(&r, EvalFailure::RpcTimeout);
        }
    }

    void
    drainRemote(Remote* r, core::VariantCache* programCache)
    {
        char tmp[65536];
        const ssize_t n = ::read(r->fd, tmp, sizeof(tmp));
        if (n < 0 && (errno == EINTR || errno == EAGAIN))
            return;
        if (n <= 0) {
            connectionLost(r, EvalFailure::ConnectionLost);
            return;
        }
        r->reader.push(tmp, static_cast<std::size_t>(n));
        std::string payload;
        for (;;) {
            switch (r->reader.next(&payload)) {
              case FrameReader::Status::Frame:
                if (!handleFrame(r, payload, programCache))
                    return; // Connection already torn down.
                continue;
              case FrameReader::Status::Corrupt:
                ++counters_.crcErrors;
                connectionLost(r, EvalFailure::ProtocolError);
                return;
              case FrameReader::Status::NeedMore:
                return;
            }
        }
    }

    bool
    handleFrame(Remote* r, const std::string& payload,
                core::VariantCache* programCache)
    {
        switch (payloadType(payload)) {
          case MsgType::Pong:
            return true;
          case MsgType::EvalResult: {
            EvalReply reply;
            if (!decodeEvalReply(payload, &reply))
                break;
            if (reply.seq < seqBase_ || reply.seq - seqBase_ >= batchSize_)
                break;
            const std::size_t task =
                static_cast<std::size_t>(reply.seq - seqBase_);
            const auto it = std::find(r->inflight.begin(),
                                      r->inflight.end(), task);
            if (it == r->inflight.end())
                break; // A result we never asked this worker for.
            const bool wasFront = it == r->inflight.begin();
            r->inflight.erase(it);
            if (wasFront && !r->inflight.empty())
                armFrontDeadline(r);
            // Commit strictly by batch index; arrival order is noise.
            (*out_)[task] = reply.outcome;
            tasks_[task].settled = true;
            ++settled_;
            // The worker's program-cache insert lives in its process;
            // replay it into ours (exactly the isolated backend's
            // parent-side replay).
            if (programCache != nullptr && !reply.programKey.empty())
                programCache->insert(reply.programKey,
                                     reply.outcome.result);
            return true;
          }
          default:
            break;
        }
        ++counters_.crcErrors;
        connectionLost(r, EvalFailure::ProtocolError);
        return false;
    }

    /// Every worker is gone: finish the batch in-process rather than
    /// abandoning the search. Tasks that already burned a strike are
    /// settled with their recorded penalty instead of being evaluated
    /// here — a variant that plausibly killed a worker must not get a
    /// shot at the engine's own address space.
    void
    localFallback(const std::vector<const std::vector<mut::Edit>*>& batch,
                  core::VariantCache* programCache)
    {
        if (!warnedFallback_) {
            warn("remote backend: every worker is gone; continuing with "
                 "local in-process evaluation");
            warnedFallback_ = true;
        }
        while (!pending_.empty()) {
            const std::size_t task = pending_.front();
            pending_.pop_front();
            Task& t = tasks_[task];
            if (t.settled)
                continue;
            if (t.strikes > 0) {
                (*out_)[task] = penaltyOutcome(t.lastStrike);
            } else {
                ++counters_.localEvals;
                (*out_)[task] = core::evaluateTask(compiler_, fitness_,
                                                   *batch[task],
                                                   programCache, nullptr);
            }
            t.settled = true;
            ++settled_;
        }
    }

    core::VariantCompiler compiler_; ///< Local fallback + scope hash.
    const core::FitnessFunction& fitness_;
    std::uint32_t timeoutMs_;
    std::uint64_t scope_;
    std::vector<Remote> remotes_;
    std::size_t rrCursor_ = 0;
    std::uint64_t nextSeq_ = 0;

    // Per-batch state (evaluateBatch is single-threaded by contract).
    std::vector<Task> tasks_;
    std::deque<std::size_t> pending_;
    std::size_t settled_ = 0;
    std::uint64_t seqBase_ = 0;
    std::size_t batchSize_ = 0;
    /// The current batch's output vector (valid within evaluateBatch).
    std::vector<EvalOutcome>* out_ = nullptr;

    Counters counters_;
    bool warnedFallback_ = false;
};

} // namespace

} // namespace gevo::farm

namespace gevo::core {

std::unique_ptr<EvaluationBackend>
makeRemoteBackend(const ir::Module& base, const FitnessFunction& fitness,
                  const EvolutionParams& params)
{
    return std::make_unique<farm::RemoteBackend>(base, fitness, params);
}

} // namespace gevo::core
