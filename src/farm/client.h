/// \file
/// RemoteBackend: the farm client on the EvaluationBackend seam
/// (core/eval_backend.h). Shards each generation's batch across the
/// configured worker daemons over the framed protocol, committing
/// results strictly by batch index no matter which worker answers in
/// what order — so a fault-free remote run is trajectory-identical
/// (byte-identical --dump-history) to the in-process backend.
///
/// Failure discipline, all deterministic given a deterministic fault
/// schedule:
///   - Per-evaluation deadline (`--eval-timeout-ms`, same budget as the
///     isolated watchdog) measured on a monotonic clock from the moment
///     a request reaches the front of its connection's pipeline.
///   - A worker death / CRC-corrupt frame / blown deadline strikes only
///     the request actively being evaluated (the pipeline front);
///     bystander in-flight requests are redispatched unpenalized.
///   - Two strikes settle the evaluation as a deterministic penalty
///     (ConnectionLost / ProtocolError / RpcTimeout) that the engine
///     counts and quarantines exactly like PR 6's isolated failures.
///   - Lost workers are redialed with exponential backoff; a worker
///     whose handshake is rejected (wrong trajectory scope or protocol
///     version) is abandoned permanently.
///   - When every worker is gone, remaining evaluations degrade to
///     local in-process execution with a warning — the search finishes.

#ifndef GEVO_FARM_CLIENT_H
#define GEVO_FARM_CLIENT_H

// The implementation lives behind core::makeRemoteBackend (declared in
// core/eval_backend.h and routed by makeBackend) so engine-layer code
// never includes farm headers; this header exists for farm-internal
// consumers and tests.

#include "core/eval_backend.h"

#endif // GEVO_FARM_CLIENT_H
