#include "farm/endpoint.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/strings.h"

namespace gevo::farm {

namespace {

bool
setBlocking(int fd, bool blocking)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    const int want = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
    return ::fcntl(fd, F_SETFL, want) == 0;
}

/// Fill a sockaddr_un; false when the path does not fit (sun_path is
/// ~108 bytes).
bool
unixAddr(const std::string& path, sockaddr_un* addr, std::string* error)
{
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr->sun_path)) {
        *error = strformat("unix socket path too long (%zu bytes, max %zu)",
                           path.size(), sizeof(addr->sun_path) - 1);
        return false;
    }
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

bool
parseEndpoint(const std::string& spec, Endpoint* out, std::string* error)
{
    *out = Endpoint{};
    out->spec = spec;
    if (spec.rfind("unix:", 0) == 0) {
        out->isUnix = true;
        out->path = spec.substr(5);
        if (out->path.empty()) {
            *error = strformat("endpoint '%s': empty unix path",
                               spec.c_str());
            return false;
        }
        return true;
    }
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == spec.size()) {
        *error = strformat("endpoint '%s': want host:port or unix:/path",
                           spec.c_str());
        return false;
    }
    out->host = spec.substr(0, colon);
    out->port = spec.substr(colon + 1);
    if (out->port.find_first_not_of("0123456789") != std::string::npos) {
        *error = strformat("endpoint '%s': port must be numeric",
                           spec.c_str());
        return false;
    }
    return true;
}

int
listenEndpoint(const Endpoint& ep, std::string* error)
{
    if (ep.isUnix) {
        sockaddr_un addr;
        if (!unixAddr(ep.path, &addr, error))
            return -1;
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            *error = strformat("socket: %s", std::strerror(errno));
            return -1;
        }
        ::unlink(ep.path.c_str()); // Stale file from a killed daemon.
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 16) != 0) {
            *error = strformat("bind/listen %s: %s", ep.spec.c_str(),
                               std::strerror(errno));
            ::close(fd);
            return -1;
        }
        return fd;
    }

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* res = nullptr;
    const int gai =
        ::getaddrinfo(ep.host.c_str(), ep.port.c_str(), &hints, &res);
    if (gai != 0) {
        *error = strformat("resolve %s: %s", ep.spec.c_str(),
                           ::gai_strerror(gai));
        return -1;
    }
    int fd = -1;
    for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 16) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        *error = strformat("bind/listen %s: %s", ep.spec.c_str(),
                           std::strerror(errno));
    return fd;
}

int
connectEndpoint(const Endpoint& ep, int timeoutMs, std::string* error)
{
    int fd = -1;
    if (ep.isUnix) {
        sockaddr_un addr;
        if (!unixAddr(ep.path, &addr, error))
            return -1;
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            *error = strformat("socket: %s", std::strerror(errno));
            return -1;
        }
        if (!setBlocking(fd, false)) {
            *error = "fcntl failed";
            ::close(fd);
            return -1;
        }
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0 &&
            errno != EINPROGRESS && errno != EAGAIN) {
            *error = strformat("connect %s: %s", ep.spec.c_str(),
                               std::strerror(errno));
            ::close(fd);
            return -1;
        }
    } else {
        addrinfo hints{};
        hints.ai_family = AF_UNSPEC;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo* res = nullptr;
        const int gai =
            ::getaddrinfo(ep.host.c_str(), ep.port.c_str(), &hints, &res);
        if (gai != 0) {
            *error = strformat("resolve %s: %s", ep.spec.c_str(),
                               ::gai_strerror(gai));
            return -1;
        }
        for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
            fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
            if (fd < 0)
                continue;
            if (!setBlocking(fd, false)) {
                ::close(fd);
                fd = -1;
                continue;
            }
            if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0 ||
                errno == EINPROGRESS)
                break;
            ::close(fd);
            fd = -1;
        }
        ::freeaddrinfo(res);
        if (fd < 0) {
            *error = strformat("connect %s: %s", ep.spec.c_str(),
                               std::strerror(errno));
            return -1;
        }
    }

    // Await connection completion within the budget.
    pollfd pfd{fd, POLLOUT, 0};
    int rc;
    while ((rc = ::poll(&pfd, 1, timeoutMs)) < 0 && errno == EINTR) {
    }
    if (rc <= 0) {
        *error = strformat("connect %s: %s", ep.spec.c_str(),
                           rc == 0 ? "timed out" : std::strerror(errno));
        ::close(fd);
        return -1;
    }
    int soErr = 0;
    socklen_t len = sizeof(soErr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &len) != 0 ||
        soErr != 0) {
        *error = strformat("connect %s: %s", ep.spec.c_str(),
                           std::strerror(soErr != 0 ? soErr : errno));
        ::close(fd);
        return -1;
    }
    if (!setBlocking(fd, true)) {
        *error = "fcntl failed";
        ::close(fd);
        return -1;
    }
    if (!ep.isUnix) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    return fd;
}

} // namespace gevo::farm
