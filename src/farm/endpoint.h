/// \file
/// Farm endpoint addressing: "host:port" (TCP, for workers on other
/// machines) or "unix:/path" (Unix-domain, for loopback farms — tests,
/// CI and bench use these to dodge port races). Shared by the daemon's
/// listener (farm/server.cpp) and the RemoteBackend's dialer
/// (farm/client.cpp).

#ifndef GEVO_FARM_ENDPOINT_H
#define GEVO_FARM_ENDPOINT_H

#include <string>

namespace gevo::farm {

struct Endpoint {
    std::string spec; ///< The original text, for logs.
    bool isUnix = false;
    std::string host; ///< TCP only.
    std::string port; ///< TCP only.
    std::string path; ///< Unix only.
};

/// Parse "host:port" or "unix:/path". False (with \p error set) on
/// malformed specs.
bool parseEndpoint(const std::string& spec, Endpoint* out,
                   std::string* error);

/// Bind + listen. Returns the listening fd, or -1 with \p error set.
/// Unix paths are unlinked first (a stale socket file from a killed
/// daemon must not block the restart).
int listenEndpoint(const Endpoint& ep, std::string* error);

/// Connect with a wall-clock budget (non-blocking connect + poll, so an
/// unreachable host cannot wedge the caller). Returns a blocking
/// connected fd, or -1 with \p error set.
int connectEndpoint(const Endpoint& ep, int timeoutMs, std::string* error);

} // namespace gevo::farm

#endif // GEVO_FARM_ENDPOINT_H
