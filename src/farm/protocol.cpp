#include "farm/protocol.h"

#include <bit>

#include "core/cache_store.h" // crc32 — same framing as the pipe protocol.
#include "core/variant_cache.h"
#include "support/bytes.h"

namespace gevo::farm {

void
appendFrame(std::string* out, std::string_view payload)
{
    appendLeU32(out, kFrameMagic);
    appendLeU32(out, static_cast<std::uint32_t>(payload.size()));
    appendLeU32(out, core::crc32(payload.data(), payload.size()));
    out->append(payload);
}

FrameReader::Status
FrameReader::next(std::string* payload)
{
    if (buf_.size() < kFrameHeader)
        return Status::NeedMore;
    const std::uint32_t magic = readLeU32(buf_.data());
    const std::uint32_t len = readLeU32(buf_.data() + 4);
    const std::uint32_t crc = readLeU32(buf_.data() + 8);
    if (magic != kFrameMagic || len > kMaxFramePayload)
        return Status::Corrupt;
    if (buf_.size() - kFrameHeader < len)
        return Status::NeedMore;
    const char* body = buf_.data() + kFrameHeader;
    if (core::crc32(body, len) != crc)
        return Status::Corrupt;
    payload->assign(body, len);
    buf_.erase(0, kFrameHeader + len);
    return Status::Frame;
}

namespace {

void
appendString(std::string* out, std::string_view s)
{
    appendLeU32(out, static_cast<std::uint32_t>(s.size()));
    out->append(s);
}

/// Bounds-checked sequential payload reader.
struct Cursor {
    const char* p;
    std::size_t left;

    explicit Cursor(std::string_view payload)
        : p(payload.data()), left(payload.size())
    {
    }

    bool
    u8(std::uint8_t* out)
    {
        if (left < 1)
            return false;
        *out = static_cast<std::uint8_t>(*p);
        ++p;
        --left;
        return true;
    }

    bool
    u32(std::uint32_t* out)
    {
        if (left < 4)
            return false;
        *out = readLeU32(p);
        p += 4;
        left -= 4;
        return true;
    }

    bool
    u64(std::uint64_t* out)
    {
        if (left < 8)
            return false;
        *out = readLeU64(p);
        p += 8;
        left -= 8;
        return true;
    }

    bool
    str(std::string* out)
    {
        std::uint32_t n = 0;
        if (!u32(&n) || left < n)
            return false;
        out->assign(p, n);
        p += n;
        left -= n;
        return true;
    }

    bool
    done() const
    {
        return left == 0;
    }
};

bool
expectType(Cursor* c, MsgType want)
{
    std::uint8_t t = 0;
    return c->u8(&t) && t == static_cast<std::uint8_t>(want);
}

} // namespace

std::string
encodeHello(const HelloMsg& msg)
{
    std::string p;
    p.push_back(static_cast<char>(MsgType::Hello));
    appendLeU32(&p, msg.version);
    appendLeU64(&p, msg.scope);
    appendLeU32(&p, msg.timeoutMs);
    return p;
}

std::string
encodeHelloOk(std::string_view description)
{
    std::string p;
    p.push_back(static_cast<char>(MsgType::HelloOk));
    appendString(&p, description);
    return p;
}

std::string
encodeHelloReject(std::string_view reason)
{
    std::string p;
    p.push_back(static_cast<char>(MsgType::HelloReject));
    appendString(&p, reason);
    return p;
}

std::string
encodeEvalRequest(const EvalRequest& req)
{
    std::string p;
    p.push_back(static_cast<char>(MsgType::Eval));
    appendLeU64(&p, req.seq);
    p.push_back(req.useCache ? 1 : 0);
    appendString(&p, mut::serializeEdits(req.edits));
    return p;
}

std::string
encodeEvalReply(const EvalReply& reply)
{
    std::string p;
    p.push_back(static_cast<char>(MsgType::EvalResult));
    appendLeU64(&p, reply.seq);
    p.push_back(reply.outcome.result.valid ? 1 : 0);
    appendLeU32(&p, static_cast<std::uint32_t>(
                        reply.outcome.result.objectives.size()));
    for (const double v : reply.outcome.result.objectives)
        appendLeU64(&p, std::bit_cast<std::uint64_t>(v));
    appendString(&p, reply.outcome.result.failReason);
    p.push_back(reply.outcome.simulated ? 1 : 0);
    p.push_back(reply.outcome.rejected ? 1 : 0);
    appendString(&p, reply.programKey);
    return p;
}

std::string
encodePing(std::uint64_t nonce)
{
    std::string p;
    p.push_back(static_cast<char>(MsgType::Ping));
    appendLeU64(&p, nonce);
    return p;
}

std::string
encodePong(std::uint64_t nonce)
{
    std::string p;
    p.push_back(static_cast<char>(MsgType::Pong));
    appendLeU64(&p, nonce);
    return p;
}

MsgType
payloadType(std::string_view payload)
{
    if (payload.empty())
        return MsgType{0};
    return static_cast<MsgType>(static_cast<std::uint8_t>(payload[0]));
}

bool
decodeHello(std::string_view payload, HelloMsg* out)
{
    Cursor c(payload);
    return expectType(&c, MsgType::Hello) && c.u32(&out->version) &&
           c.u64(&out->scope) && c.u32(&out->timeoutMs) && c.done();
}

bool
decodeHelloOk(std::string_view payload, std::string* description)
{
    Cursor c(payload);
    return expectType(&c, MsgType::HelloOk) && c.str(description) &&
           c.done();
}

bool
decodeHelloReject(std::string_view payload, std::string* reason)
{
    Cursor c(payload);
    return expectType(&c, MsgType::HelloReject) && c.str(reason) && c.done();
}

bool
decodeEvalRequest(std::string_view payload, EvalRequest* out)
{
    Cursor c(payload);
    std::uint8_t useCache = 0;
    std::string editsText;
    if (!expectType(&c, MsgType::Eval) || !c.u64(&out->seq) ||
        !c.u8(&useCache) || !c.str(&editsText) || !c.done())
        return false;
    out->useCache = useCache != 0;
    return mut::deserializeEdits(editsText, &out->edits);
}

bool
decodeEvalReply(std::string_view payload, EvalReply* out)
{
    Cursor c(payload);
    std::uint8_t valid = 0;
    std::uint32_t objCount = 0;
    std::uint8_t simulated = 0;
    std::uint8_t rejected = 0;
    if (!expectType(&c, MsgType::EvalResult) || !c.u64(&out->seq) ||
        !c.u8(&valid) || !c.u32(&objCount) || objCount > 64)
        return false;
    out->outcome.result.objectives.resize(objCount);
    for (auto& v : out->outcome.result.objectives) {
        std::uint64_t bits = 0;
        if (!c.u64(&bits))
            return false;
        v = std::bit_cast<double>(bits);
    }
    if (!c.str(&out->outcome.result.failReason) || !c.u8(&simulated) ||
        !c.u8(&rejected) || !c.str(&out->programKey) || !c.done())
        return false;
    out->outcome.result.valid = valid != 0;
    out->outcome.simulated = simulated != 0;
    out->outcome.rejected = rejected != 0;
    out->outcome.failure = core::EvalFailure::None;
    return true;
}

bool
decodePing(std::string_view payload, std::uint64_t* nonce)
{
    Cursor c(payload);
    return expectType(&c, MsgType::Ping) && c.u64(nonce) && c.done();
}

bool
decodePong(std::string_view payload, std::uint64_t* nonce)
{
    Cursor c(payload);
    return expectType(&c, MsgType::Pong) && c.u64(nonce) && c.done();
}

std::uint64_t
trajectoryScope(const core::VariantCompiler& compiler,
                const core::FitnessFunction& fitness)
{
    const core::CompiledVariant baseline = compiler.compile({});
    std::uint64_t scope = core::VariantCache::hashKey(
        baseline.programs.contentKey() + '\n' + fitness.name());
    if (scope == 0) // 0 means "unchecked" to scope comparators.
        scope = 1;
    return scope;
}

} // namespace gevo::farm
