/// \file
/// Wire protocol for the distributed evaluation farm: the same
/// length+CRC framed "GEVR" encoding the isolated backend speaks over
/// pipes (core/eval_backend.cpp), carried over a socket with a typed
/// message layer on top.
///
/// Frame: u32 magic "GEVR" | u32 payloadLen | u32 crc32(payload) |
/// payload. The first payload byte is the message type. A FrameReader
/// reassembles frames from arbitrary read() chunk boundaries (TCP does
/// not respect frames) and flags corruption — bad magic, oversized
/// length, CRC mismatch — without ever throwing or crashing: a
/// corrupted stream is a peer to disconnect from, not a bug.
///
/// Session shape: the client opens with Hello carrying the protocol
/// version and the trajectory-scope fingerprint (the variant-cache
/// scope: a hash of the baseline program content key and the fitness
/// name). The worker replies HelloOk or HelloReject — a daemon serving
/// a different workload/device/dataset must be rejected the way a
/// mismatched checkpoint is, or it would silently serve wrong fitness
/// values. After HelloOk, Eval/EvalResult pairs flow (pipelined;
/// results carry the request's sequence number), with Ping/Pong as the
/// idle-connection heartbeat.

#ifndef GEVO_FARM_PROTOCOL_H
#define GEVO_FARM_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/eval_backend.h"
#include "core/fitness.h"
#include "mutation/edit.h"

namespace gevo::farm {

/// Bumped on any wire-format change; mismatched peers reject at Hello.
/// v2 replaced EvalReply's single fitness scalar with the objective
/// vector.
constexpr std::uint32_t kFarmProtocolVersion = 2;

/// Frame header: u32 magic | u32 payloadLen | u32 crc32(payload).
constexpr std::uint32_t kFrameMagic = 0x52564547u; // "GEVR"
constexpr std::size_t kFrameHeader = 12;
/// Sanity bound on one payload (edit lists, fail reasons and program
/// keys are at most tens of KB); anything larger is corruption.
constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;

enum class MsgType : std::uint8_t {
    Hello = 1,
    HelloOk = 2,
    HelloReject = 3,
    Eval = 4,
    EvalResult = 5,
    Ping = 6,
    Pong = 7,
};

/// Append one complete frame (header + payload) to \p out.
void appendFrame(std::string* out, std::string_view payload);

/// Incremental frame reassembly from arbitrary chunk boundaries.
class FrameReader {
  public:
    enum class Status {
        NeedMore, ///< No complete frame buffered yet.
        Frame,    ///< *payload holds the next frame's payload.
        Corrupt,  ///< Bad magic / oversized length / CRC mismatch.
    };

    /// Buffer \p n more received bytes.
    void push(const char* data, std::size_t n) { buf_.append(data, n); }

    /// Extract the next complete frame, if any. After Corrupt the stream
    /// is unrecoverable (framing is lost); the caller must drop the
    /// connection.
    Status next(std::string* payload);

    /// Bytes buffered but not yet consumed (a non-empty residue at EOF
    /// means the peer died mid-frame).
    std::size_t pending() const { return buf_.size(); }

    void reset() { buf_.clear(); }

  private:
    std::string buf_;
};

// ---- message payloads ----

/// Client → worker session opener.
struct HelloMsg {
    std::uint32_t version = kFarmProtocolVersion;
    std::uint64_t scope = 0;     ///< Trajectory-scope fingerprint.
    std::uint32_t timeoutMs = 0; ///< Client's per-evaluation deadline.
};

/// Client → worker evaluation request. Edits travel in the textual
/// serializeEdits encoding (round-trips every field, including assigned
/// value uids — mutation/edit.h).
struct EvalRequest {
    std::uint64_t seq = 0;  ///< Echoed in the reply; pairs pipelined RPCs.
    bool useCache = false;  ///< False = compile-per-call reference path.
    std::vector<mut::Edit> edits;
};

/// Worker → client evaluation result: the EvalOutcome fields plus the
/// program content key of a fresh simulation (the client replays the
/// insert into its live cache, same as the isolated backend's parent).
struct EvalReply {
    std::uint64_t seq = 0;
    core::EvalOutcome outcome;
    std::string programKey;
};

std::string encodeHello(const HelloMsg& msg);
std::string encodeHelloOk(std::string_view description);
std::string encodeHelloReject(std::string_view reason);
std::string encodeEvalRequest(const EvalRequest& req);
std::string encodeEvalReply(const EvalReply& reply);
std::string encodePing(std::uint64_t nonce);
std::string encodePong(std::uint64_t nonce);

/// Type of a received payload (MsgType{0} when the payload is empty).
MsgType payloadType(std::string_view payload);

/// Decoders: false on any truncation or trailing bytes (a structurally
/// invalid message from a handshaken peer is a protocol error).
bool decodeHello(std::string_view payload, HelloMsg* out);
bool decodeHelloOk(std::string_view payload, std::string* description);
bool decodeHelloReject(std::string_view payload, std::string* reason);
bool decodeEvalRequest(std::string_view payload, EvalRequest* out);
bool decodeEvalReply(std::string_view payload, EvalReply* out);
bool decodePing(std::string_view payload, std::uint64_t* nonce);
bool decodePong(std::string_view payload, std::uint64_t* nonce);

/// The trajectory-scope fingerprint both endpoints hash independently:
/// the variant-cache scope formula (baseline program content key +
/// fitness name — core/engine.cpp uses the same for persistent cache
/// files). Identical scope ⇒ identical baseline module, device model and
/// dataset, so remote results are interchangeable with local ones.
std::uint64_t trajectoryScope(const core::VariantCompiler& compiler,
                              const core::FitnessFunction& fitness);

} // namespace gevo::farm

#endif // GEVO_FARM_PROTOCOL_H
