#include "farm/server.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <vector>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "farm/endpoint.h"
#include "farm/protocol.h"
#include "farm/session.h"
#include "support/logging.h"

namespace gevo::farm {

namespace {

volatile std::sig_atomic_t gStop = 0;

void
onStopSignal(int)
{
    gStop = 1;
}

/// Install \p handler without SA_RESTART so a signal interrupts a
/// blocking accept() with EINTR and the loop can observe the flag.
void
installHandler(int sig, void (*handler)(int))
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = handler;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(sig, &sa, nullptr);
}

void
reapSessions(std::vector<pid_t>* children, bool block)
{
    for (auto it = children->begin(); it != children->end();) {
        int status = 0;
        const pid_t r = ::waitpid(*it, &status, block ? 0 : WNOHANG);
        if (r == *it || (r < 0 && errno != EINTR))
            it = children->erase(it);
        else if (block && r < 0)
            it = children->erase(it);
        else
            ++it;
    }
}

} // namespace

void
requestServerStop()
{
    gStop = 1;
}

int
runWorkerServer(const ir::Module& base,
                const core::FitnessFunction& fitness,
                const ServerOptions& opts)
{
    // A client vanishing mid-write must surface as EPIPE, not kill us.
    std::signal(SIGPIPE, SIG_IGN);
    installHandler(SIGINT, onStopSignal);
    installHandler(SIGTERM, onStopSignal);
    gStop = 0;

    // Precompile once; every session child inherits the cleaned base
    // and decoded programs by copy-on-write.
    const core::VariantCompiler compiler(base);
    const std::uint64_t scope = trajectoryScope(compiler, fitness);

    Endpoint ep;
    std::string error;
    if (!parseEndpoint(opts.listenSpec, &ep, &error))
        GEVO_FATAL("workerd: %s", error.c_str());
    const int listenFd = listenEndpoint(ep, &error);
    if (listenFd < 0)
        GEVO_FATAL("workerd: %s", error.c_str());

    inform("workerd: serving '%s' (scope %016llx) on %s",
           opts.banner.c_str(), static_cast<unsigned long long>(scope),
           opts.listenSpec.c_str());
    if (!opts.readyFile.empty()) {
        std::FILE* f = std::fopen(opts.readyFile.c_str(), "w");
        if (f != nullptr) {
            std::fprintf(f, "%s\n", opts.listenSpec.c_str());
            std::fclose(f);
        } else {
            warn("workerd: cannot write ready file '%s': %s",
                 opts.readyFile.c_str(), std::strerror(errno));
        }
    }

    std::vector<pid_t> sessions;
    while (gStop == 0) {
        const int conn = ::accept(listenFd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR || errno == ECONNABORTED) {
                reapSessions(&sessions, false);
                continue;
            }
            warn("workerd: accept failed: %s", std::strerror(errno));
            break;
        }
        reapSessions(&sessions, false);
        const pid_t pid = ::fork();
        if (pid < 0) {
            warn("workerd: fork failed: %s (dropping connection)",
                 std::strerror(errno));
            ::close(conn);
            continue;
        }
        if (pid == 0) {
            // Session child: the daemon's stop signals are not ours to
            // handle (SIGTERM default-kills us, which is correct), and
            // the listening socket is not ours to hold open.
            installHandler(SIGINT, SIG_DFL);
            installHandler(SIGTERM, SIG_DFL);
            ::close(listenFd);
            WorkerSession session(compiler, fitness, scope, opts.banner);
            session.serve(conn);
            ::close(conn);
            std::_Exit(0);
        }
        ::close(conn);
        sessions.push_back(pid);
    }

    for (const pid_t pid : sessions)
        ::kill(pid, SIGKILL);
    reapSessions(&sessions, true);
    ::close(listenFd);
    if (ep.isUnix)
        ::unlink(ep.path.c_str());
    if (!opts.readyFile.empty())
        ::unlink(opts.readyFile.c_str());
    inform("workerd: stopped");
    return 0;
}

} // namespace gevo::farm
