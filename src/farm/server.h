/// \file
/// The gevo-workerd accept loop: listen on a farm endpoint, fork one
/// WorkerSession child per accepted connection. Forking buys the same
/// two properties the isolated backend's fork-per-batch buys — a
/// hostile variant kills only its session process, and every session
/// inherits the precompiled VariantCompiler by copy-on-write with zero
/// serialization. The daemon itself never evaluates anything, so it
/// survives to accept the client's reconnect.

#ifndef GEVO_FARM_SERVER_H
#define GEVO_FARM_SERVER_H

#include <string>

#include "core/fitness.h"
#include "ir/function.h"

namespace gevo::farm {

struct ServerOptions {
    /// "host:port" or "unix:/path" (farm/endpoint.h).
    std::string listenSpec;
    /// When non-empty, this file is created (with the listen spec as its
    /// contents) once the socket is accepting — scripts poll it instead
    /// of racing the bind.
    std::string readyFile;
    /// Echoed to clients in HelloOk, e.g. "adept-v0 on P100".
    std::string banner;
};

/// Run the daemon until requestServerStop() (installed on SIGINT and
/// SIGTERM) flips. Returns the process exit code; fatal configuration
/// errors (unparseable/unbindable endpoint) exit via GEVO_FATAL.
/// \p base and \p fitness define the one workload this daemon serves;
/// its trajectory scope is hashed from them (farm/protocol.h) and
/// enforced at handshake.
int runWorkerServer(const ir::Module& base,
                    const core::FitnessFunction& fitness,
                    const ServerOptions& opts);

/// Async-signal-safe stop request (also callable from tests).
void requestServerStop();

} // namespace gevo::farm

#endif // GEVO_FARM_SERVER_H
