#include "farm/session.h"

#include <cerrno>

#include <time.h>
#include <unistd.h>

#include "core/eval_backend.h"
#include "support/io.h"
#include "support/logging.h"
#include "support/strings.h"

namespace gevo::farm {

namespace {

bool
sendFrame(int fd, std::string_view payload)
{
    std::string frame;
    appendFrame(&frame, payload);
    return writeAll(fd, frame.data(), frame.size());
}

void
sleepMs(std::uint64_t ms)
{
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(ms / 1000);
    ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
    while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
    }
}

} // namespace

WorkerSession::WorkerSession(const core::VariantCompiler& compiler,
                             const core::FitnessFunction& fitness,
                             std::uint64_t scope, std::string banner)
    : compiler_(compiler), fitness_(fitness), scope_(scope),
      banner_(std::move(banner)), faults_(core::parseFaultSpecs())
{
}

bool
WorkerSession::handshake(int fd, FrameReader* reader)
{
    // The opener must be a well-formed Hello with our exact protocol
    // version and trajectory scope; anything else gets a reject frame
    // (best effort) and a closed connection. Serving a mismatched
    // client would return fitness values from a different baseline —
    // the same silent poison a mismatched checkpoint or cache file is
    // rejected for.
    std::string payload;
    for (;;) {
        switch (reader->next(&payload)) {
          case FrameReader::Status::Frame: {
            HelloMsg hello;
            if (!decodeHello(payload, &hello)) {
                sendFrame(fd, encodeHelloReject("expected Hello"));
                return false;
            }
            if (hello.version != kFarmProtocolVersion) {
                sendFrame(fd, encodeHelloReject(strformat(
                                  "protocol version %u, worker speaks %u",
                                  hello.version, kFarmProtocolVersion)));
                return false;
            }
            if (hello.scope != scope_) {
                sendFrame(fd,
                          encodeHelloReject(strformat(
                              "trajectory scope %016llx does not match "
                              "worker scope %016llx (different baseline/"
                              "fitness/device)",
                              static_cast<unsigned long long>(hello.scope),
                              static_cast<unsigned long long>(scope_))));
                return false;
            }
            clientTimeoutMs_ = hello.timeoutMs;
            return sendFrame(fd, encodeHelloOk(banner_));
          }
          case FrameReader::Status::Corrupt:
            return false;
          case FrameReader::Status::NeedMore:
            break;
        }
        char tmp[4096];
        const ssize_t r = ::read(fd, tmp, sizeof(tmp));
        if (r < 0 && errno == EINTR)
            continue;
        if (r <= 0)
            return false; // Peer gone before (or mid-) Hello.
        reader->push(tmp, static_cast<std::size_t>(r));
    }
}

bool
WorkerSession::handleEval(int fd, const std::string& payload)
{
    EvalRequest req;
    if (!decodeEvalRequest(payload, &req))
        return false; // Undecodable from a handshaken peer: drop them.

    if (const auto fault = core::faultFor(faults_, req.seq)) {
        switch (*fault) {
          case core::FaultKind::Crash:
            core::faultCrash();
          case core::FaultKind::Hang:
            core::faultHang();
          case core::FaultKind::Garbage: {
            static constexpr char junk[] =
                "these bytes are not a response frame";
            writeAll(fd, junk, sizeof(junk));
            return false;
          }
          case core::FaultKind::Disconnect:
            return false; // Close instead of replying.
          case core::FaultKind::Truncate: {
            // Half a frame, then close: the mid-frame peer-loss path.
            EvalReply reply;
            reply.seq = req.seq;
            reply.outcome.result =
                core::FitnessResult::fail("truncated by fault injection");
            std::string frame;
            appendFrame(&frame, encodeEvalReply(reply));
            writeAll(fd, frame.data(), frame.size() / 2);
            return false;
          }
          case core::FaultKind::Delay:
            // Outlive the client's per-evaluation deadline, then reply
            // normally (the write fails if the client already hung up).
            sleepMs(static_cast<std::uint64_t>(clientTimeoutMs_) * 2 + 250);
            break;
        }
    }

    // Self-watchdog: a variant that wedges the simulator must not leave
    // a zombie session pinning the CPU after the client's deadline has
    // already written the evaluation off. SIGALRM's default action
    // kills the process; twice the client budget leaves the client-side
    // watchdog authoritative.
    if (clientTimeoutMs_ > 0)
        ::alarm(static_cast<unsigned>(clientTimeoutMs_ * 2 / 1000 + 2));
    EvalReply reply;
    reply.seq = req.seq;
    reply.outcome =
        core::evaluateTask(compiler_, fitness_, req.edits,
                           req.useCache ? &cache_ : nullptr,
                           req.useCache ? &reply.programKey : nullptr);
    ::alarm(0);
    ++served_;
    return sendFrame(fd, encodeEvalReply(reply));
}

void
WorkerSession::serve(int fd)
{
    FrameReader reader;
    if (!handshake(fd, &reader))
        return;
    std::string payload;
    for (;;) {
        switch (reader.next(&payload)) {
          case FrameReader::Status::Frame:
            switch (payloadType(payload)) {
              case MsgType::Eval:
                if (!handleEval(fd, payload))
                    return;
                continue;
              case MsgType::Ping: {
                std::uint64_t nonce = 0;
                if (!decodePing(payload, &nonce) ||
                    !sendFrame(fd, encodePong(nonce)))
                    return;
                continue;
              }
              default:
                return; // Unexpected type: drop the peer.
            }
          case FrameReader::Status::Corrupt:
            return;
          case FrameReader::Status::NeedMore:
            break;
        }
        char tmp[65536];
        const ssize_t r = ::read(fd, tmp, sizeof(tmp));
        if (r < 0 && errno == EINTR)
            continue;
        if (r <= 0)
            return; // EOF (possibly mid-frame) or error: session over.
        reader.push(tmp, static_cast<std::size_t>(r));
    }
}

} // namespace gevo::farm
