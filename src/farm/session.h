/// \file
/// One farm worker connection: handshake, then serve Eval requests until
/// the peer goes away. Runs in a short-lived child process forked by the
/// WorkerServer (farm/server.h), so a crashing or hanging variant takes
/// down only the session — the daemon accepts the client's reconnect
/// with a fresh process.

#ifndef GEVO_FARM_SESSION_H
#define GEVO_FARM_SESSION_H

#include <cstdint>
#include <string>

#include "core/fault_inject.h"
#include "core/fitness.h"
#include "core/variant_cache.h"
#include "farm/protocol.h"

namespace gevo::farm {

class WorkerSession {
  public:
    /// \p compiler and \p fitness must outlive the session. \p scope is
    /// the daemon's trajectory-scope fingerprint (protocol.h); a Hello
    /// carrying any other scope is rejected. \p banner is echoed in
    /// HelloOk for client-side logs.
    WorkerSession(const core::VariantCompiler& compiler,
                  const core::FitnessFunction& fitness, std::uint64_t scope,
                  std::string banner);

    /// Serve one connection until EOF, error, or corruption. Never
    /// throws and never exits the process on peer misbehavior (a peer
    /// closing mid-frame just ends the session); an injected crash/hang
    /// fault or a hostile variant may well kill the process — that is
    /// the failure mode the client's redispatch exists to absorb.
    void serve(int fd);

    std::size_t served() const { return served_; }

  private:
    bool handshake(int fd, FrameReader* reader);
    /// False ends the session (peer gone / corrupt stream).
    bool handleEval(int fd, const std::string& payload);

    const core::VariantCompiler& compiler_;
    const core::FitnessFunction& fitness_;
    std::uint64_t scope_;
    std::string banner_;
    std::vector<core::FaultSpec> faults_;
    /// Session-local program-content cache: repeat programs across a
    /// client's generations are served without re-simulation. Purely an
    /// optimization — entries are values of the deterministic fitness
    /// function, so hits and misses score identically.
    core::VariantCache cache_;
    std::uint32_t clientTimeoutMs_ = 0;
    std::size_t served_ = 0;
};

} // namespace gevo::farm

#endif // GEVO_FARM_SESSION_H
