#include "ir/builder.h"

#include "support/logging.h"

namespace gevo::ir {

Function&
IRBuilder::startKernel(const std::string& name, std::uint32_t numParams,
                       std::uint32_t sharedBytes, std::uint32_t localBytes)
{
    Function fn;
    fn.name = name;
    fn.numParams = numParams;
    fn.numRegs = numParams;
    fn.sharedBytes = sharedBytes;
    fn.localBytes = localBytes;
    fnIndex_ = static_cast<std::int32_t>(module_.addFunction(std::move(fn)));
    insert_ = -1;
    curLoc_ = 0;
    return kernel();
}

Function&
IRBuilder::kernel()
{
    GEVO_ASSERT(fnIndex_ >= 0, "no kernel started");
    return module_.function(static_cast<std::size_t>(fnIndex_));
}

std::int32_t
IRBuilder::block(const std::string& label)
{
    auto& fn = kernel();
    BasicBlock bb;
    bb.name = label;
    fn.blocks.push_back(std::move(bb));
    insert_ = static_cast<std::int32_t>(fn.blocks.size() - 1);
    return insert_;
}

void
IRBuilder::setInsert(std::int32_t blockIndex)
{
    GEVO_ASSERT(blockIndex >= 0 &&
                    static_cast<std::size_t>(blockIndex) <
                        kernel().blocks.size(),
                "bad insert block %d", blockIndex);
    insert_ = blockIndex;
}

Operand
IRBuilder::newReg()
{
    auto& fn = kernel();
    return Operand::reg(fn.numRegs++);
}

Operand
IRBuilder::param(std::uint32_t i) const
{
    return Operand::reg(i);
}

void
IRBuilder::setLoc(const std::string& loc)
{
    curLoc_ = module_.internLoc(loc);
}

Operand
IRBuilder::emitOp(Opcode op, std::initializer_list<Operand> ops,
                  std::int32_t dest)
{
    return emitMem(op, MemSpace::None, MemWidth::None, AtomicOp::None, ops,
                   dest);
}

void
IRBuilder::emitTo(Operand dest, Opcode op, std::initializer_list<Operand> ops)
{
    GEVO_ASSERT(dest.isReg(), "emitTo needs a register destination");
    emitMem(op, MemSpace::None, MemWidth::None, AtomicOp::None, ops,
            static_cast<std::int32_t>(dest.value));
}

Operand
IRBuilder::emitMem(Opcode op, MemSpace space, MemWidth width, AtomicOp atom,
                   std::initializer_list<Operand> ops, std::int32_t dest)
{
    GEVO_ASSERT(insert_ >= 0, "no insertion block");
    const OpInfo& info = opInfo(op);
    GEVO_ASSERT(ops.size() <= kMaxOperands, "too many operands");

    Instr in;
    in.op = op;
    in.space = space;
    in.width = width;
    in.atom = atom;
    in.loc = curLoc_;
    in.uid = module_.nextUid();
    in.nops = static_cast<std::uint8_t>(ops.size());
    int i = 0;
    for (const auto& o : ops)
        in.ops[i++] = o;

    if (info.hasDest) {
        in.dest = dest == kNewReg
                      ? static_cast<std::int32_t>(newReg().value)
                      : dest;
        GEVO_ASSERT(in.dest >= 0, "missing destination for %s",
                    std::string(info.mnemonic).c_str());
    }

    auto& fn = kernel();
    fn.blocks[insert_].instrs.push_back(in);
    return in.dest >= 0 ? Operand::reg(in.dest) : Operand();
}

} // namespace gevo::ir
