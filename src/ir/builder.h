/// \file
/// Ergonomic construction of IR kernels (used by the ADEPT/SIMCoV kernel
/// "frontends" the way Clang's CUDA frontend produces LLVM-IR in the paper).

#ifndef GEVO_IR_BUILDER_H
#define GEVO_IR_BUILDER_H

#include <initializer_list>
#include <string>

#include "ir/function.h"

namespace gevo::ir {

/// Builder for one module; create kernels, blocks, and instructions.
///
/// All value-producing helpers return a register Operand. Registers are
/// mutable, so loop-carried values use the `*To` variants (or emitTo) to
/// overwrite an existing register.
class IRBuilder {
  public:
    /// Sentinel for "allocate a fresh destination register".
    static constexpr std::int32_t kNewReg = -2;

    explicit IRBuilder(Module& module) : module_(module) {}

    /// Begin a new kernel; subsequent blocks/instructions go to it.
    /// Registers r0..r(numParams-1) hold launch arguments.
    Function& startKernel(const std::string& name, std::uint32_t numParams,
                          std::uint32_t sharedBytes = 0,
                          std::uint32_t localBytes = 0);

    /// Create a block with \p label and make it the insertion point.
    std::int32_t block(const std::string& label);
    /// Move the insertion point to an existing block.
    void setInsert(std::int32_t blockIndex);
    /// Current insertion block index.
    std::int32_t insertBlock() const { return insert_; }

    /// Allocate a fresh virtual register.
    Operand newReg();
    /// Parameter register i (r0-based).
    Operand param(std::uint32_t i) const;

    /// Sticky source location applied to subsequently emitted instructions.
    void setLoc(const std::string& loc);

    /// Integer immediate.
    static Operand imm(std::int64_t v) { return Operand::imm(v); }
    /// f32 immediate.
    static Operand immf(float v) { return Operand::immF32(v); }

    /// Generic emission; dest==kNewReg allocates, -1 means no destination.
    Operand emitOp(Opcode op, std::initializer_list<Operand> ops,
                   std::int32_t dest = kNewReg);
    /// Emission into an explicit existing register.
    void emitTo(Operand dest, Opcode op, std::initializer_list<Operand> ops);
    /// Emit a fully-formed memory instruction.
    Operand emitMem(Opcode op, MemSpace space, MemWidth width, AtomicOp atom,
                    std::initializer_list<Operand> ops,
                    std::int32_t dest = kNewReg);

    // ---- i32 arithmetic ----
    Operand iadd(Operand a, Operand b) { return emitOp(Opcode::AddI32, {a, b}); }
    Operand isub(Operand a, Operand b) { return emitOp(Opcode::SubI32, {a, b}); }
    Operand imul(Operand a, Operand b) { return emitOp(Opcode::MulI32, {a, b}); }
    Operand idiv(Operand a, Operand b) { return emitOp(Opcode::DivI32, {a, b}); }
    Operand irem(Operand a, Operand b) { return emitOp(Opcode::RemI32, {a, b}); }
    Operand imin(Operand a, Operand b) { return emitOp(Opcode::MinI32, {a, b}); }
    Operand imax(Operand a, Operand b) { return emitOp(Opcode::MaxI32, {a, b}); }

    // ---- i64 address math ----
    Operand ladd(Operand a, Operand b) { return emitOp(Opcode::AddI64, {a, b}); }
    Operand lsub(Operand a, Operand b) { return emitOp(Opcode::SubI64, {a, b}); }
    Operand lmul(Operand a, Operand b) { return emitOp(Opcode::MulI64, {a, b}); }

    // ---- f32 arithmetic ----
    Operand fadd(Operand a, Operand b) { return emitOp(Opcode::AddF32, {a, b}); }
    Operand fsub(Operand a, Operand b) { return emitOp(Opcode::SubF32, {a, b}); }
    Operand fmul(Operand a, Operand b) { return emitOp(Opcode::MulF32, {a, b}); }
    Operand fdiv(Operand a, Operand b) { return emitOp(Opcode::DivF32, {a, b}); }
    Operand fmin(Operand a, Operand b) { return emitOp(Opcode::MinF32, {a, b}); }
    Operand fmax(Operand a, Operand b) { return emitOp(Opcode::MaxF32, {a, b}); }

    // ---- bitwise / moves ----
    Operand band(Operand a, Operand b) { return emitOp(Opcode::And, {a, b}); }
    Operand bor(Operand a, Operand b) { return emitOp(Opcode::Or, {a, b}); }
    Operand bxor(Operand a, Operand b) { return emitOp(Opcode::Xor, {a, b}); }
    Operand shl(Operand a, Operand b) { return emitOp(Opcode::Shl, {a, b}); }
    Operand shr(Operand a, Operand b) { return emitOp(Opcode::ShrL, {a, b}); }
    Operand not1(Operand a) { return emitOp(Opcode::NotI1, {a}); }
    Operand mov(Operand a) { return emitOp(Opcode::Mov, {a}); }
    Operand sel(Operand c, Operand a, Operand b)
    {
        return emitOp(Opcode::Select, {c, a, b});
    }

    // ---- conversions ----
    Operand i2f(Operand a) { return emitOp(Opcode::CvtI32ToF32, {a}); }
    Operand f2i(Operand a) { return emitOp(Opcode::CvtF32ToI32, {a}); }
    Operand sext64(Operand a) { return emitOp(Opcode::CvtI32ToI64, {a}); }
    Operand trunc32(Operand a) { return emitOp(Opcode::CvtI64ToI32, {a}); }

    // ---- i32 comparisons ----
    Operand ieq(Operand a, Operand b) { return emitOp(Opcode::CmpEqI32, {a, b}); }
    Operand ine(Operand a, Operand b) { return emitOp(Opcode::CmpNeI32, {a, b}); }
    Operand ilt(Operand a, Operand b) { return emitOp(Opcode::CmpLtI32, {a, b}); }
    Operand ile(Operand a, Operand b) { return emitOp(Opcode::CmpLeI32, {a, b}); }
    Operand igt(Operand a, Operand b) { return emitOp(Opcode::CmpGtI32, {a, b}); }
    Operand ige(Operand a, Operand b) { return emitOp(Opcode::CmpGeI32, {a, b}); }

    // ---- f32 comparisons ----
    Operand flt(Operand a, Operand b) { return emitOp(Opcode::CmpLtF32, {a, b}); }
    Operand fgt(Operand a, Operand b) { return emitOp(Opcode::CmpGtF32, {a, b}); }
    Operand fge(Operand a, Operand b) { return emitOp(Opcode::CmpGeF32, {a, b}); }

    // ---- memory ----
    Operand ld(MemSpace space, MemWidth width, Operand addr)
    {
        return emitMem(Opcode::Load, space, width, AtomicOp::None, {addr});
    }
    void
    st(MemSpace space, MemWidth width, Operand addr, Operand value)
    {
        emitMem(Opcode::Store, space, width, AtomicOp::None, {addr, value},
                -1);
    }
    Operand
    atomic(AtomicOp op, MemSpace space, Operand addr, Operand value)
    {
        return emitMem(Opcode::AtomicRMW, space, MemWidth::I32, op,
                       {addr, value});
    }
    Operand
    atomicCas(MemSpace space, Operand addr, Operand cmp, Operand newVal)
    {
        return emitMem(Opcode::AtomicRMW, space, MemWidth::I32,
                       AtomicOp::Cas, {addr, cmp, newVal});
    }

    // ---- special registers ----
    Operand tid() { return emitOp(Opcode::Tid, {}); }
    Operand bid() { return emitOp(Opcode::Bid, {}); }
    Operand ntid() { return emitOp(Opcode::BlockDim, {}); }
    Operand nbid() { return emitOp(Opcode::GridDim, {}); }
    Operand lane() { return emitOp(Opcode::LaneId, {}); }
    Operand warpid() { return emitOp(Opcode::WarpId, {}); }

    // ---- sync / warp exchange ----
    void barrier() { emitOp(Opcode::Barrier, {}, -1); }
    Operand
    shflUp(Operand mask, Operand val, Operand delta)
    {
        return emitOp(Opcode::ShflUp, {mask, val, delta});
    }
    Operand
    shflIdx(Operand mask, Operand val, Operand srcLane)
    {
        return emitOp(Opcode::ShflIdx, {mask, val, srcLane});
    }
    Operand
    ballot(Operand mask, Operand pred)
    {
        return emitOp(Opcode::Ballot, {mask, pred});
    }
    Operand activemask() { return emitOp(Opcode::ActiveMask, {}); }

    // ---- terminators ----
    void br(std::int32_t blockIndex)
    {
        emitOp(Opcode::Br, {Operand::label(blockIndex)}, -1);
    }
    void
    brc(Operand cond, std::int32_t ifTrue, std::int32_t ifFalse)
    {
        emitOp(Opcode::CondBr,
               {cond, Operand::label(ifTrue), Operand::label(ifFalse)}, -1);
    }
    void ret() { emitOp(Opcode::Ret, {}, -1); }

    // ---- explicit-destination variants for loop-carried registers ----
    void movTo(Operand d, Operand a) { emitTo(d, Opcode::Mov, {a}); }
    void iaddTo(Operand d, Operand a, Operand b)
    {
        emitTo(d, Opcode::AddI32, {a, b});
    }
    void imaxTo(Operand d, Operand a, Operand b)
    {
        emitTo(d, Opcode::MaxI32, {a, b});
    }
    void faddTo(Operand d, Operand a, Operand b)
    {
        emitTo(d, Opcode::AddF32, {a, b});
    }
    void selTo(Operand d, Operand c, Operand a, Operand b)
    {
        emitTo(d, Opcode::Select, {c, a, b});
    }
    void
    ldTo(Operand d, MemSpace space, MemWidth width, Operand addr)
    {
        emitMem(Opcode::Load, space, width, AtomicOp::None, {addr},
                static_cast<std::int32_t>(d.value));
    }

    /// Module being built.
    Module& module() { return module_; }
    /// Kernel being built. \pre startKernel was called.
    Function& kernel();

  private:
    Module& module_;
    std::int32_t fnIndex_ = -1;
    std::int32_t insert_ = -1;
    std::uint32_t curLoc_ = 0;
};

} // namespace gevo::ir

#endif // GEVO_IR_BUILDER_H
