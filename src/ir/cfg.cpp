#include "ir/cfg.h"

#include <algorithm>

#include "support/logging.h"

namespace gevo::ir {

namespace {

/// Cooper-Harvey-Kennedy dominator computation over an abstract graph.
///
/// \p n node count; \p root the entry; \p preds predecessor lists;
/// \p rpo reverse post-order (root first); returns idom per node
/// (-2 for nodes unreachable from root, root's idom is itself).
std::vector<std::int32_t>
computeIdoms(std::size_t n, std::int32_t root,
             const std::vector<std::vector<std::int32_t>>& preds,
             const std::vector<std::int32_t>& rpo)
{
    std::vector<std::int32_t> rpoNum(n, -1);
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpoNum[rpo[i]] = static_cast<std::int32_t>(i);

    std::vector<std::int32_t> idom(n, -2);
    idom[root] = root;

    auto intersect = [&](std::int32_t a, std::int32_t b) {
        while (a != b) {
            while (rpoNum[a] > rpoNum[b])
                a = idom[a];
            while (rpoNum[b] > rpoNum[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto b : rpo) {
            if (b == root)
                continue;
            std::int32_t newIdom = -2;
            for (const auto p : preds[b]) {
                if (idom[p] == -2)
                    continue;
                newIdom = newIdom == -2 ? p : intersect(p, newIdom);
            }
            if (newIdom != -2 && idom[b] != newIdom) {
                idom[b] = newIdom;
                changed = true;
            }
        }
    }
    return idom;
}

/// Reverse post-order from \p root following \p succs.
std::vector<std::int32_t>
computeRpoFrom(std::size_t n, std::int32_t root,
               const std::vector<std::vector<std::int32_t>>& succs)
{
    std::vector<std::int32_t> postorder;
    std::vector<std::uint8_t> state(n, 0); // 0 unseen, 1 open, 2 done
    // Iterative DFS with an explicit stack of (node, next-child).
    std::vector<std::pair<std::int32_t, std::size_t>> stack;
    stack.emplace_back(root, 0);
    state[root] = 1;
    while (!stack.empty()) {
        auto& [node, child] = stack.back();
        if (child < succs[node].size()) {
            const auto next = succs[node][child++];
            if (state[next] == 0) {
                state[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            state[node] = 2;
            postorder.push_back(node);
            stack.pop_back();
        }
    }
    std::reverse(postorder.begin(), postorder.end());
    return postorder;
}

} // namespace

Cfg::Cfg(const Function& fn)
{
    const std::size_t n = fn.blocks.size();
    GEVO_ASSERT(n > 0, "CFG over empty function");
    succs_.resize(n);
    preds_.resize(n);

    for (std::size_t b = 0; b < n; ++b) {
        GEVO_ASSERT(!fn.blocks[b].instrs.empty(), "empty block in CFG");
        const Instr& term = fn.blocks[b].terminator();
        switch (term.op) {
          case Opcode::Br:
            succs_[b].push_back(static_cast<std::int32_t>(term.ops[0].value));
            break;
          case Opcode::CondBr:
            succs_[b].push_back(static_cast<std::int32_t>(term.ops[1].value));
            if (term.ops[2].value != term.ops[1].value)
                succs_[b].push_back(
                    static_cast<std::int32_t>(term.ops[2].value));
            break;
          case Opcode::Ret:
            break;
          default:
            GEVO_PANIC("block without terminator in CFG");
        }
    }
    for (std::size_t b = 0; b < n; ++b)
        for (const auto s : succs_[b])
            preds_[s].push_back(static_cast<std::int32_t>(b));

    computeReachability();
    computeRpo();
    computeDominators();
    computePostDominators();
}

void
Cfg::computeReachability()
{
    reachable_.assign(size(), false);
    std::vector<std::int32_t> work = {0};
    reachable_[0] = true;
    while (!work.empty()) {
        const auto b = work.back();
        work.pop_back();
        for (const auto s : succs_[b]) {
            if (!reachable_[s]) {
                reachable_[s] = true;
                work.push_back(s);
            }
        }
    }
}

void
Cfg::computeRpo()
{
    rpo_ = computeRpoFrom(size(), 0, succs_);
}

void
Cfg::computeDominators()
{
    idom_ = computeIdoms(size(), 0, preds_, rpo_);
}

void
Cfg::computePostDominators()
{
    // Work on the reverse CFG with a virtual exit node at index n.
    const std::size_t n = size();
    const auto exitNode = static_cast<std::int32_t>(n);

    std::vector<std::vector<std::int32_t>> succRev(n + 1);
    std::vector<std::vector<std::int32_t>> predRev(n + 1);
    for (std::size_t b = 0; b < n; ++b) {
        // Reverse-graph successors of b are the original predecessors.
        for (const auto p : preds_[b])
            succRev[b].push_back(p);
        if (succs_[b].empty()) {
            // Ret block: reverse edge exit -> b.
            succRev[exitNode].push_back(static_cast<std::int32_t>(b));
            predRev[b].push_back(exitNode);
        }
        for (const auto s : succs_[b])
            predRev[b].push_back(s);
    }

    const auto rpoRev = computeRpoFrom(n + 1, exitNode, succRev);
    const auto idomRev = computeIdoms(n + 1, exitNode, predRev, rpoRev);

    ipdom_.assign(n, -2);
    for (std::size_t b = 0; b < n; ++b) {
        const auto d = idomRev[b];
        if (d == -2) {
            // No path to exit (e.g. an infinite loop): treat the virtual
            // exit as the reconvergence point so divergence never
            // reconverges early.
            ipdom_[b] = reachable_[b] ? kExit : -2;
        } else {
            ipdom_[b] = d == exitNode ? kExit : d;
        }
    }
}

bool
Cfg::dominates(std::int32_t a, std::int32_t b) const
{
    if (!reachable_[a] || !reachable_[b])
        return false;
    std::int32_t cur = b;
    while (true) {
        if (cur == a)
            return true;
        const auto next = idom_[cur];
        if (next == cur || next < 0)
            return cur == a;
        cur = next;
    }
}

} // namespace gevo::ir
