/// \file
/// Control-flow graph, reverse post-order, dominators and post-dominators.
///
/// The SIMT executor needs each branch block's immediate post-dominator as
/// the warp reconvergence point (the classic GPGPU-Sim stack discipline);
/// the optimizer needs reachability; tests use dominance directly.

#ifndef GEVO_IR_CFG_H
#define GEVO_IR_CFG_H

#include <cstdint>
#include <vector>

#include "ir/function.h"

namespace gevo::ir {

/// CFG over a function's basic blocks plus derived orders and dominators.
class Cfg {
  public:
    /// Virtual-exit sentinel used by post-dominance.
    static constexpr std::int32_t kExit = -1;

    /// Build from a structurally valid function.
    explicit Cfg(const Function& fn);

    /// Number of blocks.
    std::size_t size() const { return succs_.size(); }

    /// Successor block indices of \p b (empty for Ret blocks).
    const std::vector<std::int32_t>& succs(std::int32_t b) const
    {
        return succs_[b];
    }
    /// Predecessor block indices of \p b.
    const std::vector<std::int32_t>& preds(std::int32_t b) const
    {
        return preds_[b];
    }

    /// True when \p b is reachable from the entry block.
    bool reachable(std::int32_t b) const { return reachable_[b]; }

    /// Reverse post-order over reachable blocks (entry first).
    const std::vector<std::int32_t>& rpo() const { return rpo_; }

    /// Immediate dominator of \p b (entry's idom is itself); -2 when
    /// unreachable.
    std::int32_t idom(std::int32_t b) const { return idom_[b]; }

    /// Immediate post-dominator of \p b; kExit when the only post-dominator
    /// is the virtual exit; -2 when unreachable.
    std::int32_t ipdom(std::int32_t b) const { return ipdom_[b]; }

    /// True when \p a dominates \p b (reflexive).
    bool dominates(std::int32_t a, std::int32_t b) const;

  private:
    void computeReachability();
    void computeRpo();
    void computeDominators();
    void computePostDominators();

    std::vector<std::vector<std::int32_t>> succs_;
    std::vector<std::vector<std::int32_t>> preds_;
    std::vector<bool> reachable_;
    std::vector<std::int32_t> rpo_;
    std::vector<std::int32_t> idom_;
    std::vector<std::int32_t> ipdom_;
};

} // namespace gevo::ir

#endif // GEVO_IR_CFG_H
