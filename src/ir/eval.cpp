#include "ir/eval.h"

namespace gevo::ir {

bool
isScalarEvaluable(Opcode op)
{
    switch (opInfo(op).kind) {
      case OpKind::Alu:
      case OpKind::Cmp:
        return true;
      default:
        return false;
    }
}

} // namespace gevo::ir
