/// \file
/// Scalar evaluation semantics for pure ALU/Cmp/Cvt opcodes.
///
/// Both the SIMT interpreter (per lane) and the constant-folding pass call
/// into these inline helpers, so "what the optimizer assumes" and "what the
/// machine does" cannot diverge — a property the differential tests assert.

#ifndef GEVO_IR_EVAL_H
#define GEVO_IR_EVAL_H

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "ir/opcode.h"

namespace gevo::ir {

/// Reinterpret the low 32 bits of a register value as float.
inline float
asF32(std::uint64_t raw)
{
    float f;
    const auto lo = static_cast<std::uint32_t>(raw);
    std::memcpy(&f, &lo, sizeof(f));
    return f;
}

/// Pack a float into a register value (upper bits zero).
inline std::uint64_t
fromF32(float f)
{
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits;
}

/// Signed 32-bit view of a register value.
inline std::int32_t
asI32(std::uint64_t raw)
{
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(raw));
}

/// Sign-extend a 32-bit result into a register value.
inline std::uint64_t
fromI32(std::int32_t v)
{
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
}

/// True when an opcode is evaluable by evalScalar (pure ALU/Cmp/Cvt).
bool isScalarEvaluable(Opcode op);

/// Evaluate a pure scalar opcode on raw register values.
///
/// Division/remainder by zero produce 0 (GPU-like non-trapping semantics);
/// INT_MIN / -1 produces INT_MIN; float-to-int saturates and maps NaN to 0.
inline std::uint64_t
evalScalar(Opcode op, std::uint64_t a, std::uint64_t b = 0,
           std::uint64_t c = 0)
{
    using U = std::uint64_t;
    const auto i32 = [](std::uint64_t x) { return asI32(x); };
    const auto i64 = [](std::uint64_t x) {
        return static_cast<std::int64_t>(x);
    };

    switch (op) {
      // ---- i32 ----
      case Opcode::AddI32:
        return fromI32(static_cast<std::int32_t>(
            static_cast<std::uint32_t>(i32(a)) +
            static_cast<std::uint32_t>(i32(b))));
      case Opcode::SubI32:
        return fromI32(static_cast<std::int32_t>(
            static_cast<std::uint32_t>(i32(a)) -
            static_cast<std::uint32_t>(i32(b))));
      case Opcode::MulI32:
        return fromI32(static_cast<std::int32_t>(
            static_cast<std::uint32_t>(i32(a)) *
            static_cast<std::uint32_t>(i32(b))));
      case Opcode::DivI32: {
        const std::int32_t x = i32(a);
        const std::int32_t y = i32(b);
        if (y == 0)
            return 0;
        if (x == std::numeric_limits<std::int32_t>::min() && y == -1)
            return fromI32(x);
        return fromI32(x / y);
      }
      case Opcode::RemI32: {
        const std::int32_t x = i32(a);
        const std::int32_t y = i32(b);
        if (y == 0)
            return 0;
        if (x == std::numeric_limits<std::int32_t>::min() && y == -1)
            return 0;
        return fromI32(x % y);
      }
      case Opcode::MinI32:
        return fromI32(i32(a) < i32(b) ? i32(a) : i32(b));
      case Opcode::MaxI32:
        return fromI32(i32(a) > i32(b) ? i32(a) : i32(b));

      // ---- i64 ----
      case Opcode::AddI64: return a + b;
      case Opcode::SubI64: return a - b;
      case Opcode::MulI64: return a * b;
      case Opcode::DivI64: {
        const std::int64_t x = i64(a);
        const std::int64_t y = i64(b);
        if (y == 0)
            return 0;
        if (x == std::numeric_limits<std::int64_t>::min() && y == -1)
            return a;
        return static_cast<U>(x / y);
      }
      case Opcode::MinI64:
        return i64(a) < i64(b) ? a : b;
      case Opcode::MaxI64:
        return i64(a) > i64(b) ? a : b;

      // ---- f32 ----
      case Opcode::AddF32: return fromF32(asF32(a) + asF32(b));
      case Opcode::SubF32: return fromF32(asF32(a) - asF32(b));
      case Opcode::MulF32: return fromF32(asF32(a) * asF32(b));
      case Opcode::DivF32: return fromF32(asF32(a) / asF32(b));
      case Opcode::MinF32: return fromF32(std::fmin(asF32(a), asF32(b)));
      case Opcode::MaxF32: return fromF32(std::fmax(asF32(a), asF32(b)));

      // ---- bitwise ----
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: return a << (b & 63);
      case Opcode::ShrL: return a >> (b & 63);
      case Opcode::ShrA:
        return static_cast<U>(i64(a) >> (b & 63));
      case Opcode::NotI1: return a == 0 ? 1 : 0;
      case Opcode::Mov: return a;
      case Opcode::Select: return a != 0 ? b : c;

      // ---- conversions ----
      case Opcode::CvtI32ToF32:
        return fromF32(static_cast<float>(i32(a)));
      case Opcode::CvtF32ToI32: {
        const float f = asF32(a);
        if (std::isnan(f))
            return 0;
        if (f >= 2147483647.0f)
            return fromI32(std::numeric_limits<std::int32_t>::max());
        if (f <= -2147483648.0f)
            return fromI32(std::numeric_limits<std::int32_t>::min());
        return fromI32(static_cast<std::int32_t>(f));
      }
      case Opcode::CvtI32ToI64:
        return fromI32(i32(a));
      case Opcode::CvtI64ToI32:
        return fromI32(static_cast<std::int32_t>(a));

      // ---- comparisons ----
      case Opcode::CmpEqI32: return i32(a) == i32(b) ? 1 : 0;
      case Opcode::CmpNeI32: return i32(a) != i32(b) ? 1 : 0;
      case Opcode::CmpLtI32: return i32(a) < i32(b) ? 1 : 0;
      case Opcode::CmpLeI32: return i32(a) <= i32(b) ? 1 : 0;
      case Opcode::CmpGtI32: return i32(a) > i32(b) ? 1 : 0;
      case Opcode::CmpGeI32: return i32(a) >= i32(b) ? 1 : 0;
      case Opcode::CmpEqI64: return i64(a) == i64(b) ? 1 : 0;
      case Opcode::CmpNeI64: return i64(a) != i64(b) ? 1 : 0;
      case Opcode::CmpLtI64: return i64(a) < i64(b) ? 1 : 0;
      case Opcode::CmpLeI64: return i64(a) <= i64(b) ? 1 : 0;
      case Opcode::CmpGtI64: return i64(a) > i64(b) ? 1 : 0;
      case Opcode::CmpGeI64: return i64(a) >= i64(b) ? 1 : 0;
      case Opcode::CmpEqF32: return asF32(a) == asF32(b) ? 1 : 0;
      case Opcode::CmpNeF32: return asF32(a) != asF32(b) ? 1 : 0;
      case Opcode::CmpLtF32: return asF32(a) < asF32(b) ? 1 : 0;
      case Opcode::CmpLeF32: return asF32(a) <= asF32(b) ? 1 : 0;
      case Opcode::CmpGtF32: return asF32(a) > asF32(b) ? 1 : 0;
      case Opcode::CmpGeF32: return asF32(a) >= asF32(b) ? 1 : 0;

      default:
        return 0;
    }
}

} // namespace gevo::ir

#endif // GEVO_IR_EVAL_H
