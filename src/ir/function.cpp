#include "ir/function.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "support/logging.h"

namespace gevo::ir {

namespace {

// Deep copies triggered by writes to shared kernels, process-wide.
std::atomic<std::uint64_t> gCowDetaches{0};

} // namespace

std::size_t
Function::instrCount() const
{
    std::size_t n = 0;
    for (const auto& b : blocks)
        n += b.instrs.size();
    return n;
}

InstrPos
Function::findUid(std::uint64_t uid) const
{
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const auto& instrs = blocks[b].instrs;
        for (std::size_t i = 0; i < instrs.size(); ++i) {
            if (instrs[i].uid == uid) {
                return {static_cast<std::int32_t>(b),
                        static_cast<std::int32_t>(i)};
            }
        }
    }
    return {};
}

const Instr&
Function::at(InstrPos pos) const
{
    GEVO_ASSERT(pos.valid() &&
                    static_cast<std::size_t>(pos.block) < blocks.size(),
                "bad InstrPos block");
    const auto& instrs = blocks[pos.block].instrs;
    GEVO_ASSERT(static_cast<std::size_t>(pos.index) < instrs.size(),
                "bad InstrPos index");
    return instrs[pos.index];
}

Instr&
Function::at(InstrPos pos)
{
    return const_cast<Instr&>(std::as_const(*this).at(pos));
}

std::int32_t
Function::blockIndexOf(std::string_view label) const
{
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        if (blocks[b].name == label)
            return static_cast<std::int32_t>(b);
    }
    return -1;
}

Module
Module::clone() const
{
    Module out;
    out.functions_ = functions_;
    out.locs_ = locs_;
    out.uidCounter_ = uidCounter_;
    return out;
}

std::size_t
Module::addFunction(Function fn)
{
    functions_.push_back(std::make_shared<Function>(std::move(fn)));
    return functions_.size() - 1;
}

void
Module::detachFunction(std::size_t i)
{
    functions_[i] = std::make_shared<Function>(*functions_[i]);
    gCowDetaches.fetch_add(1, std::memory_order_relaxed);
}

Function*
Module::findFunction(std::string_view name)
{
    for (std::size_t i = 0; i < functions_.size(); ++i) {
        if (functions_[i]->name == name)
            return &function(i);
    }
    return nullptr;
}

const Function*
Module::findFunction(std::string_view name) const
{
    for (const auto& f : functions_) {
        if (f->name == name)
            return f.get();
    }
    return nullptr;
}

std::uint64_t
Module::cowDetachCount()
{
    return gCowDetaches.load(std::memory_order_relaxed);
}

void
Module::resetCowDetachCount()
{
    gCowDetaches.store(0, std::memory_order_relaxed);
}

void
Module::bumpUidCounter(std::uint64_t atLeast)
{
    uidCounter_ = std::max(uidCounter_, atLeast);
}

std::uint32_t
Module::internLoc(const std::string& loc)
{
    if (loc.empty())
        return 0;
    if (locs_ != nullptr) {
        for (std::size_t i = 1; i < locs_->size(); ++i) {
            if ((*locs_)[i] == loc)
                return static_cast<std::uint32_t>(i);
        }
    }
    // Growing the table: detach when shared (or allocate the reserved
    // id-0 slot on first use).
    if (locs_ == nullptr)
        locs_ = std::make_shared<std::vector<std::string>>(1);
    else if (locs_.use_count() != 1)
        locs_ = std::make_shared<std::vector<std::string>>(*locs_);
    locs_->push_back(loc);
    return static_cast<std::uint32_t>(locs_->size() - 1);
}

const std::string&
Module::locString(std::uint32_t id) const
{
    static const std::string kEmpty;
    if (locs_ == nullptr || id >= locs_->size())
        return kEmpty;
    return (*locs_)[id];
}

std::size_t
Module::instrCount() const
{
    std::size_t n = 0;
    for (const auto& f : functions_)
        n += f->instrCount();
    return n;
}

} // namespace gevo::ir
