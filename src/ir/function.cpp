#include "ir/function.h"

#include <algorithm>
#include <utility>

#include "support/logging.h"

namespace gevo::ir {

std::size_t
Function::instrCount() const
{
    std::size_t n = 0;
    for (const auto& b : blocks)
        n += b.instrs.size();
    return n;
}

InstrPos
Function::findUid(std::uint64_t uid) const
{
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const auto& instrs = blocks[b].instrs;
        for (std::size_t i = 0; i < instrs.size(); ++i) {
            if (instrs[i].uid == uid) {
                return {static_cast<std::int32_t>(b),
                        static_cast<std::int32_t>(i)};
            }
        }
    }
    return {};
}

const Instr&
Function::at(InstrPos pos) const
{
    GEVO_ASSERT(pos.valid() &&
                    static_cast<std::size_t>(pos.block) < blocks.size(),
                "bad InstrPos block");
    const auto& instrs = blocks[pos.block].instrs;
    GEVO_ASSERT(static_cast<std::size_t>(pos.index) < instrs.size(),
                "bad InstrPos index");
    return instrs[pos.index];
}

Instr&
Function::at(InstrPos pos)
{
    return const_cast<Instr&>(std::as_const(*this).at(pos));
}

std::int32_t
Function::blockIndexOf(std::string_view label) const
{
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        if (blocks[b].name == label)
            return static_cast<std::int32_t>(b);
    }
    return -1;
}

Module
Module::clone() const
{
    Module out;
    out.functions_ = functions_;
    out.locs_ = locs_;
    out.uidCounter_ = uidCounter_;
    return out;
}

std::size_t
Module::addFunction(Function fn)
{
    functions_.push_back(std::move(fn));
    return functions_.size() - 1;
}

Function*
Module::findFunction(std::string_view name)
{
    for (auto& f : functions_) {
        if (f.name == name)
            return &f;
    }
    return nullptr;
}

const Function*
Module::findFunction(std::string_view name) const
{
    return const_cast<Module*>(this)->findFunction(name);
}

void
Module::bumpUidCounter(std::uint64_t atLeast)
{
    uidCounter_ = std::max(uidCounter_, atLeast);
}

std::uint32_t
Module::internLoc(const std::string& loc)
{
    if (loc.empty())
        return 0;
    for (std::size_t i = 1; i < locs_.size(); ++i) {
        if (locs_[i] == loc)
            return static_cast<std::uint32_t>(i);
    }
    locs_.push_back(loc);
    return static_cast<std::uint32_t>(locs_.size() - 1);
}

const std::string&
Module::locString(std::uint32_t id) const
{
    static const std::string kEmpty;
    if (id >= locs_.size())
        return kEmpty;
    return locs_[id];
}

std::size_t
Module::instrCount() const
{
    std::size_t n = 0;
    for (const auto& f : functions_)
        n += f.instrCount();
    return n;
}

} // namespace gevo::ir
