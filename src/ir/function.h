/// \file
/// BasicBlock, Function (GPU kernel) and Module containers.

#ifndef GEVO_IR_FUNCTION_H
#define GEVO_IR_FUNCTION_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/instr.h"

namespace gevo::ir {

/// A straight-line sequence of instructions ending in one terminator.
struct BasicBlock {
    std::string name;          ///< Label used by the textual format.
    std::vector<Instr> instrs; ///< Instructions; last one is the terminator.

    /// Terminator accessor; \pre block is non-empty.
    const Instr& terminator() const { return instrs.back(); }
};

/// Position of an instruction inside a function (block index, instr index).
struct InstrPos {
    std::int32_t block = -1;
    std::int32_t index = -1;

    bool valid() const { return block >= 0; }

    friend bool
    operator==(const InstrPos& a, const InstrPos& b)
    {
        return a.block == b.block && a.index == b.index;
    }
};

/// A GPU kernel: blocks + register/parameter/memory declarations.
///
/// Registers r0..r(numParams-1) are preloaded with the kernel's launch
/// arguments (64-bit each); the rest start at zero for every thread — the
/// simulator is deterministic by construction, which the paper's validation
/// methodology (fixed seeds, ground-truth comparison) relies on.
struct Function {
    std::string name;             ///< Kernel name (unique within module).
    std::uint32_t numParams = 0;  ///< Launch arguments preloaded in r0..
    std::uint32_t numRegs = 0;    ///< Total virtual registers.
    std::uint32_t sharedBytes = 0; ///< Static shared memory per block.
    std::uint32_t localBytes = 0;  ///< Per-thread local scratch bytes.
    std::vector<BasicBlock> blocks; ///< Entry is blocks[0].

    /// Total instruction count across blocks.
    std::size_t instrCount() const;

    /// Locate an instruction by uid; invalid InstrPos when absent.
    InstrPos findUid(std::uint64_t uid) const;

    /// Instruction at \p pos. \pre pos is valid for this function.
    const Instr& at(InstrPos pos) const;
    /// Mutable variant.
    Instr& at(InstrPos pos);

    /// Index of the block labelled \p label, or -1.
    std::int32_t blockIndexOf(std::string_view label) const;
};

/// A collection of kernels plus interned source-location strings.
///
/// Modules own the uid counter: every instruction created through the
/// builder/parser obtains a fresh uid, and mutation-inserted clones draw
/// from the same counter so anchors never collide.
///
/// Storage is copy-on-write per function: clone() shares every kernel (a
/// refcount bump per function, no instruction copies), and the non-const
/// accessors detach a private copy of just the touched kernel the first
/// time it is written. Edit lists touch one or two kernels of a module,
/// so variant materialization is O(touched functions), not O(module) —
/// the shared base is never mutated, and shared_ptr refcounts are atomic,
/// so concurrent clones of an immutable base from evaluator threads are
/// safe. Interned source locations are shared the same way.
class Module {
  public:
    Module() = default;

    // Modules are heavyweight; copy explicitly via clone().
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;
    Module(Module&&) = default;
    Module& operator=(Module&&) = default;

    /// Copy-on-write copy: shares every function and the loc table
    /// (preserves uids and the uid counter). Equivalent to a deep copy
    /// for every observer; detaching happens lazily on first write.
    Module clone() const;

    /// Append an empty function, returning a stable index.
    std::size_t addFunction(Function fn);

    /// Number of kernels.
    std::size_t numFunctions() const { return functions_.size(); }

    /// Kernel accessors. The non-const form detaches a private copy when
    /// the function is still shared with another module.
    Function& function(std::size_t i)
    {
        if (functions_[i].use_count() != 1)
            detachFunction(i);
        return *functions_[i];
    }
    const Function& function(std::size_t i) const { return *functions_[i]; }

    /// The shared handle for kernel \p i — identity comparison against
    /// another module's handle answers "was this kernel ever written?"
    /// without content comparison (the incremental compiler's touched-set
    /// probe).
    const std::shared_ptr<Function>& functionPtr(std::size_t i) const
    {
        return functions_[i];
    }

    /// Install \p fn as kernel \p i, sharing it with its current owners.
    void setFunction(std::size_t i, std::shared_ptr<Function> fn)
    {
        functions_[i] = std::move(fn);
    }

    /// Find a kernel by name; nullptr when absent. The non-const form
    /// detaches the found kernel (callers take it to write).
    Function* findFunction(std::string_view name);
    const Function* findFunction(std::string_view name) const;

    /// Allocate the next instruction uid.
    std::uint64_t nextUid() { return ++uidCounter_; }
    /// Highest uid handed out so far.
    std::uint64_t uidCounter() const { return uidCounter_; }
    /// Raise the counter (used when cloning/parsing).
    void bumpUidCounter(std::uint64_t atLeast);

    /// Intern a source-location string ("file.cu:42"), returning its id.
    /// Id 0 is reserved for "no location".
    std::uint32_t internLoc(const std::string& loc);
    /// Source-location string for id (empty for 0 / unknown).
    const std::string& locString(std::uint32_t id) const;

    /// Total instructions across all kernels.
    std::size_t instrCount() const;

    /// Process-wide count of function detaches (deep copies triggered by
    /// a write to a shared kernel). Test/bench instrumentation for the
    /// copy-on-write contract: a generation's patch traffic must detach
    /// O(touched kernels), not O(offspring x kernels).
    static std::uint64_t cowDetachCount();
    static void resetCowDetachCount();

  private:
    void detachFunction(std::size_t i);

    std::vector<std::shared_ptr<Function>> functions_;
    std::shared_ptr<std::vector<std::string>> locs_;
    std::uint64_t uidCounter_ = 0;
};

} // namespace gevo::ir

#endif // GEVO_IR_FUNCTION_H
