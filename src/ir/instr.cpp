#include "ir/instr.h"

#include <cstring>

namespace gevo::ir {

std::uint32_t
memWidthBytes(MemWidth width)
{
    switch (width) {
      case MemWidth::None: return 0;
      case MemWidth::I8:
      case MemWidth::U8: return 1;
      case MemWidth::I16:
      case MemWidth::U16: return 2;
      case MemWidth::I32:
      case MemWidth::U32:
      case MemWidth::F32: return 4;
      case MemWidth::I64: return 8;
    }
    return 0;
}

std::string_view
memSpaceName(MemSpace space)
{
    switch (space) {
      case MemSpace::None: return "none";
      case MemSpace::Global: return "global";
      case MemSpace::Shared: return "shared";
      case MemSpace::Local: return "local";
    }
    return "?";
}

std::string_view
memWidthName(MemWidth width)
{
    switch (width) {
      case MemWidth::None: return "none";
      case MemWidth::I8: return "i8";
      case MemWidth::U8: return "u8";
      case MemWidth::I16: return "i16";
      case MemWidth::U16: return "u16";
      case MemWidth::I32: return "i32";
      case MemWidth::U32: return "u32";
      case MemWidth::I64: return "i64";
      case MemWidth::F32: return "f32";
    }
    return "?";
}

std::string_view
atomicOpName(AtomicOp op)
{
    switch (op) {
      case AtomicOp::None: return "none";
      case AtomicOp::AddI32: return "add.i32";
      case AtomicOp::AddF32: return "add.f32";
      case AtomicOp::MaxI32: return "max.i32";
      case AtomicOp::MinI32: return "min.i32";
      case AtomicOp::Exch: return "exch.i32";
      case AtomicOp::Cas: return "cas.i32";
    }
    return "?";
}

Operand
Operand::immF32(float f)
{
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return {Kind::Imm, static_cast<std::int64_t>(bits)};
}

bool
Instr::sameOperation(const Instr& other) const
{
    if (op != other.op || dest != other.dest || nops != other.nops ||
        space != other.space || width != other.width || atom != other.atom)
        return false;
    for (int i = 0; i < nops; ++i) {
        if (!(ops[i] == other.ops[i]))
            return false;
    }
    return true;
}

} // namespace gevo::ir
