/// \file
/// Operands, memory attributes and the Instr value type.
///
/// The IR is a register machine: a function declares `numRegs` mutable
/// 64-bit virtual registers (the first `numParams` are preloaded with kernel
/// arguments). This deliberately relaxes LLVM's SSA discipline — the paper
/// notes SSA "complicates [mutation operator] implementation considerably";
/// GEVO works around that with repair machinery, we adopt the unconstrained
/// form directly so the same edit taxonomy applies (see DESIGN.md §2).

#ifndef GEVO_IR_INSTR_H
#define GEVO_IR_INSTR_H

#include <cstdint>

#include "ir/opcode.h"

namespace gevo::ir {

/// Address space of a memory access.
enum class MemSpace : std::uint8_t {
    None,
    Global, ///< Device memory, visible to the whole grid.
    Shared, ///< Per-block scratchpad (32 banks x 4B in the timing model).
    Local,  ///< Per-thread scratch array.
};

/// Access width / extension rule of a load or store.
enum class MemWidth : std::uint8_t {
    None,
    I8,  ///< 1 byte, sign-extended on load.
    U8,  ///< 1 byte, zero-extended on load.
    I16, ///< 2 bytes, sign-extended.
    U16, ///< 2 bytes, zero-extended.
    I32, ///< 4 bytes, sign-extended.
    U32, ///< 4 bytes, zero-extended.
    I64, ///< 8 bytes.
    F32, ///< 4 bytes, float bit pattern (zero-extended raw).
};

/// Read-modify-write operation of an AtomicRMW (all on 32-bit cells).
enum class AtomicOp : std::uint8_t {
    None,
    AddI32,
    AddF32,
    MaxI32,
    MinI32,
    Exch,
    Cas, ///< ops = [addr, compare, new]; dest = old value.
};

/// Byte size of \p width accesses.
std::uint32_t memWidthBytes(MemWidth width);
/// Textual name of a MemSpace ("global"/"shared"/"local").
std::string_view memSpaceName(MemSpace space);
/// Textual name of a MemWidth ("i32", "f32", ...).
std::string_view memWidthName(MemWidth width);
/// Textual name of an AtomicOp ("add.i32", "cas.i32", ...).
std::string_view atomicOpName(AtomicOp op);

/// One instruction operand: a register, an immediate, or a block label.
struct Operand {
    /// Operand kinds.
    enum class Kind : std::uint8_t {
        None,
        Reg,   ///< value = register index.
        Imm,   ///< value = raw 64-bit immediate bits.
        Label, ///< value = basic-block index within the function.
    };

    Kind kind = Kind::None;
    std::int64_t value = 0;

    /// Register operand.
    static Operand reg(std::int64_t index) { return {Kind::Reg, index}; }
    /// Integer immediate (raw bits; i32 semantics applied by the opcode).
    static Operand imm(std::int64_t bits) { return {Kind::Imm, bits}; }
    /// Float immediate stored as f32 bits in the low word.
    static Operand immF32(float f);
    /// Block-label operand.
    static Operand label(std::int64_t blockIndex)
    {
        return {Kind::Label, blockIndex};
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isLabel() const { return kind == Kind::Label; }

    friend bool
    operator==(const Operand& a, const Operand& b)
    {
        return a.kind == b.kind && a.value == b.value;
    }
};

/// Maximum operand count of any opcode.
constexpr int kMaxOperands = 3;

/// A single IR instruction.
///
/// `uid` is a module-unique, stable identifier assigned at construction.
/// Mutation edits anchor to uids, not positions, so patches compose the way
/// GEVO patches do (dangling references become silent no-ops).
struct Instr {
    Opcode op = Opcode::Nop;
    std::int32_t dest = -1;       ///< Destination register or -1.
    std::uint8_t nops = 0;        ///< Live operand count.
    Operand ops[kMaxOperands];    ///< Operand slots.
    MemSpace space = MemSpace::None;
    MemWidth width = MemWidth::None;
    AtomicOp atom = AtomicOp::None;
    std::uint32_t loc = 0;        ///< Interned source-location id (0 = none).
    std::uint64_t uid = 0;        ///< Stable edit anchor.

    /// True for Br/CondBr/Ret.
    bool isTerminator() const { return ir::isTerminator(op); }

    /// Structural equality ignoring uid/loc (used by edit discovery
    /// matching in the Figure 8 trace).
    bool sameOperation(const Instr& other) const;
};

} // namespace gevo::ir

#endif // GEVO_IR_INSTR_H
