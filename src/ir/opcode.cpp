#include "ir/opcode.h"

#include <array>

#include "support/logging.h"

namespace gevo::ir {

namespace {

constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
#define OP(name, mnemonic, nops, hasDest, kind) \
    OpInfo{mnemonic, nops, hasDest, OpKind::kind},
#include "ir/opcodes.def"
#undef OP
}};

} // namespace

const OpInfo&
opInfo(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    GEVO_ASSERT(idx < kNumOpcodes, "bad opcode %zu", idx);
    return kOpTable[idx];
}

std::string_view
opMnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

bool
isTerminator(Opcode op)
{
    return opInfo(op).kind == OpKind::Ctrl;
}

bool
isPure(Opcode op)
{
    switch (opInfo(op).kind) {
      case OpKind::Alu:
      case OpKind::Cmp:
      case OpKind::Sreg:
        return true;
      case OpKind::Mem:
        // Loads are observationally pure in a single-kernel run only if no
        // store races them; the DCE pass treats loads as droppable when the
        // destination is dead because dropping a load cannot change memory.
        return op == Opcode::Load;
      case OpKind::Sync:
        // shfl/ballot/activemask read lane state but do not mutate it; a
        // dead result makes them removable. Barrier is never pure.
        return op == Opcode::ShflIdx || op == Opcode::ShflUp ||
               op == Opcode::Ballot || op == Opcode::ActiveMask;
      case OpKind::Ctrl:
        return false;
      case OpKind::Misc:
        return op == Opcode::Nop;
    }
    return false;
}

Opcode
opcodeFromMnemonic(std::string_view mnemonic)
{
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
        if (kOpTable[i].mnemonic == mnemonic)
            return static_cast<Opcode>(i);
    }
    return Opcode::Count;
}

} // namespace gevo::ir
