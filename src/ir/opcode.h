/// \file
/// Opcode enumeration and static per-opcode metadata.

#ifndef GEVO_IR_OPCODE_H
#define GEVO_IR_OPCODE_H

#include <cstdint>
#include <string_view>

namespace gevo::ir {

/// Broad behavioural class of an opcode (drives verifier, timing, DCE).
enum class OpKind : std::uint8_t {
    Alu,
    Cmp,
    Mem,
    Ctrl,
    Sync,
    Sreg,
    Misc,
};

/// All IR opcodes. See opcodes.def for semantics.
enum class Opcode : std::uint16_t {
#define OP(name, mnemonic, nops, hasDest, kind) name,
#include "ir/opcodes.def"
#undef OP
    Count,
};

/// Static description of one opcode.
struct OpInfo {
    std::string_view mnemonic; ///< Textual name, e.g. "add.i32".
    std::uint8_t numOps;       ///< Operand count (AtomicRMW CAS uses 3).
    bool hasDest;              ///< Writes a destination register.
    OpKind kind;               ///< Behavioural class.
};

/// Metadata for \p op.
const OpInfo& opInfo(Opcode op);

/// Mnemonic for \p op.
std::string_view opMnemonic(Opcode op);

/// True for Br/CondBr/Ret.
bool isTerminator(Opcode op);

/// True when the opcode has no side effect and its result can be dropped.
bool isPure(Opcode op);

/// Look up an opcode by exact mnemonic; returns Opcode::Count when unknown.
Opcode opcodeFromMnemonic(std::string_view mnemonic);

/// Total number of opcodes.
constexpr std::size_t kNumOpcodes = static_cast<std::size_t>(Opcode::Count);

} // namespace gevo::ir

#endif // GEVO_IR_OPCODE_H
