#include "ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "support/strings.h"

namespace gevo::ir {

namespace {

/// Pending label fix-up: operand slot that names a not-yet-resolved block.
struct LabelFixup {
    std::size_t block;
    std::size_t instr;
    int slot;
    std::string label;
    int line;
};

struct ParserState {
    ParseResult result;
    int line = 0;

    bool
    fail(const std::string& msg)
    {
        if (result.error.empty())
            result.error = strformat("line %d: %s", line, msg.c_str());
        result.ok = false;
        return false;
    }
};

bool
parseWidth(std::string_view name, MemWidth* out)
{
    static const std::map<std::string_view, MemWidth> kMap = {
        {"i8", MemWidth::I8},   {"u8", MemWidth::U8},
        {"i16", MemWidth::I16}, {"u16", MemWidth::U16},
        {"i32", MemWidth::I32}, {"u32", MemWidth::U32},
        {"i64", MemWidth::I64}, {"f32", MemWidth::F32},
    };
    const auto it = kMap.find(name);
    if (it == kMap.end())
        return false;
    *out = it->second;
    return true;
}

bool
parseSpace(std::string_view name, MemSpace* out)
{
    if (name == "global") {
        *out = MemSpace::Global;
    } else if (name == "shared") {
        *out = MemSpace::Shared;
    } else if (name == "local") {
        *out = MemSpace::Local;
    } else {
        return false;
    }
    return true;
}

bool
parseAtomicOp(std::string_view name, AtomicOp* out)
{
    static const std::map<std::string_view, AtomicOp> kMap = {
        {"add.i32", AtomicOp::AddI32}, {"add.f32", AtomicOp::AddF32},
        {"max.i32", AtomicOp::MaxI32}, {"min.i32", AtomicOp::MinI32},
        {"exch.i32", AtomicOp::Exch},  {"cas.i32", AtomicOp::Cas},
    };
    const auto it = kMap.find(name);
    if (it == kMap.end())
        return false;
    *out = it->second;
    return true;
}

/// Decompose a full mnemonic into opcode + memory attributes.
bool
decodeMnemonic(std::string_view m, Instr* in, std::string* err)
{
    if (startsWith(m, "ld.") || startsWith(m, "st.")) {
        const auto parts = split(m, '.');
        if (parts.size() != 3) {
            *err = "malformed memory mnemonic";
            return false;
        }
        in->op = parts[0] == "ld" ? Opcode::Load : Opcode::Store;
        if (!parseWidth(parts[1], &in->width)) {
            *err = "unknown memory width '" + parts[1] + "'";
            return false;
        }
        if (!parseSpace(parts[2], &in->space)) {
            *err = "unknown memory space '" + parts[2] + "'";
            return false;
        }
        return true;
    }
    if (startsWith(m, "atom.")) {
        // atom.<op>.<ty>.<space>, e.g. atom.add.i32.global
        const auto parts = split(m, '.');
        if (parts.size() != 4) {
            *err = "malformed atomic mnemonic";
            return false;
        }
        in->op = Opcode::AtomicRMW;
        in->width = MemWidth::I32;
        const std::string opName = parts[1] + "." + parts[2];
        if (!parseAtomicOp(opName, &in->atom)) {
            *err = "unknown atomic op '" + opName + "'";
            return false;
        }
        if (!parseSpace(parts[3], &in->space)) {
            *err = "unknown memory space '" + parts[3] + "'";
            return false;
        }
        return true;
    }
    const Opcode op = opcodeFromMnemonic(m);
    if (op == Opcode::Count) {
        *err = "unknown mnemonic '" + std::string(m) + "'";
        return false;
    }
    in->op = op;
    return true;
}

bool
looksLikeFloat(std::string_view tok)
{
    if (tok.empty())
        return false;
    // Hex literals are always integers ("0xff" is not a float despite the
    // trailing 'f').
    if (startsWith(tok, "0x") || startsWith(tok, "0X") ||
        startsWith(tok, "-0x") || startsWith(tok, "-0X"))
        return false;
    bool digit = false;
    for (char c : tok) {
        if (std::isdigit(static_cast<unsigned char>(c)))
            digit = true;
    }
    if (!digit)
        return false;
    return tok.find('.') != std::string_view::npos || tok.back() == 'f' ||
           tok.find('e') != std::string_view::npos;
}

bool
parseOperandToken(std::string_view tok, Operand* out, std::string* label)
{
    if (tok.empty())
        return false;
    if (tok[0] == 'r' && tok.size() > 1 &&
        std::isdigit(static_cast<unsigned char>(tok[1]))) {
        char* end = nullptr;
        const long long v = std::strtoll(tok.data() + 1, &end, 10);
        if (end == tok.data() + tok.size()) {
            *out = Operand::reg(v);
            return true;
        }
    }
    const bool neg = tok[0] == '-';
    const bool digitStart =
        std::isdigit(static_cast<unsigned char>(tok[0])) ||
        (neg && tok.size() > 1 &&
         std::isdigit(static_cast<unsigned char>(tok[1])));
    if (digitStart) {
        if (looksLikeFloat(tok)) {
            std::string buf(tok);
            if (buf.back() == 'f')
                buf.pop_back();
            *out = Operand::immF32(std::strtof(buf.c_str(), nullptr));
            return true;
        }
        std::string buf(tok);
        *out = Operand::imm(std::strtoll(buf.c_str(), nullptr, 0));
        return true;
    }
    // Otherwise: a block label, resolved later.
    *label = std::string(tok);
    out->kind = Operand::Kind::Label;
    out->value = -1;
    return true;
}

/// Split "a, b, c" into trimmed tokens.
std::vector<std::string>
splitOperands(std::string_view text)
{
    std::vector<std::string> out;
    for (const auto& piece : split(text, ',')) {
        const auto t = trim(piece);
        if (!t.empty())
            out.emplace_back(t);
    }
    return out;
}

} // namespace

ParseResult
parseModule(std::string_view text)
{
    ParserState st;
    Module& mod = st.result.module;

    Function* fn = nullptr;
    std::vector<LabelFixup> fixups;
    std::map<std::string, std::int32_t> blockIndex;

    auto finishFunction = [&]() -> bool {
        if (fn == nullptr)
            return true;
        for (const auto& fix : fixups) {
            const auto it = blockIndex.find(fix.label);
            if (it == blockIndex.end()) {
                st.line = fix.line;
                return st.fail("unknown label '" + fix.label + "'");
            }
            fn->blocks[fix.block].instrs[fix.instr].ops[fix.slot] =
                Operand::label(it->second);
        }
        fixups.clear();
        blockIndex.clear();
        fn = nullptr;
        return true;
    };

    const auto lines = split(text, '\n');
    for (std::size_t li = 0; li < lines.size(); ++li) {
        st.line = static_cast<int>(li) + 1;
        std::string_view line = lines[li];
        // Strip comments (not inside the @"loc" suffix — locs contain ':'
        // but never ';' or '#').
        const auto comment = line.find_first_of(";#");
        if (comment != std::string_view::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;

        if (startsWith(line, "kernel ")) {
            if (fn != nullptr) {
                st.fail("nested kernel");
                return std::move(st.result);
            }
            // kernel @name params N regs N shared N local N {
            std::string header(line);
            std::uint32_t params = 0;
            std::uint32_t regs = 0;
            std::uint32_t shared = 0;
            std::uint32_t local = 0;
            char name[128] = {};
            const int got = std::sscanf(
                header.c_str(),
                "kernel @%127s params %u regs %u shared %u local %u",
                name, &params, &regs, &shared, &local);
            if (got < 3) {
                st.fail("malformed kernel header");
                return std::move(st.result);
            }
            Function newFn;
            newFn.name = name;
            newFn.numParams = params;
            newFn.numRegs = regs;
            newFn.sharedBytes = shared;
            newFn.localBytes = local;
            const auto idx = mod.addFunction(std::move(newFn));
            fn = &mod.function(idx);
            continue;
        }
        if (line == "}") {
            if (!finishFunction())
                return std::move(st.result);
            continue;
        }
        if (fn == nullptr) {
            st.fail("instruction outside kernel");
            return std::move(st.result);
        }
        if (line.back() == ':') {
            const auto label = std::string(trim(line.substr(0, line.size() - 1)));
            BasicBlock bb;
            bb.name = label;
            fn->blocks.push_back(std::move(bb));
            blockIndex[label] = static_cast<std::int32_t>(fn->blocks.size()) - 1;
            continue;
        }
        if (fn->blocks.empty()) {
            st.fail("instruction before first label");
            return std::move(st.result);
        }

        // Optional source-location suffix.
        std::string locStr;
        const auto at = line.rfind("@\"");
        if (at != std::string_view::npos && line.back() == '"') {
            locStr = std::string(line.substr(at + 2,
                                             line.size() - at - 3));
            line = trim(line.substr(0, at));
        }

        Instr in;
        in.loc = mod.internLoc(locStr);

        // Optional destination.
        std::string_view rest = line;
        const auto eq = line.find('=');
        if (eq != std::string_view::npos &&
            line.substr(0, eq).find(' ') == line.substr(0, eq).find_last_of(' ')) {
            const auto destTok = trim(line.substr(0, eq));
            if (!destTok.empty() && destTok[0] == 'r') {
                in.dest = static_cast<std::int32_t>(
                    std::strtoll(std::string(destTok.substr(1)).c_str(),
                                 nullptr, 10));
                rest = trim(line.substr(eq + 1));
            }
        }

        // Mnemonic token then operand list.
        const auto sp = rest.find_first_of(" \t");
        const std::string_view mnemonic =
            sp == std::string_view::npos ? rest : rest.substr(0, sp);
        const std::string_view opsText =
            sp == std::string_view::npos ? std::string_view()
                                         : trim(rest.substr(sp + 1));

        std::string err;
        if (!decodeMnemonic(mnemonic, &in, &err)) {
            st.fail(err);
            return std::move(st.result);
        }

        const auto tokens = splitOperands(opsText);
        const OpInfo& info = opInfo(in.op);
        const std::size_t expected =
            in.op == Opcode::AtomicRMW && in.atom == AtomicOp::Cas
                ? 3
                : info.numOps;
        if (tokens.size() != expected) {
            st.fail(strformat("expected %zu operands, got %zu", expected,
                              tokens.size()));
            return std::move(st.result);
        }
        if (info.hasDest && in.dest < 0) {
            st.fail("missing destination register");
            return std::move(st.result);
        }
        if (!info.hasDest && in.dest >= 0) {
            st.fail("unexpected destination register");
            return std::move(st.result);
        }

        in.nops = static_cast<std::uint8_t>(tokens.size());
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            std::string label;
            if (!parseOperandToken(tokens[i], &in.ops[i], &label)) {
                st.fail("bad operand '" + tokens[i] + "'");
                return std::move(st.result);
            }
            if (in.ops[i].isLabel() && !label.empty()) {
                fixups.push_back({fn->blocks.size() - 1,
                                  fn->blocks.back().instrs.size(),
                                  static_cast<int>(i), label, st.line});
            }
        }

        in.uid = mod.nextUid();
        fn->blocks.back().instrs.push_back(in);
    }

    if (fn != nullptr) {
        st.fail("missing closing '}'");
        return std::move(st.result);
    }
    if (!st.result.error.empty())
        return std::move(st.result);
    st.result.ok = true;
    return std::move(st.result);
}

} // namespace gevo::ir
