/// \file
/// Parser for the textual IR format produced by the printer.
///
/// Grammar (line oriented; `;` and `#` start comments):
///
///   kernel @NAME params N regs N shared N local N {
///   LABEL:
///       rD = MNEMONIC OPERAND, OPERAND ... [@"file.cu:LINE"]
///       MNEMONIC OPERAND ...
///   }
///
/// Operands: `rN` registers, integer immediates (decimal or 0x hex),
/// float immediates (contain '.' or trailing 'f'; stored as f32 bits),
/// or block labels (Br/CondBr only).

#ifndef GEVO_IR_PARSER_H
#define GEVO_IR_PARSER_H

#include <string>
#include <string_view>

#include "ir/function.h"

namespace gevo::ir {

/// Parse result: a module or a diagnostic.
struct ParseResult {
    Module module;
    bool ok = false;
    std::string error; ///< "line N: message" when !ok.
};

/// Parse IR text into a module.
ParseResult parseModule(std::string_view text);

} // namespace gevo::ir

#endif // GEVO_IR_PARSER_H
