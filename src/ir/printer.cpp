#include "ir/printer.h"

#include <cstring>

#include "support/strings.h"

namespace gevo::ir {

namespace {

std::string
printOperand(const Operand& op, const Function& fn)
{
    switch (op.kind) {
      case Operand::Kind::None:
        return "<none>";
      case Operand::Kind::Reg:
        return strformat("r%lld", static_cast<long long>(op.value));
      case Operand::Kind::Imm:
        return strformat("%lld", static_cast<long long>(op.value));
      case Operand::Kind::Label: {
        const auto idx = static_cast<std::size_t>(op.value);
        if (idx < fn.blocks.size())
            return fn.blocks[idx].name;
        return strformat("<bb%lld>", static_cast<long long>(op.value));
      }
    }
    return "?";
}

std::string
mnemonicOf(const Instr& in)
{
    std::string m(opMnemonic(in.op));
    if (in.op == Opcode::Load || in.op == Opcode::Store) {
        m += '.';
        m += memWidthName(in.width);
        m += '.';
        m += memSpaceName(in.space);
    } else if (in.op == Opcode::AtomicRMW) {
        m += '.';
        m += atomicOpName(in.atom);
        m += '.';
        m += memSpaceName(in.space);
    }
    return m;
}

} // namespace

std::string
printInstr(const Instr& in, const Function& fn, const Module* mod)
{
    std::string out;
    if (in.dest >= 0)
        out += strformat("r%d = ", in.dest);
    out += mnemonicOf(in);
    for (int i = 0; i < in.nops; ++i) {
        out += i == 0 ? " " : ", ";
        out += printOperand(in.ops[i], fn);
    }
    if (mod != nullptr && in.loc != 0) {
        const std::string& loc = mod->locString(in.loc);
        if (!loc.empty())
            out += strformat(" @\"%s\"", loc.c_str());
    }
    return out;
}

std::string
printFunction(const Function& fn, const Module* mod)
{
    std::string out = strformat(
        "kernel @%s params %u regs %u shared %u local %u {\n",
        fn.name.c_str(), fn.numParams, fn.numRegs, fn.sharedBytes,
        fn.localBytes);
    for (const auto& bb : fn.blocks) {
        out += bb.name;
        out += ":\n";
        for (const auto& in : bb.instrs) {
            out += "    ";
            out += printInstr(in, fn, mod);
            out += '\n';
        }
    }
    out += "}\n";
    return out;
}

std::string
printModule(const Module& mod)
{
    std::string out;
    for (std::size_t i = 0; i < mod.numFunctions(); ++i) {
        if (i)
            out += '\n';
        out += printFunction(mod.function(i), &mod);
    }
    return out;
}

} // namespace gevo::ir
