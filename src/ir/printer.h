/// \file
/// Textual rendering of IR (round-trips through the parser).

#ifndef GEVO_IR_PRINTER_H
#define GEVO_IR_PRINTER_H

#include <string>

#include "ir/function.h"

namespace gevo::ir {

/// Render one instruction (no trailing newline). \p fn supplies block names
/// for label operands; \p mod (optional) supplies source-location strings.
std::string printInstr(const Instr& instr, const Function& fn,
                       const Module* mod = nullptr);

/// Render a whole kernel.
std::string printFunction(const Function& fn, const Module* mod = nullptr);

/// Render a whole module.
std::string printModule(const Module& mod);

} // namespace gevo::ir

#endif // GEVO_IR_PRINTER_H
