#include "ir/verifier.h"

#include "support/strings.h"

namespace gevo::ir {

std::string
VerifyResult::message() const
{
    std::string out;
    for (const auto& e : errors) {
        if (!out.empty())
            out += "; ";
        out += e;
    }
    return out;
}

namespace {

void
verifyInstr(const Function& fn, const BasicBlock& bb, std::size_t bi,
            std::size_t ii, const Instr& in, VerifyResult* res)
{
    auto err = [&](const std::string& msg) {
        res->errors.push_back(strformat("%s/%s[%zu]: %s", fn.name.c_str(),
                                        bb.name.c_str(), ii, msg.c_str()));
    };

    if (static_cast<std::size_t>(in.op) >= kNumOpcodes) {
        err("invalid opcode");
        return;
    }
    const OpInfo& info = opInfo(in.op);

    const std::size_t expectedOps =
        in.op == Opcode::AtomicRMW && in.atom == AtomicOp::Cas ? 3
                                                               : info.numOps;
    if (in.nops != expectedOps)
        err(strformat("operand count %u != %zu", in.nops, expectedOps));

    if (info.hasDest) {
        if (in.dest < 0 ||
            static_cast<std::uint32_t>(in.dest) >= fn.numRegs)
            err(strformat("bad destination r%d", in.dest));
    } else if (in.dest >= 0) {
        err("unexpected destination");
    }

    const bool isMem = info.kind == OpKind::Mem;
    if (isMem) {
        if (in.space == MemSpace::None)
            err("memory op without space");
        if (in.width == MemWidth::None)
            err("memory op without width");
        if (in.op == Opcode::AtomicRMW && in.atom == AtomicOp::None)
            err("atomic without op");
    } else {
        if (in.space != MemSpace::None || in.width != MemWidth::None ||
            in.atom != AtomicOp::None)
            err("memory attributes on non-memory op");
    }

    for (int s = 0; s < in.nops; ++s) {
        const Operand& op = in.ops[s];
        const bool labelSlot =
            (in.op == Opcode::Br && s == 0) ||
            (in.op == Opcode::CondBr && (s == 1 || s == 2));
        if (labelSlot) {
            if (!op.isLabel() ||
                static_cast<std::size_t>(op.value) >= fn.blocks.size())
                err(strformat("operand %d: bad label", s));
            continue;
        }
        if (op.isLabel()) {
            err(strformat("operand %d: label in value slot", s));
            continue;
        }
        if (op.isReg() &&
            (op.value < 0 ||
             static_cast<std::uint32_t>(op.value) >= fn.numRegs))
            err(strformat("operand %d: bad register r%lld", s,
                          static_cast<long long>(op.value)));
        if (op.kind == Operand::Kind::None)
            err(strformat("operand %d: missing", s));
    }

    const bool lastInBlock = ii + 1 == bb.instrs.size();
    if (in.isTerminator() && !lastInBlock)
        err("terminator not at block end");
    if (!in.isTerminator() && lastInBlock)
        err("block does not end in a terminator");
    (void)bi;
}

} // namespace

VerifyResult
verifyFunction(const Function& fn)
{
    VerifyResult res;
    if (fn.blocks.empty()) {
        res.errors.push_back(fn.name + ": kernel has no blocks");
        return res;
    }
    if (fn.numParams > fn.numRegs)
        res.errors.push_back(fn.name + ": params exceed registers");
    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
        const auto& bb = fn.blocks[bi];
        if (bb.instrs.empty()) {
            res.errors.push_back(
                strformat("%s/%s: empty block", fn.name.c_str(),
                          bb.name.c_str()));
            continue;
        }
        for (std::size_t ii = 0; ii < bb.instrs.size(); ++ii)
            verifyInstr(fn, bb, bi, ii, bb.instrs[ii], &res);
    }
    return res;
}

VerifyResult
verifyModule(const Module& mod)
{
    VerifyResult res;
    for (std::size_t i = 0; i < mod.numFunctions(); ++i) {
        auto fnRes = verifyFunction(mod.function(i));
        for (auto& e : fnRes.errors)
            res.errors.push_back(std::move(e));
    }
    return res;
}

} // namespace gevo::ir
