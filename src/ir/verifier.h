/// \file
/// Structural validation of kernels.
///
/// Mutated modules are hostile inputs: the verifier is the first fitness
/// gate (paper Fig. 1 "Evaluation" — variants that do not even constitute a
/// runnable kernel are discarded before simulation).

#ifndef GEVO_IR_VERIFIER_H
#define GEVO_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/function.h"

namespace gevo::ir {

/// Result of verification: empty `errors` means structurally valid.
struct VerifyResult {
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
    /// Single joined diagnostic string.
    std::string message() const;
};

/// Verify one kernel: every block non-empty and terminator-terminated,
/// terminators only in tail position, label operands in range, register
/// indices within numRegs, operand counts/kinds matching opcode signatures,
/// memory attributes present exactly on memory opcodes.
VerifyResult verifyFunction(const Function& fn);

/// Verify all kernels of a module.
VerifyResult verifyModule(const Module& mod);

} // namespace gevo::ir

#endif // GEVO_IR_VERIFIER_H
