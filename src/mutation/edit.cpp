#include "mutation/edit.h"

#include <cstdio>

#include "support/strings.h"

namespace gevo::mut {

std::string_view
editKindName(EditKind kind)
{
    switch (kind) {
      case EditKind::InstrDelete: return "delete";
      case EditKind::InstrCopy: return "copy";
      case EditKind::InstrMove: return "move";
      case EditKind::InstrReplace: return "replace";
      case EditKind::InstrSwap: return "swap";
      case EditKind::OperandReplace: return "oprepl";
    }
    return "?";
}

namespace {

const char*
operandKindTag(ir::Operand::Kind kind)
{
    switch (kind) {
      case ir::Operand::Kind::None: return "n";
      case ir::Operand::Kind::Reg: return "r";
      case ir::Operand::Kind::Imm: return "i";
      case ir::Operand::Kind::Label: return "l";
    }
    return "?";
}

bool
parseOperandKindTag(const std::string& tag, ir::Operand::Kind* out)
{
    if (tag == "n") {
        *out = ir::Operand::Kind::None;
    } else if (tag == "r") {
        *out = ir::Operand::Kind::Reg;
    } else if (tag == "i") {
        *out = ir::Operand::Kind::Imm;
    } else if (tag == "l") {
        *out = ir::Operand::Kind::Label;
    } else {
        return false;
    }
    return true;
}

} // namespace

std::string
Edit::toString() const
{
    switch (kind) {
      case EditKind::InstrDelete:
        return strformat("delete(#%llu)",
                         static_cast<unsigned long long>(srcUid));
      case EditKind::InstrCopy:
        return strformat("copy(#%llu -> before #%llu)",
                         static_cast<unsigned long long>(srcUid),
                         static_cast<unsigned long long>(dstUid));
      case EditKind::InstrMove:
        return strformat("move(#%llu -> before #%llu)",
                         static_cast<unsigned long long>(srcUid),
                         static_cast<unsigned long long>(dstUid));
      case EditKind::InstrReplace:
        return strformat("replace(#%llu <- #%llu)",
                         static_cast<unsigned long long>(dstUid),
                         static_cast<unsigned long long>(srcUid));
      case EditKind::InstrSwap:
        return strformat("swap(#%llu <-> #%llu)",
                         static_cast<unsigned long long>(srcUid),
                         static_cast<unsigned long long>(dstUid));
      case EditKind::OperandReplace:
        return strformat("oprepl(#%llu.%d <- %s%lld)",
                         static_cast<unsigned long long>(srcUid), opIndex,
                         operandKindTag(newOperand.kind),
                         static_cast<long long>(newOperand.value));
    }
    return "?";
}

std::string
serializeEdits(const std::vector<Edit>& edits)
{
    std::string out;
    for (const auto& e : edits) {
        out += strformat("%s %llu %llu %d %s %lld %llu\n",
                         std::string(editKindName(e.kind)).c_str(),
                         static_cast<unsigned long long>(e.srcUid),
                         static_cast<unsigned long long>(e.dstUid),
                         static_cast<int>(e.opIndex),
                         operandKindTag(e.newOperand.kind),
                         static_cast<long long>(e.newOperand.value),
                         static_cast<unsigned long long>(e.newUid));
    }
    return out;
}

bool
deserializeEdits(const std::string& text, std::vector<Edit>* out)
{
    out->clear();
    for (const auto& lineStr : split(text, '\n')) {
        const auto line = trim(lineStr);
        if (line.empty())
            continue;
        char kindBuf[16] = {};
        char tagBuf[4] = {};
        unsigned long long src = 0;
        unsigned long long dst = 0;
        unsigned long long newUid = 0;
        long long value = 0;
        int opIdx = -1;
        const int got = std::sscanf(std::string(line).c_str(),
                                    "%15s %llu %llu %d %3s %lld %llu",
                                    kindBuf, &src, &dst, &opIdx, tagBuf,
                                    &value, &newUid);
        if (got != 7)
            return false;
        Edit e;
        const std::string kindName(kindBuf);
        bool found = false;
        for (const auto kind :
             {EditKind::InstrDelete, EditKind::InstrCopy, EditKind::InstrMove,
              EditKind::InstrReplace, EditKind::InstrSwap,
              EditKind::OperandReplace}) {
            if (editKindName(kind) == kindName) {
                e.kind = kind;
                found = true;
                break;
            }
        }
        if (!found)
            return false;
        e.srcUid = src;
        e.dstUid = dst;
        e.opIndex = static_cast<std::int8_t>(opIdx);
        if (!parseOperandKindTag(tagBuf, &e.newOperand.kind))
            return false;
        e.newOperand.value = value;
        e.newUid = newUid;
        out->push_back(e);
    }
    return true;
}

} // namespace gevo::mut
