/// \file
/// The GEVO edit (patch) representation.
///
/// An individual in the evolutionary search is a *list of edits* applied to
/// the original kernel module (paper Sec II-A). Edits anchor to instruction
/// uids, not positions, so they compose: an edit whose anchors have
/// disappeared (because an earlier edit deleted them) is silently skipped,
/// exactly the robustness GEVO relies on — and the reason evolved variants
/// accumulate hundreds of weak or no-op edits (paper Sec V-A: 1394 edits,
/// 17 that matter).

#ifndef GEVO_MUTATION_EDIT_H
#define GEVO_MUTATION_EDIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instr.h"

namespace gevo::mut {

/// GEVO's mutation operator set (paper Sec II-A: "copy, delete, move,
/// replace, or swap [an instruction] or replace the operands between
/// instructions").
enum class EditKind : std::uint8_t {
    InstrDelete,    ///< Remove the instruction at srcUid.
    InstrCopy,      ///< Insert a clone of srcUid before dstUid.
    InstrMove,      ///< Move srcUid to just before dstUid.
    InstrReplace,   ///< Overwrite dstUid's operation with a clone of srcUid.
    InstrSwap,      ///< Exchange the operations at srcUid and dstUid.
    OperandReplace, ///< Set operand opIndex of srcUid to newOperand.
};

/// Human-readable kind name ("delete", "copy", ...).
std::string_view editKindName(EditKind kind);

/// One edit. Fields beyond `kind` are interpreted per kind; see EditKind.
struct Edit {
    EditKind kind = EditKind::InstrDelete;
    std::uint64_t srcUid = 0;
    std::uint64_t dstUid = 0;
    std::int8_t opIndex = -1;       ///< OperandReplace slot.
    ir::Operand newOperand;         ///< OperandReplace payload.
    std::uint64_t newUid = 0;       ///< Uid for clones (copy/replace),
                                    ///< fixed at creation for determinism.

    friend bool
    operator==(const Edit& a, const Edit& b)
    {
        return a.kind == b.kind && a.srcUid == b.srcUid &&
               a.dstUid == b.dstUid && a.opIndex == b.opIndex &&
               a.newOperand == b.newOperand;
        // newUid deliberately ignored: two edits doing the same thing are
        // the same edit for discovery-trace matching (Figure 8).
    }

    /// Compact single-line rendering, e.g. "oprepl(#12.0 <- r7)".
    std::string toString() const;
};

/// Serialize an edit list to a line-per-edit text form.
std::string serializeEdits(const std::vector<Edit>& edits);

/// Parse the text form back; returns false on malformed input.
bool deserializeEdits(const std::string& text, std::vector<Edit>* out);

} // namespace gevo::mut

#endif // GEVO_MUTATION_EDIT_H
