#include "mutation/patch.h"

#include <utility>

namespace gevo::mut {

namespace {

using ir::Function;
using ir::Instr;
using ir::InstrPos;
using ir::Module;

/// Locate (function, position) of an instruction uid; fn == nullptr when
/// not found.
struct Located {
    Function* fn = nullptr;
    InstrPos pos;
};

Located
locate(Module& mod, std::uint64_t uid)
{
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        auto& fn = mod.function(f);
        const auto pos = fn.findUid(uid);
        if (pos.valid())
            return {&fn, pos};
    }
    return {};
}

bool
applyDelete(Module& mod, const Edit& e)
{
    const auto loc = locate(mod, e.srcUid);
    if (loc.fn == nullptr || loc.fn->at(loc.pos).isTerminator())
        return false;
    auto& instrs = loc.fn->blocks[loc.pos.block].instrs;
    instrs.erase(instrs.begin() + loc.pos.index);
    return true;
}

bool
applyCopy(Module& mod, const Edit& e)
{
    const auto src = locate(mod, e.srcUid);
    const auto dst = locate(mod, e.dstUid);
    if (src.fn == nullptr || dst.fn == nullptr || src.fn != dst.fn)
        return false;
    if (src.fn->at(src.pos).isTerminator())
        return false;
    Instr clone = src.fn->at(src.pos);
    clone.uid = e.newUid;
    auto& instrs = dst.fn->blocks[dst.pos.block].instrs;
    instrs.insert(instrs.begin() + dst.pos.index, clone);
    mod.bumpUidCounter(e.newUid);
    return true;
}

bool
applyMove(Module& mod, const Edit& e)
{
    const auto src = locate(mod, e.srcUid);
    const auto dst = locate(mod, e.dstUid);
    if (src.fn == nullptr || dst.fn == nullptr || src.fn != dst.fn)
        return false;
    if (src.fn->at(src.pos).isTerminator())
        return false;
    if (e.srcUid == e.dstUid)
        return false;
    const Instr moved = src.fn->at(src.pos);
    auto& srcInstrs = src.fn->blocks[src.pos.block].instrs;
    srcInstrs.erase(srcInstrs.begin() + src.pos.index);
    // Re-locate the destination: indices may have shifted.
    const auto dst2 = locate(mod, e.dstUid);
    if (dst2.fn == nullptr) {
        // Destination vanished (was the moved instruction's neighbour in a
        // degenerate way); restore by appending back where it was.
        srcInstrs.insert(srcInstrs.begin() + src.pos.index, moved);
        return false;
    }
    auto& dstInstrs = dst2.fn->blocks[dst2.pos.block].instrs;
    dstInstrs.insert(dstInstrs.begin() + dst2.pos.index, moved);
    return true;
}

bool
applyReplace(Module& mod, const Edit& e)
{
    const auto src = locate(mod, e.srcUid);
    const auto dst = locate(mod, e.dstUid);
    if (src.fn == nullptr || dst.fn == nullptr || src.fn != dst.fn)
        return false;
    if (src.fn->at(src.pos).isTerminator() ||
        dst.fn->at(dst.pos).isTerminator())
        return false;
    if (e.srcUid == e.dstUid)
        return false;
    Instr clone = src.fn->at(src.pos);
    clone.uid = e.newUid;
    dst.fn->at(dst.pos) = clone;
    mod.bumpUidCounter(e.newUid);
    return true;
}

bool
applySwap(Module& mod, const Edit& e)
{
    const auto a = locate(mod, e.srcUid);
    const auto b = locate(mod, e.dstUid);
    if (a.fn == nullptr || b.fn == nullptr || a.fn != b.fn)
        return false;
    if (a.fn->at(a.pos).isTerminator() || b.fn->at(b.pos).isTerminator())
        return false;
    if (e.srcUid == e.dstUid)
        return false;
    std::swap(a.fn->at(a.pos), b.fn->at(b.pos));
    return true;
}

bool
applyOperandReplace(Module& mod, const Edit& e)
{
    const auto loc = locate(mod, e.srcUid);
    if (loc.fn == nullptr)
        return false;
    Instr& in = loc.fn->at(loc.pos);
    if (e.opIndex < 0 || e.opIndex >= in.nops)
        return false;
    const bool labelSlot =
        (in.op == ir::Opcode::Br && e.opIndex == 0) ||
        (in.op == ir::Opcode::CondBr && (e.opIndex == 1 || e.opIndex == 2));
    if (labelSlot) {
        if (!e.newOperand.isLabel() ||
            static_cast<std::size_t>(e.newOperand.value) >=
                loc.fn->blocks.size())
            return false;
    } else {
        if (e.newOperand.isLabel())
            return false;
        if (e.newOperand.isReg() &&
            (e.newOperand.value < 0 ||
             static_cast<std::uint32_t>(e.newOperand.value) >=
                 loc.fn->numRegs))
            return false;
        if (e.newOperand.kind == ir::Operand::Kind::None)
            return false;
    }
    if (in.ops[e.opIndex] == e.newOperand)
        return false; // no-op
    in.ops[e.opIndex] = e.newOperand;
    return true;
}

} // namespace

bool
applyEdit(ir::Module& mod, const Edit& edit)
{
    switch (edit.kind) {
      case EditKind::InstrDelete: return applyDelete(mod, edit);
      case EditKind::InstrCopy: return applyCopy(mod, edit);
      case EditKind::InstrMove: return applyMove(mod, edit);
      case EditKind::InstrReplace: return applyReplace(mod, edit);
      case EditKind::InstrSwap: return applySwap(mod, edit);
      case EditKind::OperandReplace: return applyOperandReplace(mod, edit);
    }
    return false;
}

ir::Module
applyPatch(const ir::Module& base, const std::vector<Edit>& edits,
           PatchStats* stats)
{
    ir::Module variant = base.clone();
    PatchStats local;
    for (const auto& e : edits) {
        if (applyEdit(variant, e)) {
            ++local.applied;
        } else {
            ++local.skipped;
        }
    }
    if (stats != nullptr)
        *stats = local;
    return variant;
}

} // namespace gevo::mut
