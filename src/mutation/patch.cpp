#include "mutation/patch.h"

#include <utility>

namespace gevo::mut {

namespace {

using ir::Function;
using ir::Instr;
using ir::InstrPos;
using ir::Module;

/// Locate (function index, position) of an instruction uid without
/// touching the module: variants share their functions copy-on-write
/// with the base, so every skip-check below reads through const access
/// and only a committed edit detaches (deep-copies) the one function it
/// writes — via the non-const Module::function(fnIdx) at the last
/// possible moment.
struct Located {
    std::int32_t fnIdx = -1;
    InstrPos pos;

    bool found() const { return fnIdx >= 0; }
};

Located
locate(const Module& mod, std::uint64_t uid)
{
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        const auto pos = mod.function(f).findUid(uid);
        if (pos.valid())
            return {static_cast<std::int32_t>(f), pos};
    }
    return {};
}

/// Const view of a located function (no detach).
const Function&
peek(const Module& mod, const Located& loc)
{
    return mod.function(loc.fnIdx);
}

bool
applyDelete(Module& mod, const Edit& e)
{
    const auto loc = locate(mod, e.srcUid);
    if (!loc.found() || peek(mod, loc).at(loc.pos).isTerminator())
        return false;
    auto& instrs = mod.function(loc.fnIdx).blocks[loc.pos.block].instrs;
    instrs.erase(instrs.begin() + loc.pos.index);
    return true;
}

bool
applyCopy(Module& mod, const Edit& e)
{
    const auto src = locate(mod, e.srcUid);
    const auto dst = locate(mod, e.dstUid);
    if (!src.found() || !dst.found() || src.fnIdx != dst.fnIdx)
        return false;
    if (peek(mod, src).at(src.pos).isTerminator())
        return false;
    Instr clone = peek(mod, src).at(src.pos);
    clone.uid = e.newUid;
    auto& instrs = mod.function(dst.fnIdx).blocks[dst.pos.block].instrs;
    instrs.insert(instrs.begin() + dst.pos.index, clone);
    mod.bumpUidCounter(e.newUid);
    return true;
}

bool
applyMove(Module& mod, const Edit& e)
{
    const auto src = locate(mod, e.srcUid);
    const auto dst = locate(mod, e.dstUid);
    if (!src.found() || !dst.found() || src.fnIdx != dst.fnIdx)
        return false;
    if (peek(mod, src).at(src.pos).isTerminator())
        return false;
    if (e.srcUid == e.dstUid)
        return false;
    Function& fn = mod.function(src.fnIdx);
    const Instr moved = fn.at(src.pos);
    auto& srcInstrs = fn.blocks[src.pos.block].instrs;
    srcInstrs.erase(srcInstrs.begin() + src.pos.index);
    // Re-locate the destination: indices may have shifted (both ends live
    // in the now-detached function).
    const auto pos2 = fn.findUid(e.dstUid);
    if (!pos2.valid()) {
        // Destination vanished (was the moved instruction's neighbour in a
        // degenerate way); restore by appending back where it was.
        srcInstrs.insert(srcInstrs.begin() + src.pos.index, moved);
        return false;
    }
    auto& dstInstrs = fn.blocks[pos2.block].instrs;
    dstInstrs.insert(dstInstrs.begin() + pos2.index, moved);
    return true;
}

bool
applyReplace(Module& mod, const Edit& e)
{
    const auto src = locate(mod, e.srcUid);
    const auto dst = locate(mod, e.dstUid);
    if (!src.found() || !dst.found() || src.fnIdx != dst.fnIdx)
        return false;
    if (peek(mod, src).at(src.pos).isTerminator() ||
        peek(mod, dst).at(dst.pos).isTerminator())
        return false;
    if (e.srcUid == e.dstUid)
        return false;
    Instr clone = peek(mod, src).at(src.pos);
    clone.uid = e.newUid;
    mod.function(dst.fnIdx).at(dst.pos) = clone;
    mod.bumpUidCounter(e.newUid);
    return true;
}

bool
applySwap(Module& mod, const Edit& e)
{
    const auto a = locate(mod, e.srcUid);
    const auto b = locate(mod, e.dstUid);
    if (!a.found() || !b.found() || a.fnIdx != b.fnIdx)
        return false;
    if (peek(mod, a).at(a.pos).isTerminator() ||
        peek(mod, b).at(b.pos).isTerminator())
        return false;
    if (e.srcUid == e.dstUid)
        return false;
    Function& fn = mod.function(a.fnIdx);
    std::swap(fn.at(a.pos), fn.at(b.pos));
    return true;
}

bool
applyOperandReplace(Module& mod, const Edit& e)
{
    const auto loc = locate(mod, e.srcUid);
    if (!loc.found())
        return false;
    const Function& fn = peek(mod, loc);
    const Instr& in = fn.at(loc.pos);
    if (e.opIndex < 0 || e.opIndex >= in.nops)
        return false;
    const bool labelSlot =
        (in.op == ir::Opcode::Br && e.opIndex == 0) ||
        (in.op == ir::Opcode::CondBr && (e.opIndex == 1 || e.opIndex == 2));
    if (labelSlot) {
        if (!e.newOperand.isLabel() ||
            static_cast<std::size_t>(e.newOperand.value) >= fn.blocks.size())
            return false;
    } else {
        if (e.newOperand.isLabel())
            return false;
        if (e.newOperand.isReg() &&
            (e.newOperand.value < 0 ||
             static_cast<std::uint32_t>(e.newOperand.value) >= fn.numRegs))
            return false;
        if (e.newOperand.kind == ir::Operand::Kind::None)
            return false;
    }
    if (in.ops[e.opIndex] == e.newOperand)
        return false; // no-op
    mod.function(loc.fnIdx).at(loc.pos).ops[e.opIndex] = e.newOperand;
    return true;
}

} // namespace

bool
applyEdit(ir::Module& mod, const Edit& edit)
{
    switch (edit.kind) {
      case EditKind::InstrDelete: return applyDelete(mod, edit);
      case EditKind::InstrCopy: return applyCopy(mod, edit);
      case EditKind::InstrMove: return applyMove(mod, edit);
      case EditKind::InstrReplace: return applyReplace(mod, edit);
      case EditKind::InstrSwap: return applySwap(mod, edit);
      case EditKind::OperandReplace: return applyOperandReplace(mod, edit);
    }
    return false;
}

ir::Module
applyPatch(const ir::Module& base, const std::vector<Edit>& edits,
           PatchStats* stats)
{
    ir::Module variant = base.clone();
    PatchStats local;
    for (const auto& e : edits) {
        if (applyEdit(variant, e)) {
            ++local.applied;
        } else {
            ++local.skipped;
        }
    }
    if (stats != nullptr)
        *stats = local;
    return variant;
}

} // namespace gevo::mut
