/// \file
/// Patch application: turn (original module, edit list) into a variant.

#ifndef GEVO_MUTATION_PATCH_H
#define GEVO_MUTATION_PATCH_H

#include <cstddef>
#include <vector>

#include "ir/function.h"
#include "mutation/edit.h"

namespace gevo::mut {

/// Statistics from one patch application.
struct PatchStats {
    std::size_t applied = 0; ///< Edits that changed the module.
    std::size_t skipped = 0; ///< Dangling/no-op edits (GEVO-style skip).
};

/// Apply one edit to \p mod in place. Returns true when the module changed.
///
/// Skip (returns false) when any referenced uid is missing, when a
/// structural edit touches a terminator (branch structure is mutated via
/// OperandReplace on conditions/labels instead), when src/dst live in
/// different kernels, or when an OperandReplace payload does not fit the
/// slot (label payloads only into label slots, value payloads only into
/// value slots, register indices in range).
bool applyEdit(ir::Module& mod, const Edit& edit);

/// Apply a whole edit list in order to a copy of \p base.
ir::Module applyPatch(const ir::Module& base, const std::vector<Edit>& edits,
                      PatchStats* stats = nullptr);

} // namespace gevo::mut

#endif // GEVO_MUTATION_PATCH_H
