#include "mutation/sampler.h"

#include <algorithm>

namespace gevo::mut {

namespace {

using ir::Function;
using ir::Instr;
using ir::Module;
using ir::Opcode;
using ir::Operand;

/// Flattened instruction reference used by the sampler.
struct InstrRef {
    std::size_t fnIdx;
    std::uint64_t uid;
    bool terminator;
    const Instr* instr;
};

std::vector<InstrRef>
collect(const Module& mod)
{
    std::vector<InstrRef> out;
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        const auto& fn = mod.function(f);
        for (const auto& bb : fn.blocks) {
            for (const auto& in : bb.instrs)
                out.push_back({f, in.uid, in.isTerminator(), &in});
        }
    }
    return out;
}

/// Pick a random element with predicate; nullopt if none qualify.
template <typename Pred>
std::optional<InstrRef>
pick(const std::vector<InstrRef>& pool, Rng& rng, Pred pred)
{
    std::vector<std::size_t> candidates;
    candidates.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
        if (pred(pool[i]))
            candidates.push_back(i);
    }
    if (candidates.empty())
        return std::nullopt;
    return pool[candidates[rng.below(candidates.size())]];
}

/// Fresh uid for clone edits: top-bit-tagged random id so edits from
/// different individuals cannot collide after crossover.
std::uint64_t
freshUid(Rng& rng)
{
    return (1ull << 63) | rng.next();
}

std::optional<Edit>
sampleOperandReplace(const Module& mod, const std::vector<InstrRef>& pool,
                     Rng& rng)
{
    // Pick a target instruction with at least one operand.
    const auto target =
        pick(pool, rng, [](const InstrRef& r) { return r.instr->nops > 0; });
    if (!target)
        return std::nullopt;
    const auto& in = *target->instr;
    const int slot = static_cast<int>(rng.below(in.nops));

    const bool labelSlot =
        (in.op == Opcode::Br && slot == 0) ||
        (in.op == Opcode::CondBr && (slot == 1 || slot == 2));

    Edit e;
    e.kind = EditKind::OperandReplace;
    e.srcUid = target->uid;
    e.opIndex = static_cast<std::int8_t>(slot);

    const auto& fn = mod.function(target->fnIdx);
    if (labelSlot) {
        e.newOperand = Operand::label(
            static_cast<std::int64_t>(rng.below(fn.blocks.size())));
        return e;
    }

    // Value slot: draw from the operands and destinations visible in the
    // same kernel ("replace the operands between instructions"), plus the
    // canonical constants 0/1 that branch-condition rewrites need.
    std::vector<Operand> candidates = {Operand::imm(0), Operand::imm(1)};
    for (const auto& bb : fn.blocks) {
        for (const auto& other : bb.instrs) {
            for (int i = 0; i < other.nops; ++i) {
                if (!other.ops[i].isLabel())
                    candidates.push_back(other.ops[i]);
            }
            if (other.dest >= 0)
                candidates.push_back(Operand::reg(other.dest));
        }
    }
    e.newOperand = candidates[rng.below(candidates.size())];
    return e;
}

} // namespace

std::optional<Edit>
sampleEdit(const Module& mod, Rng& rng, const SamplerConfig& cfg)
{
    const auto pool = collect(mod);
    if (pool.empty())
        return std::nullopt;

    const double total = cfg.wDelete + cfg.wCopy + cfg.wMove +
                         cfg.wReplace + cfg.wSwap + cfg.wOperand;
    double roll = rng.uniform() * total;

    auto nonTerm = [](const InstrRef& r) { return !r.terminator; };

    if ((roll -= cfg.wDelete) < 0) {
        const auto victim = pick(pool, rng, nonTerm);
        if (!victim)
            return std::nullopt;
        Edit e;
        e.kind = EditKind::InstrDelete;
        e.srcUid = victim->uid;
        return e;
    }
    if ((roll -= cfg.wCopy) < 0) {
        const auto src = pick(pool, rng, nonTerm);
        if (!src)
            return std::nullopt;
        const auto dst = pick(pool, rng, [&](const InstrRef& r) {
            return r.fnIdx == src->fnIdx;
        });
        if (!dst)
            return std::nullopt;
        Edit e;
        e.kind = EditKind::InstrCopy;
        e.srcUid = src->uid;
        e.dstUid = dst->uid;
        e.newUid = freshUid(rng);
        return e;
    }
    if ((roll -= cfg.wMove) < 0) {
        const auto src = pick(pool, rng, nonTerm);
        if (!src)
            return std::nullopt;
        const auto dst = pick(pool, rng, [&](const InstrRef& r) {
            return r.fnIdx == src->fnIdx && r.uid != src->uid;
        });
        if (!dst)
            return std::nullopt;
        Edit e;
        e.kind = EditKind::InstrMove;
        e.srcUid = src->uid;
        e.dstUid = dst->uid;
        return e;
    }
    if ((roll -= cfg.wReplace) < 0) {
        const auto src = pick(pool, rng, nonTerm);
        if (!src)
            return std::nullopt;
        const auto dst = pick(pool, rng, [&](const InstrRef& r) {
            return r.fnIdx == src->fnIdx && !r.terminator &&
                   r.uid != src->uid;
        });
        if (!dst)
            return std::nullopt;
        Edit e;
        e.kind = EditKind::InstrReplace;
        e.srcUid = src->uid;
        e.dstUid = dst->uid;
        e.newUid = freshUid(rng);
        return e;
    }
    if ((roll -= cfg.wSwap) < 0) {
        const auto a = pick(pool, rng, nonTerm);
        if (!a)
            return std::nullopt;
        const auto b = pick(pool, rng, [&](const InstrRef& r) {
            return r.fnIdx == a->fnIdx && !r.terminator && r.uid != a->uid;
        });
        if (!b)
            return std::nullopt;
        Edit e;
        e.kind = EditKind::InstrSwap;
        e.srcUid = a->uid;
        e.dstUid = b->uid;
        return e;
    }
    return sampleOperandReplace(mod, pool, rng);
}

std::pair<std::vector<Edit>, std::vector<Edit>>
crossoverEdits(const std::vector<Edit>& a, const std::vector<Edit>& b,
               Rng& rng)
{
    const std::size_t i = rng.below(a.size() + 1);
    const std::size_t j = rng.below(b.size() + 1);
    std::vector<Edit> c1(a.begin(), a.begin() + i);
    c1.insert(c1.end(), b.begin() + j, b.end());
    std::vector<Edit> c2(b.begin(), b.begin() + j);
    c2.insert(c2.end(), a.begin() + i, a.end());
    return {std::move(c1), std::move(c2)};
}

} // namespace gevo::mut
