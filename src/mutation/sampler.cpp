#include "mutation/sampler.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace gevo::mut {

namespace {

using ir::Function;
using ir::Instr;
using ir::Module;
using ir::Opcode;
using ir::Operand;

/// Flattened instruction reference used by the sampler.
struct InstrRef {
    std::size_t fnIdx;
    std::uint64_t uid;
    bool terminator;
    const Instr* instr;
};

std::vector<InstrRef>
collect(const Module& mod)
{
    std::vector<InstrRef> out;
    for (std::size_t f = 0; f < mod.numFunctions(); ++f) {
        const auto& fn = mod.function(f);
        for (const auto& bb : fn.blocks) {
            for (const auto& in : bb.instrs)
                out.push_back({f, in.uid, in.isTerminator(), &in});
        }
    }
    return out;
}

/// Uniform instruction picker: one rng.below() draw over the candidate set.
/// This is the historical draw sequence — UniformSampler's bit-for-bit
/// contract lives here.
struct UniformPick {
    template <typename Pred>
    std::optional<InstrRef>
    operator()(const std::vector<InstrRef>& pool, Rng& rng, Pred pred) const
    {
        std::vector<std::size_t> candidates;
        candidates.reserve(pool.size());
        for (std::size_t i = 0; i < pool.size(); ++i) {
            if (pred(pool[i]))
                candidates.push_back(i);
        }
        if (candidates.empty())
            return std::nullopt;
        return pool[candidates[rng.below(candidates.size())]];
    }
};

/// Heat-weighted instruction picker: site weight is
/// floor + (1 - floor) * heat(loc), one rng.uniform() roulette draw.
struct GuidedPick {
    const ProfileGuidedSampler& sampler;
    double floor;

    template <typename Pred>
    std::optional<InstrRef>
    operator()(const std::vector<InstrRef>& pool, Rng& rng, Pred pred) const
    {
        std::vector<std::size_t> candidates;
        std::vector<double> weight;
        candidates.reserve(pool.size());
        weight.reserve(pool.size());
        double total = 0.0;
        for (std::size_t i = 0; i < pool.size(); ++i) {
            if (!pred(pool[i]))
                continue;
            const double w =
                floor + (1.0 - floor) * sampler.heat(pool[i].instr->loc);
            candidates.push_back(i);
            weight.push_back(w);
            total += w;
        }
        if (candidates.empty())
            return std::nullopt;
        if (!(total > 0.0)) {
            // Degenerate (floor 0 and every candidate cold): fall back to
            // a uniform draw so cold kernels still mutate.
            return pool[candidates[rng.below(candidates.size())]];
        }
        double roll = rng.uniform() * total;
        for (std::size_t k = 0; k < candidates.size(); ++k) {
            if ((roll -= weight[k]) < 0)
                return pool[candidates[k]];
        }
        return pool[candidates.back()];
    }
};

/// Fresh uid for clone edits: top-bit-tagged random id so edits from
/// different individuals cannot collide after crossover.
std::uint64_t
freshUid(Rng& rng)
{
    return (1ull << 63) | rng.next();
}

template <typename Picker>
std::optional<Edit>
sampleOperandReplace(const Module& mod, const std::vector<InstrRef>& pool,
                     Rng& rng, const Picker& pickFn)
{
    // Pick a target instruction with at least one operand.
    const auto target =
        pickFn(pool, rng, [](const InstrRef& r) { return r.instr->nops > 0; });
    if (!target)
        return std::nullopt;
    const auto& in = *target->instr;
    const int slot = static_cast<int>(rng.below(in.nops));

    const bool labelSlot =
        (in.op == Opcode::Br && slot == 0) ||
        (in.op == Opcode::CondBr && (slot == 1 || slot == 2));

    Edit e;
    e.kind = EditKind::OperandReplace;
    e.srcUid = target->uid;
    e.opIndex = static_cast<std::int8_t>(slot);

    const auto& fn = mod.function(target->fnIdx);
    if (labelSlot) {
        e.newOperand = Operand::label(
            static_cast<std::int64_t>(rng.below(fn.blocks.size())));
        return e;
    }

    // Value slot: draw from the operands and destinations visible in the
    // same kernel ("replace the operands between instructions"), plus the
    // canonical constants 0/1 that branch-condition rewrites need.
    std::vector<Operand> candidates = {Operand::imm(0), Operand::imm(1)};
    for (const auto& bb : fn.blocks) {
        for (const auto& other : bb.instrs) {
            for (int i = 0; i < other.nops; ++i) {
                if (!other.ops[i].isLabel())
                    candidates.push_back(other.ops[i]);
            }
            if (other.dest >= 0)
                candidates.push_back(Operand::reg(other.dest));
        }
    }
    e.newOperand = candidates[rng.below(candidates.size())];
    return e;
}

/// Operator cascade shared by both samplers; the picker decides how
/// instruction sites are drawn.
template <typename Picker>
std::optional<Edit>
sampleWith(const Module& mod, Rng& rng, const SamplerConfig& cfg,
           const Picker& pickFn)
{
    const auto pool = collect(mod);
    if (pool.empty())
        return std::nullopt;

    const double total = cfg.wDelete + cfg.wCopy + cfg.wMove +
                         cfg.wReplace + cfg.wSwap + cfg.wOperand;
    double roll = rng.uniform() * total;

    auto nonTerm = [](const InstrRef& r) { return !r.terminator; };

    if ((roll -= cfg.wDelete) < 0) {
        const auto victim = pickFn(pool, rng, nonTerm);
        if (!victim)
            return std::nullopt;
        Edit e;
        e.kind = EditKind::InstrDelete;
        e.srcUid = victim->uid;
        return e;
    }
    if ((roll -= cfg.wCopy) < 0) {
        const auto src = pickFn(pool, rng, nonTerm);
        if (!src)
            return std::nullopt;
        const auto dst = pickFn(pool, rng, [&](const InstrRef& r) {
            return r.fnIdx == src->fnIdx;
        });
        if (!dst)
            return std::nullopt;
        Edit e;
        e.kind = EditKind::InstrCopy;
        e.srcUid = src->uid;
        e.dstUid = dst->uid;
        e.newUid = freshUid(rng);
        return e;
    }
    if ((roll -= cfg.wMove) < 0) {
        const auto src = pickFn(pool, rng, nonTerm);
        if (!src)
            return std::nullopt;
        const auto dst = pickFn(pool, rng, [&](const InstrRef& r) {
            return r.fnIdx == src->fnIdx && r.uid != src->uid;
        });
        if (!dst)
            return std::nullopt;
        Edit e;
        e.kind = EditKind::InstrMove;
        e.srcUid = src->uid;
        e.dstUid = dst->uid;
        return e;
    }
    if ((roll -= cfg.wReplace) < 0) {
        const auto src = pickFn(pool, rng, nonTerm);
        if (!src)
            return std::nullopt;
        const auto dst = pickFn(pool, rng, [&](const InstrRef& r) {
            return r.fnIdx == src->fnIdx && !r.terminator &&
                   r.uid != src->uid;
        });
        if (!dst)
            return std::nullopt;
        Edit e;
        e.kind = EditKind::InstrReplace;
        e.srcUid = src->uid;
        e.dstUid = dst->uid;
        e.newUid = freshUid(rng);
        return e;
    }
    if ((roll -= cfg.wSwap) < 0) {
        const auto a = pickFn(pool, rng, nonTerm);
        if (!a)
            return std::nullopt;
        const auto b = pickFn(pool, rng, [&](const InstrRef& r) {
            return r.fnIdx == a->fnIdx && !r.terminator && r.uid != a->uid;
        });
        if (!b)
            return std::nullopt;
        Edit e;
        e.kind = EditKind::InstrSwap;
        e.srcUid = a->uid;
        e.dstUid = b->uid;
        return e;
    }
    return sampleOperandReplace(mod, pool, rng, pickFn);
}

} // namespace

void
SamplerConfig::validate() const
{
    const double w[] = {wDelete, wCopy, wMove, wReplace, wSwap, wOperand};
    const char* names[] = {"delete", "copy",  "move",
                           "replace", "swap", "operand"};
    double total = 0.0;
    for (int i = 0; i < 6; ++i) {
        if (!std::isfinite(w[i]) || w[i] < 0.0)
            GEVO_FATAL("sampler weight '%s' must be finite and >= 0 "
                       "(got %g)",
                       names[i], w[i]);
        total += w[i];
    }
    if (total <= 0.0)
        GEVO_FATAL("sampler weights sum to zero: at least one mutation "
                   "operator weight must be positive");
    if (!std::isfinite(exploreFloor) || exploreFloor < 0.0 ||
        exploreFloor > 1.0)
        GEVO_FATAL("exploreFloor must be in [0, 1] (got %g)", exploreFloor);
}

std::optional<Edit>
sampleEdit(const Module& mod, Rng& rng, const SamplerConfig& cfg)
{
    return sampleWith(mod, rng, cfg, UniformPick{});
}

std::optional<Edit>
UniformSampler::sample(const Module& mod, Rng& rng,
                       const SamplerConfig& cfg) const
{
    return sampleWith(mod, rng, cfg, UniformPick{});
}

void
ProfileGuidedSampler::setProfile(const std::vector<std::uint64_t>& locIssues)
{
    std::uint64_t maxIssues = 0;
    for (std::uint64_t c : locIssues)
        maxIssues = std::max(maxIssues, c);
    if (maxIssues == 0) {
        heat_.clear();
        return;
    }
    heat_.assign(locIssues.size(), 0.0);
    for (std::size_t i = 0; i < locIssues.size(); ++i)
        heat_[i] = static_cast<double>(locIssues[i]) /
                   static_cast<double>(maxIssues);
}

std::optional<Edit>
ProfileGuidedSampler::sample(const Module& mod, Rng& rng,
                             const SamplerConfig& cfg) const
{
    return sampleWith(mod, rng, cfg, GuidedPick{*this, cfg.exploreFloor});
}

std::pair<std::vector<Edit>, std::vector<Edit>>
crossoverEdits(const std::vector<Edit>& a, const std::vector<Edit>& b,
               Rng& rng)
{
    const std::size_t i = rng.below(a.size() + 1);
    const std::size_t j = rng.below(b.size() + 1);
    std::vector<Edit> c1(a.begin(), a.begin() + i);
    c1.insert(c1.end(), b.begin() + j, b.end());
    std::vector<Edit> c2(b.begin(), b.begin() + j);
    c2.insert(c2.end(), a.begin() + i, a.end());
    return {std::move(c1), std::move(c2)};
}

} // namespace gevo::mut
