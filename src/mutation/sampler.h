/// \file
/// Random mutation sampling and patch crossover.
///
/// Sampling runs against the *current variant* (base + existing edits), so
/// later mutations can reference instructions earlier copies introduced —
/// the stepping-stone structure the paper's epistasis analysis (Sec V)
/// depends on.
///
/// Sampling is a seam: `UniformSampler` reproduces the historical
/// `sampleEdit` RNG draw sequence bit-for-bit (the trajectory-neutrality
/// oracle), while `ProfileGuidedSampler` biases the edit-site distribution
/// toward hot source locations reported by the simulator's per-loc issue
/// histogram — the diagnosis-driven recipe from the related work — with a
/// tunable exploration floor so cold sites never starve.

#ifndef GEVO_MUTATION_SAMPLER_H
#define GEVO_MUTATION_SAMPLER_H

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "ir/function.h"
#include "mutation/edit.h"
#include "support/rng.h"

namespace gevo::mut {

/// Relative weights of the mutation operators plus the guided sampler's
/// exploration floor. Per-island copies of this struct are what the
/// self-adaptive rate machinery perturbs and inherits.
struct SamplerConfig {
    double wDelete = 0.20;
    double wCopy = 0.12;
    double wMove = 0.08;
    double wReplace = 0.10;
    double wSwap = 0.08;
    double wOperand = 0.42; ///< Operand replacement carries the search
                            ///< (paper Sec VI: the headline edits are all
                            ///< condition/operand rewrites).

    /// Minimum relative site weight under the guided sampler, in [0, 1]:
    /// a site with zero recorded issues keeps `exploreFloor` of the weight
    /// the hottest site gets. 1.0 degenerates to uniform site selection.
    double exploreFloor = 0.25;

    /// Fatal (user error) on a negative weight, an all-zero weight vector,
    /// a non-finite value, or an exploreFloor outside [0, 1].
    void validate() const;
};

/// Draw one random edit valid against \p mod; nullopt when the module has
/// no mutable instructions. Deterministic in (mod, rng state). This is the
/// historical uniform path; `UniformSampler` delegates here.
std::optional<Edit> sampleEdit(const ir::Module& mod, Rng& rng,
                               const SamplerConfig& cfg = {});

/// Edit-sampling strategy seam. Implementations must be deterministic in
/// (mod, rng state, cfg, profile state) — the engine calls them from the
/// single-threaded breed step, so determinism here is whole-search
/// determinism.
class MutationSampler {
  public:
    virtual ~MutationSampler() = default;

    /// Draw one edit against \p mod using operator weights from \p cfg.
    virtual std::optional<Edit> sample(const ir::Module& mod, Rng& rng,
                                       const SamplerConfig& cfg) const = 0;

    /// Stable short name ("uniform"/"guided") for banners and scope keys.
    virtual std::string_view name() const = 0;
};

/// Bit-for-bit reproduction of the legacy `sampleEdit` draw sequence.
class UniformSampler final : public MutationSampler {
  public:
    std::optional<Edit> sample(const ir::Module& mod, Rng& rng,
                               const SamplerConfig& cfg) const override;
    std::string_view name() const override { return "uniform"; }
};

/// Profile-guided sampler: instruction picks are weighted by the issue
/// heat of their interned source location (shared through the COW loc
/// table, so base-module instruction locs index directly into a variant's
/// profile). Without a profile installed it behaves uniformly (every site
/// at the exploration floor).
class ProfileGuidedSampler final : public MutationSampler {
  public:
    /// Install a per-loc issue histogram (index = interned loc id). The
    /// heat is max-normalized to [0, 1]; an empty or all-zero histogram
    /// clears the profile.
    void setProfile(const std::vector<std::uint64_t>& locIssues);
    void clearProfile() { heat_.clear(); }
    bool hasProfile() const { return !heat_.empty(); }

    /// Normalized heat of loc id (0 when unknown / no profile).
    double heat(std::uint32_t loc) const
    {
        return loc < heat_.size() ? heat_[loc] : 0.0;
    }

    std::optional<Edit> sample(const ir::Module& mod, Rng& rng,
                               const SamplerConfig& cfg) const override;
    std::string_view name() const override { return "guided"; }

  private:
    std::vector<double> heat_; ///< Per interned loc id, max-normalized.
};

/// One-point crossover on edit lists (GEVO-style tail exchange): returns
/// {a[:i] + b[j:], b[:j] + a[i:]} with i, j drawn uniformly.
std::pair<std::vector<Edit>, std::vector<Edit>>
crossoverEdits(const std::vector<Edit>& a, const std::vector<Edit>& b,
               Rng& rng);

} // namespace gevo::mut

#endif // GEVO_MUTATION_SAMPLER_H
