/// \file
/// Random mutation sampling and patch crossover.
///
/// Sampling runs against the *current variant* (base + existing edits), so
/// later mutations can reference instructions earlier copies introduced —
/// the stepping-stone structure the paper's epistasis analysis (Sec V)
/// depends on.

#ifndef GEVO_MUTATION_SAMPLER_H
#define GEVO_MUTATION_SAMPLER_H

#include <optional>
#include <utility>
#include <vector>

#include "ir/function.h"
#include "mutation/edit.h"
#include "support/rng.h"

namespace gevo::mut {

/// Relative weights of the mutation operators.
struct SamplerConfig {
    double wDelete = 0.20;
    double wCopy = 0.12;
    double wMove = 0.08;
    double wReplace = 0.10;
    double wSwap = 0.08;
    double wOperand = 0.42; ///< Operand replacement carries the search
                            ///< (paper Sec VI: the headline edits are all
                            ///< condition/operand rewrites).
};

/// Draw one random edit valid against \p mod; nullopt when the module has
/// no mutable instructions. Deterministic in (mod, rng state).
std::optional<Edit> sampleEdit(const ir::Module& mod, Rng& rng,
                               const SamplerConfig& cfg = {});

/// One-point crossover on edit lists (GEVO-style tail exchange): returns
/// {a[:i] + b[j:], b[:j] + a[i:]} with i, j drawn uniformly.
std::pair<std::vector<Edit>, std::vector<Edit>>
crossoverEdits(const std::vector<Edit>& a, const std::vector<Edit>& b,
               Rng& rng);

} // namespace gevo::mut

#endif // GEVO_MUTATION_SAMPLER_H
