#include "opt/passes.h"

#include <algorithm>
#include <vector>

#include "ir/cfg.h"
#include "ir/eval.h"
#include "support/logging.h"

namespace gevo::opt {

using ir::BasicBlock;
using ir::Function;
using ir::Instr;
using ir::Opcode;
using ir::Operand;

bool
runDce(Function& fn)
{
    bool removedAny = false;
    bool changed = true;
    while (changed) {
        changed = false;
        // A register is "used" when it appears as a value operand anywhere.
        std::vector<bool> used(fn.numRegs, false);
        for (const auto& bb : fn.blocks) {
            for (const auto& in : bb.instrs) {
                for (int i = 0; i < in.nops; ++i) {
                    if (in.ops[i].isReg())
                        used[static_cast<std::size_t>(in.ops[i].value)] =
                            true;
                }
            }
        }
        for (auto& bb : fn.blocks) {
            auto& instrs = bb.instrs;
            const auto pre = instrs.size();
            instrs.erase(
                std::remove_if(
                    instrs.begin(), instrs.end(),
                    [&](const Instr& in) {
                        return ir::isPure(in.op) && in.dest >= 0 &&
                               !used[static_cast<std::size_t>(in.dest)];
                    }),
                instrs.end());
            if (instrs.size() != pre) {
                changed = true;
                removedAny = true;
            }
        }
    }
    return removedAny;
}

bool
runConstantFold(Function& fn)
{
    bool changed = false;
    for (auto& bb : fn.blocks) {
        for (auto& in : bb.instrs) {
            if (in.op == Opcode::CondBr && in.ops[0].isImm()) {
                const bool taken = in.ops[0].value != 0;
                const Operand target = taken ? in.ops[1] : in.ops[2];
                in.op = Opcode::Br;
                in.nops = 1;
                in.ops[0] = target;
                in.ops[1] = Operand();
                in.ops[2] = Operand();
                changed = true;
                continue;
            }
            if (in.op == Opcode::Select && in.ops[0].isImm()) {
                const Operand chosen =
                    in.ops[0].value != 0 ? in.ops[1] : in.ops[2];
                in.op = Opcode::Mov;
                in.nops = 1;
                in.ops[0] = chosen;
                in.ops[1] = Operand();
                in.ops[2] = Operand();
                changed = true;
                continue;
            }
            if (!ir::isScalarEvaluable(in.op) || in.op == Opcode::Mov)
                continue;
            bool allImm = true;
            for (int i = 0; i < in.nops; ++i)
                allImm = allImm && in.ops[i].isImm();
            if (!allImm || in.nops == 0)
                continue;
            const std::uint64_t result = ir::evalScalar(
                in.op, static_cast<std::uint64_t>(in.ops[0].value),
                in.nops > 1 ? static_cast<std::uint64_t>(in.ops[1].value) : 0,
                in.nops > 2 ? static_cast<std::uint64_t>(in.ops[2].value)
                            : 0);
            in.op = Opcode::Mov;
            in.nops = 1;
            in.ops[0] = Operand::imm(static_cast<std::int64_t>(result));
            in.ops[1] = Operand();
            in.ops[2] = Operand();
            changed = true;
        }
    }
    return changed;
}

namespace {

/// Remap all label operands through \p map (old block index -> new).
void
remapLabels(Function& fn, const std::vector<std::int32_t>& map)
{
    for (auto& bb : fn.blocks) {
        for (auto& in : bb.instrs) {
            for (int i = 0; i < in.nops; ++i) {
                if (in.ops[i].isLabel()) {
                    const auto updated =
                        map[static_cast<std::size_t>(in.ops[i].value)];
                    GEVO_ASSERT(updated >= 0,
                                "branch to removed block survived");
                    in.ops[i].value = updated;
                }
            }
        }
    }
}

bool
removeUnreachable(Function& fn)
{
    const ir::Cfg cfg(fn);
    bool any = false;
    for (std::size_t b = 0; b < fn.blocks.size(); ++b)
        any = any || !cfg.reachable(static_cast<std::int32_t>(b));
    if (!any)
        return false;

    std::vector<std::int32_t> map(fn.blocks.size(), -1);
    std::vector<BasicBlock> kept;
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        if (cfg.reachable(static_cast<std::int32_t>(b))) {
            map[b] = static_cast<std::int32_t>(kept.size());
            kept.push_back(std::move(fn.blocks[b]));
        }
    }
    fn.blocks = std::move(kept);
    remapLabels(fn, map);
    return true;
}

bool
mergeStraightLine(Function& fn)
{
    // Find b -> s where b ends in Br s, s has exactly one predecessor and
    // is not the entry. Merge s into b.
    const ir::Cfg cfg(fn);
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        auto& bb = fn.blocks[b];
        if (bb.instrs.empty())
            continue;
        const Instr& term = bb.terminator();
        if (term.op != Opcode::Br)
            continue;
        const auto s = static_cast<std::size_t>(term.ops[0].value);
        if (s == b || s == 0)
            continue;
        if (cfg.preds(static_cast<std::int32_t>(s)).size() != 1)
            continue;

        auto& sb = fn.blocks[s];
        bb.instrs.pop_back(); // drop the Br
        bb.instrs.insert(bb.instrs.end(), sb.instrs.begin(),
                         sb.instrs.end());

        // Delete s and remap.
        std::vector<std::int32_t> map(fn.blocks.size());
        std::vector<BasicBlock> kept;
        for (std::size_t i = 0; i < fn.blocks.size(); ++i) {
            if (i == s) {
                map[i] = -1;
                continue;
            }
            map[i] = static_cast<std::int32_t>(kept.size());
            kept.push_back(std::move(fn.blocks[i]));
        }
        fn.blocks = std::move(kept);
        remapLabels(fn, map);
        return true; // restart: indices changed
    }
    return false;
}

} // namespace

bool
runSimplifyCfg(Function& fn)
{
    bool changed = false;
    for (auto& bb : fn.blocks) {
        if (bb.instrs.empty())
            continue;
        Instr& term = bb.instrs.back();
        if (term.op == Opcode::CondBr &&
            term.ops[1].value == term.ops[2].value) {
            term.op = Opcode::Br;
            term.ops[0] = term.ops[1];
            term.nops = 1;
            term.ops[1] = Operand();
            term.ops[2] = Operand();
            changed = true;
        }
    }
    changed = removeUnreachable(fn) || changed;
    while (mergeStraightLine(fn))
        changed = true;
    return changed;
}

void
runCleanupPipeline(Function& fn)
{
    // Bounded fixpoint; each iteration strictly shrinks or stabilizes.
    for (int iter = 0; iter < 8; ++iter) {
        bool changed = runConstantFold(fn);
        changed = runSimplifyCfg(fn) || changed;
        changed = runDce(fn) || changed;
        if (!changed)
            break;
    }
}

void
runCleanupPipeline(ir::Module& mod)
{
    for (std::size_t i = 0; i < mod.numFunctions(); ++i)
        runCleanupPipeline(mod.function(i));
}

} // namespace gevo::opt
