/// \file
/// Post-mutation cleanup passes.
///
/// In the paper's pipeline (Fig. 1) the mutated LLVM-IR is lowered through
/// NVPTX codegen, which performs dead-code elimination and CFG cleanup
/// before the kernel executes. These passes are our stand-in: without them
/// an edit like "replace a branch condition with `true`" would leave the
/// now-dead compare chain executing and its performance benefit invisible
/// (see DESIGN.md §2 and the Sec VI-D boundary-check experiment).

#ifndef GEVO_OPT_PASSES_H
#define GEVO_OPT_PASSES_H

#include "ir/function.h"

namespace gevo::opt {

/// Remove pure instructions whose destination register is never read
/// anywhere in the function. Iterates to a fixpoint. Returns true when
/// anything was removed.
bool runDce(ir::Function& fn);

/// Fold pure ops with all-immediate operands into `mov imm`, rewrite
/// CondBr-on-immediate into Br, and Select-on-immediate into mov.
/// Returns true when anything changed.
bool runConstantFold(ir::Function& fn);

/// Replace same-target CondBr with Br, delete unreachable blocks
/// (remapping label operands), and merge single-predecessor straight-line
/// block pairs. Returns true when anything changed.
bool runSimplifyCfg(ir::Function& fn);

/// Run fold/simplify/DCE to a (bounded) fixpoint on every kernel.
/// This is what the fitness evaluator applies to each variant before
/// simulation.
void runCleanupPipeline(ir::Module& mod);

/// Same, single function.
void runCleanupPipeline(ir::Function& fn);

} // namespace gevo::opt

#endif // GEVO_OPT_PASSES_H
