#include "sim/device_config.h"

#include <cctype>
#include <string_view>

#include "support/logging.h"
#include "support/strings.h"

namespace gevo::sim {

DeviceConfig
p100()
{
    DeviceConfig c;
    c.name = "P100";
    c.family = ArchFamily::Pascal;
    c.smCount = 56;
    c.coresPerSm = 64;
    c.clockMhz = 1386;
    c.memoryGb = 16;
    c.memoryKind = "HBM";
    c.maxWarpsPerSm = 64;
    c.maxBlocksPerSm = 32;
    c.sharedPerSmBytes = 64 * 1024;
    c.issueWidth = 2;
    c.aluLat = 4;
    c.sharedLat = 24;
    c.sharedIssue = 2;
    c.globalLat = 440;
    c.globalSectorIssue = 4;
    c.shflLat = 22;
    c.shflIssue = 2;
    c.ballotIssue = 2;
    c.ballotResync = 0;
    c.barrierBase = 12;
    c.barrierPerWarp = 2;
    c.barrierIssue = 12;
    c.divergeOverhead = 28;
    c.storeLaneSkew = 0.15;
    return c;
}

DeviceConfig
gtx1080ti()
{
    DeviceConfig c;
    c.name = "GTX1080Ti";
    c.family = ArchFamily::Pascal;
    c.smCount = 28;
    c.coresPerSm = 128;
    c.clockMhz = 1999;
    c.memoryGb = 11;
    c.memoryKind = "GDDR5X";
    c.maxWarpsPerSm = 64;
    c.maxBlocksPerSm = 32;
    c.sharedPerSmBytes = 96 * 1024;
    // Consumer Pascal: wider SMs issue more warp instructions per cycle,
    // GDDR5X has longer latency than HBM but the higher clock and wider
    // issue make it faster on these throughput-bound kernels (the paper's
    // 1080Ti beats its P100 on every baseline).
    c.issueWidth = 4;
    c.aluLat = 4;
    c.sharedLat = 26;
    c.sharedIssue = 2;
    c.globalLat = 520;
    c.globalSectorIssue = 4;
    c.shflLat = 22;
    c.shflIssue = 2;
    c.ballotIssue = 2;
    c.ballotResync = 0;
    c.barrierBase = 12;
    c.barrierPerWarp = 2;
    c.barrierIssue = 12;
    c.divergeOverhead = 36;
    c.storeLaneSkew = 0.15;
    return c;
}

DeviceConfig
v100()
{
    DeviceConfig c;
    c.name = "V100";
    c.family = ArchFamily::Volta;
    c.smCount = 80;
    c.coresPerSm = 64;
    c.clockMhz = 1530;
    c.memoryGb = 16;
    c.memoryKind = "HBM2";
    c.maxWarpsPerSm = 64;
    c.maxBlocksPerSm = 32;
    c.sharedPerSmBytes = 96 * 1024;
    c.issueWidth = 4;
    c.aluLat = 4;
    c.sharedLat = 19;
    c.sharedIssue = 2;
    c.globalLat = 390;
    c.globalSectorIssue = 3;
    c.shflLat = 18;
    c.shflIssue = 2;
    c.ballotIssue = 2;
    // Volta independent thread scheduling: ballot_sync really synchronizes
    // the warp (paper Sec VI-B: removing it buys 4% on V100, nothing on
    // P100).
    c.ballotResync = 9;
    c.barrierBase = 10;
    c.barrierPerWarp = 2;
    c.barrierIssue = 8;
    c.divergeOverhead = 8;
    c.storeLaneSkew = 0.06;
    c.storeWaysCap = 12;
    return c;
}

namespace {

bool
sameNameIgnoreCase(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

std::string
registeredDeviceNames()
{
    std::string known;
    for (const auto& dev : allDevices())
        known += (known.empty() ? "" : ", ") + dev.name;
    return known;
}

} // namespace

DeviceConfig
deviceByName(const std::string& name)
{
    if (sameNameIgnoreCase(name, "1080Ti")) // historical shorthand
        return gtx1080ti();
    for (const auto& dev : allDevices()) {
        if (sameNameIgnoreCase(name, dev.name))
            return dev;
    }
    GEVO_FATAL("unknown device '%s' (registered: %s)", name.c_str(),
               registeredDeviceNames().c_str());
}

std::vector<DeviceConfig>
resolveDeviceList(const std::string& csv)
{
    if (sameNameIgnoreCase(trim(csv), "all"))
        return allDevices();
    // split() yields at least one entry even for an empty csv, so the
    // per-entry emptiness check also covers the empty-list case.
    std::vector<DeviceConfig> out;
    for (const auto& raw : split(csv, ',')) {
        const auto name = std::string(trim(raw));
        if (name.empty())
            GEVO_FATAL("empty device name in list '%s' (registered: %s)",
                       csv.c_str(), registeredDeviceNames().c_str());
        out.push_back(deviceByName(name));
    }
    return out;
}

std::vector<DeviceConfig>
allDevices()
{
    return {p100(), gtx1080ti(), v100()};
}

} // namespace gevo::sim
