#include "sim/device_config.h"

#include "support/logging.h"

namespace gevo::sim {

DeviceConfig
p100()
{
    DeviceConfig c;
    c.name = "P100";
    c.family = ArchFamily::Pascal;
    c.smCount = 56;
    c.coresPerSm = 64;
    c.clockMhz = 1386;
    c.memoryGb = 16;
    c.memoryKind = "HBM";
    c.maxWarpsPerSm = 64;
    c.maxBlocksPerSm = 32;
    c.sharedPerSmBytes = 64 * 1024;
    c.issueWidth = 2;
    c.aluLat = 4;
    c.sharedLat = 24;
    c.sharedIssue = 2;
    c.globalLat = 440;
    c.globalSectorIssue = 4;
    c.shflLat = 22;
    c.shflIssue = 2;
    c.ballotIssue = 2;
    c.ballotResync = 0;
    c.barrierBase = 12;
    c.barrierPerWarp = 2;
    c.barrierIssue = 12;
    c.divergeOverhead = 28;
    c.storeLaneSkew = 0.15;
    return c;
}

DeviceConfig
gtx1080ti()
{
    DeviceConfig c;
    c.name = "GTX1080Ti";
    c.family = ArchFamily::Pascal;
    c.smCount = 28;
    c.coresPerSm = 128;
    c.clockMhz = 1999;
    c.memoryGb = 11;
    c.memoryKind = "GDDR5X";
    c.maxWarpsPerSm = 64;
    c.maxBlocksPerSm = 32;
    c.sharedPerSmBytes = 96 * 1024;
    // Consumer Pascal: wider SMs issue more warp instructions per cycle,
    // GDDR5X has longer latency than HBM but the higher clock and wider
    // issue make it faster on these throughput-bound kernels (the paper's
    // 1080Ti beats its P100 on every baseline).
    c.issueWidth = 4;
    c.aluLat = 4;
    c.sharedLat = 26;
    c.sharedIssue = 2;
    c.globalLat = 520;
    c.globalSectorIssue = 4;
    c.shflLat = 22;
    c.shflIssue = 2;
    c.ballotIssue = 2;
    c.ballotResync = 0;
    c.barrierBase = 12;
    c.barrierPerWarp = 2;
    c.barrierIssue = 12;
    c.divergeOverhead = 36;
    c.storeLaneSkew = 0.15;
    return c;
}

DeviceConfig
v100()
{
    DeviceConfig c;
    c.name = "V100";
    c.family = ArchFamily::Volta;
    c.smCount = 80;
    c.coresPerSm = 64;
    c.clockMhz = 1530;
    c.memoryGb = 16;
    c.memoryKind = "HBM2";
    c.maxWarpsPerSm = 64;
    c.maxBlocksPerSm = 32;
    c.sharedPerSmBytes = 96 * 1024;
    c.issueWidth = 4;
    c.aluLat = 4;
    c.sharedLat = 19;
    c.sharedIssue = 2;
    c.globalLat = 390;
    c.globalSectorIssue = 3;
    c.shflLat = 18;
    c.shflIssue = 2;
    c.ballotIssue = 2;
    // Volta independent thread scheduling: ballot_sync really synchronizes
    // the warp (paper Sec VI-B: removing it buys 4% on V100, nothing on
    // P100).
    c.ballotResync = 9;
    c.barrierBase = 10;
    c.barrierPerWarp = 2;
    c.barrierIssue = 8;
    c.divergeOverhead = 8;
    c.storeLaneSkew = 0.06;
    c.storeWaysCap = 12;
    return c;
}

DeviceConfig
deviceByName(const std::string& name)
{
    if (name == "P100")
        return p100();
    if (name == "GTX1080Ti" || name == "1080Ti")
        return gtx1080ti();
    if (name == "V100")
        return v100();
    GEVO_FATAL("unknown device '%s' (want P100, GTX1080Ti or V100)",
               name.c_str());
}

std::vector<DeviceConfig>
allDevices()
{
    return {p100(), gtx1080ti(), v100()};
}

} // namespace gevo::sim
