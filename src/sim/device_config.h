/// \file
/// Simulated GPU descriptions.
///
/// The three presets mirror paper Table I (P100, GTX 1080Ti, V100). The
/// Table I columns (architecture family, CUDA cores, core frequency, memory)
/// are hardware facts; the remaining fields are microarchitectural timing
/// parameters calibrated so that the paper's *relative* results reproduce
/// (see DESIGN.md §6 — we claim shape fidelity, not cycle accuracy).

#ifndef GEVO_SIM_DEVICE_CONFIG_H
#define GEVO_SIM_DEVICE_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace gevo::sim {

/// GPU architecture family (drives warp-synchronization semantics).
enum class ArchFamily : std::uint8_t {
    Pascal, ///< Lock-step warps; ballot_sync is nearly free; stale shuffle
            ///< masks are tolerated.
    Volta,  ///< Independent thread scheduling: ballot_sync pays a re-sync
            ///< cost and shfl_sync with a mask naming inactive lanes faults.
};

/// Full description of one simulated device.
struct DeviceConfig {
    std::string name;       ///< "P100", "GTX1080Ti", "V100".
    ArchFamily family = ArchFamily::Pascal;

    // ---- Table I facts ----
    std::uint32_t smCount = 56;        ///< Streaming multiprocessors.
    std::uint32_t coresPerSm = 64;     ///< CUDA cores per SM.
    std::uint32_t clockMhz = 1386;     ///< Core frequency.
    std::uint32_t memoryGb = 16;       ///< Device memory size.
    std::string memoryKind = "HBM";    ///< Marketing memory type.

    // ---- occupancy limits ----
    std::uint32_t maxWarpsPerSm = 64;
    std::uint32_t maxBlocksPerSm = 32;
    std::uint32_t sharedPerSmBytes = 64 * 1024;

    // ---- issue / latency model ----
    std::uint32_t issueWidth = 2;      ///< Warp-instructions issued per
                                       ///< cycle per SM (schedulers).
    std::uint32_t aluLat = 6;          ///< Register ready delay for ALU.
    std::uint32_t sharedLat = 24;      ///< Shared-memory load latency.
    std::uint32_t sharedIssue = 2;     ///< Issue slots per conflict-free
                                       ///< shared access.
    std::uint32_t globalLat = 440;     ///< Global load latency (cycles).
    std::uint32_t globalSectorIssue = 4; ///< Issue slots per 32B sector.
    std::uint32_t shflLat = 22;        ///< Shuffle result latency.
    std::uint32_t shflIssue = 2;       ///< Shuffle issue slots.
    std::uint32_t ballotIssue = 2;     ///< Ballot issue slots (Pascal).
    std::uint32_t ballotResync = 0;    ///< Extra re-sync cycles (Volta).
    std::uint32_t barrierBase = 32;    ///< Barrier fixed wait (cycles).
    std::uint32_t barrierPerWarp = 6;  ///< Barrier per-warp wait.
    std::uint32_t barrierIssue = 12;   ///< Issue slots a barrier occupies.
    std::uint32_t divergeOverhead = 12; ///< Cycles per divergence event.
    std::uint32_t atomicIssue = 8;     ///< Issue slots per atomic way.
    std::uint32_t atomicLat = 120;     ///< Atomic result latency (global).
    /// Shared-store completion skew: extra cycles proportional to the
    /// highest active lane (models sub-warp transaction scheduling; this is
    /// the mechanism behind paper edit 5, Sec VI-A).
    double storeLaneSkew = 0.5;
    /// Cap on shared-store serialization ways (write-combining depth);
    /// Volta coalesces same-address stores more aggressively than Pascal,
    /// which is why the paper's V0 bottleneck hurts the V100 less
    /// (18.4x there vs 32.8x on the P100).
    std::uint32_t storeWaysCap = 32;

    /// Per-thread instruction budget per launch; exceeding it is a Timeout
    /// fault (catches mutants with runaway loops).
    std::uint64_t maxInstrPerThread = 4'000'000;

    /// Convenience: total CUDA cores (Table I row).
    std::uint32_t cudaCores() const { return smCount * coresPerSm; }
    /// True for Volta-style independent thread scheduling.
    bool independentThreadScheduling() const
    {
        return family == ArchFamily::Volta;
    }
};

/// NVIDIA Tesla P100 (Pascal) — paper's primary analysis platform.
DeviceConfig p100();
/// NVIDIA GTX 1080Ti (Pascal, consumer).
DeviceConfig gtx1080ti();
/// NVIDIA Tesla V100 (Volta).
DeviceConfig v100();

/// Preset by name, matched case-insensitively against the registered
/// devices ("1080Ti" survives as a historical shorthand). Unknown names
/// die with the registered device list, mirroring the workload
/// registry's fatal style.
DeviceConfig deviceByName(const std::string& name);

/// Parse a comma-separated device list ("p100,v100"; "all" = the full
/// Table I set). Fatal on empty or unknown entries, listing the
/// registered devices.
std::vector<DeviceConfig> resolveDeviceList(const std::string& csv);

/// All three paper devices, in Table I order.
std::vector<DeviceConfig> allDevices();

} // namespace gevo::sim

#endif // GEVO_SIM_DEVICE_CONFIG_H
