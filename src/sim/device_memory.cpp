#include "sim/device_memory.h"

namespace gevo::sim {

DeviceMemory::DeviceMemory(std::int64_t bytes)
{
    GEVO_ASSERT(bytes > 0, "empty arena");
    data_.assign(static_cast<std::size_t>(bytes), 0);
}

DevPtr
DeviceMemory::alloc(std::int64_t bytes)
{
    GEVO_ASSERT(bytes >= 0, "negative allocation");
    const DevPtr ptr = used_;
    std::int64_t padded = (bytes + kAlign - 1) / kAlign * kAlign;
    if (used_ + padded > capacity())
        GEVO_FATAL("device arena exhausted: %lld + %lld > %lld",
                   static_cast<long long>(used_),
                   static_cast<long long>(padded),
                   static_cast<long long>(capacity()));
    used_ += padded;
    return ptr;
}

void
DeviceMemory::reset()
{
    used_ = 0;
    std::fill(data_.begin(), data_.end(), 0);
}

std::int64_t
DeviceMemory::mappedEnd() const
{
    const std::int64_t rounded = (used_ + kPage - 1) / kPage * kPage;
    return rounded < capacity() ? rounded : capacity();
}

bool
DeviceMemory::mapped(std::int64_t addr, std::int64_t size) const
{
    return addr >= 0 && size >= 0 && addr + size <= mappedEnd();
}

} // namespace gevo::sim
