/// \file
/// Simulated device (global) memory: a bump allocator over a flat arena
/// with page-granular access mapping.
///
/// The mapping rule is what makes the paper's Sec VI-D reproducible: a
/// mutant that drops the SIMCoV grid boundary checks reads a few hundred
/// bytes past its arrays. Reads that land inside the *mapped* region
/// (neighbouring allocations, or the page-rounding slack after the last
/// allocation) return whatever bytes are there — harmless garbage, the
/// variant passes the small-grid fitness tests. Reads past the mapped end
/// fault — exactly what happens on the held-out large grid.

#ifndef GEVO_SIM_DEVICE_MEMORY_H
#define GEVO_SIM_DEVICE_MEMORY_H

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/logging.h"

namespace gevo::sim {

/// Device pointer: byte offset into the arena (passed to kernels as i64).
using DevPtr = std::int64_t;

/// Simulated global memory.
class DeviceMemory {
  public:
    /// Allocation alignment (cudaMalloc-like).
    static constexpr std::int64_t kAlign = 256;
    /// Mapping granularity: accesses within the page-rounded extent of the
    /// allocated region are mapped.
    static constexpr std::int64_t kPage = 4096;

    /// Create an arena of \p bytes capacity.
    explicit DeviceMemory(std::int64_t bytes = 64ll << 20);

    /// Allocate \p bytes (256-byte aligned); fatal when the arena is full.
    DevPtr alloc(std::int64_t bytes);

    /// Reset the allocator and zero the arena.
    void reset();

    /// Bytes handed out so far (before page rounding).
    std::int64_t used() const { return used_; }
    /// End of the mapped region (page-rounded used()).
    std::int64_t mappedEnd() const;
    /// Arena capacity.
    std::int64_t capacity() const
    {
        return static_cast<std::int64_t>(data_.size());
    }

    /// True when [addr, addr+size) is mapped (readable/writable without a
    /// fault). Negative addresses are never mapped.
    bool mapped(std::int64_t addr, std::int64_t size) const;

    /// Raw arena bytes (host-side access for drivers and validators).
    std::uint8_t* raw() { return data_.data(); }
    const std::uint8_t* raw() const { return data_.data(); }

    // ---- typed host accessors (bounds-checked against the arena) ----

    /// Write a host buffer into device memory.
    void
    copyIn(DevPtr dst, const void* src, std::int64_t bytes)
    {
        GEVO_ASSERT(dst >= 0 && dst + bytes <= capacity(), "copyIn OOB");
        std::memcpy(data_.data() + dst, src, bytes);
    }
    /// Read device memory into a host buffer.
    void
    copyOut(void* dst, DevPtr src, std::int64_t bytes) const
    {
        GEVO_ASSERT(src >= 0 && src + bytes <= capacity(), "copyOut OOB");
        std::memcpy(dst, data_.data() + src, bytes);
    }

    /// Host-side typed peek.
    template <typename T>
    T
    read(DevPtr addr) const
    {
        T v;
        copyOut(&v, addr, sizeof(T));
        return v;
    }
    /// Host-side typed poke.
    template <typename T>
    void
    write(DevPtr addr, T v)
    {
        copyIn(addr, &v, sizeof(T));
    }

  private:
    std::vector<std::uint8_t> data_;
    std::int64_t used_ = 0;
};

} // namespace gevo::sim

#endif // GEVO_SIM_DEVICE_MEMORY_H
