#include "sim/executor.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "ir/eval.h"
#include "support/strings.h"

namespace gevo::sim {

std::string_view
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::MemOobGlobal: return "global-oob";
      case FaultKind::MemOobShared: return "shared-oob";
      case FaultKind::MemOobLocal: return "local-oob";
      case FaultKind::BarrierDivergence: return "barrier-divergence";
      case FaultKind::IllegalWarpSync: return "illegal-warp-sync";
      case FaultKind::Timeout: return "timeout";
      case FaultKind::InvalidProgram: return "invalid-program";
    }
    return "?";
}

namespace {

/// Resolved interpreter mode: -1 until first query, then the InterpMode
/// value. setInterpreterMode() stores directly; otherwise the
/// GEVO_SIM_REFPATH environment variable decides on first use.
std::atomic<int> gInterpMode{-1};

} // namespace

InterpMode
interpreterMode()
{
    int mode = gInterpMode.load(std::memory_order_relaxed);
    if (mode < 0) {
        const char* env = std::getenv("GEVO_SIM_REFPATH");
        const bool ref = env != nullptr && env[0] != '\0' &&
                         !(env[0] == '0' && env[1] == '\0');
        mode = static_cast<int>(ref ? InterpMode::Reference
                                    : InterpMode::Trace);
        gInterpMode.store(mode, std::memory_order_relaxed);
    }
    return static_cast<InterpMode>(mode);
}

void
setInterpreterMode(InterpMode mode)
{
    gInterpMode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

namespace {

/// Dense-lane packing: -1 until first query, then 0/1. GEVO_SIM_DENSE=0
/// disables; the default is on.
std::atomic<int> gDenseMode{-1};

} // namespace

bool
denseLaneMode()
{
    int mode = gDenseMode.load(std::memory_order_relaxed);
    if (mode < 0) {
        const char* env = std::getenv("GEVO_SIM_DENSE");
        const bool off = env != nullptr && env[0] == '0' && env[1] == '\0';
        mode = off ? 0 : 1;
        gDenseMode.store(mode, std::memory_order_relaxed);
    }
    return mode != 0;
}

void
setDenseLaneMode(bool on)
{
    gDenseMode.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace {

constexpr int kWarpSize = 32;
constexpr std::uint32_t kFullMask = 0xffffffffu;

using ir::MemSpace;
using ir::MemWidth;
using ir::Opcode;
using ir::Operand;

/// One SIMT reconvergence-stack entry.
struct StackEntry {
    std::int32_t pc;
    std::int32_t reconvPc;
    std::uint32_t mask;
};

/// Outcome of running a warp until it can no longer proceed.
enum class WarpStop : std::uint8_t {
    Done,
    AtBarrier,
    Faulted,
};

/// Active lanes of a span's (constant) mask, gathered once per span in
/// ascending lane order. Per-lane loops iterate these slots instead of
/// testing all 32 mask bits — the dense-lane fast path for sparse
/// divergent regions. nullptr (legacy mode, or a full mask) means "loop
/// over all 32 lanes with a mask test". Ascending order keeps every
/// order-sensitive site (atomic resolution, ballot/shfl last-active-lane
/// mask reads) identical to the 32-slot loops.
struct ActiveSet {
    int n = 0;
    std::uint8_t lanes[kWarpSize];

    void
    gather(std::uint32_t mask)
    {
        n = 0;
        while (mask != 0) {
            lanes[n++] = static_cast<std::uint8_t>(std::countr_zero(mask));
            mask &= mask - 1;
        }
    }
};

struct WarpState {
    std::uint32_t aliveMask = 0;
    std::vector<StackEntry> stack;
    bool done = false;
    bool atBarrier = false;
    std::uint64_t cycle = 0;
    std::uint64_t issueCycles = 0;
    std::uint64_t issuedInstrs = 0;
    std::vector<std::uint64_t> regs;  ///< lane-major: [lane*numRegs + r].
    std::vector<std::uint64_t> ready; ///< per-register ready cycle.
    /// Warp-uniform register tracking (trace path only). Bit r of
    /// uniBits set means every one of the 32 lanes holds uniVal[r] in
    /// register r — the lane-major array may then be stale and is
    /// materialized (all 32 lanes rewritten) before the bit is cleared.
    /// Uniformity is defined over all 32 lanes, not just live ones,
    /// because shuffles read source values from inactive lanes too.
    std::vector<std::uint64_t> uniBits;
    std::vector<std::uint64_t> uniVal;
    int index = 0;
};

/// Per-thread reusable launch scratch: the shared/local arenas and warp
/// contexts (register files, scoreboards, reconvergence stacks) survive
/// across launchKernel calls, so a workload issuing many tiny launches —
/// bfs runs one kernel per BFS level — stops paying allocation cost per
/// launch. Safe because BlockRunner::resetBlock re-initializes every
/// per-block observable before use: arenas are refilled, scoreboards and
/// masks reset, and registers are either zero-filled (reference path) or
/// covered by the uniform bits until materialized (trace path), so stale
/// bytes from a previous launch are never read. One runner exists per
/// thread at a time (launchKernel's parallel path gives each spawned
/// thread its own thread_local copy).
struct ExecScratch {
    std::vector<std::uint8_t> shared;
    std::vector<std::uint8_t> local;
    std::vector<WarpState> warps;
};

ExecScratch&
execScratch()
{
    thread_local ExecScratch scratch;
    return scratch;
}

/// Reusable execution context: binds the thread's scratch state once per
/// launch and replays it for every block. Blocks of one launch are
/// identical in shape (same program, same blockDim), so per-block
/// construction only needs to reset state — re-allocating register files
/// and reconvergence stacks per block (and, before the scratch reuse,
/// per launch) dominated launch cost for small kernels.
class BlockRunner {
  public:
    BlockRunner(const DeviceConfig& dev, DeviceMemory& mem,
                const Program& prog, LaunchDims dims,
                const std::vector<std::uint64_t>& args, LaunchStats* stats,
                bool profileLocs, bool trace, bool dense)
        : dev_(dev), mem_(mem), prog_(prog), dims_(dims), args_(args),
          stats_(stats), profileLocs_(profileLocs), trace_(trace),
          dense_(dense), shared_(execScratch().shared),
          local_(execScratch().local), warps_(execScratch().warps)
    {
        shared_.resize(prog.sharedBytes);
        local_.resize(static_cast<std::size_t>(prog.localBytes) *
                      dims.blockDim);
        const std::uint32_t numWarps =
            (dims.blockDim + kWarpSize - 1) / kWarpSize;
        warps_.resize(numWarps);
        for (std::uint32_t w = 0; w < numWarps; ++w) {
            WarpState& warp = warps_[w];
            warp.index = static_cast<int>(w);
            warp.regs.resize(
                static_cast<std::size_t>(kWarpSize) * prog.numRegs);
            warp.ready.resize(prog.numRegs);
            warp.uniBits.resize((prog.numRegs + 63) / 64);
            warp.uniVal.resize(prog.numRegs);
            warp.stack.reserve(8);
        }
    }

    /// Reset all mutable per-block state for \p blockIdx.
    void
    resetBlock(std::uint32_t blockIdx)
    {
        blockIdx_ = blockIdx;
        fault_ = Fault{};
        std::fill(shared_.begin(), shared_.end(), 0);
        std::fill(local_.begin(), local_.end(), 0);
        for (auto& warp : warps_) {
            const auto w = static_cast<std::uint32_t>(warp.index);
            const std::uint32_t lanes =
                std::min<std::uint32_t>(kWarpSize,
                                        dims_.blockDim - w * kWarpSize);
            warp.aliveMask = lanes == kWarpSize ? kFullMask
                                                : ((1u << lanes) - 1);
            warp.stack.clear();
            warp.stack.push_back({0, kExitPc, warp.aliveMask});
            warp.done = false;
            warp.atBarrier = false;
            warp.cycle = 0;
            warp.issueCycles = 0;
            warp.issuedInstrs = 0;
            std::fill(warp.ready.begin(), warp.ready.end(), 0);
            if (trace_) {
                // Every register starts uniform (zero, or the broadcast
                // kernel argument), so the lane-major array need not be
                // touched at all: a uniform register is materialized
                // before its first per-lane use.
                std::fill(warp.uniBits.begin(), warp.uniBits.end(),
                          ~std::uint64_t{0});
                std::fill(warp.uniVal.begin(), warp.uniVal.end(), 0);
                for (std::uint32_t p = 0;
                     p < prog_.numParams && p < args_.size(); ++p)
                    warp.uniVal[p] = args_[p];
                continue;
            }
            std::fill(warp.regs.begin(), warp.regs.end(), 0);
            for (std::uint32_t lane = 0; lane < kWarpSize; ++lane) {
                for (std::uint32_t p = 0;
                     p < prog_.numParams && p < args_.size(); ++p) {
                    warp.regs[lane * prog_.numRegs + p] = args_[p];
                }
            }
        }
    }

    /// Run one block to completion. Returns the fault (None on success)
    /// and per-block timing via issueSum/latMax.
    Fault
    runBlock(std::uint32_t blockIdx, std::uint64_t* issueSum,
             std::uint64_t* latMax)
    {
        resetBlock(blockIdx);
        while (true) {
            bool allDone = true;
            for (auto& warp : warps_) {
                if (warp.done || warp.atBarrier)
                    continue;
                const WarpStop stop =
                    trace_ ? runWarpTrace(warp) : runWarpRef(warp);
                if (stop == WarpStop::Faulted)
                    return fault_;
                allDone = false;
            }
            // Every warp is now done or waiting at a barrier.
            bool anyWaiting = false;
            for (auto& warp : warps_)
                anyWaiting = anyWaiting || warp.atBarrier;
            if (!anyWaiting) {
                if (allDone || warpsAllDone())
                    break;
                continue;
            }
            releaseBarrier();
        }
        std::uint64_t issue = 0;
        std::uint64_t lat = 0;
        for (const auto& warp : warps_) {
            issue += warp.issueCycles;
            lat = std::max(lat, warp.cycle);
        }
        *issueSum = issue;
        *latMax = lat;
        return fault_;
    }

  private:
    bool
    warpsAllDone() const
    {
        for (const auto& warp : warps_) {
            if (!warp.done)
                return false;
        }
        return true;
    }

    void
    releaseBarrier()
    {
        std::uint64_t t = 0;
        for (const auto& warp : warps_)
            t = std::max(t, warp.cycle);
        t += dev_.barrierBase +
             static_cast<std::uint64_t>(dev_.barrierPerWarp) * warps_.size();
        for (auto& warp : warps_) {
            if (!warp.done) {
                warp.cycle = t;
                warp.atBarrier = false;
            }
        }
        ++stats_->barriers;
    }

    // ---- fault helpers ----

    WarpStop
    memFault(FaultKind kind, std::int64_t addr)
    {
        fault_.kind = kind;
        fault_.detail = strformat(
            "%s at address %lld (kernel %s, block %u)",
            std::string(faultKindName(kind)).c_str(),
            static_cast<long long>(addr), prog_.name.c_str(), blockIdx_);
        return WarpStop::Faulted;
    }

    WarpStop
    plainFault(FaultKind kind, const std::string& what)
    {
        fault_.kind = kind;
        fault_.detail = strformat("%s: %s (kernel %s, block %u)",
                                  std::string(faultKindName(kind)).c_str(),
                                  what.c_str(), prog_.name.c_str(),
                                  blockIdx_);
        return WarpStop::Faulted;
    }

    // ---- functional memory ----

    bool
    loadValue(MemSpace space, MemWidth width, std::int64_t addr,
              std::uint32_t thread, std::uint64_t* out, FaultKind* fk)
    {
        const std::int64_t size = ir::memWidthBytes(width);
        const std::uint8_t* base = nullptr;
        switch (space) {
          case MemSpace::Global:
            if (!mem_.mapped(addr, size)) {
                *fk = FaultKind::MemOobGlobal;
                return false;
            }
            base = mem_.raw();
            break;
          case MemSpace::Shared:
            if (addr < 0 ||
                addr + size > static_cast<std::int64_t>(shared_.size())) {
                *fk = FaultKind::MemOobShared;
                return false;
            }
            base = shared_.data();
            break;
          case MemSpace::Local:
            if (addr < 0 ||
                addr + size > static_cast<std::int64_t>(prog_.localBytes)) {
                *fk = FaultKind::MemOobLocal;
                return false;
            }
            base = local_.data() +
                   static_cast<std::size_t>(thread) * prog_.localBytes;
            break;
          default:
            *fk = FaultKind::InvalidProgram;
            return false;
        }
        std::uint64_t raw = 0;
        std::memcpy(&raw, base + addr, static_cast<std::size_t>(size));
        switch (width) {
          case MemWidth::I8:
            raw = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(static_cast<std::int8_t>(raw)));
            break;
          case MemWidth::I16:
            raw = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(static_cast<std::int16_t>(raw)));
            break;
          case MemWidth::I32:
            raw = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(static_cast<std::int32_t>(raw)));
            break;
          default:
            break; // U8/U16/U32/F32/I64: zero-extended raw bits.
        }
        *out = raw;
        return true;
    }

    bool
    storeValue(MemSpace space, MemWidth width, std::int64_t addr,
               std::uint32_t thread, std::uint64_t value, FaultKind* fk)
    {
        const std::int64_t size = ir::memWidthBytes(width);
        std::uint8_t* base = nullptr;
        switch (space) {
          case MemSpace::Global:
            if (!mem_.mapped(addr, size)) {
                *fk = FaultKind::MemOobGlobal;
                return false;
            }
            base = mem_.raw();
            break;
          case MemSpace::Shared:
            if (addr < 0 ||
                addr + size > static_cast<std::int64_t>(shared_.size())) {
                *fk = FaultKind::MemOobShared;
                return false;
            }
            base = shared_.data();
            break;
          case MemSpace::Local:
            if (addr < 0 ||
                addr + size > static_cast<std::int64_t>(prog_.localBytes)) {
                *fk = FaultKind::MemOobLocal;
                return false;
            }
            base = local_.data() +
                   static_cast<std::size_t>(thread) * prog_.localBytes;
            break;
          default:
            *fk = FaultKind::InvalidProgram;
            return false;
        }
        std::memcpy(base + addr, &value, static_cast<std::size_t>(size));
        return true;
    }

    // ---- timing helpers ----

    /// Shared-memory conflict ways: max accesses per 4B bank among the
    /// active lanes; identical addresses broadcast on loads but serialize
    /// on stores.
    std::uint32_t
    sharedConflictWays(const std::int64_t* addrs, std::uint32_t mask,
                       bool isStore)
    {
        std::uint32_t perBank[32] = {};
        std::int64_t firstAddr[32];
        bool seen[32] = {};
        std::uint32_t ways = 1;
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(mask & (1u << lane)))
                continue;
            const std::int64_t a = addrs[lane];
            const auto bank = static_cast<std::uint32_t>((a >> 2) & 31);
            if (!seen[bank]) {
                seen[bank] = true;
                firstAddr[bank] = a;
                perBank[bank] = 1;
            } else if (isStore || firstAddr[bank] != a) {
                // Loads of the same address broadcast (1 way);
                // anything else serializes.
                ++perBank[bank];
            }
            ways = std::max(ways, perBank[bank]);
        }
        return ways;
    }

    /// Global coalescing: distinct 32B sectors touched by active lanes
    /// (sort the <=32 sector ids, count runs — the duplicate scan used to
    /// be quadratic in the active-lane count).
    std::uint32_t
    globalSectors(const std::int64_t* addrs, std::uint32_t mask)
    {
        std::int64_t sectors[kWarpSize];
        int n = 0;
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (mask & (1u << lane))
                sectors[n++] = addrs[lane] >> 5;
        }
        std::sort(sectors, sectors + n);
        int distinct = 0;
        for (int i = 0; i < n; ++i) {
            if (i == 0 || sectors[i] != sectors[i - 1])
                ++distinct;
        }
        return static_cast<std::uint32_t>(std::max(1, distinct));
    }

    /// Issue slots and result latency of one memory instruction, shared
    /// verbatim by the reference and trace interpreters (including the
    /// bank-conflict / sector-coalescing stats side effects).
    void
    memTiming(const DecodedInstr& in, const std::int64_t* addrs,
              std::uint32_t mask, std::uint64_t* slots, std::uint64_t* lat)
    {
        *slots = 1;
        *lat = dev_.aluLat;
        if (in.space == MemSpace::Shared) {
            const bool isStore = in.op == Opcode::Store;
            std::uint32_t ways =
                in.op == Opcode::AtomicRMW
                    ? std::popcount(mask)
                    : sharedConflictWays(addrs, mask, isStore);
            if (isStore)
                ways = std::min(ways, dev_.storeWaysCap);
            stats_->sharedConflictWays += ways - 1;
            *slots = static_cast<std::uint64_t>(dev_.sharedIssue) * ways;
            *lat = dev_.sharedLat;
            if (isStore) {
                // Store-completion skew: the store retires with its last
                // participating sub-warp transaction, so a lone store from
                // a high lane pays almost a full warp's scheduling slots
                // while a full-warp store amortizes them (this models the
                // effect behind paper edit 5, Sec VI-A).
                const int hi = 31 - std::countl_zero(mask);
                *slots += static_cast<std::uint64_t>(
                    dev_.storeLaneSkew * (hi + 1) /
                    std::popcount(mask));
            }
        } else if (in.space == MemSpace::Global) {
            const std::uint32_t sectors = globalSectors(addrs, mask);
            stats_->globalSectors += sectors;
            if (in.op == Opcode::AtomicRMW) {
                *slots = static_cast<std::uint64_t>(dev_.atomicIssue) *
                         std::popcount(mask);
                *lat = dev_.atomicLat;
            } else {
                *slots = static_cast<std::uint64_t>(dev_.globalSectorIssue) *
                         sectors;
                *lat = dev_.globalLat;
            }
        } else { // Local
            *slots = dev_.sharedIssue;
            *lat = dev_.sharedLat;
        }
    }

    /// Stall until source registers are ready, then consume issue slots.
    /// The stall set is the decode-time srcRegs list — identical to
    /// re-testing Operand::kind per slot, without the per-step branches.
    void
    issue(WarpState& warp, const DecodedInstr& in, std::uint64_t slots)
    {
        for (int i = 0; i < in.numSrcRegs; ++i)
            warp.cycle = std::max(
                warp.cycle,
                warp.ready[static_cast<std::size_t>(in.srcRegs[i])]);
        warp.cycle += slots;
        warp.issueCycles += slots;
        ++warp.issuedInstrs;
        ++stats_->warpInstrs;
        // locIssues is preallocated to maxLoc + 1 slots when profiling, so
        // this is a plain indexed increment (slot 0 catches no-loc code).
        if (profileLocs_)
            ++stats_->locIssues[in.loc];
    }

    void
    setReady(WarpState& warp, std::int32_t dest, std::uint64_t lat)
    {
        if (dest >= 0)
            warp.ready[static_cast<std::size_t>(dest)] = warp.cycle + lat;
    }

    // ---- warp-uniform register tracking (trace path) ----

    static bool
    uniTest(const WarpState& warp, std::size_t r)
    {
        return (warp.uniBits[r >> 6] >> (r & 63)) & 1u;
    }

    static void
    uniSet(WarpState& warp, std::size_t r)
    {
        warp.uniBits[r >> 6] |= std::uint64_t{1} << (r & 63);
    }

    static void
    uniClear(WarpState& warp, std::size_t r)
    {
        warp.uniBits[r >> 6] &= ~(std::uint64_t{1} << (r & 63));
    }

    /// Resolved read view of one operand: either a lane-major base
    /// pointer (stride numRegs) or a scalar (immediate / uniform value).
    struct SrcView {
        const std::uint64_t* base = nullptr;
        std::uint64_t scalar = 0;
    };

    SrcView
    viewOf(const WarpState& warp, const Operand& op) const
    {
        if (!op.isReg())
            return {nullptr, static_cast<std::uint64_t>(op.value)};
        const auto r = static_cast<std::size_t>(op.value);
        if (uniTest(warp, r))
            return {nullptr, warp.uniVal[r]};
        return {warp.regs.data() + r, 0};
    }

    /// Rewrite all 32 lanes of a uniform register from uniVal and drop
    /// the uniform bit — called before any per-lane write of that
    /// register so lanes outside the active mask keep the right value.
    void
    materializeReg(WarpState& warp, std::int32_t dest)
    {
        const auto r = static_cast<std::size_t>(dest);
        if (!uniTest(warp, r))
            return;
        const std::uint64_t w = warp.uniVal[r];
        std::uint64_t* p = warp.regs.data() + r;
        for (int lane = 0; lane < kWarpSize; ++lane, p += prog_.numRegs)
            *p = w;
        uniClear(warp, r);
    }

    /// Commit a warp-invariant result \p v to \p dest under \p mask,
    /// preserving the uniformity invariant. The common cases (value
    /// unchanged, or a full-warp overwrite) touch no lane storage at all.
    void
    writeScalarResult(WarpState& warp, std::int32_t dest,
                      std::uint32_t mask, std::uint64_t v)
    {
        const auto r = static_cast<std::size_t>(dest);
        if (uniTest(warp, r)) {
            const std::uint64_t w = warp.uniVal[r];
            if (w == v)
                return;
            if (mask == kFullMask) {
                warp.uniVal[r] = v;
                return;
            }
            std::uint64_t* p = warp.regs.data() + r;
            for (int lane = 0; lane < kWarpSize; ++lane,
                     p += prog_.numRegs)
                *p = (mask >> lane) & 1u ? v : w;
            uniClear(warp, r);
            return;
        }
        if (mask == kFullMask) {
            warp.uniVal[r] = v;
            uniSet(warp, r);
            return;
        }
        std::uint64_t* p = warp.regs.data() + r;
        for (int lane = 0; lane < kWarpSize; ++lane, p += prog_.numRegs) {
            if ((mask >> lane) & 1u)
                *p = v;
        }
    }

    // ---- the interpreters ----

    /// Pop dead/reconverged stack entries and retire implicit exits.
    /// Returns false when the warp is done (stack empty or no lanes
    /// alive) — shared bookkeeping of both interpreters, so the
    /// retirement rules can never diverge between them.
    static bool
    resolveStack(WarpState& warp)
    {
        while (!warp.stack.empty()) {
            StackEntry& top = warp.stack.back();
            if ((top.mask & warp.aliveMask) == 0) {
                warp.stack.pop_back();
                continue;
            }
            if (top.pc == kExitPc) {
                // Implicit exit: retire these lanes.
                warp.aliveMask &= ~top.mask;
                warp.stack.pop_back();
                continue;
            }
            if (top.pc == top.reconvPc) {
                warp.stack.pop_back();
                continue;
            }
            break;
        }
        if (warp.stack.empty() || warp.aliveMask == 0) {
            warp.done = true;
            return false;
        }
        return true;
    }

    WarpStop runWarpRef(WarpState& warp);
    WarpStop stepRef(WarpState& warp);
    WarpStop runWarpTrace(WarpState& warp);
    // Templated on the packing mode so the full-width instantiation keeps
    // the original straight masked loops (no per-lane indirection) while
    // the dense one iterates the gathered slots; \p act is only read when
    // kDense.
    template <bool kDense>
    WarpStop execInstr(WarpState& warp, const DecodedInstr& in,
                       std::uint32_t mask, const ActiveSet* act);

    const DeviceConfig& dev_;
    DeviceMemory& mem_;
    const Program& prog_;
    LaunchDims dims_;
    const std::vector<std::uint64_t>& args_;
    std::uint32_t blockIdx_ = 0;
    LaunchStats* stats_;
    bool profileLocs_;
    bool trace_;
    bool dense_;

    std::vector<std::uint8_t>& shared_;
    std::vector<std::uint8_t>& local_;
    std::vector<WarpState>& warps_;
    Fault fault_;
};

/// Reference interpreter: the original per-instruction loop. Kept alive
/// behind GEVO_SIM_REFPATH as the differential-testing oracle for the
/// trace interpreter — it re-resolves the reconvergence stack and
/// re-dispatches per instruction, with no span or uniformity machinery.
WarpStop
BlockRunner::runWarpRef(WarpState& warp)
{
    while (true) {
        const WarpStop result = stepRef(warp);
        if (result == WarpStop::Faulted || result == WarpStop::AtBarrier)
            return result;
        if (warp.done)
            return WarpStop::Done;
    }
}

/// Executes exactly one warp instruction (or resolves stack bookkeeping).
WarpStop
BlockRunner::stepRef(WarpState& warp)
{
    // Resolve reconvergence and dead entries before fetching.
    if (!resolveStack(warp))
        return WarpStop::Done;

    if (warp.issuedInstrs > dev_.maxInstrPerThread)
        return plainFault(FaultKind::Timeout, "instruction budget exceeded");

    StackEntry& top = warp.stack.back();
    const std::uint32_t mask = top.mask & warp.aliveMask;
    const auto pc = static_cast<std::size_t>(top.pc);
    if (pc >= prog_.code.size())
        return plainFault(FaultKind::InvalidProgram, "pc out of range");
    const DecodedInstr& in = prog_.code[pc];

    stats_->laneInstrs += std::popcount(mask);

    const std::uint32_t numRegs = prog_.numRegs;
    std::uint64_t* const regs0 = warp.regs.data();
    auto laneRegs = [regs0, numRegs](int lane) {
        return regs0 + static_cast<std::size_t>(lane) * numRegs;
    };
    auto readOp = [&](const Operand& op, int lane) -> std::uint64_t {
        return op.isReg()
                   ? laneRegs(lane)[static_cast<std::size_t>(op.value)]
                   : static_cast<std::uint64_t>(op.value);
    };

    const ir::OpKind kind = ir::opInfo(in.op).kind;

    switch (kind) {
      case ir::OpKind::Alu:
      case ir::OpKind::Cmp: {
        issue(warp, in, 1);
        // Unused operand slots hold Kind::None with value 0, so reading
        // them unconditionally yields the 0 the evaluator expects — no
        // per-lane nops branching.
        const Operand op0 = in.ops[0];
        const Operand op1 = in.ops[1];
        const Operand op2 = in.ops[2];
        const auto dest = static_cast<std::size_t>(in.dest);
        std::uint64_t* lr = regs0;
        for (int lane = 0; lane < kWarpSize; ++lane, lr += numRegs) {
            if (!(mask & (1u << lane)))
                continue;
            const std::uint64_t a =
                op0.isReg() ? lr[static_cast<std::size_t>(op0.value)]
                            : static_cast<std::uint64_t>(op0.value);
            const std::uint64_t b =
                op1.isReg() ? lr[static_cast<std::size_t>(op1.value)]
                            : static_cast<std::uint64_t>(op1.value);
            const std::uint64_t c =
                op2.isReg() ? lr[static_cast<std::size_t>(op2.value)]
                            : static_cast<std::uint64_t>(op2.value);
            lr[dest] = ir::evalScalar(in.op, a, b, c);
        }
        setReady(warp, in.dest, dev_.aluLat);
        ++top.pc;
        return WarpStop::Done; // caller loops; "Done" here means progress
      }

      case ir::OpKind::Sreg: {
        issue(warp, in, 1);
        // Lane-invariant base computed once outside the lane loop; only
        // Tid/LaneId add the per-lane term.
        std::uint64_t base = 0;
        bool addLane = false;
        switch (in.op) {
          case Opcode::Tid:
            base = static_cast<std::uint64_t>(warp.index) * kWarpSize;
            addLane = true;
            break;
          case Opcode::Bid: base = blockIdx_; break;
          case Opcode::BlockDim: base = dims_.blockDim; break;
          case Opcode::GridDim: base = dims_.gridDim; break;
          case Opcode::LaneId: addLane = true; break;
          case Opcode::WarpId:
            base = static_cast<std::uint64_t>(warp.index);
            break;
          default: break;
        }
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(mask & (1u << lane)))
                continue;
            laneRegs(lane)[static_cast<std::size_t>(in.dest)] =
                base + (addLane ? static_cast<std::uint64_t>(lane) : 0);
        }
        setReady(warp, in.dest, 1);
        ++top.pc;
        return WarpStop::Done;
      }

      case ir::OpKind::Mem: {
        // Gather per-lane addresses first.
        std::int64_t addrs[kWarpSize] = {};
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (mask & (1u << lane))
                addrs[lane] =
                    static_cast<std::int64_t>(readOp(in.ops[0], lane));
        }

        std::uint64_t slots = 1;
        std::uint64_t lat = dev_.aluLat;
        memTiming(in, addrs, mask, &slots, &lat);
        issue(warp, in, slots);

        FaultKind fk = FaultKind::None;
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(mask & (1u << lane)))
                continue;
            const auto thread =
                static_cast<std::uint32_t>(warp.index) * kWarpSize +
                static_cast<std::uint32_t>(lane);
            const std::int64_t addr = addrs[lane];
            if (in.op == Opcode::Load) {
                std::uint64_t v = 0;
                if (!loadValue(in.space, in.width, addr, thread, &v, &fk))
                    return memFault(fk, addr);
                laneRegs(lane)[static_cast<std::size_t>(in.dest)] = v;
            } else if (in.op == Opcode::Store) {
                const std::uint64_t v = readOp(in.ops[1], lane);
                if (!storeValue(in.space, in.width, addr, thread, v, &fk))
                    return memFault(fk, addr);
            } else { // AtomicRMW, lane order = deterministic resolution
                std::uint64_t old = 0;
                if (!loadValue(in.space,
                               in.atom == ir::AtomicOp::AddF32
                                   ? MemWidth::U32
                                   : MemWidth::I32,
                               addr, thread, &old, &fk))
                    return memFault(fk, addr);
                const std::uint64_t b = readOp(in.ops[1], lane);
                std::uint64_t next = old;
                bool doStore = true;
                switch (in.atom) {
                  case ir::AtomicOp::AddI32:
                    next = ir::evalScalar(Opcode::AddI32, old, b);
                    break;
                  case ir::AtomicOp::AddF32:
                    next = ir::evalScalar(Opcode::AddF32, old, b);
                    break;
                  case ir::AtomicOp::MaxI32:
                    next = ir::evalScalar(Opcode::MaxI32, old, b);
                    break;
                  case ir::AtomicOp::MinI32:
                    next = ir::evalScalar(Opcode::MinI32, old, b);
                    break;
                  case ir::AtomicOp::Exch:
                    next = b;
                    break;
                  case ir::AtomicOp::Cas: {
                    const std::uint64_t newv = readOp(in.ops[2], lane);
                    if (ir::asI32(old) == ir::asI32(b)) {
                        next = newv;
                    } else {
                        doStore = false;
                    }
                    break;
                  }
                  default:
                    doStore = false;
                    break;
                }
                if (doStore &&
                    !storeValue(in.space, MemWidth::I32, addr, thread, next,
                                &fk))
                    return memFault(fk, addr);
                laneRegs(lane)[static_cast<std::size_t>(in.dest)] = old;
            }
        }
        if (in.op != Opcode::Store)
            setReady(warp, in.dest, lat);
        ++top.pc;
        return WarpStop::Done;
      }

      case ir::OpKind::Sync: {
        if (in.op == Opcode::Barrier) {
            if (mask != warp.aliveMask)
                return plainFault(FaultKind::BarrierDivergence,
                                  "bar.sync under divergence");
            issue(warp, in, 1 + dev_.barrierIssue);
            ++top.pc;
            warp.atBarrier = true;
            return WarpStop::AtBarrier;
        }
        if (in.op == Opcode::ActiveMask) {
            issue(warp, in, 1);
            for (int lane = 0; lane < kWarpSize; ++lane) {
                if (mask & (1u << lane))
                    laneRegs(lane)[static_cast<std::size_t>(in.dest)] = mask;
            }
            setReady(warp, in.dest, 1);
            ++top.pc;
            return WarpStop::Done;
        }
        if (in.op == Opcode::Ballot) {
            issue(warp, in, dev_.ballotIssue + dev_.ballotResync);
            // Per-lane sync mask must cover only active lanes on Volta.
            std::uint32_t result = 0;
            std::uint32_t syncMask = 0;
            for (int lane = 0; lane < kWarpSize; ++lane) {
                if (!(mask & (1u << lane)))
                    continue;
                syncMask = static_cast<std::uint32_t>(
                    readOp(in.ops[0], lane));
                if (readOp(in.ops[1], lane) != 0)
                    result |= 1u << lane;
            }
            if (dev_.independentThreadScheduling() &&
                (syncMask & ~mask) != 0)
                return plainFault(FaultKind::IllegalWarpSync,
                                  "ballot mask names inactive lanes");
            result &= syncMask;
            for (int lane = 0; lane < kWarpSize; ++lane) {
                if (mask & (1u << lane))
                    laneRegs(lane)[static_cast<std::size_t>(in.dest)] =
                        result;
            }
            setReady(warp, in.dest, dev_.shflLat);
            ++top.pc;
            return WarpStop::Done;
        }
        // ShflUp / ShflIdx.
        issue(warp, in, dev_.shflIssue);
        std::uint64_t srcVals[kWarpSize];
        for (int lane = 0; lane < kWarpSize; ++lane)
            srcVals[lane] = readOp(in.ops[1], lane);
        std::uint64_t results[kWarpSize] = {};
        std::uint32_t syncMask = 0;
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(mask & (1u << lane)))
                continue;
            syncMask =
                static_cast<std::uint32_t>(readOp(in.ops[0], lane));
            const auto arg =
                static_cast<std::int64_t>(readOp(in.ops[2], lane));
            int src = lane;
            if (in.op == Opcode::ShflUp) {
                src = lane - static_cast<int>(arg);
            } else {
                src = static_cast<int>(arg);
            }
            if (src >= 0 && src < kWarpSize &&
                (syncMask & (1u << src)) != 0) {
                results[lane] = srcVals[src];
            } else {
                results[lane] = srcVals[lane];
            }
        }
        if (dev_.independentThreadScheduling() && (syncMask & ~mask) != 0)
            return plainFault(FaultKind::IllegalWarpSync,
                              "shfl mask names inactive lanes");
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (mask & (1u << lane))
                laneRegs(lane)[static_cast<std::size_t>(in.dest)] =
                    results[lane];
        }
        setReady(warp, in.dest, dev_.shflLat);
        ++top.pc;
        return WarpStop::Done;
      }

      case ir::OpKind::Ctrl: {
        if (in.op == Opcode::Ret) {
            issue(warp, in, 1);
            warp.aliveMask &= ~mask;
            warp.stack.pop_back();
            return WarpStop::Done;
        }
        if (in.op == Opcode::Br) {
            issue(warp, in, 1);
            top.pc = in.target0;
            return WarpStop::Done;
        }
        // CondBr.
        std::uint32_t takenMask = 0;
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if ((mask & (1u << lane)) && readOp(in.ops[0], lane) != 0)
                takenMask |= 1u << lane;
        }
        const std::uint32_t fallMask = mask & ~takenMask;
        if (in.target0 == in.target1 || fallMask == 0) {
            issue(warp, in, 1);
            top.pc = in.target0;
            return WarpStop::Done;
        }
        if (takenMask == 0) {
            issue(warp, in, 1);
            top.pc = in.target1;
            return WarpStop::Done;
        }
        // Divergence: the reconvergence-stack management occupies issue
        // slots (both sides will each issue their path on top of this).
        ++stats_->divergences;
        issue(warp, in, 1 + dev_.divergeOverhead);
        const std::int32_t reconv = in.reconvPc;
        top.pc = reconv;
        warp.stack.push_back({in.target1, reconv, fallMask});
        warp.stack.push_back({in.target0, reconv, takenMask});
        return WarpStop::Done;
      }

      case ir::OpKind::Misc: {
        issue(warp, in, 1);
        ++top.pc;
        return WarpStop::Done;
      }
    }
    return plainFault(FaultKind::InvalidProgram, "unhandled opcode");
}

/// Trace interpreter: resolves the reconvergence stack once per span,
/// then executes the whole straight-line span in a tight loop before
/// handling the boundary instruction (branch/barrier) with full stack
/// bookkeeping. Mid-span PCs are never block starts, so no stack entry
/// can die or reconverge inside a span, and the active mask is constant
/// over it. Produces bit-identical results and stats to runWarpRef.
WarpStop
BlockRunner::runWarpTrace(WarpState& warp)
{
    while (true) {
        // Resolve reconvergence and dead entries (needed at span
        // boundaries only: mid-span PCs are never block starts, so no
        // entry can die or reconverge inside a span).
        if (!resolveStack(warp))
            return WarpStop::Done;

        StackEntry& top = warp.stack.back();
        const std::uint32_t mask = top.mask & warp.aliveMask;
        std::int32_t pc = top.pc;
        if (static_cast<std::size_t>(pc) >= prog_.code.size())
            return plainFault(FaultKind::InvalidProgram, "pc out of range");
        const auto popMask =
            static_cast<std::uint32_t>(std::popcount(mask));
        const std::int32_t spanEnd =
            prog_.code[static_cast<std::size_t>(pc)].spanEnd;

        // Dense-lane packing: the mask is constant over the span, so the
        // active lane list is gathered once and every per-lane loop in
        // execInstr runs over just those slots. A full mask stays on the
        // legacy all-lanes loops (no indirection on the uniform path).
        ActiveSet activeSet;
        const ActiveSet* act = nullptr;
        if (dense_ && mask != kFullMask) {
            activeSet.gather(mask);
            act = &activeSet;
        }

        // ---- straight-line span: no stack or PC bookkeeping ----
        // The packing mode is span-constant, so each span commits to one
        // execInstr instantiation up front.
        if (act != nullptr) {
            for (; pc < spanEnd; ++pc) {
                if (warp.issuedInstrs > dev_.maxInstrPerThread)
                    return plainFault(FaultKind::Timeout,
                                      "instruction budget exceeded");
                const DecodedInstr& in =
                    prog_.code[static_cast<std::size_t>(pc)];
                stats_->laneInstrs += popMask;
                if (execInstr<true>(warp, in, mask, act) ==
                    WarpStop::Faulted)
                    return WarpStop::Faulted;
            }
        } else {
            for (; pc < spanEnd; ++pc) {
                if (warp.issuedInstrs > dev_.maxInstrPerThread)
                    return plainFault(FaultKind::Timeout,
                                      "instruction budget exceeded");
                const DecodedInstr& in =
                    prog_.code[static_cast<std::size_t>(pc)];
                stats_->laneInstrs += popMask;
                if (execInstr<false>(warp, in, mask, nullptr) ==
                    WarpStop::Faulted)
                    return WarpStop::Faulted;
            }
        }

        // ---- boundary instruction: control flow or barrier ----
        if (warp.issuedInstrs > dev_.maxInstrPerThread)
            return plainFault(FaultKind::Timeout,
                              "instruction budget exceeded");
        const DecodedInstr& in = prog_.code[static_cast<std::size_t>(pc)];
        stats_->laneInstrs += popMask;

        if (in.op == Opcode::Barrier) {
            if (mask != warp.aliveMask)
                return plainFault(FaultKind::BarrierDivergence,
                                  "bar.sync under divergence");
            issue(warp, in, 1 + dev_.barrierIssue);
            top.pc = pc + 1;
            warp.atBarrier = true;
            return WarpStop::AtBarrier;
        }
        if (in.op == Opcode::Ret) {
            issue(warp, in, 1);
            warp.aliveMask &= ~mask;
            warp.stack.pop_back();
            continue;
        }
        if (in.op == Opcode::Br) {
            issue(warp, in, 1);
            top.pc = in.target0;
            continue;
        }
        // CondBr. A uniform condition register decides the whole warp in
        // one scalar test — the dominant case for loop back-edges.
        const SrcView cond = viewOf(warp, in.ops[0]);
        std::uint32_t takenMask = 0;
        if (cond.base == nullptr) {
            takenMask = cond.scalar != 0 ? mask : 0;
        } else if (act != nullptr) {
            // The boundary executes under the span's mask, so the span's
            // active set is still exact here.
            for (int k = 0; k < act->n; ++k) {
                const int lane = act->lanes[k];
                if (cond.base[static_cast<std::size_t>(lane) *
                              prog_.numRegs] != 0)
                    takenMask |= 1u << lane;
            }
        } else {
            const std::uint64_t* p = cond.base;
            for (int lane = 0; lane < kWarpSize;
                 ++lane, p += prog_.numRegs) {
                if ((mask & (1u << lane)) && *p != 0)
                    takenMask |= 1u << lane;
            }
        }
        const std::uint32_t fallMask = mask & ~takenMask;
        if (in.target0 == in.target1 || fallMask == 0) {
            issue(warp, in, 1);
            top.pc = in.target0;
            continue;
        }
        if (takenMask == 0) {
            issue(warp, in, 1);
            top.pc = in.target1;
            continue;
        }
        // Divergence: the reconvergence-stack management occupies issue
        // slots (both sides will each issue their path on top of this).
        ++stats_->divergences;
        issue(warp, in, 1 + dev_.divergeOverhead);
        const std::int32_t reconv = in.reconvPc;
        top.pc = reconv;
        warp.stack.push_back({in.target1, reconv, fallMask});
        warp.stack.push_back({in.target0, reconv, takenMask});
    }
}

/// One non-boundary instruction under the trace interpreter: ALU/Cmp with
/// warp-uniform scalarization, Sreg broadcast, memory, and the
/// non-barrier warp intrinsics. Never touches the reconvergence stack.
///
/// When \p kDense, \p act is the span's gathered active-lane list (the
/// dense-lane fast path); every per-lane loop below iterates either the
/// dense slots or all 32 lanes with a mask test, through one shared body,
/// in the same ascending lane order — so values, stats and fault order
/// are bit-identical in both modes. kDense is a template parameter so
/// the full-width instantiation compiles to the original masked loops
/// with no per-lane indirection.
template <bool kDense>
WarpStop
BlockRunner::execInstr(WarpState& warp, const DecodedInstr& in,
                       std::uint32_t mask, const ActiveSet* act)
{
    const std::uint32_t numRegs = prog_.numRegs;
    std::uint64_t* const regs0 = warp.regs.data();
    const int laneLimit = kDense ? act->n : kWarpSize;
    // One shared iteration header for every per-lane loop: slot k maps to
    // a dense lane (active by construction) or to lane k (masked test).
    const auto laneAt = [act](int k) {
        return kDense ? static_cast<int>(act->lanes[k]) : k;
    };

    switch (in.kind) {
      case ir::OpKind::Alu:
      case ir::OpKind::Cmp: {
        issue(warp, in, 1);
        // Unused operand slots hold Kind::None with value 0, so viewing
        // them unconditionally yields the scalar 0 the evaluator expects.
        const SrcView a = viewOf(warp, in.ops[0]);
        const SrcView b = viewOf(warp, in.ops[1]);
        const SrcView c = viewOf(warp, in.ops[2]);
        if (a.base == nullptr && b.base == nullptr && c.base == nullptr) {
            // All operands warp-invariant: evaluate once, broadcast.
            writeScalarResult(
                warp, in.dest, mask,
                ir::evalScalar(in.op, a.scalar, b.scalar, c.scalar));
        } else {
            materializeReg(warp, in.dest);
            const auto dest = static_cast<std::size_t>(in.dest);
            for (int k = 0; k < laneLimit; ++k) {
                const int lane = laneAt(k);
                if (!kDense && !(mask & (1u << lane)))
                    continue;
                const std::size_t off =
                    static_cast<std::size_t>(lane) * numRegs;
                const std::uint64_t av = a.base ? a.base[off] : a.scalar;
                const std::uint64_t bv = b.base ? b.base[off] : b.scalar;
                const std::uint64_t cv = c.base ? c.base[off] : c.scalar;
                regs0[off + dest] = ir::evalScalar(in.op, av, bv, cv);
            }
        }
        setReady(warp, in.dest, dev_.aluLat);
        return WarpStop::Done;
      }

      case ir::OpKind::Sreg: {
        issue(warp, in, 1);
        switch (in.op) {
          case Opcode::Tid:
          case Opcode::LaneId: {
            materializeReg(warp, in.dest);
            const std::uint64_t base =
                in.op == Opcode::Tid
                    ? static_cast<std::uint64_t>(warp.index) * kWarpSize
                    : 0;
            const auto dest = static_cast<std::size_t>(in.dest);
            for (int k = 0; k < laneLimit; ++k) {
                const int lane = laneAt(k);
                if (!kDense && !(mask & (1u << lane)))
                    continue;
                regs0[static_cast<std::size_t>(lane) * numRegs + dest] =
                    base + static_cast<std::uint64_t>(lane);
            }
            break;
          }
          default: { // Bid / BlockDim / GridDim / WarpId: warp-invariant.
            std::uint64_t v = 0;
            switch (in.op) {
              case Opcode::Bid: v = blockIdx_; break;
              case Opcode::BlockDim: v = dims_.blockDim; break;
              case Opcode::GridDim: v = dims_.gridDim; break;
              case Opcode::WarpId:
                v = static_cast<std::uint64_t>(warp.index);
                break;
              default: break;
            }
            writeScalarResult(warp, in.dest, mask, v);
            break;
          }
        }
        setReady(warp, in.dest, 1);
        return WarpStop::Done;
      }

      case ir::OpKind::Mem: {
        const SrcView av = viewOf(warp, in.ops[0]);
        std::int64_t addrs[kWarpSize] = {};
        if (av.base == nullptr) {
            const auto addr = static_cast<std::int64_t>(av.scalar);
            for (int k = 0; k < laneLimit; ++k) {
                const int lane = laneAt(k);
                if (!kDense && !(mask & (1u << lane)))
                    continue;
                addrs[lane] = addr;
            }
        } else {
            for (int k = 0; k < laneLimit; ++k) {
                const int lane = laneAt(k);
                if (!kDense && !(mask & (1u << lane)))
                    continue;
                addrs[lane] = static_cast<std::int64_t>(
                    av.base[static_cast<std::size_t>(lane) * numRegs]);
            }
        }
        std::uint64_t slots = 1;
        std::uint64_t lat = dev_.aluLat;
        memTiming(in, addrs, mask, &slots, &lat);
        issue(warp, in, slots);

        FaultKind fk = FaultKind::None;
        if (in.op == Opcode::Load) {
            if (av.base == nullptr && in.space != MemSpace::Local) {
                // Uniform address, shared backing store: one access
                // serves the whole warp (a broadcast on real hardware).
                const auto addr = static_cast<std::int64_t>(av.scalar);
                std::uint64_t v = 0;
                if (!loadValue(in.space, in.width, addr, 0, &v, &fk))
                    return memFault(fk, addr);
                writeScalarResult(warp, in.dest, mask, v);
            } else {
                materializeReg(warp, in.dest);
                const auto dest = static_cast<std::size_t>(in.dest);
                for (int k = 0; k < laneLimit; ++k) {
                    const int lane = laneAt(k);
                    if (!kDense && !(mask & (1u << lane)))
                        continue;
                    const auto thread =
                        static_cast<std::uint32_t>(warp.index) *
                            kWarpSize +
                        static_cast<std::uint32_t>(lane);
                    std::uint64_t v = 0;
                    if (!loadValue(in.space, in.width, addrs[lane],
                                   thread, &v, &fk))
                        return memFault(fk, addrs[lane]);
                    regs0[static_cast<std::size_t>(lane) * numRegs +
                          dest] = v;
                }
            }
            setReady(warp, in.dest, lat);
            return WarpStop::Done;
        }
        if (in.op == Opcode::Store) {
            const SrcView sv = viewOf(warp, in.ops[1]);
            if (av.base == nullptr && sv.base == nullptr &&
                in.space != MemSpace::Local) {
                // Uniform address and value: the lanes' stores are
                // byte-identical, one commit suffices.
                const auto addr = static_cast<std::int64_t>(av.scalar);
                if (!storeValue(in.space, in.width, addr, 0, sv.scalar,
                                &fk))
                    return memFault(fk, addr);
                return WarpStop::Done;
            }
            for (int k = 0; k < laneLimit; ++k) {
                const int lane = laneAt(k);
                if (!kDense && !(mask & (1u << lane)))
                    continue;
                const auto thread =
                    static_cast<std::uint32_t>(warp.index) * kWarpSize +
                    static_cast<std::uint32_t>(lane);
                const std::uint64_t v =
                    sv.base ? sv.base[static_cast<std::size_t>(lane) *
                                      numRegs]
                            : sv.scalar;
                if (!storeValue(in.space, in.width, addrs[lane], thread,
                                v, &fk))
                    return memFault(fk, addrs[lane]);
            }
            return WarpStop::Done;
        }
        // AtomicRMW: lane order is the deterministic resolution order, so
        // this path stays per-lane (dense slots preserve ascending lane
        // order); operand reads still use the views.
        const SrcView bv = viewOf(warp, in.ops[1]);
        const SrcView cv = viewOf(warp, in.ops[2]);
        materializeReg(warp, in.dest);
        const auto dest = static_cast<std::size_t>(in.dest);
        for (int k = 0; k < laneLimit; ++k) {
            const int lane = laneAt(k);
            if (!kDense && !(mask & (1u << lane)))
                continue;
            const auto thread =
                static_cast<std::uint32_t>(warp.index) * kWarpSize +
                static_cast<std::uint32_t>(lane);
            const std::int64_t addr = addrs[lane];
            std::uint64_t old = 0;
            if (!loadValue(in.space,
                           in.atom == ir::AtomicOp::AddF32 ? MemWidth::U32
                                                           : MemWidth::I32,
                           addr, thread, &old, &fk))
                return memFault(fk, addr);
            const std::uint64_t b =
                bv.base
                    ? bv.base[static_cast<std::size_t>(lane) * numRegs]
                    : bv.scalar;
            std::uint64_t next = old;
            bool doStore = true;
            switch (in.atom) {
              case ir::AtomicOp::AddI32:
                next = ir::evalScalar(Opcode::AddI32, old, b);
                break;
              case ir::AtomicOp::AddF32:
                next = ir::evalScalar(Opcode::AddF32, old, b);
                break;
              case ir::AtomicOp::MaxI32:
                next = ir::evalScalar(Opcode::MaxI32, old, b);
                break;
              case ir::AtomicOp::MinI32:
                next = ir::evalScalar(Opcode::MinI32, old, b);
                break;
              case ir::AtomicOp::Exch:
                next = b;
                break;
              case ir::AtomicOp::Cas: {
                const std::uint64_t newv =
                    cv.base ? cv.base[static_cast<std::size_t>(lane) *
                                      numRegs]
                            : cv.scalar;
                if (ir::asI32(old) == ir::asI32(b)) {
                    next = newv;
                } else {
                    doStore = false;
                }
                break;
              }
              default:
                doStore = false;
                break;
            }
            if (doStore &&
                !storeValue(in.space, MemWidth::I32, addr, thread, next,
                            &fk))
                return memFault(fk, addr);
            regs0[static_cast<std::size_t>(lane) * numRegs + dest] = old;
        }
        setReady(warp, in.dest, lat);
        return WarpStop::Done;
      }

      case ir::OpKind::Sync: {
        if (in.op == Opcode::ActiveMask) {
            issue(warp, in, 1);
            writeScalarResult(warp, in.dest, mask, mask);
            setReady(warp, in.dest, 1);
            return WarpStop::Done;
        }
        if (in.op == Opcode::Ballot) {
            issue(warp, in, dev_.ballotIssue + dev_.ballotResync);
            const SrcView mv = viewOf(warp, in.ops[0]);
            const SrcView pv = viewOf(warp, in.ops[1]);
            std::uint32_t result = 0;
            std::uint32_t syncMask = 0;
            if (mv.base == nullptr && pv.base == nullptr) {
                syncMask = static_cast<std::uint32_t>(mv.scalar);
                result = pv.scalar != 0 ? mask : 0;
            } else {
                // Ascending order matters: the fault check below reads
                // the last active lane's mask value.
                for (int k = 0; k < laneLimit; ++k) {
                    const int lane = laneAt(k);
                    if (!kDense && !(mask & (1u << lane)))
                        continue;
                    const std::size_t off =
                        static_cast<std::size_t>(lane) * numRegs;
                    syncMask = static_cast<std::uint32_t>(
                        mv.base ? mv.base[off] : mv.scalar);
                    const std::uint64_t pred =
                        pv.base ? pv.base[off] : pv.scalar;
                    if (pred != 0)
                        result |= 1u << lane;
                }
            }
            if (dev_.independentThreadScheduling() &&
                (syncMask & ~mask) != 0)
                return plainFault(FaultKind::IllegalWarpSync,
                                  "ballot mask names inactive lanes");
            result &= syncMask;
            writeScalarResult(warp, in.dest, mask, result);
            setReady(warp, in.dest, dev_.shflLat);
            return WarpStop::Done;
        }
        // ShflUp / ShflIdx.
        issue(warp, in, dev_.shflIssue);
        const SrcView mv = viewOf(warp, in.ops[0]);
        const SrcView vv = viewOf(warp, in.ops[1]);
        const SrcView iv = viewOf(warp, in.ops[2]);
        if (vv.base == nullptr) {
            // Uniform source value: every lane shuffles in the same
            // value whatever the source-lane indices and per-lane masks
            // resolve to. The fault check sees the last active lane's
            // mask read, exactly as the reference loop leaves it.
            std::uint32_t syncMask = 0;
            if (mv.base == nullptr) {
                syncMask = static_cast<std::uint32_t>(mv.scalar);
            } else {
                const int hi = 31 - std::countl_zero(mask);
                syncMask = static_cast<std::uint32_t>(
                    mv.base[static_cast<std::size_t>(hi) * numRegs]);
            }
            if (dev_.independentThreadScheduling() &&
                (syncMask & ~mask) != 0)
                return plainFault(FaultKind::IllegalWarpSync,
                                  "shfl mask names inactive lanes");
            writeScalarResult(warp, in.dest, mask, vv.scalar);
            setReady(warp, in.dest, dev_.shflLat);
            return WarpStop::Done;
        }
        // Source values are gathered from ALL 32 lanes — inactive lanes
        // are legal shuffle sources — so this gather stays full-width
        // even under dense packing.
        std::uint64_t srcVals[kWarpSize];
        for (int lane = 0; lane < kWarpSize; ++lane)
            srcVals[lane] =
                vv.base[static_cast<std::size_t>(lane) * numRegs];
        std::uint64_t results[kWarpSize] = {};
        // Each lane's source-validity test uses that lane's own mask
        // read; the post-loop fault check then sees the last active
        // lane's value — both exactly as in the reference loop.
        std::uint32_t syncMask = 0;
        for (int k = 0; k < laneLimit; ++k) {
            const int lane = laneAt(k);
            if (!kDense && !(mask & (1u << lane)))
                continue;
            const std::size_t off =
                static_cast<std::size_t>(lane) * numRegs;
            syncMask = static_cast<std::uint32_t>(
                mv.base ? mv.base[off] : mv.scalar);
            const auto arg = static_cast<std::int64_t>(
                iv.base ? iv.base[off] : iv.scalar);
            int src = lane;
            if (in.op == Opcode::ShflUp) {
                src = lane - static_cast<int>(arg);
            } else {
                src = static_cast<int>(arg);
            }
            if (src >= 0 && src < kWarpSize &&
                (syncMask & (1u << src)) != 0) {
                results[lane] = srcVals[src];
            } else {
                results[lane] = srcVals[lane];
            }
        }
        if (dev_.independentThreadScheduling() && (syncMask & ~mask) != 0)
            return plainFault(FaultKind::IllegalWarpSync,
                              "shfl mask names inactive lanes");
        materializeReg(warp, in.dest);
        {
            const auto dest = static_cast<std::size_t>(in.dest);
            for (int k = 0; k < laneLimit; ++k) {
                const int lane = laneAt(k);
                if (!kDense && !(mask & (1u << lane)))
                    continue;
                regs0[static_cast<std::size_t>(lane) * numRegs + dest] =
                    results[lane];
            }
        }
        setReady(warp, in.dest, dev_.shflLat);
        return WarpStop::Done;
      }

      case ir::OpKind::Misc: {
        issue(warp, in, 1);
        return WarpStop::Done;
      }

      case ir::OpKind::Ctrl:
        break; // Boundary instructions never reach execInstr.
    }
    return plainFault(FaultKind::InvalidProgram, "unhandled opcode");
}

} // namespace

LaunchResult
launchKernel(const DeviceConfig& dev, DeviceMemory& mem, const Program& prog,
             LaunchDims dims, const std::vector<std::uint64_t>& args,
             bool profileLocs)
{
    LaunchResult result;
    if (dims.blockDim == 0 || dims.blockDim > 1024 || dims.gridDim == 0) {
        result.fault.kind = FaultKind::InvalidProgram;
        result.fault.detail = "bad launch dimensions";
        return result;
    }
    if (args.size() < prog.numParams) {
        result.fault.kind = FaultKind::InvalidProgram;
        result.fault.detail = "missing kernel arguments";
        return result;
    }

    if (profileLocs)
        result.stats.locIssues.assign(prog.maxLoc + 1, 0);

    // Sampled once per launch so every block (and every worker thread of
    // a parallel launch) runs the same interpreter.
    const bool trace = interpreterMode() == InterpMode::Trace;
    const bool dense = trace && denseLaneMode();

    std::uint64_t sumIssue = 0;
    std::uint64_t sumLat = 0;
    const std::uint32_t blockThreads =
        std::min(std::max(1u, dims.blockThreads), dims.gridDim);
    if (blockThreads <= 1) {
        BlockRunner runner(dev, mem, prog, dims, args, &result.stats,
                           profileLocs, trace, dense);
        for (std::uint32_t b = 0; b < dims.gridDim; ++b) {
            std::uint64_t issue = 0;
            std::uint64_t lat = 0;
            const Fault fault = runner.runBlock(b, &issue, &lat);
            if (!fault.ok()) {
                result.fault = fault;
                return result;
            }
            sumIssue += issue;
            sumLat += lat;
        }
    } else {
        // Opt-in block-level parallelism: contiguous block ranges per
        // host thread, each with a private BlockRunner and stats
        // accumulator (see LaunchDims::blockThreads for the contract).
        struct Part {
            LaunchStats stats;
            std::uint64_t sumIssue = 0;
            std::uint64_t sumLat = 0;
            Fault fault;
            std::uint32_t faultBlock = 0;
        };
        std::vector<Part> parts(blockThreads);
        // Lowest faulting block seen so far: threads skip blocks at or
        // beyond it (any block below it still runs, so the minimum
        // faulting block — the one a serial launch would report — is
        // always executed and recorded).
        std::atomic<std::uint32_t> stopAt{dims.gridDim};
        const std::uint32_t chunk =
            (dims.gridDim + blockThreads - 1) / blockThreads;
        std::vector<std::thread> threads;
        threads.reserve(blockThreads);
        for (std::uint32_t t = 0; t < blockThreads; ++t) {
            threads.emplace_back([&, t]() {
                Part& part = parts[t];
                if (profileLocs)
                    part.stats.locIssues.assign(prog.maxLoc + 1, 0);
                BlockRunner runner(dev, mem, prog, dims, args, &part.stats,
                                   profileLocs, trace, dense);
                const std::uint32_t begin = t * chunk;
                const std::uint32_t end =
                    std::min(dims.gridDim, begin + chunk);
                for (std::uint32_t b = begin; b < end; ++b) {
                    if (b >= stopAt.load(std::memory_order_relaxed))
                        break;
                    std::uint64_t issue = 0;
                    std::uint64_t lat = 0;
                    const Fault fault = runner.runBlock(b, &issue, &lat);
                    if (!fault.ok()) {
                        part.fault = fault;
                        part.faultBlock = b;
                        std::uint32_t cur =
                            stopAt.load(std::memory_order_relaxed);
                        while (b < cur &&
                               !stopAt.compare_exchange_weak(
                                   cur, b, std::memory_order_relaxed))
                            ;
                        break;
                    }
                    part.sumIssue += issue;
                    part.sumLat += lat;
                }
            });
        }
        for (auto& th : threads)
            th.join();

        // Deterministic reduction: thread-index order, all counters
        // integral. Pick the fault from the lowest faulting block.
        const Part* faulted = nullptr;
        for (const Part& part : parts) {
            if (!part.fault.ok() &&
                (faulted == nullptr ||
                 part.faultBlock < faulted->faultBlock))
                faulted = &part;
            sumIssue += part.sumIssue;
            sumLat += part.sumLat;
            result.stats.warpInstrs += part.stats.warpInstrs;
            result.stats.laneInstrs += part.stats.laneInstrs;
            result.stats.divergences += part.stats.divergences;
            result.stats.barriers += part.stats.barriers;
            result.stats.sharedConflictWays +=
                part.stats.sharedConflictWays;
            result.stats.globalSectors += part.stats.globalSectors;
            for (std::size_t loc = 0; loc < part.stats.locIssues.size();
                 ++loc)
                result.stats.locIssues[loc] += part.stats.locIssues[loc];
        }
        if (faulted != nullptr) {
            result.fault = faulted->fault;
            return result;
        }
    }
    result.stats.issueCycles = sumIssue;

    // ---- occupancy wave model ----
    const std::uint32_t warpsPerBlock =
        (dims.blockDim + 31) / 32;
    std::uint32_t resident = dev.maxBlocksPerSm;
    resident = std::min(resident,
                        std::max(1u, dev.maxWarpsPerSm / warpsPerBlock));
    if (prog.sharedBytes > 0) {
        resident = std::min(
            resident,
            std::max(1u, dev.sharedPerSmBytes / prog.sharedBytes));
    }
    const std::uint64_t effectiveGrid =
        static_cast<std::uint64_t>(dims.gridDim) *
        std::max(1u, dims.oversubscribe);
    const std::uint32_t blocksPerSm = static_cast<std::uint32_t>(
        (effectiveGrid + dev.smCount - 1) / dev.smCount);
    resident = std::max(1u, std::min(resident, blocksPerSm));
    const std::uint32_t waves = (blocksPerSm + resident - 1) / resident;

    const double avgIssue =
        static_cast<double>(sumIssue) / dims.gridDim;
    const double avgLat = static_cast<double>(sumLat) / dims.gridDim;
    const double waveCycles =
        std::max(resident * avgIssue / dev.issueWidth, avgLat);
    const double cycles = static_cast<double>(waves) * waveCycles;

    result.stats.occupancyBlocks = resident;
    result.stats.cycles = static_cast<std::uint64_t>(cycles);
    result.stats.ms = cycles / (static_cast<double>(dev.clockMhz) * 1e3);
    return result;
}

} // namespace gevo::sim
