/// \file
/// SIMT functional + timing execution of decoded kernels.
///
/// Functional model: warps of 32 lanes execute in lock-step under an active
/// mask with an immediate-post-dominator reconvergence stack (the classic
/// GPGPU-Sim discipline). Warps within a block run round-robin between
/// barriers in warp-index order; lanes apply side effects in lane order —
/// the simulator is fully deterministic, which stands in for the paper's
/// fixed-seed validation methodology.
///
/// Timing model (DESIGN.md §6): per-warp in-order issue with a register
/// scoreboard (load-use stalls, fillable by independent instructions —
/// which mechanistically reproduces the paper's Sec VI-E curiosity),
/// shared-memory bank conflicts, global-memory 32B-sector coalescing,
/// divergence both-paths costs, barrier costs, and an occupancy-based wave
/// model that turns per-block cycles into kernel time.

#ifndef GEVO_SIM_EXECUTOR_H
#define GEVO_SIM_EXECUTOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device_config.h"
#include "sim/device_memory.h"
#include "sim/program.h"

namespace gevo::sim {

/// Reasons a launch can fail. A faulting variant is an invalid individual
/// in the evolutionary search (paper Sec III-E: individuals that fail any
/// test case are excluded).
enum class FaultKind : std::uint8_t {
    None,
    MemOobGlobal,      ///< Unmapped global access (the Sec VI-D segfault).
    MemOobShared,      ///< Shared access outside the static allocation.
    MemOobLocal,       ///< Local scratch access out of range.
    BarrierDivergence, ///< bar.sync under a partial warp mask.
    IllegalWarpSync,   ///< Volta-only: shfl/ballot mask names inactive lanes.
    Timeout,           ///< Per-warp instruction budget exceeded.
    InvalidProgram,    ///< Structural verification failed upstream.
};

/// Human-readable fault-kind name.
std::string_view faultKindName(FaultKind kind);

/// Fault descriptor.
struct Fault {
    FaultKind kind = FaultKind::None;
    std::string detail;

    bool ok() const { return kind == FaultKind::None; }
};

/// Aggregate timing/profiling output of one launch.
struct LaunchStats {
    double ms = 0.0;            ///< Simulated kernel time.
    std::uint64_t cycles = 0;   ///< Simulated kernel cycles (wave model).
    std::uint64_t warpInstrs = 0;  ///< Warp-instruction issues.
    std::uint64_t laneInstrs = 0;  ///< Per-lane executed instructions.
    std::uint64_t issueCycles = 0; ///< Sum of issue slots over all warps.
    std::uint64_t divergences = 0; ///< Divergent-branch events.
    std::uint64_t barriers = 0;    ///< Barrier releases.
    std::uint64_t sharedConflictWays = 0; ///< Extra bank-conflict ways.
    std::uint64_t globalSectors = 0;      ///< 32B sectors transferred.
    std::uint64_t occupancyBlocks = 0;    ///< Resident blocks per SM.
    /// Warp-instruction issues per interned source location, indexed by
    /// loc id (slot 0 aggregates instructions without a location). Sized
    /// Program::maxLoc + 1 when profiling is requested, empty otherwise —
    /// a flat array so the interpreter's issue path is a single indexed
    /// increment, not a hash-map probe. This is the nvprof stand-in behind
    /// the "31% boundary instructions" analysis.
    std::vector<std::uint64_t> locIssues;

    /// Fold another launch's counters into this aggregate (drivers sum
    /// their per-launch stats with this; `ms`, `cycles` and
    /// `occupancyBlocks` are per-launch quantities and deliberately not
    /// accumulated).
    void
    accumulate(const LaunchStats& s)
    {
        warpInstrs += s.warpInstrs;
        laneInstrs += s.laneInstrs;
        issueCycles += s.issueCycles;
        divergences += s.divergences;
        barriers += s.barriers;
        sharedConflictWays += s.sharedConflictWays;
        globalSectors += s.globalSectors;
        if (locIssues.size() < s.locIssues.size())
            locIssues.resize(s.locIssues.size(), 0);
        for (std::size_t loc = 0; loc < s.locIssues.size(); ++loc)
            locIssues[loc] += s.locIssues[loc];
    }
};

/// Result of a launch.
struct LaunchResult {
    Fault fault;
    LaunchStats stats;

    bool ok() const { return fault.ok(); }
};

/// Launch configuration.
struct LaunchDims {
    std::uint32_t gridDim = 1;  ///< Blocks (functionally executed).
    std::uint32_t blockDim = 1; ///< Threads per block (<= 1024).
    /// Timing-model grid multiplier: the wave model prices the launch as
    /// if `gridDim * oversubscribe` statistically-identical blocks were
    /// submitted. Drivers use this to evaluate a small functional sample
    /// (e.g. tens of alignment pairs) in the saturated-device regime of
    /// the paper's production batches (30,000 pairs), where SM issue
    /// throughput — not per-warp latency — bounds kernel time.
    std::uint32_t oversubscribe = 1;
    /// Opt-in host-side parallelism: partition the grid's blocks across
    /// this many host threads (0/1 = serial). Each thread owns a private
    /// execution context and stats accumulator; per-thread results are
    /// reduced in thread-index order, and every counter is integral, so a
    /// fault-free parallel launch is bit-for-bit identical to a serial
    /// one. ONLY valid for kernels whose blocks do not communicate
    /// (no cross-block atomics/stores to shared addresses): real GPUs
    /// make no cross-block ordering guarantees, but this simulator's
    /// serial block order otherwise resolves such races deterministically
    /// and parallel execution would not. On a fault, the reported fault
    /// is deterministically the one from the lowest faulting block index,
    /// but the partial stats may include work from blocks a serial launch
    /// would never have reached.
    std::uint32_t blockThreads = 1;
};

/// Interpreter selection. `Trace` is the production path: pre-decoded
/// spans executed in a tight loop with warp-uniform scalarization.
/// `Reference` is the original per-instruction interpreter, kept alive as
/// the differential-testing oracle — both paths must produce bit-identical
/// LaunchStats, memory contents and faults.
enum class InterpMode : std::uint8_t {
    Trace,
    Reference,
};

/// The active interpreter. Resolved once from the `GEVO_SIM_REFPATH`
/// environment variable (set and not "0" selects Reference) unless
/// overridden by setInterpreterMode().
InterpMode interpreterMode();

/// Override the interpreter (tests and differential harnesses). Takes
/// effect for launches that start after the call; per-launch the mode is
/// sampled once, so in-flight launches are unaffected.
void setInterpreterMode(InterpMode mode);

/// Dense active-lane packing in the trace interpreter: when a span's
/// (constant) active mask is not full, gather the active lane indices
/// once and run every per-lane loop over just those slots — divergent
/// regions stop paying 32-wide cost for 3-wide masks. Bit-identical to
/// the 32-slot loops (inactive-lane register values, stats, timing and
/// fault order are untouched). Resolved once from GEVO_SIM_DENSE
/// (default on; "0" disables) unless overridden by setDenseLaneMode();
/// sampled once per launch like the interpreter mode.
bool denseLaneMode();
void setDenseLaneMode(bool on);

/// Execute \p prog on \p dev over \p mem.
///
/// \p args are the kernel parameters preloaded into r0..r(numParams-1).
/// \p profileLocs enables per-source-location issue counting.
LaunchResult launchKernel(const DeviceConfig& dev, DeviceMemory& mem,
                          const Program& prog, LaunchDims dims,
                          const std::vector<std::uint64_t>& args,
                          bool profileLocs = false);

} // namespace gevo::sim

#endif // GEVO_SIM_EXECUTOR_H
