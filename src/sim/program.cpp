#include "sim/program.h"

#include "ir/cfg.h"
#include "support/logging.h"

namespace gevo::sim {

Program
Program::decode(const ir::Function& fn)
{
    Program prog;
    prog.name = fn.name;
    prog.numParams = fn.numParams;
    prog.numRegs = fn.numRegs;
    prog.sharedBytes = fn.sharedBytes;
    prog.localBytes = fn.localBytes;

    prog.blockStart.reserve(fn.blocks.size());
    std::int32_t pc = 0;
    for (const auto& bb : fn.blocks) {
        prog.blockStart.push_back(pc);
        pc += static_cast<std::int32_t>(bb.instrs.size());
    }

    const ir::Cfg cfg(fn);

    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const auto ip = cfg.ipdom(static_cast<std::int32_t>(b));
        const std::int32_t reconv =
            ip >= 0 ? prog.blockStart[static_cast<std::size_t>(ip)]
                    : kExitPc;
        for (const auto& in : fn.blocks[b].instrs) {
            DecodedInstr d;
            d.op = in.op;
            d.dest = in.dest;
            d.nops = in.nops;
            for (int i = 0; i < in.nops; ++i)
                d.ops[i] = in.ops[i];
            d.space = in.space;
            d.width = in.width;
            d.atom = in.atom;
            d.loc = in.loc;
            d.reconvPc = reconv;
            if (in.op == ir::Opcode::Br) {
                d.target0 = prog.blockStart[
                    static_cast<std::size_t>(in.ops[0].value)];
            } else if (in.op == ir::Opcode::CondBr) {
                d.target0 = prog.blockStart[
                    static_cast<std::size_t>(in.ops[1].value)];
                d.target1 = prog.blockStart[
                    static_cast<std::size_t>(in.ops[2].value)];
            }
            prog.code.push_back(d);
        }
    }
    GEVO_ASSERT(!prog.code.empty(), "decoding empty kernel");
    return prog;
}

} // namespace gevo::sim
