#include "sim/program.h"

#include <algorithm>

#include "ir/cfg.h"
#include "support/bytes.h"
#include "support/logging.h"

namespace gevo::sim {

Program
Program::decode(const ir::Function& fn)
{
    Program prog;
    prog.name = fn.name;
    prog.numParams = fn.numParams;
    prog.numRegs = fn.numRegs;
    prog.sharedBytes = fn.sharedBytes;
    prog.localBytes = fn.localBytes;

    prog.blockStart.reserve(fn.blocks.size());
    std::int32_t pc = 0;
    for (const auto& bb : fn.blocks) {
        prog.blockStart.push_back(pc);
        pc += static_cast<std::int32_t>(bb.instrs.size());
    }

    const ir::Cfg cfg(fn);

    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const auto ip = cfg.ipdom(static_cast<std::int32_t>(b));
        const std::int32_t reconv =
            ip >= 0 ? prog.blockStart[static_cast<std::size_t>(ip)]
                    : kExitPc;
        for (const auto& in : fn.blocks[b].instrs) {
            DecodedInstr d;
            d.op = in.op;
            d.kind = ir::opInfo(in.op).kind;
            d.dest = in.dest;
            d.nops = in.nops;
            for (int i = 0; i < in.nops; ++i) {
                d.ops[i] = in.ops[i];
                if (in.ops[i].isReg())
                    d.srcRegs[d.numSrcRegs++] =
                        static_cast<std::int32_t>(in.ops[i].value);
            }
            d.space = in.space;
            d.width = in.width;
            d.atom = in.atom;
            d.loc = in.loc;
            prog.maxLoc = std::max(prog.maxLoc, in.loc);
            d.reconvPc = reconv;
            if (in.op == ir::Opcode::Br) {
                d.target0 = prog.blockStart[
                    static_cast<std::size_t>(in.ops[0].value)];
            } else if (in.op == ir::Opcode::CondBr) {
                d.target0 = prog.blockStart[
                    static_cast<std::size_t>(in.ops[1].value)];
                d.target1 = prog.blockStart[
                    static_cast<std::size_t>(in.ops[2].value)];
            }
            prog.code.push_back(d);
        }
    }
    GEVO_ASSERT(!prog.code.empty(), "decoding empty kernel");

    // Span computation: walk each block backwards propagating the nearest
    // boundary (control flow or barrier) PC. Blocks always end in a
    // terminator, so every instruction sees a boundary within its block.
    for (std::size_t b = 0; b < prog.blockStart.size(); ++b) {
        const std::int32_t begin = prog.blockStart[b];
        const std::int32_t end =
            b + 1 < prog.blockStart.size()
                ? prog.blockStart[b + 1]
                : static_cast<std::int32_t>(prog.code.size());
        std::int32_t boundary = kExitPc;
        for (std::int32_t pc = end - 1; pc >= begin; --pc) {
            DecodedInstr& d = prog.code[static_cast<std::size_t>(pc)];
            if (d.kind == ir::OpKind::Ctrl ||
                d.op == ir::Opcode::Barrier)
                boundary = pc;
            GEVO_ASSERT(boundary != kExitPc,
                        "block without terminator survived decode");
            d.spanEnd = boundary;
        }
    }

    // Content-key fragment: canonical bytes of every execution-relevant
    // field. Interned source-location ids are deliberately excluded: they
    // do not affect functional results or timing, only profiling
    // attribution — so variants differing only in loc metadata share a
    // cache key.
    std::string& key = prog.keyFragment;
    key += prog.name;
    key.push_back('\0');
    appendLeU32(&key, prog.numParams);
    appendLeU32(&key, prog.numRegs);
    appendLeU32(&key, prog.sharedBytes);
    appendLeU32(&key, prog.localBytes);
    appendLeU32(&key, static_cast<std::uint32_t>(prog.code.size()));
    for (const auto& in : prog.code) {
        key.push_back(static_cast<char>(
            static_cast<std::uint16_t>(in.op) & 0xff));
        key.push_back(static_cast<char>(
            (static_cast<std::uint16_t>(in.op) >> 8) & 0xff));
        key.push_back(static_cast<char>(in.nops));
        key.push_back(static_cast<char>(in.space));
        key.push_back(static_cast<char>(in.width));
        key.push_back(static_cast<char>(in.atom));
        appendLeI64(&key, in.dest);
        for (int i = 0; i < in.nops; ++i) {
            key.push_back(static_cast<char>(in.ops[i].kind));
            appendLeI64(&key, in.ops[i].value);
        }
        appendLeI64(&key, in.target0);
        appendLeI64(&key, in.target1);
        appendLeI64(&key, in.reconvPc);
    }
    return prog;
}

ProgramSet
ProgramSet::decodeModule(const ir::Module& module)
{
    ProgramSet set;
    set.programs_.reserve(module.numFunctions());
    for (std::size_t i = 0; i < module.numFunctions(); ++i)
        set.programs_.push_back(std::make_shared<const Program>(
            Program::decode(module.function(i))));
    return set;
}

const Program*
ProgramSet::find(std::string_view name) const
{
    for (const auto& prog : programs_) {
        if (prog->name == name)
            return prog.get();
    }
    return nullptr;
}

std::string
ProgramSet::contentKey() const
{
    std::string key;
    for (const auto& prog : programs_)
        key += prog->keyFragment;
    return key;
}

} // namespace gevo::sim
