/// \file
/// Decoded, execution-ready form of a verified kernel.
///
/// Blocks are flattened into one instruction array; label operands become
/// flat PCs; each block's divergent-branch reconvergence PC (the start of
/// its immediate post-dominator) is precomputed from the CFG.

#ifndef GEVO_SIM_PROGRAM_H
#define GEVO_SIM_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.h"

namespace gevo::sim {

/// Flat-PC sentinel for "reconverge only at kernel exit".
constexpr std::int32_t kExitPc = -1;

/// One decoded instruction (label operands resolved to flat PCs).
struct DecodedInstr {
    ir::Opcode op = ir::Opcode::Nop;
    std::int32_t dest = -1;
    std::uint8_t nops = 0;
    ir::Operand ops[ir::kMaxOperands];
    ir::MemSpace space = ir::MemSpace::None;
    ir::MemWidth width = ir::MemWidth::None;
    ir::AtomicOp atom = ir::AtomicOp::None;
    std::uint32_t loc = 0;
    std::int32_t target0 = kExitPc; ///< Br target / CondBr true target (PC).
    std::int32_t target1 = kExitPc; ///< CondBr false target (PC).
    std::int32_t reconvPc = kExitPc; ///< Reconvergence PC when divergent.
};

/// A decoded kernel.
struct Program {
    std::string name;
    std::uint32_t numParams = 0;
    std::uint32_t numRegs = 0;
    std::uint32_t sharedBytes = 0;
    std::uint32_t localBytes = 0;
    std::vector<DecodedInstr> code;
    std::vector<std::int32_t> blockStart; ///< Block index -> first PC.

    /// Decode a kernel. \pre verifyFunction(fn).ok().
    static Program decode(const ir::Function& fn);
};

} // namespace gevo::sim

#endif // GEVO_SIM_PROGRAM_H
