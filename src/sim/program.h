/// \file
/// Decoded, execution-ready form of a verified kernel.
///
/// Blocks are flattened into one instruction array; label operands become
/// flat PCs; each block's divergent-branch reconvergence PC (the start of
/// its immediate post-dominator) is precomputed from the CFG.
///
/// Decoding also bakes everything the interpreter would otherwise derive
/// per step into the instruction itself: the opcode's behavioural class
/// (no opInfo() table probe on the hot path; the warp-uniform fast path
/// keys on Alu/Cmp, all of which evaluate through ir::evalScalar), the
/// source-register list the scoreboard stalls on, and the straight-line
/// *span* each instruction belongs to. A span is a maximal run of
/// non-boundary instructions — it ends at the first control-flow or
/// barrier instruction — so the trace interpreter can execute a whole
/// span in a tight loop and touch the reconvergence stack only at span
/// boundaries.

#ifndef GEVO_SIM_PROGRAM_H
#define GEVO_SIM_PROGRAM_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ir/function.h"

namespace gevo::sim {

/// Flat-PC sentinel for "reconverge only at kernel exit".
constexpr std::int32_t kExitPc = -1;

/// One decoded instruction (label operands resolved to flat PCs).
struct DecodedInstr {
    ir::Opcode op = ir::Opcode::Nop;
    ir::OpKind kind = ir::OpKind::Misc; ///< Baked opInfo(op).kind.
    std::int32_t dest = -1;
    std::uint8_t nops = 0;
    /// Source-register operand classes, baked at decode so the hot path
    /// never re-tests Operand::kind: `numSrcRegs` register operands with
    /// indices `srcRegs[0..numSrcRegs)` (the scoreboard stall set).
    std::uint8_t numSrcRegs = 0;
    std::int32_t srcRegs[ir::kMaxOperands] = {0, 0, 0};
    ir::Operand ops[ir::kMaxOperands];
    ir::MemSpace space = ir::MemSpace::None;
    ir::MemWidth width = ir::MemWidth::None;
    ir::AtomicOp atom = ir::AtomicOp::None;
    std::uint32_t loc = 0;
    std::int32_t target0 = kExitPc; ///< Br target / CondBr true target (PC).
    std::int32_t target1 = kExitPc; ///< CondBr false target (PC).
    std::int32_t reconvPc = kExitPc; ///< Reconvergence PC when divergent.
    /// PC of the first span-boundary instruction (Ctrl or Barrier) at or
    /// after this one. Every block ends in a terminator, so this is always
    /// a valid PC within the same block: the trace interpreter runs
    /// [pc, spanEnd) in a tight loop, then handles code[spanEnd] with full
    /// reconvergence-stack bookkeeping.
    std::int32_t spanEnd = 0;
};

/// A decoded kernel.
struct Program {
    std::string name;
    std::uint32_t numParams = 0;
    std::uint32_t numRegs = 0;
    std::uint32_t sharedBytes = 0;
    std::uint32_t localBytes = 0;
    std::uint32_t maxLoc = 0; ///< Highest interned source-loc id in code.
    std::vector<DecodedInstr> code;
    std::vector<std::int32_t> blockStart; ///< Block index -> first PC.
    /// This program's slice of ProgramSet::contentKey(), baked at decode.
    /// Per-program fragments are self-contained (no cross-program state),
    /// so the incremental compiler can assemble a variant's content key
    /// from shared base programs plus freshly decoded touched ones and
    /// land on bytes identical to a full decode.
    std::string keyFragment;

    /// Decode a kernel. \pre verifyFunction(fn).ok().
    static Program decode(const ir::Function& fn);
};

/// Every kernel of a module decoded once, for repeated launches.
///
/// This is the reusable artifact of the two-stage compile/score pipeline:
/// the compile stage (patch + cleanup + verify + decode) produces a
/// ProgramSet, and the scoring stage launches its programs over every test
/// case without touching the IR again. Lookup is a linear scan — modules
/// hold a handful of kernels (ADEPT: 2, SIMCoV: 8).
class ProgramSet {
  public:
    ProgramSet() = default;

    /// Decode every kernel in \p module. \pre verifyModule(module).ok().
    static ProgramSet decodeModule(const ir::Module& module);

    /// Program for the kernel named \p name; nullptr when absent.
    const Program* find(std::string_view name) const;

    /// Canonical byte encoding of every execution-relevant field of every
    /// program (names, shapes, decoded instructions, branch targets).
    /// Interned source-location ids are deliberately excluded: they do not
    /// affect functional results or timing, only profiling attribution —
    /// so two variants whose cleaned kernels differ only in loc metadata
    /// score identically and share a content key. This is what lets the
    /// fitness cache collapse the (very common) mutants whose edits are
    /// dangling or optimized away.
    std::string contentKey() const;

    std::size_t size() const { return programs_.size(); }
    const Program& at(std::size_t i) const { return *programs_[i]; }

    /// Append a program (shared: no copy). Programs are immutable once
    /// decoded, so a variant's set can alias the base compiler's programs
    /// for every untouched kernel.
    void add(std::shared_ptr<const Program> prog)
    {
        programs_.push_back(std::move(prog));
    }

    /// Shared handle to program \p i, for aliasing into another set.
    const std::shared_ptr<const Program>& share(std::size_t i) const
    {
        return programs_[i];
    }

  private:
    std::vector<std::shared_ptr<const Program>> programs_;
};

} // namespace gevo::sim

#endif // GEVO_SIM_PROGRAM_H
