/// \file
/// Little-endian byte-append helpers for canonical content keys.
///
/// Both cache-key encoders (mutation edit lists in core::VariantCache,
/// decoded programs in sim::ProgramSet::contentKey) must keep byte-exact,
/// platform-independent encodings; sharing the primitives keeps them from
/// drifting apart.

#ifndef GEVO_SUPPORT_BYTES_H
#define GEVO_SUPPORT_BYTES_H

#include <cstdint>
#include <string>

namespace gevo {

inline void
appendLeU32(std::string* out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void
appendLeU64(std::string* out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void
appendLeI64(std::string* out, std::int64_t v)
{
    appendLeU64(out, static_cast<std::uint64_t>(v));
}

/// Decoders mirroring the appenders above (core/cache_store.cpp reads
/// back what it wrote with them). \pre at least 4/8 readable bytes at \p p.
inline std::uint32_t
readLeU32(const char* p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<std::uint8_t>(p[i]);
    return v;
}

inline std::uint64_t
readLeU64(const char* p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<std::uint8_t>(p[i]);
    return v;
}

} // namespace gevo

#endif // GEVO_SUPPORT_BYTES_H
