#include "support/flags.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "support/logging.h"
#include "support/strings.h"

namespace gevo {

Flags::Flags(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            help_ = true;
            continue;
        }
        if (!startsWith(arg, "--"))
            continue;
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
            values_[arg] = "";
        } else {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        }
    }
}

bool
Flags::lookup(const std::string& name, std::string* out) const
{
    const auto it = values_.find(name);
    if (it != values_.end()) {
        *out = it->second;
        return true;
    }
    std::string env = "GEVO_";
    for (char ch : name)
        env += ch == '-' ? '_' : static_cast<char>(std::toupper(ch));
    if (const char* v = std::getenv(env.c_str())) {
        *out = v;
        return true;
    }
    return false;
}

bool
Flags::has(const std::string& name) const
{
    std::string ignored;
    return lookup(name, &ignored);
}

std::int64_t
Flags::getInt(const std::string& name, std::int64_t def) const
{
    std::string v;
    if (!lookup(name, &v))
        return def;
    // std::from_chars, not strtoll: locale-independent by definition, and
    // overflow is reported instead of saturating (strtoll clamps to
    // INT64_MAX with errno — easy to miss, and a silently clamped budget
    // flag is exactly the class of bug strict parsing exists to stop).
    // Values are decimal or 0x-prefixed hex; a leading zero is plain
    // decimal, NOT octal (strtoll's base-0 "010" == 8 surprise is gone).
    const char* p = v.data();
    const char* end = p + v.size();
    bool negative = false;
    if (p != end && (*p == '+' || *p == '-')) {
        negative = *p == '-';
        ++p;
    }
    int base = 10;
    if (end - p > 2 && p[0] == '0' && (p[1] == 'x' || p[1] == 'X')) {
        base = 16;
        p += 2;
    }
    std::uint64_t magnitude = 0;
    const auto [ptr, ec] = std::from_chars(p, end, magnitude, base);
    if (ec == std::errc() && (ptr != end || p == end))
        GEVO_FATAL("flag --%s expects an integer, got '%s'", name.c_str(),
                   v.c_str());
    constexpr auto kMax =
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
    if (ec == std::errc::result_out_of_range ||
        (ec == std::errc() && magnitude > kMax + (negative ? 1 : 0)))
        GEVO_FATAL("flag --%s: integer out of range, got '%s'", name.c_str(),
                   v.c_str());
    if (ec != std::errc())
        GEVO_FATAL("flag --%s expects an integer, got '%s'", name.c_str(),
                   v.c_str());
    if (negative && magnitude == kMax + 1)
        return std::numeric_limits<std::int64_t>::min();
    const auto parsed = static_cast<std::int64_t>(magnitude);
    return negative ? -parsed : parsed;
}

double
Flags::getDouble(const std::string& name, double def) const
{
    std::string v;
    if (!lookup(name, &v))
        return def;
    // std::from_chars, not strtod: strtod honors LC_NUMERIC, so under a
    // comma-decimal locale (de_DE, fr_FR, ...) "--flag=1.5" stops parsing
    // at the '.' and strict parsing rejects a perfectly good value.
    // from_chars always uses the C-locale format, regardless of what the
    // host application set.
    const char* p = v.data();
    const char* end = p + v.size();
    // from_chars accepts '-' but not '+'; skip one leading '+' unless a
    // sign follows it ("+-1" must stay malformed, not parse as -1).
    if (end - p >= 2 && p[0] == '+' && p[1] != '-' && p[1] != '+')
        ++p;
    double parsed = 0.0;
    const auto [ptr, ec] = std::from_chars(p, end, parsed);
    if (ec != std::errc() || ptr != end || p == end)
        GEVO_FATAL("flag --%s expects a number, got '%s'", name.c_str(),
                   v.c_str());
    return parsed;
}

std::string
Flags::getString(const std::string& name, const std::string& def) const
{
    std::string v;
    return lookup(name, &v) ? v : def;
}

bool
Flags::getBool(const std::string& name, bool def) const
{
    std::string v;
    if (!lookup(name, &v))
        return def;
    // A bare `--name` stores the empty string and means true.
    if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    GEVO_FATAL("flag --%s expects a boolean (0/1/true/false/yes/no/on/off),"
               " got '%s'",
               name.c_str(), v.c_str());
}

std::string
Flags::getChoice(const std::string& name,
                 const std::vector<std::string>& allowed,
                 const std::string& def) const
{
    std::string v;
    if (!lookup(name, &v))
        v = def;
    for (const auto& a : allowed) {
        if (v == a)
            return v;
    }
    std::string list;
    for (const auto& a : allowed)
        list += (list.empty() ? "" : ", ") + a;
    GEVO_FATAL("flag --%s: '%s' is not one of {%s}", name.c_str(), v.c_str(),
               list.c_str());
}

FlagUsage::FlagUsage(std::string tool, std::string synopsis)
    : tool_(std::move(tool)), synopsis_(std::move(synopsis))
{
}

FlagUsage&
FlagUsage::flag(const std::string& name, const std::string& value,
                const std::string& help)
{
    Row row;
    row.left = "--" + name + (value.empty() ? "" : "=" + value);
    row.right = help;
    rows_.push_back(std::move(row));
    return *this;
}

FlagUsage&
FlagUsage::section(const std::string& title)
{
    Row row;
    row.isSection = true;
    row.left = title;
    rows_.push_back(std::move(row));
    return *this;
}

FlagUsage&
FlagUsage::item(const std::string& name, const std::string& help)
{
    Row row;
    row.left = name;
    row.right = help;
    rows_.push_back(std::move(row));
    return *this;
}

void
FlagUsage::print() const
{
    std::printf("%s — %s\n", tool_.c_str(), synopsis_.c_str());
    std::size_t width = 0;
    for (const auto& row : rows_) {
        if (!row.isSection)
            width = std::max(width, row.left.size());
    }
    for (const auto& row : rows_) {
        if (row.isSection)
            std::printf("\n%s:\n", row.left.c_str());
        else
            std::printf("  %-*s  %s\n", static_cast<int>(width),
                        row.left.c_str(), row.right.c_str());
    }
    std::printf("\nEvery flag also reads a GEVO_<NAME> environment "
                "variable (dashes become underscores).\n");
}

} // namespace gevo
