#include "support/flags.h"

#include <cctype>
#include <cstdlib>

#include "support/strings.h"

namespace gevo {

Flags::Flags(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (!startsWith(arg, "--"))
            continue;
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
            values_[arg] = "1";
        } else {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        }
    }
}

bool
Flags::lookup(const std::string& name, std::string* out) const
{
    const auto it = values_.find(name);
    if (it != values_.end()) {
        *out = it->second;
        return true;
    }
    std::string env = "GEVO_";
    for (char ch : name)
        env += ch == '-' ? '_' : static_cast<char>(std::toupper(ch));
    if (const char* v = std::getenv(env.c_str())) {
        *out = v;
        return true;
    }
    return false;
}

std::int64_t
Flags::getInt(const std::string& name, std::int64_t def) const
{
    std::string v;
    return lookup(name, &v) ? std::strtoll(v.c_str(), nullptr, 0) : def;
}

double
Flags::getDouble(const std::string& name, double def) const
{
    std::string v;
    return lookup(name, &v) ? std::strtod(v.c_str(), nullptr) : def;
}

std::string
Flags::getString(const std::string& name, const std::string& def) const
{
    std::string v;
    return lookup(name, &v) ? v : def;
}

bool
Flags::getBool(const std::string& name, bool def) const
{
    std::string v;
    if (!lookup(name, &v))
        return def;
    return !(v == "0" || v == "false" || v == "no");
}

} // namespace gevo
