/// \file
/// Tiny flag parser for benches and examples: `--name=value` arguments plus
/// `GEVO_<NAME>` environment-variable fallbacks, so `for b in bench/*; do $b;
/// done` runs with scaled defaults while full-paper runs stay reachable.
///
/// Parsing is strict: a flag value that does not parse as the requested
/// type, or a choice flag outside its allowed set, is a fatal user error —
/// never silently coerced (a mistyped `--gens=3O` used to run 0
/// generations without a word). `--help`/`-h` are recognised so binaries
/// can print a FlagUsage listing and exit.

#ifndef GEVO_SUPPORT_FLAGS_H
#define GEVO_SUPPORT_FLAGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gevo {

/// Parsed command-line/environment options.
class Flags {
  public:
    /// Parse argv; non-flag arguments are ignored.
    Flags(int argc, char** argv);

    /// True when the flag was given explicitly (argv or GEVO_<NAME> env).
    bool has(const std::string& name) const;

    /// True when --help or -h was given.
    bool helpRequested() const { return help_; }

    /// Look up an integer flag (falls back to GEVO_<NAME> env, then def).
    /// Decimal or 0x-prefixed hex; leading zeros are decimal, never
    /// octal. Fatal when the value is malformed or overflows int64.
    std::int64_t getInt(const std::string& name, std::int64_t def) const;
    /// Look up a floating-point flag (C-locale format, regardless of the
    /// host's LC_NUMERIC). Fatal when malformed.
    double getDouble(const std::string& name, double def) const;
    /// Look up a string flag.
    std::string getString(const std::string& name,
                          const std::string& def) const;
    /// Look up a boolean flag (`--name`, `--name=0/1/true/false/yes/no/
    /// on/off`). Fatal on any other value.
    bool getBool(const std::string& name, bool def) const;
    /// Look up an enumerated flag: the value (or \p def when absent) must
    /// be one of \p allowed, else fatal with the allowed set listed.
    std::string getChoice(const std::string& name,
                          const std::vector<std::string>& allowed,
                          const std::string& def) const;

  private:
    /// Flag value or env fallback; false when absent.
    bool lookup(const std::string& name, std::string* out) const;

    std::map<std::string, std::string> values_;
    bool help_ = false;
};

/// Builder for an aligned `--help` listing. Binaries declare their flags
/// (and any extra sections, e.g. the registered-workload table) and print
/// the result when Flags::helpRequested().
class FlagUsage {
  public:
    /// \p tool is the binary name, \p synopsis a one-line description.
    FlagUsage(std::string tool, std::string synopsis);

    /// Document a flag: name without dashes, a value placeholder (empty
    /// for booleans), and help text which may mention the default.
    FlagUsage& flag(const std::string& name, const std::string& value,
                    const std::string& help);

    /// Start a titled section (subsequent flag()/item() rows go under it).
    FlagUsage& section(const std::string& title);

    /// A non-flag row (e.g. a workload name + summary).
    FlagUsage& item(const std::string& name, const std::string& help);

    /// Render to stdout.
    void print() const;

  private:
    struct Row {
        bool isSection = false;
        std::string left;
        std::string right;
    };
    std::string tool_;
    std::string synopsis_;
    std::vector<Row> rows_;
};

} // namespace gevo

#endif // GEVO_SUPPORT_FLAGS_H
