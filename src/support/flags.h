/// \file
/// Tiny flag parser for benches and examples: `--name=value` arguments plus
/// `GEVO_<NAME>` environment-variable fallbacks, so `for b in bench/*; do $b;
/// done` runs with scaled defaults while full-paper runs stay reachable.

#ifndef GEVO_SUPPORT_FLAGS_H
#define GEVO_SUPPORT_FLAGS_H

#include <cstdint>
#include <map>
#include <string>

namespace gevo {

/// Parsed command-line/environment options.
class Flags {
  public:
    /// Parse argv; unknown arguments are recorded verbatim.
    Flags(int argc, char** argv);

    /// Look up an integer flag (falls back to GEVO_<NAME> env, then def).
    std::int64_t getInt(const std::string& name, std::int64_t def) const;
    /// Look up a floating-point flag.
    double getDouble(const std::string& name, double def) const;
    /// Look up a string flag.
    std::string getString(const std::string& name,
                          const std::string& def) const;
    /// Look up a boolean flag (`--name`, `--name=0/1/true/false`).
    bool getBool(const std::string& name, bool def) const;

  private:
    /// Flag value or env fallback; empty optional when absent.
    bool lookup(const std::string& name, std::string* out) const;

    std::map<std::string, std::string> values_;
};

} // namespace gevo

#endif // GEVO_SUPPORT_FLAGS_H
