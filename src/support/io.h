/// \file
/// EINTR-safe full-buffer read/write on file descriptors, shared by the
/// isolated backend's pipe protocol (core/eval_backend.cpp) and the farm
/// socket protocol (src/farm/). Short reads and writes are retried until
/// the buffer completes or the peer is genuinely gone — a peer closing
/// mid-frame surfaces as `false` here and as a ProtocolError/connection
/// loss at the protocol layer, never as process death (callers ignore
/// SIGPIPE).

#ifndef GEVO_SUPPORT_IO_H
#define GEVO_SUPPORT_IO_H

#include <cerrno>
#include <cstddef>

#include <unistd.h>

namespace gevo {

/// Write all \p n bytes, retrying short writes and EINTR. False on any
/// hard error (EPIPE/ECONNRESET when the peer is gone).
inline bool
writeAll(int fd, const char* p, std::size_t n)
{
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/// Read exactly \p n bytes, retrying short reads and EINTR. False on a
/// hard error or EOF mid-buffer.
inline bool
readFull(int fd, char* p, std::size_t n)
{
    while (n > 0) {
        const ssize_t r = ::read(fd, p, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return false; // EOF mid-message.
        p += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

} // namespace gevo

#endif // GEVO_SUPPORT_IO_H
