#include "support/logging.h"

#include <cstdio>
#include <cstdlib>

namespace gevo {
namespace support {

namespace {

LogLevel g_threshold = LogLevel::Warn;

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

void
vlog(LogLevel level, const char* fmt, va_list args)
{
    std::fprintf(stderr, "[gevo:%s] ", levelName(level));
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold;
}

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

void
logMessage(LogLevel level, const char* fmt, ...)
{
    if (static_cast<int>(level) < static_cast<int>(g_threshold))
        return;
    va_list args;
    va_start(args, fmt);
    vlog(level, fmt, args);
    va_end(args);
}

void
panicImpl(const char* file, int line, const char* fmt, ...)
{
    std::fprintf(stderr, "[gevo:panic] %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::abort();
}

void
fatalImpl(const char* file, int line, const char* fmt, ...)
{
    std::fprintf(stderr, "[gevo:fatal] %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::exit(1);
}

} // namespace support

void
inform(const char* fmt, ...)
{
    if (static_cast<int>(LogLevel::Info) <
        static_cast<int>(support::logThreshold()))
        return;
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[gevo:info] ");
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
}

void
warn(const char* fmt, ...)
{
    if (static_cast<int>(LogLevel::Warn) <
        static_cast<int>(support::logThreshold()))
        return;
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[gevo:warn] ");
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
}

} // namespace gevo
