/// \file
/// Diagnostic logging and termination helpers.
///
/// Follows the gem5 discipline: GEVO_PANIC is for conditions that indicate a
/// bug in this library (aborts, core-dumpable); GEVO_FATAL is for user error
/// (bad configuration, malformed input) and exits cleanly with status 1.
/// warn()/inform() report non-fatal conditions.

#ifndef GEVO_SUPPORT_LOGGING_H
#define GEVO_SUPPORT_LOGGING_H

#include <cstdarg>
#include <string>

namespace gevo {

/// Severity levels for runtime log messages.
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

namespace support {

/// Global log threshold; messages below it are suppressed.
LogLevel logThreshold();

/// Set the global log threshold (e.g. from GEVO_LOG_LEVEL env var).
void setLogThreshold(LogLevel level);

/// printf-style message at the given level to stderr.
void logMessage(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Internal: report and abort. Used by GEVO_PANIC.
[[noreturn]] void panicImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

/// Internal: report and exit(1). Used by GEVO_FATAL.
[[noreturn]] void fatalImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace support

/// Informational message (suppressed below LogLevel::Info).
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Warning message (suppressed below LogLevel::Warn).
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace gevo

/// Library-bug termination: something happened that should never happen
/// regardless of user input.
#define GEVO_PANIC(...) \
    ::gevo::support::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/// User-error termination: the run cannot continue due to caller input.
#define GEVO_FATAL(...) \
    ::gevo::support::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/// Assert an internal invariant; compiled in all build types because the
/// mutation engine intentionally produces hostile inputs.
#define GEVO_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::gevo::support::panicImpl(__FILE__, __LINE__,              \
                                       "assertion failed: %s", #cond);  \
        }                                                               \
    } while (false)

#endif // GEVO_SUPPORT_LOGGING_H
