/// \file
/// Deterministic pseudo-random number generation.
///
/// The whole reproduction depends on run-to-run determinism: fitness is a
/// deterministic simulation, so every stochastic choice (mutation sampling,
/// crossover points, SIMCoV agent behaviour) must flow from explicit seeds.
/// We use xoshiro256** (public domain, Blackman & Vigna) rather than
/// std::mt19937 so that streams are cheap to fork and stable across
/// standard-library implementations.

#ifndef GEVO_SUPPORT_RNG_H
#define GEVO_SUPPORT_RNG_H

#include <array>
#include <cstdint>

#include "support/logging.h"

namespace gevo {

/// xoshiro256** generator with splitmix64 seeding.
class Rng {
  public:
    using result_type = std::uint64_t;

    /// Construct from a 64-bit seed; equal seeds yield equal streams.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /// Reset the stream from a 64-bit seed.
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 expansion of the seed into the four-word state.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /// Raw 64-bit draw.
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// UniformRandomBitGenerator interface.
    std::uint64_t operator()() { return next(); }
    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /// Uniform integer in [0, bound). \pre bound > 0.
    std::uint64_t
    below(std::uint64_t bound)
    {
        GEVO_ASSERT(bound > 0, "below(0)");
        // Lemire's debiased multiply-shift rejection method.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform integer in the inclusive range [lo, hi].
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        GEVO_ASSERT(lo <= hi, "range(lo > hi)");
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(below(span));
    }

    /// Uniform double in [0, 1).
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli draw with probability p of true.
    bool chance(double p) { return uniform() < p; }

    /// Fork an independent child stream; deterministic in (parent state, tag).
    Rng
    fork(std::uint64_t tag)
    {
        return Rng(next() ^ (tag * 0x9e3779b97f4a7c15ULL));
    }

    /// The full four-word generator state. Together with setState this is
    /// what lets a checkpointed search resume mid-stream bit-for-bit
    /// (core/checkpoint.h): a restored Rng produces exactly the draws the
    /// interrupted run would have produced next.
    std::array<std::uint64_t, 4>
    state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    /// Restore a state previously captured with state().
    void
    setState(const std::array<std::uint64_t, 4>& s)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = s[static_cast<std::size_t>(i)];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace gevo

#endif // GEVO_SUPPORT_RNG_H
