#include "support/stats.h"

#include <algorithm>

namespace gevo {

Summary
summarize(const std::vector<double>& samples)
{
    Summary s;
    RunningStat rs;
    for (double x : samples)
        rs.push(x);
    s.mean = rs.mean();
    s.stddev = rs.stddev();
    s.min = rs.min();
    s.max = rs.max();
    s.count = rs.count();
    return s;
}

double
relativeDiff(double a, double b, double eps)
{
    const double denom = std::max(std::abs(b), eps);
    return std::abs(a - b) / denom;
}

} // namespace gevo
