/// \file
/// Small numeric statistics helpers used by the fitness evaluator, the
/// SIMCoV per-value tolerance validator (paper Sec III-C) and the benches.

#ifndef GEVO_SUPPORT_STATS_H
#define GEVO_SUPPORT_STATS_H

#include <cmath>
#include <cstddef>
#include <vector>

namespace gevo {

/// Welford single-pass running mean/variance accumulator.
class RunningStat {
  public:
    /// Add one observation.
    void
    push(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (n_ == 1 || x < min_) min_ = x;
        if (n_ == 1 || x > max_) max_ = x;
    }

    /// Number of observations so far.
    std::size_t count() const { return n_; }
    /// Sample mean; 0 when empty.
    double mean() const { return mean_; }
    /// Population variance; 0 with fewer than 2 observations.
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
    }
    /// Population standard deviation.
    double stddev() const { return std::sqrt(variance()); }
    /// Smallest observation; 0 when empty.
    double min() const { return n_ ? min_ : 0.0; }
    /// Largest observation; 0 when empty.
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Summary of a vector of samples (used in bench reports).
struct Summary {
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::size_t count = 0;
};

/// Compute a Summary over the given samples.
Summary summarize(const std::vector<double>& samples);

/// Relative difference |a-b| / max(|b|, eps); the weak-edit 1% threshold of
/// paper Algorithm 1 is expressed with this.
double relativeDiff(double a, double b, double eps = 1e-12);

} // namespace gevo

#endif // GEVO_SUPPORT_STATS_H
