#include "support/strings.h"

#include <cstdarg>
#include <cstdio>

namespace gevo {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string_view
trim(std::string_view text)
{
    const char* ws = " \t\r\n";
    const auto first = text.find_first_not_of(ws);
    if (first == std::string_view::npos)
        return {};
    const auto last = text.find_last_not_of(ws);
    return text.substr(first, last - first + 1);
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
strformat(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
    if (needed > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    va_end(args);
    return out;
}

} // namespace gevo
