/// \file
/// Minimal string helpers shared by the IR parser and report writers.

#ifndef GEVO_SUPPORT_STRINGS_H
#define GEVO_SUPPORT_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace gevo {

/// Split \p text on \p sep, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// True when \p text begins with \p prefix.
bool startsWith(std::string_view text, std::string_view prefix);

/// printf-style std::string formatting.
std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace gevo

#endif // GEVO_SUPPORT_STRINGS_H
