#include "support/table.h"

#include <algorithm>
#include <cstdio>

#include "support/logging.h"

namespace gevo {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

Table&
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table&
Table::cell(std::string value)
{
    GEVO_ASSERT(!rows_.empty(), "cell() before row()");
    rows_.back().push_back(std::move(value));
    return *this;
}

Table&
Table::cell(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return cell(std::string(buf));
}

Table&
Table::cell(long long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return cell(std::string(buf));
}

void
Table::print(std::FILE* out) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& r : rows_)
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto emitRow = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& v = c < cells.size() ? cells[c] : std::string();
            std::fprintf(out, "%-*s", static_cast<int>(widths[c]) + 2,
                         v.c_str());
        }
        std::fputc('\n', out);
    };

    emitRow(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    for (std::size_t i = 0; i < total; ++i)
        std::fputc('-', out);
    std::fputc('\n', out);
    for (const auto& r : rows_)
        emitRow(r);
}

std::string
Table::toCsv() const
{
    auto escape = [](const std::string& s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    std::string out;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c)
            out += ',';
        out += escape(headers_[c]);
    }
    out += '\n';
    for (const auto& r : rows_) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            if (c)
                out += ',';
            out += escape(r[c]);
        }
        out += '\n';
    }
    return out;
}

const std::string&
Table::at(std::size_t row, std::size_t col) const
{
    GEVO_ASSERT(row < rows_.size() && col < rows_[row].size(),
                "Table::at out of range");
    return rows_[row][col];
}

} // namespace gevo
