/// \file
/// Aligned-text and CSV table emission for the benchmark harness.
///
/// Every bench binary regenerates one of the paper's tables/figures; this
/// class renders the same rows both as human-readable aligned text (stdout)
/// and optionally as CSV (for plotting).

#ifndef GEVO_SUPPORT_TABLE_H
#define GEVO_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace gevo {

/// Column-aligned table builder.
class Table {
  public:
    /// Create a table with the given column headers.
    explicit Table(std::vector<std::string> headers);

    /// Begin a new row; subsequent cell() calls fill it left to right.
    Table& row();

    /// Append a string cell to the current row.
    Table& cell(std::string value);
    /// Append a formatted double cell (\p digits decimal places).
    Table& cell(double value, int digits = 2);
    /// Append an integer cell.
    Table& cell(long long value);

    /// Render as aligned text (with a header underline) to \p out.
    void print(std::FILE* out = stdout) const;

    /// Render as CSV.
    std::string toCsv() const;

    /// Number of data rows so far.
    std::size_t rowCount() const { return rows_.size(); }

    /// Access a cell (row-major) for testing.
    const std::string& at(std::size_t row, std::size_t col) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gevo

#endif // GEVO_SUPPORT_TABLE_H
