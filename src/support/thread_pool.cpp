#include "support/thread_pool.h"

#include <algorithm>

namespace gevo {

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0) {
        workers = std::max(1u, std::thread::hardware_concurrency());
    }
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
        ++inFlight_;
    }
    cv_.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& fn)
{
    for (std::size_t i = 0; i < n; ++i)
        submit([&fn, i] { fn(i); });
    drain();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                idleCv_.notify_all();
        }
    }
}

} // namespace gevo
