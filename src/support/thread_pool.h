/// \file
/// Fixed-size thread pool used to evaluate population fitness in parallel
/// (paper Sec III-E evaluates 256 individuals per generation; we parallelize
/// across host cores since each evaluation is an independent simulation).

#ifndef GEVO_SUPPORT_THREAD_POOL_H
#define GEVO_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gevo {

/// Simple task-queue thread pool with a blocking drain.
class ThreadPool {
  public:
    /// Spawn \p workers threads (defaults to hardware concurrency, min 1).
    explicit ThreadPool(std::size_t workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueue a task for asynchronous execution.
    void submit(std::function<void()> task);

    /// Block until every submitted task has finished.
    void drain();

    /// Number of worker threads.
    std::size_t workerCount() const { return threads_.size(); }

    /// Run \p fn(i) for i in [0, n) across the pool and wait for completion.
    void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable idleCv_;
    std::size_t inFlight_ = 0;
    bool stop_ = false;
};

} // namespace gevo

#endif // GEVO_SUPPORT_THREAD_POOL_H
