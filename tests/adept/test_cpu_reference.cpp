#include "apps/adept/cpu_reference.h"

#include <gtest/gtest.h>

namespace gevo::adept {
namespace {

TEST(CpuReference, PaperFigure2Example)
{
    // Figure 2: aligning ATGCT and AGCT under match +2 / mismatch -2 /
    // gap -1 gives score 7 at the full-length corner.
    const auto r = alignForwardCpu("ATGCT", "AGCT", figure2Scoring());
    EXPECT_EQ(r.score, 7);
    EXPECT_EQ(r.endA, 4);
    EXPECT_EQ(r.endB, 3);
}

TEST(CpuReference, PerfectMatch)
{
    ScoringParams sc;
    const auto r = alignForwardCpu("ACGTACGT", "ACGTACGT", sc);
    EXPECT_EQ(r.score, 8 * sc.match);
    EXPECT_EQ(r.endA, 7);
    EXPECT_EQ(r.endB, 7);
    const auto full = alignFullCpu("ACGTACGT", "ACGTACGT", sc);
    EXPECT_EQ(full.startA, 0);
    EXPECT_EQ(full.startB, 0);
}

TEST(CpuReference, NoAlignment)
{
    ScoringParams sc;
    const auto r = alignFullCpu("AAAA", "GGGG", sc);
    EXPECT_EQ(r.score, 0);
    EXPECT_EQ(r.endA, -1);
    EXPECT_EQ(r.endB, -1);
    EXPECT_EQ(r.startA, -1);
    EXPECT_EQ(r.startB, -1);
}

TEST(CpuReference, EmbeddedLocalMatch)
{
    ScoringParams sc;
    const auto r = alignFullCpu("TTTTACGTACGTTTTT", "CCACGTACGTCC", sc);
    EXPECT_EQ(r.score, 8 * sc.match);
    EXPECT_EQ(r.startA, 4);
    EXPECT_EQ(r.endA, 11);
    EXPECT_EQ(r.startB, 2);
    EXPECT_EQ(r.endB, 9);
}

TEST(CpuReference, AffineGapBridgesDeletion)
{
    // B deletes "AA" from A; both flanks are long enough that bridging
    // the 2-base gap (open + one extend) beats either flank alone.
    ScoringParams sc;
    const auto r =
        alignForwardCpu("ACGTACGTAACCGG", "ACGTACGTCCGG", sc);
    EXPECT_EQ(r.score, 12 * sc.match - sc.gapOpen - sc.gapExtend);
    EXPECT_EQ(r.endA, 13);
    EXPECT_EQ(r.endB, 11);
}

TEST(CpuReference, MismatchVsGapTradeoff)
{
    // A single substitution: keeping the mismatch (-3) beats opening gaps.
    ScoringParams sc;
    const auto r = alignForwardCpu("ACGTACGT", "ACGAACGT", sc);
    EXPECT_EQ(r.score, 7 * sc.match + sc.mismatch);
}

TEST(CpuReference, TieBreakPrefersSmallestEndB)
{
    // Two disjoint equal-scoring 2-base matches ("GG" ending at j=1 and
    // "AA" ending at j=3); B's reversed order prevents any combined
    // alignment, and the column-major scan keeps the smaller endB.
    ScoringParams sc;
    const auto r = alignForwardCpu("TTAATTGGTT", "GGAA", sc);
    EXPECT_EQ(r.score, 2 * sc.match);
    EXPECT_EQ(r.endB, 1);
    EXPECT_EQ(r.endA, 7);
}

TEST(CpuReference, ReversePassRecoversStartAfterGaps)
{
    ScoringParams sc;
    const auto r = alignFullCpu("GGGACGTTTACGGG", "ACGTACG", sc);
    EXPECT_GE(r.startA, 0);
    EXPECT_LE(r.startA, r.endA);
    EXPECT_GE(r.startB, 0);
    EXPECT_LE(r.startB, r.endB);
}

TEST(CpuReference, ScoresAreSymmetricUnderSwap)
{
    ScoringParams sc;
    const auto ab = alignForwardCpu("ACGGTCA", "TACGGT", sc);
    const auto ba = alignForwardCpu("TACGGT", "ACGGTCA", sc);
    EXPECT_EQ(ab.score, ba.score);
}

TEST(CpuReference, AlignAllMatchesSingleCalls)
{
    ScoringParams sc;
    SequenceSetConfig cfg;
    cfg.numPairs = 6;
    cfg.seed = 9;
    const auto pairs = generatePairs(cfg);
    const auto all = alignAllCpu(pairs, sc, true);
    ASSERT_EQ(all.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto single = alignFullCpu(pairs[i].a, pairs[i].b, sc);
        EXPECT_TRUE(all[i] == single) << "pair " << i;
    }
}

TEST(Sequences, GeneratorIsDeterministicAndBounded)
{
    SequenceSetConfig cfg;
    cfg.numPairs = 10;
    cfg.minLen = 20;
    cfg.maxLen = 40;
    cfg.seed = 123;
    const auto a = generatePairs(cfg);
    const auto b = generatePairs(cfg);
    ASSERT_EQ(a.size(), 10u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].a, b[i].a);
        EXPECT_EQ(a[i].b, b[i].b);
        EXPECT_GE(a[i].a.size(), 20u);
        EXPECT_LE(a[i].a.size(), 40u);
        EXPECT_GE(a[i].b.size(), 20u);
        EXPECT_LE(a[i].b.size(), 40u);
    }
}

TEST(Sequences, PairsAreRelated)
{
    // Derived pairs must align far better than random ones.
    SequenceSetConfig cfg;
    cfg.numPairs = 8;
    cfg.seed = 7;
    ScoringParams sc;
    const auto pairs = generatePairs(cfg);
    for (const auto& p : pairs) {
        const auto r = alignForwardCpu(p.a, p.b, sc);
        EXPECT_GT(r.score,
                  static_cast<std::int32_t>(p.a.size()) * sc.match / 3);
    }
}

} // namespace
} // namespace gevo::adept
