#include "apps/adept/golden_edits.h"

#include <gtest/gtest.h>

#include "apps/adept/driver.h"
#include "apps/adept/fitness.h"
#include "core/fitness.h"

namespace gevo::adept {
namespace {

struct Fixture {
    Fixture()
        : pairs(makePairs()), v0(buildAdeptV0(ScoringParams{}, 64)),
          v1(buildAdeptV1(ScoringParams{}, 64)),
          driver0(pairs, ScoringParams{}, 0, 64),
          driver1(pairs, ScoringParams{}, 1, 64)
    {
    }

    static std::vector<SequencePair>
    makePairs()
    {
        SequenceSetConfig cfg;
        cfg.numPairs = 6;
        cfg.minLen = 40;
        cfg.maxLen = 64;
        cfg.seed = 7;
        auto p = generatePairs(cfg);
        appendBoundaryProbePairs(&p, 64, 7);
        return p;
    }

    std::vector<SequencePair> pairs;
    AdeptModule v0;
    AdeptModule v1;
    AdeptDriver driver0;
    AdeptDriver driver1;
};

core::FitnessResult
evalV1(const Fixture& fx, const std::vector<mut::Edit>& edits,
       const sim::DeviceConfig& dev = sim::p100())
{
    AdeptFitness fitness(fx.driver1, dev);
    return core::evaluateVariant(fx.v1.module, edits, fitness);
}

TEST(GoldenEdits, V0MemsetRemovalGivesPaperScaleSpeedup)
{
    Fixture fx;
    AdeptFitness fitness(fx.driver0, sim::p100());
    const auto base = core::evaluateVariant(fx.v0.module, {}, fitness);
    const auto gevo = core::evaluateVariant(
        fx.v0.module, editsOf(v0GoldenEdits(fx.v0)), fitness);
    ASSERT_TRUE(base.valid);
    ASSERT_TRUE(gevo.valid) << gevo.failReason;
    // Paper Sec VI-C: ">30x"; ours lands in the mid-20s..30s.
    EXPECT_GT(base.ms() / gevo.ms(), 15.0);
}

TEST(GoldenEdits, ClusterMembersFailIndividually)
{
    Fixture fx;
    const auto cluster = v1EpistaticCluster(fx.v1);
    // Order: e6, e8, e10, e5.
    EXPECT_TRUE(evalV1(fx, {cluster[0].edit}).valid) << "e6 alone";
    EXPECT_FALSE(evalV1(fx, {cluster[1].edit}).valid) << "e8 alone";
    EXPECT_FALSE(evalV1(fx, {cluster[2].edit}).valid) << "e10 alone";
    EXPECT_FALSE(evalV1(fx, {cluster[3].edit}).valid) << "e5 alone";
}

TEST(GoldenEdits, ClusterSubsetsMatchPaperStructure)
{
    Fixture fx;
    const auto cluster = v1EpistaticCluster(fx.v1);
    const auto base = evalV1(fx, {});
    ASSERT_TRUE(base.valid);

    auto pick = [&](std::initializer_list<int> idx) {
        std::vector<mut::Edit> edits;
        for (int i : idx)
            edits.push_back(cluster[i].edit);
        return edits;
    };
    const auto e6 = evalV1(fx, pick({0}));
    const auto e68 = evalV1(fx, pick({0, 1}));
    const auto e6810 = evalV1(fx, pick({0, 1, 2}));
    const auto all4 = evalV1(fx, pick({0, 1, 2, 3}));
    ASSERT_TRUE(e6.valid);
    ASSERT_TRUE(e68.valid);
    ASSERT_TRUE(e6810.valid);
    ASSERT_TRUE(all4.valid);
    // Paper Fig 7 ordering: {6} < {6,8} < {6,8,10} < {5,6,8,10}.
    EXPECT_LT(std::abs(base.ms() - e6.ms()) / base.ms(), 0.02); // "<1%"
    EXPECT_LT(e68.ms(), e6.ms());
    EXPECT_LT(e6810.ms(), e68.ms());
    EXPECT_LT(all4.ms(), e6810.ms());
    EXPECT_GT(base.ms() / all4.ms(), 1.05);
}

TEST(GoldenEdits, FullSetReachesPaperBallparkOnP100)
{
    Fixture fx;
    const auto base = evalV1(fx, {});
    const auto all = evalV1(fx, editsOf(v1AllGoldenEdits(fx.v1)));
    ASSERT_TRUE(all.valid) << all.failReason;
    // Paper Fig 4: 1.28x on the P100.
    EXPECT_GT(base.ms() / all.ms(), 1.20);
    EXPECT_LT(base.ms() / all.ms(), 1.40);
}

TEST(GoldenEdits, BallotRemovalHelpsVoltaNotPascal)
{
    Fixture fx;
    const auto indep = v1IndependentEdits(fx.v1);
    ASSERT_EQ(indep[0].name, "ballot");
    const std::vector<mut::Edit> ballotOnly = {indep[0].edit};

    const auto p100Base = evalV1(fx, {}, sim::p100());
    const auto p100Ballot = evalV1(fx, ballotOnly, sim::p100());
    const auto v100Base = evalV1(fx, {}, sim::v100());
    const auto v100Ballot = evalV1(fx, ballotOnly, sim::v100());
    ASSERT_TRUE(p100Ballot.valid);
    ASSERT_TRUE(v100Ballot.valid);
    const double pascalGain = p100Base.ms() / p100Ballot.ms();
    const double voltaGain = v100Base.ms() / v100Ballot.ms();
    // Paper Sec VI-B: ~4% on the V100, nothing on the P100.
    EXPECT_GT(voltaGain, 1.02);
    EXPECT_LT(pascalGain, 1.01);
}

TEST(GoldenEdits, PortabilityTrapRunsOnPascalFaultsOnVolta)
{
    Fixture fx;
    const std::vector<mut::Edit> trap = {
        v1PortabilityTrapEdit(fx.v1).edit};
    const auto pascal = evalV1(fx, trap, sim::p100());
    EXPECT_TRUE(pascal.valid) << pascal.failReason;
    const auto volta = evalV1(fx, trap, sim::v100());
    EXPECT_FALSE(volta.valid);
    EXPECT_NE(volta.failReason.find("illegal-warp-sync"),
              std::string::npos)
        << volta.failReason;
}

TEST(GoldenEdits, CrossDeviceGeneralityOfV0Optimization)
{
    // Paper Sec IV "Generality": the P100-evolved V0 optimization keeps
    // ~99% of its gain on the other GPUs.
    Fixture fx;
    AdeptFitness p100Fit(fx.driver0, sim::p100());
    const auto edits = editsOf(v0GoldenEdits(fx.v0));
    for (const auto& dev : sim::allDevices()) {
        AdeptFitness fit(fx.driver0, dev);
        const auto base = core::evaluateVariant(fx.v0.module, {}, fit);
        const auto opt = core::evaluateVariant(fx.v0.module, edits, fit);
        ASSERT_TRUE(opt.valid) << dev.name;
        EXPECT_GT(base.ms() / opt.ms(), 10.0) << dev.name;
    }
}

} // namespace
} // namespace gevo::adept
