#include "apps/adept/kernels.h"

#include <gtest/gtest.h>

#include "apps/adept/driver.h"
#include "ir/verifier.h"
#include "sim/device_config.h"

namespace gevo::adept {
namespace {

TEST(AdeptKernels, V0ModuleVerifies)
{
    const auto built = buildAdeptV0(ScoringParams{}, 64);
    const auto res = ir::verifyModule(built.module);
    EXPECT_TRUE(res.ok()) << res.message();
    EXPECT_EQ(built.module.numFunctions(), 1u);
}

TEST(AdeptKernels, V1ModuleVerifies)
{
    const auto built = buildAdeptV1(ScoringParams{}, 64);
    const auto res = ir::verifyModule(built.module);
    EXPECT_TRUE(res.ok()) << res.message();
    EXPECT_EQ(built.module.numFunctions(), 2u);
    EXPECT_NE(built.module.findFunction("sw_fwd_v1"), nullptr);
    EXPECT_NE(built.module.findFunction("sw_rev_v1"), nullptr);
}

TEST(AdeptKernels, AnchorsResolve)
{
    const auto v0 = buildAdeptV0(ScoringParams{}, 64);
    for (const auto& name :
         {"v0.memset.brc", "v0.memset.bar", "v0.achar.load",
          "v0.bounds.brc", "v0.dup.rowptr2", "v0.redundant.finit"}) {
        EXPECT_TRUE(v0.module.function(0).findUid(v0.uidOf(name)).valid())
            << name;
    }
    const auto v1 = buildAdeptV1(ScoringParams{}, 64);
    for (const auto& name :
         {"v1f.lane31.cmp", "v1f.localwrite.sel", "v1f.read_eh.brc",
          "v1f.read_hh.brc", "v1f.ballot", "v1f.shfl.e", "v1f.extrabar",
          "v1f.eh_shfl.movE", "v1r.localwrite.sel", "v1r.read_eh.brc"}) {
        bool found = false;
        for (std::size_t f = 0; f < v1.module.numFunctions(); ++f)
            found = found ||
                    v1.module.function(f).findUid(v1.uidOf(name)).valid();
        EXPECT_TRUE(found) << name;
    }
}

class AdeptEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, int>> {
};

TEST_P(AdeptEquivalence, GpuMatchesCpuOracle)
{
    const int version = std::get<0>(GetParam());
    const std::uint64_t seed = std::get<1>(GetParam());
    const int lenBucket = std::get<2>(GetParam());

    SequenceSetConfig cfg;
    cfg.numPairs = 6;
    cfg.minLen = lenBucket == 0 ? 12 : 33;
    cfg.maxLen = lenBucket == 0 ? 30 : 62;
    cfg.seed = seed;
    const ScoringParams sc;
    const auto pairs = generatePairs(cfg);
    const auto built = buildAdept(version, sc, 64);
    const AdeptDriver driver(pairs, sc, version, 64);

    const auto out = driver.run(built.module, sim::p100());
    ASSERT_TRUE(out.ok()) << out.fault.detail;
    ASSERT_EQ(out.results.size(), pairs.size());
    for (std::size_t p = 0; p < pairs.size(); ++p) {
        EXPECT_TRUE(out.results[p] == driver.expected()[p])
            << "pair " << p << ": got score " << out.results[p].score
            << " end (" << out.results[p].endA << ","
            << out.results[p].endB << ") start ("
            << out.results[p].startA << "," << out.results[p].startB
            << "), want score " << driver.expected()[p].score << " end ("
            << driver.expected()[p].endA << ","
            << driver.expected()[p].endB << ") start ("
            << driver.expected()[p].startA << ","
            << driver.expected()[p].startB << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdeptEquivalence,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(11u, 22u, 33u, 44u),
                       ::testing::Values(0, 1)));

TEST(AdeptKernels, EquivalenceHoldsOnAllDevices)
{
    SequenceSetConfig cfg;
    cfg.numPairs = 4;
    cfg.seed = 5;
    const ScoringParams sc;
    const auto pairs = generatePairs(cfg);
    for (const int version : {0, 1}) {
        const auto built = buildAdept(version, sc, 64);
        const AdeptDriver driver(pairs, sc, version, 64);
        for (const auto& dev : sim::allDevices()) {
            const auto out = driver.run(built.module, dev);
            ASSERT_TRUE(out.ok())
                << dev.name << " v" << version << ": " << out.fault.detail;
            for (std::size_t p = 0; p < pairs.size(); ++p)
                EXPECT_TRUE(out.results[p] == driver.expected()[p])
                    << dev.name << " v" << version << " pair " << p;
        }
    }
}

TEST(AdeptKernels, V1FasterThanV0)
{
    SequenceSetConfig cfg;
    cfg.numPairs = 6;
    cfg.seed = 3;
    const ScoringParams sc;
    const auto pairs = generatePairs(cfg);
    const auto v0 = buildAdeptV0(sc, 64);
    const auto v1 = buildAdeptV1(sc, 64);
    const AdeptDriver d0(pairs, sc, 0, 64);
    const AdeptDriver d1(pairs, sc, 1, 64);
    const auto r0 = d0.run(v0.module, sim::p100());
    const auto r1 = d1.run(v1.module, sim::p100());
    ASSERT_TRUE(r0.ok());
    ASSERT_TRUE(r1.ok());
    // Paper Sec III-B reports ~20-30x; our reverse kernel weighs as much
    // as the forward one, so the simulated gap lands lower (documented in
    // EXPERIMENTS.md) but must stay a large multiple.
    EXPECT_GT(r0.totalMs / r1.totalMs, 6.0)
        << "V0 " << r0.totalMs << " ms vs V1 " << r1.totalMs << " ms";
}

TEST(AdeptKernels, RunIsDeterministic)
{
    SequenceSetConfig cfg;
    cfg.numPairs = 3;
    cfg.seed = 8;
    const ScoringParams sc;
    const auto pairs = generatePairs(cfg);
    const auto built = buildAdeptV1(sc, 64);
    const AdeptDriver driver(pairs, sc, 1, 64);
    const auto a = driver.run(built.module, sim::p100());
    const auto b = driver.run(built.module, sim::p100());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(a.totalMs, b.totalMs);
    for (std::size_t p = 0; p < pairs.size(); ++p)
        EXPECT_TRUE(a.results[p] == b.results[p]);
}

} // namespace
} // namespace gevo::adept
