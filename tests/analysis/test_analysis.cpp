#include "analysis/edit_analysis.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace gevo::analysis {
namespace {

using mut::Edit;
using mut::EditKind;

/// Synthetic fitness over edit IDs: lets us test the algorithms against
/// known interaction structure without running the simulator.
///
/// Edits are identified by srcUid:
///   1  -> independent, -10 ms
///   2  -> independent, -5 ms
///   3  -> weak, -0.05 ms
///   10 -> stepping stone, 0 ms alone
///   11 -> INVALID unless 10 present; with 10: -20 ms together
class SyntheticFitness {
  public:
    core::FitnessResult
    operator()(const std::vector<Edit>& edits) const
    {
        std::set<std::uint64_t> ids;
        for (const auto& e : edits)
            ids.insert(e.srcUid);
        double ms = 100.0;
        if (ids.count(1))
            ms -= 10.0;
        if (ids.count(2))
            ms -= 5.0;
        if (ids.count(3))
            ms -= 0.05;
        if (ids.count(11)) {
            if (!ids.count(10))
                return core::FitnessResult::fail("11 without 10");
            ms -= 20.0;
        }
        return core::FitnessResult::pass(ms);
    }
};

Edit
editWithId(std::uint64_t id)
{
    Edit e;
    e.kind = EditKind::InstrDelete;
    e.srcUid = id;
    return e;
}

std::vector<Edit>
allEdits()
{
    return {editWithId(1), editWithId(2), editWithId(3), editWithId(10),
            editWithId(11)};
}

TEST(Minimize, DropsWeakKeepsStrong)
{
    SyntheticFitness fit;
    const auto result = minimizeEdits(allEdits(), fit, 0.01);
    std::set<std::uint64_t> kept;
    for (const auto& e : result.kept)
        kept.insert(e.srcUid);
    EXPECT_TRUE(kept.count(1));
    EXPECT_TRUE(kept.count(2));
    EXPECT_TRUE(kept.count(11));
    EXPECT_TRUE(kept.count(10)); // removing 10 breaks 11: must be kept
    EXPECT_FALSE(kept.count(3)); // weak
    EXPECT_NEAR(result.keptMs, 65.0, 1e-9);
}

TEST(Minimize, RedundantSteppingStonesCollapse)
{
    // Two identical weak edits: the cumulative weak-set logic drops both.
    SyntheticFitness fit;
    auto edits = allEdits();
    edits.push_back(editWithId(3));
    const auto result = minimizeEdits(edits, fit, 0.01);
    int weakCount = 0;
    for (const auto& e : result.dropped)
        weakCount += e.srcUid == 3 ? 1 : 0;
    EXPECT_EQ(weakCount, 2);
}

TEST(Epistasis, SeparatesIndependentFromCoupled)
{
    SyntheticFitness fit;
    const auto result =
        separateEpistasis({editWithId(1), editWithId(2), editWithId(10),
                           editWithId(11)},
                          fit);
    std::set<std::uint64_t> indep;
    for (const auto& e : result.independent)
        indep.insert(e.srcUid);
    std::set<std::uint64_t> epi;
    for (const auto& e : result.epistatic)
        epi.insert(e.srcUid);
    EXPECT_TRUE(indep.count(1));
    EXPECT_TRUE(indep.count(2));
    EXPECT_TRUE(epi.count(11)); // invalid alone -> epistatic
    EXPECT_TRUE(epi.count(10)); // no solo gain but enables 11
    EXPECT_NEAR(result.baselineMs, 100.0, 1e-9);
    EXPECT_NEAR(result.independentMs, 85.0, 1e-9);
    EXPECT_NEAR(result.epistaticMs, 80.0, 1e-9);
}

TEST(Subsets, ExhaustiveSearchFindsInteractionStructure)
{
    SyntheticFitness fit;
    const std::vector<Edit> epi = {editWithId(10), editWithId(11)};
    const auto subsets = searchSubsets(epi, fit);
    ASSERT_EQ(subsets.size(), 4u);
    EXPECT_TRUE(subsets[0].valid);                 // {}
    EXPECT_TRUE(subsets[1].valid);                 // {10}
    EXPECT_FALSE(subsets[2].valid);                // {11} alone fails
    EXPECT_TRUE(subsets[3].valid);                 // {10, 11}
    EXPECT_NEAR(subsets[3].improvement, 0.20, 1e-9);
    EXPECT_NEAR(subsets[1].improvement, 0.0, 1e-9);
}

TEST(Subsets, DependencyGraphRecoversTheEdge)
{
    SyntheticFitness fit;
    const std::vector<Edit> epi = {editWithId(10), editWithId(11)};
    const auto subsets = searchSubsets(epi, fit);
    const auto edges = dependencyGraph(2, subsets);
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(edges[0].from, 1u); // edit 11 (index 1)...
    EXPECT_EQ(edges[0].to, 0u);   // ...depends on edit 10 (index 0)
}

TEST(Subsets, DotOutputNamesFailuresAndPercentages)
{
    SyntheticFitness fit;
    const std::vector<Edit> epi = {editWithId(10), editWithId(11)};
    const auto subsets = searchSubsets(epi, fit);
    const auto edges = dependencyGraph(2, subsets);
    const auto dot = toDot(2, subsets, edges, {"e10", "e11"});
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("e10"), std::string::npos);
    EXPECT_NE(dot.find("exec failed"), std::string::npos);
    EXPECT_NE(dot.find("n1 -> n0"), std::string::npos);
}

TEST(Discovery, TraceFindsFirstGeneration)
{
    std::vector<core::GenerationLog> history(5);
    for (std::size_t g = 0; g < history.size(); ++g)
        history[g].generation = static_cast<std::uint32_t>(g + 1);
    history[1].bestEdits = {editWithId(10)};
    history[2].bestEdits = {editWithId(10)};
    history[3].bestEdits = {editWithId(10), editWithId(11)};
    history[4].bestEdits = {editWithId(10), editWithId(11)};

    const auto gens = discoveryGenerations(
        history, {editWithId(10), editWithId(11), editWithId(99)});
    ASSERT_EQ(gens.size(), 3u);
    EXPECT_EQ(gens[0].value(), 2u);
    EXPECT_EQ(gens[1].value(), 4u);
    EXPECT_FALSE(gens[2].has_value());
}

TEST(Discovery, MatchingIgnoresNewUid)
{
    std::vector<core::GenerationLog> history(1);
    history[0].generation = 1;
    Edit found = editWithId(10);
    found.newUid = 0xdeadbeef;
    history[0].bestEdits = {found};
    const auto gens = discoveryGenerations(history, {editWithId(10)});
    EXPECT_TRUE(gens[0].has_value());
}

} // namespace
} // namespace gevo::analysis
