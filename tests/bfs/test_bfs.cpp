/// BFS workload: CPU reference properties, kernel-vs-reference
/// differential over a divergent data-dependent traversal (the ROADMAP's
/// noted trace-interpreter weak spot), golden-edit expectations, held-out
/// OOB detection, and trace-vs-refpath interpreter agreement.

#include <algorithm>
#include <gtest/gtest.h>

#include "apps/bfs/driver.h"
#include "apps/bfs/kernels.h"
#include "core/fitness.h"
#include "ir/verifier.h"
#include "mutation/patch.h"
#include "sim/device_config.h"

#include "../sim/sim_test_util.h"

namespace gevo::bfs {
namespace {

BfsConfig
smallConfig()
{
    BfsConfig cfg;
    cfg.nodes = 128;
    cfg.degree = 6;
    return cfg;
}

TEST(BfsCpu, GraphAndDistancesAreWellFormed)
{
    const auto cfg = smallConfig();
    const auto graph = makeGraph(cfg);
    ASSERT_EQ(graph.rowPtr.size(),
              static_cast<std::size_t>(cfg.nodes) + 1);
    ASSERT_EQ(graph.colIdx.size(),
              static_cast<std::size_t>(cfg.edges()));
    for (std::int32_t u = 0; u < cfg.nodes; ++u) {
        EXPECT_EQ(graph.rowPtr[static_cast<std::size_t>(u) + 1] -
                      graph.rowPtr[static_cast<std::size_t>(u)],
                  cfg.degree);
        for (auto e = graph.rowPtr[static_cast<std::size_t>(u)];
             e < graph.rowPtr[static_cast<std::size_t>(u) + 1]; ++e) {
            const auto v = graph.colIdx[static_cast<std::size_t>(e)];
            EXPECT_GE(v, 0);
            EXPECT_LT(v, cfg.nodes);
            EXPECT_NE(v, u); // no self-loops
        }
    }

    const auto dist = runCpuBfs(cfg, graph);
    EXPECT_EQ(dist[static_cast<std::size_t>(cfg.source)], 0);
    // Every distance is consistent: a node at distance d > 0 has some
    // in-neighbour at distance d - 1.
    std::int32_t reached = 0;
    for (std::int32_t v = 0; v < cfg.nodes; ++v) {
        const auto dv = dist[static_cast<std::size_t>(v)];
        if (dv < 0)
            continue;
        ++reached;
        if (dv == 0)
            continue;
        bool hasParent = false;
        for (std::int32_t u = 0; u < cfg.nodes && !hasParent; ++u) {
            if (dist[static_cast<std::size_t>(u)] != dv - 1)
                continue;
            for (auto e = graph.rowPtr[static_cast<std::size_t>(u)];
                 e < graph.rowPtr[static_cast<std::size_t>(u) + 1]; ++e)
                if (graph.colIdx[static_cast<std::size_t>(e)] == v) {
                    hasParent = true;
                    break;
                }
        }
        EXPECT_TRUE(hasParent) << "node " << v;
    }
    // Degree-6 uniform graph: essentially everything is reachable.
    EXPECT_GT(reached, cfg.nodes / 2);
}

TEST(BfsKernels, ModuleVerifies)
{
    const auto built = buildBfs(smallConfig());
    const auto res = ir::verifyModule(built.module);
    EXPECT_TRUE(res.ok()) << res.message();
    EXPECT_EQ(built.module.numFunctions(), 2u);
}

TEST(BfsKernels, GpuMatchesCpuExactly)
{
    const auto cfg = smallConfig();
    const auto built = buildBfs(cfg);
    const BfsDriver driver(cfg);
    const auto out = driver.run(built.module, sim::p100());
    ASSERT_TRUE(out.ok()) << out.fault.detail;
    ASSERT_EQ(out.dist.size(), driver.expected().size());
    for (std::size_t v = 0; v < out.dist.size(); ++v)
        EXPECT_EQ(out.dist[v], driver.expected()[v]) << "node " << v;

    // Level-synchronous loop: depth + 1 launches (the last discovers
    // nothing and terminates the loop).
    const auto depth =
        *std::max_element(driver.expected().begin(),
                          driver.expected().end());
    EXPECT_EQ(out.levels, depth + 1);
}

TEST(BfsGolden, AllEditsPassAndSpeedUp)
{
    const auto cfg = smallConfig();
    const auto built = buildBfs(cfg);
    const BfsDriver driver(cfg);
    const BfsFitness fitness(driver, sim::p100());

    const auto baseline =
        core::evaluateVariant(built.module, {}, fitness);
    ASSERT_TRUE(baseline.valid) << baseline.failReason;

    const auto golden = core::evaluateVariant(
        built.module, editsOf(allGoldenEdits(built)), fitness);
    ASSERT_TRUE(golden.valid) << golden.failReason;
    EXPECT_LT(golden.ms(), baseline.ms());

    for (const auto& named : allGoldenEdits(built)) {
        const auto one =
            core::evaluateVariant(built.module, {named.edit}, fitness);
        EXPECT_TRUE(one.valid) << named.name << ": " << one.failReason;
        EXPECT_LE(one.ms(), baseline.ms()) << named.name;
    }
}

/// A mutant that forces the unvisited test true re-claims every
/// neighbour every level: the frontier never drains, so the driver's
/// level cap must terminate the run (no host hang) and the distance
/// check must reject the variant (no false accept).
TEST(BfsGolden, FrontierSpinIsCappedAndInvalid)
{
    const auto cfg = smallConfig();
    const auto built = buildBfs(cfg);
    const BfsDriver driver(cfg);
    const BfsFitness fitness(driver, sim::p100());

    mut::Edit e;
    e.kind = mut::EditKind::OperandReplace;
    e.srcUid = built.uidOf("bfs.unseen.brc");
    e.opIndex = 0;
    e.newOperand = ir::Operand::imm(1);
    const auto r = core::evaluateVariant(built.module, {e}, fitness);
    EXPECT_FALSE(r.valid);

    // And the capped run is observable at the driver level.
    const auto patched = mut::applyPatch(built.module, {e});
    const auto out = driver.run(patched, sim::p100());
    if (out.ok()) {
        EXPECT_EQ(out.levels, cfg.nodes);
    }
}

TEST(BfsSim, TraceAndReferenceInterpretersAgree)
{
    const auto cfg = smallConfig();
    const auto built = buildBfs(cfg);
    const BfsDriver driver(cfg);
    BfsRunOutput trace;
    BfsRunOutput ref;
    {
        sim::testutil::InterpModeGuard g(sim::InterpMode::Trace);
        trace = driver.run(built.module, sim::p100(), true);
    }
    {
        sim::testutil::InterpModeGuard g(sim::InterpMode::Reference);
        ref = driver.run(built.module, sim::p100(), true);
    }
    ASSERT_TRUE(trace.ok());
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(trace.totalMs, ref.totalMs);
    EXPECT_EQ(trace.dist, ref.dist);
    EXPECT_EQ(trace.levels, ref.levels);
    sim::testutil::expectStatsEqual(trace.aggregate, ref.aggregate);
}

TEST(BfsSim, DensePackingPreservesProfiledCounters)
{
    // Frontier checks leave most lanes idle on most levels, so BFS runs
    // almost entirely on the dense path. Profiled counters must be
    // identical with packing on and off.
    const auto cfg = smallConfig();
    const auto built = buildBfs(cfg);
    const BfsDriver driver(cfg);
    sim::testutil::InterpModeGuard m(sim::InterpMode::Trace);
    BfsRunOutput dense;
    BfsRunOutput legacy;
    {
        sim::testutil::DenseLaneGuard g(true);
        dense = driver.run(built.module, sim::p100(), true);
    }
    {
        sim::testutil::DenseLaneGuard g(false);
        legacy = driver.run(built.module, sim::p100(), true);
    }
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(legacy.ok());
    EXPECT_EQ(dense.totalMs, legacy.totalMs);
    EXPECT_EQ(dense.dist, legacy.dist);
    EXPECT_EQ(dense.levels, legacy.levels);
    sim::testutil::expectStatsEqual(dense.aggregate, legacy.aggregate);
}

} // namespace
} // namespace gevo::bfs
