/// Bounded VariantCache: LRU eviction order, entry bounds, counters, and
/// trajectory-neutrality of eviction inside a real search.

#include "core/variant_cache.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "ir/parser.h"
#include "mutation/edit.h"
#include "sim/device_config.h"
#include "sim/device_memory.h"
#include "sim/executor.h"
#include "sim/program.h"

namespace gevo::core {
namespace {

std::string
keyN(std::uint64_t n)
{
    mut::Edit e;
    e.kind = mut::EditKind::OperandReplace;
    e.srcUid = n;
    e.opIndex = 0;
    e.newOperand = ir::Operand::imm(1);
    return VariantCache::keyOf({e});
}

TEST(CacheEviction, UnboundedByDefault)
{
    VariantCache cache(4);
    EXPECT_EQ(cache.maxEntries(), 0u);
    for (std::uint64_t i = 0; i < 500; ++i)
        cache.insert(keyN(i), FitnessResult::pass(1.0));
    EXPECT_EQ(cache.stats().entries, 500u);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CacheEviction, EntriesNeverExceedTheBound)
{
    for (const std::size_t maxEntries : {1u, 3u, 8u, 100u}) {
        VariantCache cache(16, maxEntries);
        for (std::uint64_t i = 0; i < 400; ++i)
            cache.insert(keyN(i),
                         FitnessResult::pass(static_cast<double>(i)));
        const auto stats = cache.stats();
        EXPECT_LE(stats.entries, maxEntries) << "bound " << maxEntries;
        EXPECT_GE(stats.evictions, 400u - maxEntries)
            << "bound " << maxEntries;
    }
}

TEST(CacheEviction, EvictsLeastRecentlyUsed)
{
    // Single shard so the recency order is global and fully observable.
    VariantCache cache(1, 3);
    cache.insert(keyN(1), FitnessResult::pass(1.0));
    cache.insert(keyN(2), FitnessResult::pass(2.0));
    cache.insert(keyN(3), FitnessResult::pass(3.0));

    // Touch 1: recency becomes [1, 3, 2].
    FitnessResult out;
    ASSERT_TRUE(cache.lookup(keyN(1), &out));

    // Inserting 4 must evict 2 (least recently used), not 1.
    cache.insert(keyN(4), FitnessResult::pass(4.0));
    EXPECT_TRUE(cache.lookup(keyN(1), &out));
    EXPECT_FALSE(cache.lookup(keyN(2), &out));
    EXPECT_TRUE(cache.lookup(keyN(3), &out));
    EXPECT_TRUE(cache.lookup(keyN(4), &out));
    EXPECT_EQ(cache.stats().entries, 3u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheEviction, ReinsertDoesNotDuplicateOrEvict)
{
    VariantCache cache(1, 2);
    cache.insert(keyN(1), FitnessResult::pass(1.0));
    cache.insert(keyN(1), FitnessResult::pass(9.0)); // value no-op
    cache.insert(keyN(2), FitnessResult::pass(2.0));
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    FitnessResult out;
    ASSERT_TRUE(cache.lookup(keyN(1), &out));
    EXPECT_DOUBLE_EQ(out.ms(), 1.0); // first value wins
}

TEST(CacheEviction, ReinsertRefreshesRecency)
{
    // Regression: insert() used to return early on an existing key
    // without touching the recency list, so a re-inserted hot entry kept
    // its stale position and could be evicted as if cold.
    VariantCache cache(1, 3);
    cache.insert(keyN(1), FitnessResult::pass(1.0));
    cache.insert(keyN(2), FitnessResult::pass(2.0));
    cache.insert(keyN(3), FitnessResult::pass(3.0));

    // Re-insert 1: recency must become [1, 3, 2], exactly as a lookup
    // would have made it.
    cache.insert(keyN(1), FitnessResult::pass(1.0));

    // Inserting 4 must evict 2 (least recently used), not the hot 1.
    cache.insert(keyN(4), FitnessResult::pass(4.0));
    FitnessResult out;
    EXPECT_TRUE(cache.lookup(keyN(1), &out));
    EXPECT_FALSE(cache.lookup(keyN(2), &out));
    EXPECT_TRUE(cache.lookup(keyN(3), &out));
    EXPECT_TRUE(cache.lookup(keyN(4), &out));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheEviction, TinyBoundClampsShardCount)
{
    // maxEntries smaller than the shard count must still bound correctly.
    VariantCache cache(16, 2);
    for (std::uint64_t i = 0; i < 50; ++i)
        cache.insert(keyN(i), FitnessResult::pass(1.0));
    EXPECT_LE(cache.stats().entries, 2u);
}

TEST(CacheEviction, ClearResetsEvictionState)
{
    VariantCache cache(1, 2);
    for (std::uint64_t i = 0; i < 10; ++i)
        cache.insert(keyN(i), FitnessResult::pass(1.0));
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    // Reusable after clear: bound still enforced.
    for (std::uint64_t i = 0; i < 10; ++i)
        cache.insert(keyN(i), FitnessResult::pass(1.0));
    EXPECT_LE(cache.stats().entries, 2u);
}

// ---- eviction is trajectory-neutral inside the engine ----

constexpr const char* kToyKernel = R"(
kernel @toy params 1 regs 24 shared 512 local 0 {
entry:
    r1 = tid
    r2 = mov 0
    br memset
memset:
    r3 = mul.i32 r2, 4
    r4 = cvt.i32.i64 r3
    st.i32.shared r4, 0
    r2 = add.i32 r2, 1
    r5 = cmp.lt.i32 r2, 96
    brc r5, memset, work
work:
    r6 = mul.i32 r1, 2
    r7 = cvt.i32.i64 r1
    r8 = mul.i64 r7, 4
    r9 = add.i64 r0, r8
    st.i32.global r9, r6
    ret
}
)";

class ToyFitness : public FitnessFunction {
  public:
    FitnessResult
    evaluate(const CompiledVariant& variant) const override
    {
        const auto* prog = variant.programs.find("toy");
        if (prog == nullptr)
            return FitnessResult::fail("kernel missing");
        sim::DeviceMemory mem(1 << 16);
        const auto out = mem.alloc(64 * 4);
        const auto res = sim::launchKernel(
            sim::p100(), mem, *prog, {1, 64},
            {static_cast<std::uint64_t>(out)});
        if (!res.ok())
            return FitnessResult::fail(res.fault.detail);
        for (int t = 0; t < 64; ++t) {
            if (mem.read<std::int32_t>(out + t * 4) != t * 2)
                return FitnessResult::fail("wrong output");
        }
        return FitnessResult::pass(res.stats.ms);
    }

    std::string name() const override { return "toy"; }
};

TEST(CacheEviction, BoundedCacheIsTrajectoryNeutral)
{
    auto parsed = ir::parseModule(kToyKernel);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ToyFitness fitness;

    auto runWith = [&](std::size_t maxEntries) {
        EvolutionParams params;
        params.populationSize = 12;
        params.generations = 10;
        params.elitism = 2;
        params.seed = 21;
        params.cacheMaxEntries = maxEntries;
        return EvolutionEngine(parsed.module, fitness, params).run();
    };

    const auto unbounded = runWith(0);
    const auto bounded = runWith(4); // absurdly tight: constant eviction
    EXPECT_GT(bounded.cacheSummary.evictions, 0u);
    EXPECT_LE(bounded.cacheSummary.entries, 8u); // 4 per level
    EXPECT_EQ(unbounded.cacheSummary.evictions, 0u);

    EXPECT_EQ(mut::serializeEdits(unbounded.best.edits),
              mut::serializeEdits(bounded.best.edits));
    ASSERT_EQ(unbounded.history.size(), bounded.history.size());
    for (std::size_t g = 0; g < unbounded.history.size(); ++g) {
        EXPECT_DOUBLE_EQ(unbounded.history[g].bestMs,
                         bounded.history[g].bestMs);
        EXPECT_DOUBLE_EQ(unbounded.history[g].meanMs,
                         bounded.history[g].meanMs);
    }
    // The tight bound costs throughput, never correctness: it must do at
    // least as much real pipeline work as the unbounded cache.
    EXPECT_GE(bounded.cacheSummary.evaluated,
              unbounded.cacheSummary.evaluated);
}

} // namespace
} // namespace gevo::core
